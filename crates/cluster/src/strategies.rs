//! The four clustering strategies of §III–§IV.

use std::sync::Arc;

use hcft_graph::{Clustering, WeightedGraph};
use hcft_partition::{modularity_clusters, MultilevelConfig, MultilevelPartitioner, SizeBounds};
use hcft_topology::{NodeId, Placement, Rank};

/// A named clustering scheme: the L1 (failure-containment) clusters drive
/// message logging and restart; the L2 (encoding) clusters drive encoding
/// time and reliability. Flat schemes use the same clusters for both —
/// §III explains why the two *must* checkpoint together, which is what
/// forces the shared clustering and the 4-D trade-off.
/// Both levels are shared via [`Arc`]: schemes are cloned freely by the
/// sweep engine and the protocol/checkpointer layers, and a partition of
/// a thousand ranks must not be deep-copied per clone.
#[derive(Clone, Debug)]
pub struct ClusteringScheme {
    /// Human-readable name (Table II row label).
    pub name: String,
    /// Failure-containment clusters.
    pub l1: Arc<Clustering>,
    /// Erasure-encoding clusters.
    pub l2: Arc<Clustering>,
}

impl ClusteringScheme {
    fn flat(name: impl Into<String>, c: Clustering) -> Self {
        let c = Arc::new(c);
        ClusteringScheme {
            name: name.into(),
            l1: Arc::clone(&c),
            l2: c,
        }
    }

    /// The distinct nodes hosting L1 cluster `cluster`'s members, in
    /// first-appearance order. This is the blast radius of "kill that
    /// whole cluster": failing exactly these nodes takes down every
    /// member (plus any co-located ranks of other clusters, which the
    /// restart-set computation then picks up).
    pub fn nodes_of_l1(&self, placement: &Placement, cluster: usize) -> Vec<NodeId> {
        let mut nodes = Vec::new();
        for &r in self.l1.members(cluster) {
            let n = placement.node_of(r);
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
        nodes
    }

    /// Does losing `failed` nodes defeat this scheme's L2 redundancy?
    ///
    /// True when any L2 encoding cluster loses more members than its
    /// RS(s, s) tolerance ([`hcft_reliability::model::fti_tolerance`]) — the
    /// catastrophic case: the data is unrecoverable without a PFS copy.
    /// Shared by the Monte-Carlo campaign and `FaultScenario` resolution
    /// so both judge catastrophes identically.
    pub fn defeated_by(&self, placement: &Placement, failed: &[NodeId]) -> bool {
        let mut down = vec![false; placement.nodes()];
        for &n in failed {
            down[n.idx()] = true;
        }
        self.l2.iter().any(|(_, members)| {
            let lost = members
                .iter()
                .filter(|&&r| down[placement.node_of(r).idx()])
                .count();
            lost > hcft_reliability::model::fti_tolerance(members.len())
        })
    }
}

/// §III-A — naïve clustering: consecutive ranks in clusters of `size`
/// (the paper settles on 32 as the logging/restart sweet spot).
///
/// Prefer [`crate::strategy::Naive`] for validated, non-panicking
/// construction via the unified [`crate::strategy::ClusteringStrategy`]
/// API.
pub fn naive(nprocs: usize, size: usize) -> ClusteringScheme {
    ClusteringScheme::flat(
        format!("naive ({size} pr.)"),
        Clustering::consecutive(nprocs, size),
    )
}

/// §III-B — size-guided clustering: mechanically identical to naïve but
/// the size is chosen to balance encoding time too (the paper picks 8).
///
/// Prefer [`crate::strategy::SizeGuided`] for validated, non-panicking
/// construction.
pub fn size_guided(nprocs: usize, size: usize) -> ClusteringScheme {
    ClusteringScheme::flat(
        format!("size-guided ({size} pr.)"),
        Clustering::consecutive(nprocs, size),
    )
}

/// §III-C — distributed clustering: every cluster's members live on
/// pairwise-distinct nodes, laid out as *diagonal stripes* exactly like
/// FTI's encoding groups (Fig. 1): nodes are chunked into groups of
/// `size`, and cluster (group g, stripe c) takes slot `(c + p) mod ppn`
/// of the p-th node of the group. The diagonal shift means any two ranks
/// with the same slot on different nodes — i.e. the partners of a
/// topology-aware stencil — land in *different* clusters, which is why
/// the paper measures ~100 % of messages logged under this scheme.
///
/// # Panics
/// Panics if any node hosts fewer ranks than another (slots must align)
/// or if `size` exceeds the node count. Prefer
/// [`crate::strategy::Distributed`] to get an error instead.
pub fn distributed(placement: &Placement, size: usize) -> ClusteringScheme {
    let nodes = placement.nodes();
    assert!(
        size >= 2 && size <= nodes,
        "cluster size {size} vs {nodes} nodes"
    );
    let ppn = placement.ranks_on(NodeId(0)).len();
    assert!(
        (0..nodes).all(|n| placement.ranks_on(NodeId::from(n)).len() == ppn),
        "distributed clustering needs a uniform ranks-per-node layout"
    );
    let mut clusters: Vec<Vec<Rank>> = Vec::new();
    let mut group_start = 0;
    while group_start < nodes {
        let group_end = (group_start + size).min(nodes);
        for stripe in 0..ppn {
            clusters.push(
                (group_start..group_end)
                    .enumerate()
                    .map(|(p, n)| placement.ranks_on(NodeId::from(n))[(stripe + p) % ppn])
                    .collect(),
            );
        }
        group_start = group_end;
    }
    ClusteringScheme::flat(
        format!("distributed ({size} pr.)"),
        Clustering::from_members(placement.nprocs(), clusters),
    )
}

/// Two-level scheme built to survive the loss of a *whole* L1 cluster:
/// L1 (containment) clusters are consecutive blocks of `l1_nodes` nodes,
/// while L2 (encoding) groups of `l2_size` ranks stride across the rank
/// space so every group spreads over many L1 clusters. Killing all nodes
/// of one L1 cluster then costs each L2 group only
/// `l1_nodes·ppn / (nprocs/l2_size)` members — keep that at or below
/// [`hcft_reliability::model::fti_tolerance`]`(l2_size)` and the dead
/// cluster's checkpoints remain RS-rebuildable from survivors' parity.
/// This is the layout the live replay engine's cluster-kill scenarios
/// assume.
///
/// # Panics
/// Panics if `nprocs` is not divisible by `l2_size`, if the node count is
/// not divisible by `l1_nodes`, or if the layout is not uniform.
pub fn striped(placement: &Placement, l1_nodes: usize, l2_size: usize) -> ClusteringScheme {
    let nprocs = placement.nprocs();
    let nodes = placement.nodes();
    assert!(
        l1_nodes >= 1 && nodes.is_multiple_of(l1_nodes),
        "{nodes} nodes vs L1 blocks of {l1_nodes}"
    );
    assert!(
        l2_size >= 2 && nprocs.is_multiple_of(l2_size),
        "{nprocs} ranks vs L2 groups of {l2_size}"
    );
    let groups = nprocs / l2_size;
    let l1_assign: Vec<usize> = (0..nprocs)
        .map(|r| placement.node_of(Rank::from(r)).idx() / l1_nodes)
        .collect();
    let l2_assign: Vec<usize> = (0..nprocs).map(|r| r % groups).collect();
    ClusteringScheme {
        name: format!("striped (L1 {l1_nodes} nodes, L2 {l2_size} pr.)"),
        l1: Arc::new(Clustering::from_assignment(&l1_assign)),
        l2: Arc::new(Clustering::from_assignment(&l2_assign)),
    }
}

/// Which engine computes the L1 node partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionEngine {
    /// Multilevel k-way partitioner (METIS-style) with k = nodes /
    /// `min_nodes_per_l1`.
    Multilevel,
    /// Greedy modularity agglomeration (CNM) with size caps.
    Modularity,
}

impl PartitionEngine {
    /// Parse a CLI spelling (`multilevel` or `modularity`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "multilevel" => Some(PartitionEngine::Multilevel),
            "modularity" => Some(PartitionEngine::Modularity),
            _ => None,
        }
    }

    /// The CLI spelling, inverse of [`PartitionEngine::parse`].
    pub fn as_str(&self) -> &'static str {
        match self {
            PartitionEngine::Multilevel => "multilevel",
            PartitionEngine::Modularity => "modularity",
        }
    }
}

/// Configuration of the hierarchical strategy (§IV-B).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchicalConfig {
    /// Minimum nodes per L1 cluster (paper: 4, so erasure distribution is
    /// possible inside every L1 cluster).
    pub min_nodes_per_l1: usize,
    /// Maximum nodes per L1 cluster (bounds restart cost).
    pub max_nodes_per_l1: usize,
    /// Nodes per L2 encoding group inside an L1 cluster (paper: 4).
    pub l2_group_nodes: usize,
    /// Partitioning engine for L1.
    pub engine: PartitionEngine,
}

impl Default for HierarchicalConfig {
    fn default() -> Self {
        HierarchicalConfig {
            min_nodes_per_l1: 4,
            max_nodes_per_l1: 8,
            l2_group_nodes: 4,
            engine: PartitionEngine::Multilevel,
        }
    }
}

/// §IV-B — the hierarchical clustering.
///
/// 1. Build the node partition minimising cut traffic on `node_graph`
///    (vertex weights = ranks per node) with every part holding at least
///    `min_nodes_per_l1` nodes; an L1 cluster is all ranks of a part, so
///    a node failure rolls back exactly one L1 cluster.
/// 2. Inside each L1 cluster, chunk the nodes into groups of
///    `l2_group_nodes` (a short remainder merges into the previous group)
///    and make one L2 cluster per rank-slot per group — small, perfectly
///    distributed encoding clusters.
///
/// # Panics
/// Panics if the node graph and placement disagree, or if an L1 cluster
/// cannot hold a full L2 group. Prefer [`crate::strategy::Hierarchical`]
/// to get an error for the size preconditions instead.
pub fn hierarchical(
    placement: &Placement,
    node_graph: &WeightedGraph,
    cfg: &HierarchicalConfig,
) -> ClusteringScheme {
    let nodes = placement.nodes();
    assert_eq!(node_graph.n(), nodes, "node graph must cover the placement");
    assert!(cfg.min_nodes_per_l1 >= cfg.l2_group_nodes);
    // Vertex weights: ranks per node, so partition balance is in ranks…
    // except the paper's constraint is in *nodes*, so weight each vertex
    // 1 and bound by node counts.
    let bounds = SizeBounds::new(cfg.min_nodes_per_l1 as u64, cfg.max_nodes_per_l1 as u64);
    let node_part = match cfg.engine {
        PartitionEngine::Multilevel => {
            let k = (nodes / cfg.min_nodes_per_l1).max(1);
            // Feasibility: relax k until k·min ≤ nodes ≤ k·max.
            let mut k = k.min(nodes / cfg.min_nodes_per_l1.max(1)).max(1);
            while k > 1 && (k * cfg.min_nodes_per_l1 > nodes || nodes > k * cfg.max_nodes_per_l1) {
                k -= 1;
            }
            MultilevelPartitioner::new(MultilevelConfig::new(k, bounds)).partition(node_graph)
        }
        PartitionEngine::Modularity => modularity_clusters(node_graph, bounds),
    };
    // L1 clusters: all ranks of each node part.
    let nparts = node_part.iter().copied().max().expect("nodes") + 1;
    let mut l1_members: Vec<Vec<Rank>> = vec![Vec::new(); nparts];
    let mut part_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); nparts];
    for (n, &p) in node_part.iter().enumerate() {
        part_nodes[p].push(NodeId::from(n));
        l1_members[p].extend_from_slice(placement.ranks_on(NodeId::from(n)));
    }
    let l1 = Clustering::from_members(placement.nprocs(), l1_members);
    // L2 clusters: per part, chunk nodes into groups of l2_group_nodes.
    let mut l2_members: Vec<Vec<Rank>> = Vec::new();
    for nodes_of_part in &part_nodes {
        assert!(
            nodes_of_part.len() >= cfg.l2_group_nodes,
            "L1 cluster with {} nodes cannot host an L2 group of {}",
            nodes_of_part.len(),
            cfg.l2_group_nodes
        );
        let mut start = 0;
        while start < nodes_of_part.len() {
            let remaining = nodes_of_part.len() - start;
            // Absorb a short tail into this group so no group goes below
            // the configured distribution width.
            let take = if remaining < 2 * cfg.l2_group_nodes {
                remaining
            } else {
                cfg.l2_group_nodes
            };
            let group = &nodes_of_part[start..start + take];
            let slots = group
                .iter()
                .map(|&n| placement.ranks_on(n).len())
                .max()
                .expect("non-empty group");
            for slot in 0..slots {
                let members: Vec<Rank> = group
                    .iter()
                    .filter_map(|&n| placement.ranks_on(n).get(slot).copied())
                    .collect();
                if !members.is_empty() {
                    l2_members.push(members);
                }
            }
            start += take;
        }
    }
    let l2 = Clustering::from_members(placement.nprocs(), l2_members);
    ClusteringScheme {
        name: format!("hierarchical ({}-{} pr.)", l1.max_size(), l2.max_size()),
        l1: Arc::new(l1),
        l2: Arc::new(l2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcft_graph::CommMatrix;

    /// Node graph of a 1-D chain of nodes with heavy neighbour traffic.
    fn chain_node_graph(nodes: usize, ppn: usize) -> WeightedGraph {
        let mut m = CommMatrix::new(nodes);
        for n in 0..nodes - 1 {
            m.add(n, n + 1, 1000);
            m.add(n + 1, n, 1000);
        }
        let mut g = WeightedGraph::from_comm_matrix(&m);
        for n in 0..nodes {
            let _ = ppn;
            g.set_vertex_weight(n, 1);
        }
        g
    }

    #[test]
    fn striped_survives_a_whole_l1_cluster_loss() {
        // 16 nodes x 4 ranks; L1 = 4-node blocks (4 clusters of 16
        // ranks), L2 = 8 strided groups of 8. A full L1 cluster is 16
        // consecutive ranks = 2 members of each L2 group; tolerance is
        // fti_tolerance(8) = 4, so the kill stays recoverable.
        let placement = Placement::block(16, 4);
        let s = striped(&placement, 4, 8);
        assert_eq!(s.l1.len(), 4);
        assert_eq!(s.l2.len(), 8);
        for c in 0..s.l1.len() {
            let nodes = s.nodes_of_l1(&placement, c);
            assert_eq!(nodes.len(), 4);
            assert!(
                !s.defeated_by(&placement, &nodes),
                "losing all of L1 cluster {c} must not defeat L2"
            );
        }
        // But losing two whole L1 clusters (4 of 8 members per group)
        // crosses the tolerance boundary only at 5+, so check 3 clusters.
        let mut nodes = s.nodes_of_l1(&placement, 0);
        nodes.extend(s.nodes_of_l1(&placement, 1));
        nodes.extend(s.nodes_of_l1(&placement, 2));
        assert!(s.defeated_by(&placement, &nodes));
    }

    #[test]
    fn naive_is_consecutive() {
        let s = naive(64, 32);
        assert_eq!(s.l1.len(), 2);
        assert_eq!(s.l1, s.l2);
        assert!(s.name.contains("32"));
    }

    #[test]
    fn distributed_members_are_on_distinct_nodes() {
        let p = Placement::block(8, 4);
        let s = distributed(&p, 4);
        assert_eq!(s.l1.len(), 8); // 2 node groups × 4 slots
        for (_, members) in s.l1.iter() {
            assert!(p.fully_distributed(members), "cluster {members:?}");
            assert_eq!(members.len(), 4);
        }
    }

    #[test]
    fn distributed_covers_all_ranks_with_remainder_group() {
        let p = Placement::block(6, 2);
        let s = distributed(&p, 4); // groups of 4 + remainder of 2 nodes
        let total: usize = s.l1.sizes().iter().sum();
        assert_eq!(total, 12);
        assert_eq!(s.l1.min_size(), 2);
    }

    #[test]
    fn hierarchical_l1_contains_whole_nodes() {
        let ppn = 4;
        let p = Placement::block(16, ppn);
        let g = chain_node_graph(16, ppn);
        let s = hierarchical(&p, &g, &HierarchicalConfig::default());
        // Every node's ranks in one L1 cluster.
        for n in 0..16 {
            let ranks = p.ranks_on(NodeId::from(n));
            let c = s.l1.cluster_of(ranks[0]);
            assert!(ranks.iter().all(|&r| s.l1.cluster_of(r) == c));
        }
        // L1 clusters hold ≥ 4 nodes = 16 ranks.
        assert!(s.l1.min_size() >= 4 * ppn);
    }

    #[test]
    fn hierarchical_l2_is_small_and_distributed() {
        let ppn = 4;
        let p = Placement::block(16, ppn);
        let g = chain_node_graph(16, ppn);
        let s = hierarchical(&p, &g, &HierarchicalConfig::default());
        for (_, members) in s.l2.iter() {
            assert!(p.fully_distributed(members), "L2 not distributed");
            assert!(
                members.len() >= 4 && members.len() < 8,
                "L2 size {}",
                members.len()
            );
        }
        // L2 nests inside L1.
        for (_, members) in s.l2.iter() {
            let c = s.l1.cluster_of(members[0]);
            assert!(members.iter().all(|&r| s.l1.cluster_of(r) == c));
        }
    }

    #[test]
    fn hierarchical_on_paper_layout_produces_64_4() {
        // 64 nodes × 16 ranks: the paper's configuration. Chain node
        // graph stands in for the stencil's node graph.
        let p = Placement::block(64, 16);
        let g = chain_node_graph(64, 16);
        let cfg = HierarchicalConfig {
            min_nodes_per_l1: 4,
            max_nodes_per_l1: 4,
            l2_group_nodes: 4,
            engine: PartitionEngine::Multilevel,
        };
        let s = hierarchical(&p, &g, &cfg);
        // 16 L1 clusters of 64 consecutive ranks; L2 clusters of 4.
        assert_eq!(s.l1.len(), 16);
        assert!(s.l1.sizes().iter().all(|&z| z == 64));
        assert!(s.l2.sizes().iter().all(|&z| z == 4));
        assert_eq!(s.l2.len(), 256);
    }

    #[test]
    fn modularity_engine_also_works() {
        let ppn = 2;
        let p = Placement::block(8, ppn);
        let g = chain_node_graph(8, ppn);
        let cfg = HierarchicalConfig {
            engine: PartitionEngine::Modularity,
            ..Default::default()
        };
        let s = hierarchical(&p, &g, &cfg);
        assert!(s.l1.min_size() >= 4 * ppn);
        for (_, members) in s.l2.iter() {
            assert!(p.fully_distributed(members));
        }
    }

    #[test]
    #[should_panic(expected = "uniform ranks-per-node")]
    fn distributed_rejects_ragged_layouts() {
        let assign: Vec<NodeId> = [0, 0, 0, 1].iter().map(|&n| NodeId(n)).collect();
        let p = Placement::from_assignment(assign, 2);
        distributed(&p, 2);
    }
}
