//! The unified strategy API.
//!
//! The four §III–§IV strategies used to be four unrelated free functions
//! with different signatures and panic-on-misuse semantics. The
//! [`ClusteringStrategy`] trait gives them one shape — validate the
//! context, then build — so callers (the evaluator, the repro binary,
//! future autotuners) iterate [`registry`] instead of hand-listing four
//! calls, and misconfiguration surfaces as [`HcftError`] instead of a
//! panic.

use hcft_graph::WeightedGraph;
use hcft_telemetry::HcftError;
use hcft_topology::{NodeId, Placement};

use crate::strategies::{self, ClusteringScheme, HierarchicalConfig};

/// Everything a strategy may consult when building a scheme: the
/// rank→node placement and the node-level communication graph (vertex
/// per node, edges weighted by traced traffic).
pub struct StrategyContext<'a> {
    /// Rank→node placement of the application.
    pub placement: &'a Placement,
    /// Node communication graph (hierarchical clustering partitions it;
    /// the flat strategies ignore it).
    pub node_graph: &'a WeightedGraph,
}

/// A named, validated producer of [`ClusteringScheme`]s.
pub trait ClusteringStrategy {
    /// Stable strategy name (Table II row family, without the size).
    fn name(&self) -> &str;

    /// Build the scheme for `ctx`, validating applicability first.
    fn build(&self, ctx: &StrategyContext<'_>) -> Result<ClusteringScheme, HcftError>;
}

/// §III-A naïve clustering: consecutive ranks in clusters of `size`.
#[derive(Clone, Copy, Debug)]
pub struct Naive {
    /// Ranks per cluster (paper: 32).
    pub size: usize,
}

/// §III-B size-guided clustering: consecutive ranks, size chosen to
/// balance encoding time (paper: 8).
#[derive(Clone, Copy, Debug)]
pub struct SizeGuided {
    /// Ranks per cluster (paper: 8).
    pub size: usize,
}

/// §III-C distributed clustering: diagonal stripes of one rank per node.
#[derive(Clone, Copy, Debug)]
pub struct Distributed {
    /// Nodes per stripe group (paper: 16).
    pub size: usize,
}

/// §IV-B hierarchical clustering: node-graph L1 partition with nested
/// distributed L2 encoding groups.
#[derive(Clone, Debug, Default)]
pub struct Hierarchical {
    /// L1/L2 sizing and engine choice.
    pub cfg: HierarchicalConfig,
}

fn check_flat_size(size: usize, nprocs: usize) -> Result<(), HcftError> {
    if size == 0 {
        return Err(HcftError::Config("cluster size must be >= 1".into()));
    }
    if size > nprocs {
        return Err(HcftError::Partition(format!(
            "cluster size {size} exceeds {nprocs} ranks"
        )));
    }
    Ok(())
}

impl ClusteringStrategy for Naive {
    fn name(&self) -> &str {
        "naive"
    }

    fn build(&self, ctx: &StrategyContext<'_>) -> Result<ClusteringScheme, HcftError> {
        check_flat_size(self.size, ctx.placement.nprocs())?;
        Ok(strategies::naive(ctx.placement.nprocs(), self.size))
    }
}

impl ClusteringStrategy for SizeGuided {
    fn name(&self) -> &str {
        "size-guided"
    }

    fn build(&self, ctx: &StrategyContext<'_>) -> Result<ClusteringScheme, HcftError> {
        check_flat_size(self.size, ctx.placement.nprocs())?;
        Ok(strategies::size_guided(ctx.placement.nprocs(), self.size))
    }
}

impl ClusteringStrategy for Distributed {
    fn name(&self) -> &str {
        "distributed"
    }

    fn build(&self, ctx: &StrategyContext<'_>) -> Result<ClusteringScheme, HcftError> {
        let nodes = ctx.placement.nodes();
        if self.size < 2 || self.size > nodes {
            return Err(HcftError::Partition(format!(
                "distributed stripe size {} needs 2..={nodes} nodes",
                self.size
            )));
        }
        let ppn = ctx.placement.ranks_on(NodeId(0)).len();
        if !(0..nodes).all(|n| ctx.placement.ranks_on(NodeId::from(n)).len() == ppn) {
            return Err(HcftError::Partition(
                "distributed clustering needs a uniform ranks-per-node layout".into(),
            ));
        }
        Ok(strategies::distributed(ctx.placement, self.size))
    }
}

impl ClusteringStrategy for Hierarchical {
    fn name(&self) -> &str {
        "hierarchical"
    }

    fn build(&self, ctx: &StrategyContext<'_>) -> Result<ClusteringScheme, HcftError> {
        let nodes = ctx.placement.nodes();
        if ctx.node_graph.n() != nodes {
            return Err(HcftError::Config(format!(
                "node graph has {} vertices for {nodes} nodes",
                ctx.node_graph.n()
            )));
        }
        if self.cfg.l2_group_nodes == 0 || self.cfg.min_nodes_per_l1 < self.cfg.l2_group_nodes {
            return Err(HcftError::Config(format!(
                "min_nodes_per_l1 ({}) must be >= l2_group_nodes ({}) >= 1",
                self.cfg.min_nodes_per_l1, self.cfg.l2_group_nodes
            )));
        }
        if self.cfg.max_nodes_per_l1 < self.cfg.min_nodes_per_l1 {
            return Err(HcftError::Config(format!(
                "max_nodes_per_l1 ({}) < min_nodes_per_l1 ({})",
                self.cfg.max_nodes_per_l1, self.cfg.min_nodes_per_l1
            )));
        }
        if nodes < self.cfg.min_nodes_per_l1 {
            return Err(HcftError::Partition(format!(
                "{nodes} nodes cannot form an L1 cluster of >= {}",
                self.cfg.min_nodes_per_l1
            )));
        }
        Ok(strategies::hierarchical(
            ctx.placement,
            ctx.node_graph,
            &self.cfg,
        ))
    }
}

/// The PR 7 striped clustering: L1 = consecutive node blocks, L2 groups
/// striding across L1 clusters so a whole-L1 loss stays survivable.
#[derive(Clone, Copy, Debug)]
pub struct Striped {
    /// Nodes per L1 cluster (must divide the node count).
    pub l1_nodes: usize,
    /// Ranks per L2 encoding group (must divide the rank count).
    pub l2_size: usize,
}

impl ClusteringStrategy for Striped {
    fn name(&self) -> &str {
        "striped"
    }

    fn build(&self, ctx: &StrategyContext<'_>) -> Result<ClusteringScheme, HcftError> {
        let nodes = ctx.placement.nodes();
        let nprocs = ctx.placement.nprocs();
        if self.l1_nodes == 0 || !nodes.is_multiple_of(self.l1_nodes) {
            return Err(HcftError::Partition(format!(
                "striped L1 block of {} nodes must divide {nodes} nodes",
                self.l1_nodes
            )));
        }
        if self.l2_size < 2 || !nprocs.is_multiple_of(self.l2_size) {
            return Err(HcftError::Partition(format!(
                "striped L2 group of {} ranks needs 2..= and must divide {nprocs} ranks",
                self.l2_size
            )));
        }
        let ppn = ctx.placement.ranks_on(NodeId(0)).len();
        if !(0..nodes).all(|n| ctx.placement.ranks_on(NodeId::from(n)).len() == ppn) {
            return Err(HcftError::Partition(
                "striped clustering needs a uniform ranks-per-node layout".into(),
            ));
        }
        Ok(strategies::striped(
            ctx.placement,
            self.l1_nodes,
            self.l2_size,
        ))
    }
}

/// The paper's four strategies at their Table II configurations:
/// naive 32, size-guided 8, distributed 16, hierarchical with the
/// default §IV-B sizing.
pub fn registry() -> Vec<Box<dyn ClusteringStrategy>> {
    registry_with(32, 8, 16, HierarchicalConfig::default())
}

/// The four strategies at custom sizes (smaller runs, ablations).
pub fn registry_with(
    naive_size: usize,
    size_guided_size: usize,
    distributed_size: usize,
    hier_cfg: HierarchicalConfig,
) -> Vec<Box<dyn ClusteringStrategy>> {
    vec![
        Box::new(Naive { size: naive_size }),
        Box::new(SizeGuided {
            size: size_guided_size,
        }),
        Box::new(Distributed {
            size: distributed_size,
        }),
        Box::new(Hierarchical { cfg: hier_cfg }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcft_graph::CommMatrix;

    fn chain_graph(nodes: usize) -> WeightedGraph {
        let mut m = CommMatrix::new(nodes);
        for n in 0..nodes - 1 {
            m.add(n, n + 1, 100);
            m.add(n + 1, n, 100);
        }
        WeightedGraph::from_comm_matrix(&m)
    }

    #[test]
    fn registry_builds_all_four_on_the_paper_layout() {
        let placement = Placement::block(64, 16);
        let graph = chain_graph(64);
        let ctx = StrategyContext {
            placement: &placement,
            node_graph: &graph,
        };
        let schemes: Vec<ClusteringScheme> = registry()
            .iter()
            .map(|s| s.build(&ctx).expect("paper layout is valid"))
            .collect();
        assert_eq!(schemes.len(), 4);
        let regs = registry();
        let names: Vec<&str> = regs.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["naive", "size-guided", "distributed", "hierarchical"]
        );
        // Trait output matches the free functions it wraps.
        assert_eq!(
            schemes[0].l1,
            strategies::naive(1024, 32).l1,
            "naive parity"
        );
        assert_eq!(
            schemes[2].l2,
            strategies::distributed(&placement, 16).l2,
            "distributed parity"
        );
    }

    #[test]
    fn oversized_flat_cluster_is_a_partition_error() {
        let placement = Placement::block(2, 2);
        let graph = chain_graph(2);
        let ctx = StrategyContext {
            placement: &placement,
            node_graph: &graph,
        };
        let err = Naive { size: 100 }.build(&ctx).unwrap_err();
        assert!(matches!(err, HcftError::Partition(_)), "{err}");
    }

    #[test]
    fn zero_size_is_a_config_error() {
        let placement = Placement::block(2, 2);
        let graph = chain_graph(2);
        let ctx = StrategyContext {
            placement: &placement,
            node_graph: &graph,
        };
        assert!(matches!(
            SizeGuided { size: 0 }.build(&ctx),
            Err(HcftError::Config(_))
        ));
    }

    #[test]
    fn ragged_layout_is_a_partition_error_not_a_panic() {
        let assign: Vec<NodeId> = [0, 0, 0, 1].iter().map(|&n| NodeId(n)).collect();
        let placement = Placement::from_assignment(assign, 2);
        let graph = chain_graph(2);
        let ctx = StrategyContext {
            placement: &placement,
            node_graph: &graph,
        };
        assert!(matches!(
            Distributed { size: 2 }.build(&ctx),
            Err(HcftError::Partition(_))
        ));
    }

    #[test]
    fn mismatched_node_graph_is_a_config_error() {
        let placement = Placement::block(8, 2);
        let graph = chain_graph(4); // wrong vertex count
        let ctx = StrategyContext {
            placement: &placement,
            node_graph: &graph,
        };
        assert!(matches!(
            Hierarchical::default().build(&ctx),
            Err(HcftError::Config(_))
        ));
    }

    #[test]
    fn too_few_nodes_for_hierarchical_is_a_partition_error() {
        let placement = Placement::block(2, 4);
        let graph = chain_graph(2);
        let ctx = StrategyContext {
            placement: &placement,
            node_graph: &graph,
        };
        assert!(matches!(
            Hierarchical::default().build(&ctx),
            Err(HcftError::Partition(_))
        ));
    }
}
