//! The §III baseline requirements and the Fig. 5c normalisation.
//!
//! The paper fixes four admissibility thresholds for large-scale FT:
//! log ≤ 20 % of message bytes; encode 1 GB in ≤ 60 s; at most one in
//! several thousand failures unrecoverable (≤ 1e-3); restart ≤ 20 % of
//! processes per failure. Fig. 5c draws each clustering's four metrics
//! normalised by these thresholds — anything outside the unit polygon is
//! unusable at scale.

use crate::evaluator::FourDScore;

/// The four §III thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BaselineRequirements {
    /// Maximum fraction of bytes logged.
    pub max_logging_fraction: f64,
    /// Maximum expected restart fraction.
    pub max_restart_fraction: f64,
    /// Maximum seconds to encode 1 GB.
    pub max_encode_s_per_gb: f64,
    /// Maximum probability of catastrophic failure.
    pub max_p_catastrophic: f64,
}

impl Default for BaselineRequirements {
    fn default() -> Self {
        BaselineRequirements {
            max_logging_fraction: 0.20,
            max_restart_fraction: 0.20,
            max_encode_s_per_gb: 60.0,
            max_p_catastrophic: 1e-3,
        }
    }
}

impl BaselineRequirements {
    /// Per-dimension pass/fail, ordered (logging, restart, encode,
    /// reliability).
    pub fn meets(&self, s: &FourDScore) -> [bool; 4] {
        [
            s.logging_fraction <= self.max_logging_fraction,
            s.restart_fraction <= self.max_restart_fraction,
            s.encode_s_per_gb <= self.max_encode_s_per_gb,
            s.p_catastrophic <= self.max_p_catastrophic,
        ]
    }

    /// True when all four dimensions pass.
    pub fn meets_all(&self, s: &FourDScore) -> bool {
        self.meets(s).into_iter().all(|b| b)
    }

    /// Fig. 5c normalisation: each metric divided by its threshold, so
    /// 1.0 is the baseline polygon. The reliability axis is normalised in
    /// log-space (log p / log threshold would invert the sense for p <
    /// threshold, so we use the plain ratio capped for readability).
    pub fn normalize(&self, s: &FourDScore) -> [f64; 4] {
        [
            s.logging_fraction / self.max_logging_fraction,
            s.restart_fraction / self.max_restart_fraction,
            s.encode_s_per_gb / self.max_encode_s_per_gb,
            s.p_catastrophic / self.max_p_catastrophic,
        ]
    }

    /// Axis labels matching [`BaselineRequirements::meets`] order.
    pub fn axis_labels() -> [&'static str; 4] {
        [
            "message logging",
            "restart cost",
            "encoding time",
            "P(catastrophic)",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(log: f64, restart: f64, enc: f64, p: f64) -> FourDScore {
        FourDScore {
            name: "test".into(),
            logging_fraction: log,
            restart_fraction: restart,
            encode_s_per_gb: enc,
            p_catastrophic: p,
        }
    }

    #[test]
    fn paper_table2_admissibility() {
        let b = BaselineRequirements::default();
        // Table II values.
        let naive = score(0.035, 0.031, 204.0, 1e-4);
        let size_guided = score(0.129, 0.007, 51.0, 0.95);
        let distributed = score(1.0, 0.25, 102.0, 1e-15);
        let hierarchical = score(0.019, 0.0625, 25.0, 1e-6);
        assert_eq!(b.meets(&naive), [true, true, false, true]);
        assert_eq!(b.meets(&size_guided), [true, true, true, false]);
        assert_eq!(b.meets(&distributed), [false, false, false, true]);
        assert_eq!(b.meets(&hierarchical), [true, true, true, true]);
        assert!(b.meets_all(&hierarchical));
        assert!(!b.meets_all(&naive));
    }

    #[test]
    fn normalisation_is_unit_at_threshold() {
        let b = BaselineRequirements::default();
        let s = score(0.20, 0.20, 60.0, 1e-3);
        let n = b.normalize(&s);
        for v in n {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn labels_align_with_axes() {
        assert_eq!(BaselineRequirements::axis_labels().len(), 4);
    }
}
