//! Counting fast path for the Monte-Carlo campaign's two per-event
//! questions: *is this node-loss event catastrophic?* and *how many ranks
//! restart?*
//!
//! [`ClusteringScheme::defeated_by`] answers the first by scanning every
//! L2 cluster's member list — O(nprocs) per event — and the restart size
//! goes through `HybridProtocol::restart_set`, which materialises and
//! sorts a `Vec<Rank>` per event. Neither is acceptable at millions of
//! trials. [`SchemeIndex`] precomputes, per *node*, the L2 clusters its
//! ranks feed (with member counts) and the distinct L1 clusters it
//! hosts; an event touching `j` nodes is then judged in
//! O(j · ranks-per-node) counter bumps against epoch-stamped scratch —
//! no clearing, no allocation, no per-event `Vec` of ranks.
//!
//! The answers are exact: `fastpath_agrees_with_reference` proptests
//! both against the slow paths for arbitrary schemes and failed sets.

use hcft_reliability::model::fti_tolerance;
use hcft_topology::{NodeId, Placement};

use crate::strategies::ClusteringScheme;

/// Immutable per-(scheme, placement) index for the campaign hot loop.
///
/// Build once per cell, share across threads (`&SchemeIndex` is `Sync`);
/// pair with a per-thread [`SchemeScratch`] for the mutable counters.
#[derive(Clone, Debug)]
pub struct SchemeIndex {
    nodes: usize,
    /// CSR over nodes: `l2_pairs[l2_off[n]..l2_off[n+1]]` lists
    /// `(l2 cluster, members of that cluster on node n)`.
    l2_off: Vec<u32>,
    l2_pairs: Vec<(u32, u32)>,
    /// Reed–Solomon tolerance per L2 cluster ([`fti_tolerance`]).
    l2_tolerance: Vec<u32>,
    /// CSR over nodes: distinct L1 clusters hosted by node n.
    l1_off: Vec<u32>,
    l1_clusters: Vec<u32>,
    /// Member count per L1 cluster.
    l1_size: Vec<u32>,
}

/// Epoch-stamped counters for one thread of [`SchemeIndex`] queries.
#[derive(Clone, Debug)]
pub struct SchemeScratch {
    l2_epoch: u32,
    l2_stamp: Vec<u32>,
    l2_lost: Vec<u32>,
    l1_epoch: u32,
    l1_stamp: Vec<u32>,
}

impl SchemeIndex {
    /// Index `scheme` against `placement`.
    pub fn new(scheme: &ClusteringScheme, placement: &Placement) -> Self {
        let nodes = placement.nodes();
        let mut per_node_l2: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nodes];
        let mut l2_tolerance = vec![0u32; scheme.l2.len()];
        for (c, members) in scheme.l2.iter() {
            l2_tolerance[c] = fti_tolerance(members.len()) as u32;
            for &r in members {
                let n = placement.node_of(r).idx();
                match per_node_l2[n].iter_mut().find(|(cl, _)| *cl == c as u32) {
                    Some((_, cnt)) => *cnt += 1,
                    None => per_node_l2[n].push((c as u32, 1)),
                }
            }
        }
        let mut l2_off = Vec::with_capacity(nodes + 1);
        let mut l2_pairs = Vec::new();
        l2_off.push(0u32);
        for pairs in &per_node_l2 {
            l2_pairs.extend_from_slice(pairs);
            l2_off.push(l2_pairs.len() as u32);
        }
        let l1_size: Vec<u32> = scheme
            .l1
            .iter()
            .map(|(_, members)| members.len() as u32)
            .collect();
        let mut l1_off = Vec::with_capacity(nodes + 1);
        let mut l1_clusters = Vec::new();
        l1_off.push(0u32);
        for n in 0..nodes {
            let start = l1_clusters.len();
            for &r in placement.ranks_on(NodeId::from(n)) {
                let c = scheme.l1.cluster_of(r) as u32;
                if !l1_clusters[start..].contains(&c) {
                    l1_clusters.push(c);
                }
            }
            l1_off.push(l1_clusters.len() as u32);
        }
        SchemeIndex {
            nodes,
            l2_off,
            l2_pairs,
            l2_tolerance,
            l1_off,
            l1_clusters,
            l1_size,
        }
    }

    /// Number of placed nodes the index covers.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// A scratch sized for this index.
    pub fn scratch(&self) -> SchemeScratch {
        SchemeScratch {
            l2_epoch: 0,
            l2_stamp: vec![0; self.l2_tolerance.len()],
            l2_lost: vec![0; self.l2_tolerance.len()],
            l1_epoch: 0,
            l1_stamp: vec![0; self.l1_size.len()],
        }
    }

    /// Does losing exactly the nodes in `failed` (distinct indices)
    /// defeat the scheme's L2 redundancy? Same judgement as
    /// [`ClusteringScheme::defeated_by`], in O(Σ per-node L2 entries).
    #[inline]
    pub fn defeated_by(&self, failed: &[u32], scratch: &mut SchemeScratch) -> bool {
        let epoch = scratch.next_l2_epoch();
        for &n in failed {
            let (lo, hi) = (self.l2_off[n as usize], self.l2_off[n as usize + 1]);
            for &(c, cnt) in &self.l2_pairs[lo as usize..hi as usize] {
                let c = c as usize;
                let lost = if scratch.l2_stamp[c] == epoch {
                    scratch.l2_lost[c] + cnt
                } else {
                    scratch.l2_stamp[c] = epoch;
                    cnt
                };
                scratch.l2_lost[c] = lost;
                if lost > self.l2_tolerance[c] {
                    return true;
                }
            }
        }
        false
    }

    /// Number of ranks forced to restart when the nodes in `failed` die:
    /// the union of the L1 clusters hosting any of their ranks — exactly
    /// `HybridProtocol::restart_set(failed_ranks).len()` without
    /// materialising the set.
    #[inline]
    pub fn restart_ranks(&self, failed: &[u32], scratch: &mut SchemeScratch) -> u64 {
        let epoch = scratch.next_l1_epoch();
        let mut total = 0u64;
        for &n in failed {
            let (lo, hi) = (self.l1_off[n as usize], self.l1_off[n as usize + 1]);
            for &c in &self.l1_clusters[lo as usize..hi as usize] {
                let c = c as usize;
                if scratch.l1_stamp[c] != epoch {
                    scratch.l1_stamp[c] = epoch;
                    total += self.l1_size[c] as u64;
                }
            }
        }
        total
    }
}

impl SchemeScratch {
    #[inline]
    fn next_l2_epoch(&mut self) -> u32 {
        self.l2_epoch = self.l2_epoch.wrapping_add(1);
        if self.l2_epoch == 0 {
            self.l2_stamp.fill(0);
            self.l2_epoch = 1;
        }
        self.l2_epoch
    }

    #[inline]
    fn next_l1_epoch(&mut self) -> u32 {
        self.l1_epoch = self.l1_epoch.wrapping_add(1);
        if self.l1_epoch == 0 {
            self.l1_stamp.fill(0);
            self.l1_epoch = 1;
        }
        self.l1_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{distributed, naive, striped};
    use hcft_msglog::HybridProtocol;
    use hcft_topology::Rank;
    use proptest::prelude::*;

    fn reference_defeated(s: &ClusteringScheme, p: &Placement, failed: &[u32]) -> bool {
        let nodes: Vec<NodeId> = failed.iter().map(|&n| NodeId(n)).collect();
        s.defeated_by(p, &nodes)
    }

    fn reference_restart(s: &ClusteringScheme, p: &Placement, failed: &[u32]) -> u64 {
        let protocol = HybridProtocol::new(s.l1.clone());
        let mut ranks: Vec<Rank> = failed
            .iter()
            .flat_map(|&n| p.ranks_on(NodeId(n)).to_vec())
            .collect();
        ranks.sort_unstable();
        protocol.restart_set(&ranks).len() as u64
    }

    #[test]
    fn counting_matches_reference_on_naive() {
        let p = Placement::block(8, 4);
        let s = naive(32, 8);
        let idx = SchemeIndex::new(&s, &p);
        let mut scratch = idx.scratch();
        for failed in [vec![0u32], vec![3], vec![0, 1], vec![2, 5, 7]] {
            assert_eq!(
                idx.defeated_by(&failed, &mut scratch),
                reference_defeated(&s, &p, &failed),
                "defeated {failed:?}"
            );
            assert_eq!(
                idx.restart_ranks(&failed, &mut scratch),
                reference_restart(&s, &p, &failed),
                "restart {failed:?}"
            );
        }
    }

    #[test]
    fn epoch_reuse_does_not_leak_between_events() {
        let p = Placement::block(16, 4);
        let s = striped(&p, 4, 8);
        let idx = SchemeIndex::new(&s, &p);
        let mut scratch = idx.scratch();
        // A near-defeating event must not leave counts behind that make
        // the next small event look catastrophic.
        let big: Vec<u32> = (0..8).collect();
        let _ = idx.defeated_by(&big, &mut scratch);
        assert!(!idx.defeated_by(&[0], &mut scratch));
        assert_eq!(
            idx.restart_ranks(&[0], &mut scratch),
            reference_restart(&s, &p, &[0])
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn fastpath_agrees_with_reference(
            nodes in 2usize..20,
            ppn in 1usize..5,
            size in 2usize..9,
            picks in proptest::collection::vec(0usize..1000, 1..8),
        ) {
            let p = Placement::block(nodes, ppn);
            let nprocs = nodes * ppn;
            let schemes = vec![
                naive(nprocs, size.min(nprocs)),
                distributed(&p, size.min(nodes).max(2)),
            ];
            let mut failed: Vec<u32> = picks.iter().map(|&x| (x % nodes) as u32).collect();
            failed.sort_unstable();
            failed.dedup();
            for s in &schemes {
                let idx = SchemeIndex::new(s, &p);
                let mut scratch = idx.scratch();
                prop_assert_eq!(
                    idx.defeated_by(&failed, &mut scratch),
                    reference_defeated(s, &p, &failed)
                );
                prop_assert_eq!(
                    idx.restart_ranks(&failed, &mut scratch),
                    reference_restart(s, &p, &failed)
                );
            }
        }
    }
}
