//! Clustering strategies for coupled fast-checkpointing + failure
//! containment — the paper's primary contribution.
//!
//! Section III establishes that one clustering must serve both the hybrid
//! message-logging protocol and the erasure encoder, creating a
//! four-dimensional optimisation problem (logging overhead, recovery
//! cost, encoding time, reliability). This crate implements:
//!
//! * the three straw-man strategies the paper studies and rejects —
//!   [`naive`], [`size_guided`] (consecutive ranks) and [`distributed`]
//!   (round-robin across nodes);
//! * the contribution, [`hierarchical`]: L1 clusters from a node-graph
//!   partition (≥ 4 nodes each, every node wholly inside one cluster)
//!   for containment, and distributed L2 clusters of one-rank-per-node
//!   inside each L1 cluster for encoding (§IV-B, Fig. 6);
//! * the [`FourDScore`] evaluator wiring the message-logging accounting,
//!   restart model, encoding model and catastrophic-failure model
//!   together (Table II);
//! * the baseline requirements of §III and the Fig. 5c normalisation.

pub mod autotune;
pub mod baseline;
pub mod evaluator;
pub mod fastpath;
pub mod strategies;
pub mod strategy;

pub use autotune::{autotune, candidates, Candidate};
pub use baseline::BaselineRequirements;
pub use evaluator::{Evaluator, FourDScore};
pub use fastpath::{SchemeIndex, SchemeScratch};
pub use hcft_telemetry::HcftError;
pub use strategies::{
    distributed, hierarchical, naive, size_guided, striped, ClusteringScheme, HierarchicalConfig,
    PartitionEngine,
};
pub use strategy::{
    registry, registry_with, ClusteringStrategy, Distributed, Hierarchical, Naive, SizeGuided,
    StrategyContext, Striped,
};
