//! The four-dimensional evaluator (Table II machinery).

use hcft_erasure::EncodingModel;
use hcft_graph::CommMatrix;
use hcft_msglog::HybridProtocol;
use hcft_reliability::model::fti_tolerance;
use hcft_reliability::{EventDistribution, ReliabilityModel};
use hcft_topology::Placement;

use crate::strategies::ClusteringScheme;

/// One row of Table II: the four dimensions of §III.
#[derive(Clone, Debug, PartialEq)]
pub struct FourDScore {
    /// Scheme name.
    pub name: String,
    /// Fraction of communicated bytes logged (L1 boundaries).
    pub logging_fraction: f64,
    /// Expected fraction of processes restarted per node failure (L1).
    pub restart_fraction: f64,
    /// Seconds to encode 1 GB per process (L2 cluster size, calibrated
    /// model).
    pub encode_s_per_gb: f64,
    /// Probability that a failure event is catastrophic (L2 placement).
    pub p_catastrophic: f64,
}

impl FourDScore {
    /// Render as a Table-II-style row.
    pub fn render_row(&self) -> String {
        format!(
            "{:<24} {:>7.1}% {:>8.2}% {:>8.0} s {:>12.2e}",
            self.name,
            self.logging_fraction * 100.0,
            self.restart_fraction * 100.0,
            self.encode_s_per_gb,
            self.p_catastrophic
        )
    }
}

/// Evaluator bound to one traced application run and machine model.
pub struct Evaluator {
    matrix: CommMatrix,
    placement: Placement,
    encoding: EncodingModel,
    reliability: ReliabilityModel,
}

impl Evaluator {
    /// Build from the application communication matrix (application ranks
    /// only, dense-renumbered) and their placement. Uses the
    /// paper-calibrated encoding model and FTI event distribution.
    pub fn new(matrix: CommMatrix, placement: Placement) -> Self {
        assert_eq!(matrix.n(), placement.nprocs(), "matrix/placement size");
        let nodes = placement.nodes();
        Evaluator {
            matrix,
            placement,
            encoding: EncodingModel::tsubame2(),
            reliability: ReliabilityModel::new(nodes, EventDistribution::fti_calibrated()),
        }
    }

    /// Replace the encoding model (e.g. with a locally measured
    /// calibration).
    pub fn with_encoding_model(mut self, m: EncodingModel) -> Self {
        self.encoding = m;
        self
    }

    /// Replace the reliability model.
    pub fn with_reliability(mut self, m: ReliabilityModel) -> Self {
        self.reliability = m;
        self
    }

    /// The application matrix under evaluation.
    pub fn matrix(&self) -> &CommMatrix {
        &self.matrix
    }

    /// The placement under evaluation.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Score a scheme on all four dimensions.
    ///
    /// Besides returning the [`FourDScore`], the raw byte counts and the
    /// four dimensions are published under `table2.<scheme-slug>.*` in
    /// the process-global telemetry registry, so a `--telemetry` export
    /// carries the same numbers as the rendered table.
    pub fn evaluate(&self, scheme: &ClusteringScheme) -> FourDScore {
        let protocol = HybridProtocol::new(scheme.l1.clone());
        let stats = protocol.stats_from_matrix(&self.matrix);
        let restart = protocol.expected_restart_fraction(&self.placement);
        // The encoding time is governed by the largest L2 cluster (all
        // clusters encode in parallel; the slowest gates the checkpoint).
        let encode = self.encoding.seconds_per_gb(scheme.l2.max_size());
        let p_cat = self
            .reliability
            .p_catastrophic(&scheme.l2, &self.placement, &fti_tolerance);
        let score = FourDScore {
            name: scheme.name.clone(),
            logging_fraction: stats.logged_fraction(),
            restart_fraction: restart,
            encode_s_per_gb: encode,
            p_catastrophic: p_cat,
        };
        publish_score(&score, stats.logged_bytes, stats.total_bytes);
        score
    }
}

/// `"Hierarchical (4 nd.)"` → `"hierarchical_4_nd"`.
fn slugify(name: &str) -> String {
    let mut slug = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            slug.push(c.to_ascii_lowercase());
        } else if !slug.ends_with('_') && !slug.is_empty() {
            slug.push('_');
        }
    }
    slug.trim_end_matches('_').to_string()
}

/// Publish one Table II row into the process-global registry. Counters
/// use `store` (not `add`) so re-evaluating a scheme overwrites rather
/// than accumulates.
fn publish_score(score: &FourDScore, logged_bytes: u64, total_bytes: u64) {
    let reg = hcft_telemetry::Registry::global();
    let slug = slugify(&score.name);
    reg.counter(&format!("table2.{slug}.logged_bytes"))
        .store(logged_bytes);
    reg.counter(&format!("table2.{slug}.total_bytes"))
        .store(total_bytes);
    reg.gauge(&format!("table2.{slug}.logging_fraction"))
        .set(score.logging_fraction);
    reg.gauge(&format!("table2.{slug}.restart_fraction"))
        .set(score.restart_fraction);
    reg.gauge(&format!("table2.{slug}.encode_s_per_gb"))
        .set(score.encode_s_per_gb);
    reg.gauge(&format!("table2.{slug}.p_catastrophic"))
        .set(score.p_catastrophic);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{distributed, naive};

    /// Ring traffic over 16 ranks on 4 nodes.
    fn setup() -> Evaluator {
        let mut m = CommMatrix::new(16);
        for r in 0..16 {
            m.add(r, (r + 1) % 16, 100);
        }
        Evaluator::new(m, Placement::block(4, 4))
    }

    #[test]
    fn naive_scores_match_hand_computation() {
        let ev = setup();
        let s = ev.evaluate(&naive(16, 4));
        // Ring over clusters of 4: 4 of 16 edges cross → 25% logged.
        assert!((s.logging_fraction - 0.25).abs() < 1e-12);
        // Node-aligned clusters: one node failure restarts 4/16.
        assert!((s.restart_fraction - 0.25).abs() < 1e-12);
        // Encoding: clusters of 4 → ~25.5 s/GB.
        assert!((s.encode_s_per_gb - 25.5).abs() < 0.1);
        // Same-node clusters: every node event is catastrophic → ≈0.95
        // (less the tiny mass on >4-node events impossible on 4 nodes).
        assert!((s.p_catastrophic - 0.95).abs() < 1e-4);
    }

    #[test]
    fn distributed_trades_reliability_for_logging() {
        let ev = setup();
        let s_nv = ev.evaluate(&naive(16, 4));
        let s_ds = ev.evaluate(&distributed(ev.placement(), 4));
        // Distributed stripes break the ring locality: the only unlogged
        // edges are the 4 node-crossing ring links that happen to align
        // with the diagonal striping → 12/16 logged.
        assert!(s_ds.logging_fraction > 0.7);
        assert!(s_ds.logging_fraction > 2.0 * s_nv.logging_fraction);
        // …and every node failure touches all clusters.
        assert!((s_ds.restart_fraction - 1.0).abs() < 1e-12);
        // But reliability improves by orders of magnitude.
        assert!(s_ds.p_catastrophic < s_nv.p_catastrophic / 1e3);
    }

    #[test]
    fn slugify_flattens_table_names() {
        assert_eq!(slugify("Hierarchical (4 nd.)"), "hierarchical_4_nd");
        assert_eq!(slugify("naive (32 pr.)"), "naive_32_pr");
        assert_eq!(slugify("distributed"), "distributed");
    }

    #[test]
    fn evaluate_publishes_table2_metrics_globally() {
        let ev = setup();
        let s = ev.evaluate(&naive(16, 4));
        let reg = hcft_telemetry::Registry::global();
        let slug = slugify(&s.name);
        let logged = reg.counter(&format!("table2.{slug}.logged_bytes")).get();
        let total = reg.counter(&format!("table2.{slug}.total_bytes")).get();
        assert!(total > 0);
        // Counter path and score path agree — two routes, one number.
        assert!((logged as f64 / total as f64 - s.logging_fraction).abs() < 1e-12);
        assert_eq!(
            reg.gauge(&format!("table2.{slug}.restart_fraction")).get(),
            s.restart_fraction
        );
    }

    #[test]
    fn render_row_contains_all_fields() {
        let ev = setup();
        let row = ev.evaluate(&naive(16, 4)).render_row();
        assert!(row.contains("naive"));
        assert!(row.contains('%'));
        assert!(row.contains('s'));
    }
}
