//! Cluster-size auto-tuning — §III's sweet-spot search as an algorithm.
//!
//! The paper finds its cluster sizes by manual inspection of Fig. 3a/3b.
//! This module automates the search: sweep candidate configurations,
//! score each on the four dimensions, drop everything that misses the
//! baseline, and rank the survivors by a scalarised cost (normalised
//! worst-axis by default — minimise the largest baseline ratio, i.e. the
//! Chebyshev objective that matches Fig. 5c's "stay inside the polygon").

use hcft_graph::WeightedGraph;
use hcft_topology::Placement;

use crate::baseline::BaselineRequirements;
use crate::evaluator::{Evaluator, FourDScore};
use crate::strategies::{distributed, hierarchical, naive, ClusteringScheme, HierarchicalConfig};

/// One evaluated candidate.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The scheme.
    pub scheme: ClusteringScheme,
    /// Its 4-D score.
    pub score: FourDScore,
    /// max(normalised axes) — < 1 means inside the baseline polygon.
    pub chebyshev: f64,
}

/// Sweep all candidate schemes for a traced workload.
///
/// Candidates: naïve/consecutive sizes (powers of two), distributed sizes
/// (powers of two up to the node count) and hierarchical L1 widths
/// (4 and 8 nodes).
pub fn candidates(
    evaluator: &Evaluator,
    node_graph: &WeightedGraph,
    baseline: &BaselineRequirements,
) -> Vec<Candidate> {
    let placement: &Placement = evaluator.placement();
    let n = placement.nprocs();
    let nodes = placement.nodes();
    let mut schemes: Vec<ClusteringScheme> = Vec::new();
    let mut size = 2;
    while size <= n / 2 {
        schemes.push(naive(n, size));
        size *= 2;
    }
    let mut size = 2;
    while size <= nodes {
        schemes.push(distributed(placement, size));
        size *= 2;
    }
    for l1 in [4usize, 8] {
        if nodes >= 2 * l1 {
            schemes.push(hierarchical(
                placement,
                node_graph,
                &HierarchicalConfig {
                    min_nodes_per_l1: l1,
                    max_nodes_per_l1: l1,
                    l2_group_nodes: 4.min(l1),
                    ..Default::default()
                },
            ));
        }
    }
    schemes
        .into_iter()
        .map(|scheme| {
            let score = evaluator.evaluate(&scheme);
            let chebyshev = baseline
                .normalize(&score)
                .into_iter()
                .fold(0.0f64, f64::max);
            Candidate {
                scheme,
                score,
                chebyshev,
            }
        })
        .collect()
}

/// Pick the best admissible candidate (smallest Chebyshev ratio), or the
/// least-bad one when nothing is admissible.
pub fn autotune(
    evaluator: &Evaluator,
    node_graph: &WeightedGraph,
    baseline: &BaselineRequirements,
) -> Candidate {
    let mut all = candidates(evaluator, node_graph, baseline);
    all.sort_by(|a, b| a.chebyshev.partial_cmp(&b.chebyshev).expect("finite"));
    all.into_iter().next().expect("candidate set is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcft_graph::patterns;

    /// Anisotropic stencil over 32 nodes × 8 ranks — paper-shaped.
    fn setup() -> (Evaluator, WeightedGraph) {
        let placement = Placement::block(32, 8);
        let m = patterns::stencil_2d(128, 2, 2048, 16);
        let node_matrix = m.aggregate_by_node(&placement);
        let node_graph = WeightedGraph::from_comm_matrix(&node_matrix);
        (Evaluator::new(m, placement), node_graph)
    }

    #[test]
    fn autotune_selects_a_hierarchical_scheme() {
        let (evaluator, node_graph) = setup();
        let baseline = BaselineRequirements::default();
        let best = autotune(&evaluator, &node_graph, &baseline);
        assert!(
            best.scheme.name.starts_with("hierarchical"),
            "picked {}",
            best.scheme.name
        );
        assert!(best.chebyshev < 1.0, "winner inside the polygon");
        assert!(baseline.meets_all(&best.score));
    }

    #[test]
    fn candidate_sweep_covers_all_families() {
        let (evaluator, node_graph) = setup();
        let cands = candidates(&evaluator, &node_graph, &BaselineRequirements::default());
        let names: Vec<&str> = cands.iter().map(|c| c.score.name.as_str()).collect();
        assert!(names.iter().any(|n| n.starts_with("naive")));
        assert!(names.iter().any(|n| n.starts_with("distributed")));
        assert!(names.iter().any(|n| n.starts_with("hierarchical")));
        // Sweep is non-trivial.
        assert!(cands.len() >= 8, "only {} candidates", cands.len());
    }

    #[test]
    fn chebyshev_flags_inadmissible_candidates() {
        let (evaluator, node_graph) = setup();
        let cands = candidates(&evaluator, &node_graph, &BaselineRequirements::default());
        for c in &cands {
            let meets = BaselineRequirements::default().meets_all(&c.score);
            assert_eq!(meets, c.chebyshev <= 1.0, "{}", c.score.name);
        }
    }

    #[test]
    fn degenerate_baseline_still_returns_least_bad() {
        let (evaluator, node_graph) = setup();
        // Impossible thresholds: nothing admissible, but autotune still
        // ranks.
        let impossible = BaselineRequirements {
            max_logging_fraction: 1e-9,
            max_restart_fraction: 1e-9,
            max_encode_s_per_gb: 1e-9,
            max_p_catastrophic: 1e-30,
        };
        let best = autotune(&evaluator, &node_graph, &impossible);
        assert!(best.chebyshev > 1.0);
    }

    #[test]
    fn all_to_all_workload_defeats_the_tuner_gracefully() {
        // The §V caveat: on all-to-all nothing meets the logging budget.
        let placement = Placement::block(16, 4);
        let m = patterns::all_to_all(64, 1000);
        let node_graph = WeightedGraph::from_comm_matrix(&m.aggregate_by_node(&placement));
        let evaluator = Evaluator::new(m, placement);
        let baseline = BaselineRequirements::default();
        let best = autotune(&evaluator, &node_graph, &baseline);
        assert!(!baseline.meets(&best.score)[0], "logging must fail");
    }
}
