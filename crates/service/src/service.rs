//! The evaluation core: trace cache + response memo + deterministic
//! ranked-comparison rendering.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hcft_core::trace_cache::TraceCache;
use hcft_core::{evaluate_family_sweep, FamilyScore};
use hcft_telemetry::{Counter, HcftError, Registry};
use parking_lot::Mutex;

use crate::request::EvalRequest;

struct MemoEntry {
    key: String,
    body: Arc<String>,
    last_used: u64,
}

struct MemoInner {
    entries: Vec<MemoEntry>,
    tick: u64,
}

/// The service state shared by every HTTP worker: the traced-matrix
/// cache plus an LRU memo of fully rendered responses.
///
/// Two tiers because they save different work: a trace-cache hit skips
/// the traced run (~95 % of a cold request) but still recomputes the
/// strategy sweep; a memo hit returns the stored bytes outright. Both
/// tiers are deterministic, so a response is byte-identical whether it
/// came cold, trace-warm or memo-warm — the sweep itself is an
/// order-preserving rayon fold, identical at any thread count.
pub struct EvalService {
    traces: TraceCache,
    memo: Mutex<MemoInner>,
    memo_cap: usize,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    memo_hits_telemetry: Arc<Counter>,
    memo_misses_telemetry: Arc<Counter>,
}

impl EvalService {
    /// A service retaining at most `trace_cap` traced matrices and
    /// `memo_cap` rendered responses (each minimum 1). Telemetry lands
    /// in the process-global registry under `service.cache.*` (traces)
    /// and `service.memo.*` (responses).
    pub fn new(trace_cap: usize, memo_cap: usize) -> Self {
        let reg = Registry::global();
        EvalService {
            traces: TraceCache::new(trace_cap),
            memo: Mutex::new(MemoInner {
                entries: Vec::new(),
                tick: 0,
            }),
            memo_cap: memo_cap.max(1),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            memo_hits_telemetry: reg.counter("service.memo.hits"),
            memo_misses_telemetry: reg.counter("service.memo.misses"),
        }
    }

    /// The traced-matrix cache (exposed for the `/cache` route and the
    /// benchmark's assertions).
    pub fn trace_cache(&self) -> &TraceCache {
        &self.traces
    }

    /// Response-memo counter snapshot `(hits, misses)` for this
    /// instance.
    pub fn memo_stats(&self) -> (u64, u64) {
        (
            self.memo_hits.load(Ordering::Relaxed),
            self.memo_misses.load(Ordering::Relaxed),
        )
    }

    /// Answer `req`: the ranked scheme comparison as deterministic JSON.
    ///
    /// Memo-warm requests return the stored bytes; otherwise the trace
    /// comes from the cache (computed at most once per key) and the
    /// family sweep is recomputed and re-memoized. All three paths
    /// produce identical bytes for identical requests.
    pub fn evaluate(&self, req: &EvalRequest) -> Result<Arc<String>, HcftError> {
        let memo_key = req.memo_key()?;
        {
            let mut memo = self.memo.lock();
            memo.tick += 1;
            let tick = memo.tick;
            if let Some(e) = memo.entries.iter_mut().find(|e| e.key == memo_key) {
                e.last_used = tick;
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
                self.memo_hits_telemetry.inc();
                return Ok(Arc::clone(&e.body));
            }
            self.memo_misses.fetch_add(1, Ordering::Relaxed);
            self.memo_misses_telemetry.inc();
        }

        let cfg = req.job_config()?;
        let trace = self.traces.get_or_trace(&cfg);
        let spec = req.family_spec();
        if spec.is_empty() {
            return Err(HcftError::Config(format!(
                "no strategy family fits a {}x{} layout",
                req.nodes, req.ppn
            )));
        }
        let scores = evaluate_family_sweep(&trace, &spec)?;
        let body = Arc::new(render_response(
            req,
            &cfg.content_hash().to_string(),
            &scores,
        ));

        let mut memo = self.memo.lock();
        memo.tick += 1;
        let tick = memo.tick;
        // A racing identical request may have memoized first; keep the
        // existing entry (same bytes either way — the render is pure).
        if let Some(e) = memo.entries.iter_mut().find(|e| e.key == memo_key) {
            e.last_used = tick;
            return Ok(Arc::clone(&e.body));
        }
        memo.entries.push(MemoEntry {
            key: memo_key,
            body: Arc::clone(&body),
            last_used: tick,
        });
        while memo.entries.len() > self.memo_cap {
            let victim = memo
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("len > cap >= 1");
            memo.entries.remove(victim);
        }
        Ok(body)
    }
}

/// The ranking order: safest first. Primary key is the catastrophe
/// probability (the dimension the paper's hierarchical scheme wins by
/// orders of magnitude), then logging fraction, restart fraction,
/// encoding time, and finally the scheme name so ties are total.
fn rank_order(a: &FamilyScore, b: &FamilyScore) -> std::cmp::Ordering {
    a.score
        .p_catastrophic
        .total_cmp(&b.score.p_catastrophic)
        .then_with(|| {
            a.score
                .logging_fraction
                .total_cmp(&b.score.logging_fraction)
        })
        .then_with(|| {
            a.score
                .restart_fraction
                .total_cmp(&b.score.restart_fraction)
        })
        .then_with(|| a.score.encode_s_per_gb.total_cmp(&b.score.encode_s_per_gb))
        .then_with(|| a.score.name.cmp(&b.score.name))
}

/// Render the ranked comparison as JSON. Every value is either an
/// integer, a shortest-round-trip float (deterministic in Rust's
/// `Display`), or an escaped string — no map iteration, no timestamps —
/// so identical inputs render identical bytes on every thread count,
/// cache path and process.
fn render_response(req: &EvalRequest, trace_key: &str, scores: &[FamilyScore]) -> String {
    let mut ranked: Vec<&FamilyScore> = scores.iter().collect();
    ranked.sort_by(|a, b| rank_order(a, b));

    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"request\": {{\"nodes\": {}, \"ppn\": {}, \"families\": {}, \"trace_key\": {}}},\n",
        req.nodes,
        req.ppn,
        json_string(req.families.as_str()),
        json_string(trace_key)
    ));
    out.push_str(&format!("  \"schemes\": {},\n", scores.len()));
    out.push_str("  \"ranking\": [");
    for (i, fs) in ranked.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rank\": {}, \"family\": {}, \"name\": {}, \
             \"logging_fraction\": {}, \"restart_fraction\": {}, \
             \"encode_s_per_gb\": {}, \"p_catastrophic\": {}}}",
            i + 1,
            json_string(fs.family),
            json_string(&fs.score.name),
            json_f64(fs.score.logging_fraction),
            json_f64(fs.score.restart_fraction),
            json_f64(fs.score.encode_s_per_gb),
            json_f64(fs.score.p_catastrophic)
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"best\": {}\n",
        json_string(&ranked[0].score.name)
    ));
    out.push_str("}\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON has no NaN/Inf; the scores never produce them, but map to null
/// rather than emitting invalid JSON if a model ever does.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(q: &str) -> EvalRequest {
        EvalRequest::from_query(q).unwrap()
    }

    #[test]
    fn responses_are_memoized_and_byte_identical() {
        let svc = EvalService::new(4, 4);
        let r = req("nodes=2&ppn=2");
        let cold = svc.evaluate(&r).unwrap();
        let warm = svc.evaluate(&r).unwrap();
        assert!(Arc::ptr_eq(&cold, &warm), "memo hit returns stored bytes");
        assert_eq!(svc.memo_stats(), (1, 1));
        // The body is valid-looking ranked JSON.
        assert!(cold.contains("\"ranking\": ["));
        assert!(cold.contains("\"rank\": 1"));
        assert!(cold.contains("\"best\": "));
    }

    #[test]
    fn memo_and_trace_tiers_compose() {
        let svc = EvalService::new(4, 4);
        let t2 = svc.evaluate(&req("nodes=2&ppn=2")).unwrap();
        let (_, trace_misses_0, _) = svc.trace_cache().stats();
        // Different family selection: memo miss, but the trace is warm.
        let full = svc.evaluate(&req("nodes=2&ppn=2&families=full")).unwrap();
        let (trace_hits, trace_misses_1, _) = svc.trace_cache().stats();
        assert_eq!(trace_misses_1, trace_misses_0, "no second traced run");
        assert_eq!(trace_hits, 1, "family switch reuses the trace");
        assert_ne!(&*t2, &*full, "different sweeps, different bodies");
        assert_eq!(svc.memo_stats(), (0, 2));
    }

    #[test]
    fn memo_eviction_is_lru() {
        let svc = EvalService::new(4, 1);
        let a = req("nodes=2&ppn=2");
        let b = req("nodes=2&ppn=2&families=full");
        svc.evaluate(&a).unwrap();
        svc.evaluate(&b).unwrap(); // evicts a's body
        svc.evaluate(&a).unwrap(); // memo miss, trace hit
        assert_eq!(svc.memo_stats(), (0, 3));
    }

    #[test]
    fn ranking_is_total_and_safest_first() {
        let svc = EvalService::new(4, 4);
        let body = svc.evaluate(&req("nodes=4&ppn=2&families=full")).unwrap();
        // Ranks are 1..=N in order of appearance.
        let mut last = 0usize;
        for part in body.split("\"rank\": ").skip(1) {
            let n: usize = part
                .split(',')
                .next()
                .unwrap()
                .trim()
                .parse()
                .expect("rank is an integer");
            assert_eq!(n, last + 1);
            last = n;
        }
        assert!(last >= 4, "full sweep ranks several schemes, got {last}");
        // p_catastrophic is non-decreasing down the ranking.
        let ps: Vec<f64> = body
            .split("\"p_catastrophic\": ")
            .skip(1)
            .map(|s| {
                s.split('}')
                    .next()
                    .unwrap()
                    .parse()
                    .expect("p_catastrophic is a number")
            })
            .collect();
        assert!(
            ps.windows(2).all(|w| w[0] <= w[1]),
            "ranking must be safest-first: {ps:?}"
        );
    }
}
