//! A hand-rolled `std::net` HTTP/1.1 front end for the evaluation
//! service.
//!
//! The workspace is hermetic — no network crates — and the protocol
//! surface the service needs is tiny: `GET` with a query string,
//! `Connection: close` responses, four routes. So the server is ~200
//! lines over [`std::net::TcpListener`]:
//!
//! * `GET /healthz` — liveness probe, `200 ok`;
//! * `GET /evaluate?nodes=..&ppn=..[&iters=..&ck=..&families=table2|full]`
//!   — the ranked scheme comparison (deterministic JSON; `400` on a
//!   malformed query, so a typo never silently returns a default);
//! * `GET /cache` — trace-cache + response-memo counters as JSON;
//! * `GET /metrics` — the full process-global telemetry snapshot.
//!
//! `threads` acceptor workers share the listener (`try_clone`), so slow
//! requests (a cold paper-scale trace takes seconds) don't block health
//! checks. Shutdown is cooperative: flip a flag, then poke one
//! connection per worker to unblock `accept`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hcft_telemetry::Registry;

use crate::request::EvalRequest;
use crate::service::EvalService;

/// Cap on the request head (request line + headers). Anything larger is
/// rejected with `431` — our longest legitimate request line is well
/// under 200 bytes.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout: a stalled client cannot pin an
/// acceptor worker forever.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A running evaluation server. Dropping the handle without calling
/// [`Server::shutdown`] leaves the acceptor threads serving until the
/// process exits (the always-on mode); `shutdown` stops them cleanly.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, unblock and join every worker. In-flight
    /// requests finish first (workers check the flag between
    /// connections).
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        for _ in 0..self.workers.len() {
            // Wake a worker blocked in accept(); the connection is
            // closed immediately once the flag is seen.
            let _ = TcpStream::connect(self.addr);
        }
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `svc` on `threads`
/// acceptor workers (minimum 1).
pub fn serve(
    addr: impl ToSocketAddrs,
    svc: Arc<EvalService>,
    threads: usize,
) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let requests = Registry::global().counter("service.http.requests");
    let errors = Registry::global().counter("service.http.errors");
    let workers = (0..threads.max(1))
        .map(|i| {
            let listener = listener.try_clone().expect("clone listener");
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            let requests = Arc::clone(&requests);
            let errors = Arc::clone(&errors);
            std::thread::Builder::new()
                .name(format!("hcft-http-{i}"))
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let (stream, _) = match listener.accept() {
                            Ok(conn) => conn,
                            Err(_) => continue,
                        };
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        requests.inc();
                        if handle_connection(stream, &svc).is_err() {
                            errors.inc();
                        }
                    }
                })
                .expect("spawn http worker")
        })
        .collect();
    Ok(Server {
        addr,
        stop,
        workers,
    })
}

fn handle_connection(mut stream: TcpStream, svc: &EvalService) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let timer = std::time::Instant::now();

    let head = match read_head(&mut stream) {
        Ok(head) => head,
        Err(status) => return write_response(&mut stream, status, "text/plain", status),
    };
    let (status, content_type, body) = route(&head, svc);
    let r = write_response(&mut stream, status, content_type, &body);
    Registry::global()
        .histogram("service.http.latency_ns")
        .observe(u64::try_from(timer.elapsed().as_nanos()).unwrap_or(u64::MAX));
    r
}

/// Read until the blank line ending the request head; reject oversized
/// or abruptly closed requests.
fn read_head(stream: &mut TcpStream) -> Result<String, &'static str> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err("431 Request Header Fields Too Large");
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err("400 Bad Request"),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err("408 Request Timeout"),
        }
    }
    String::from_utf8(buf).map_err(|_| "400 Bad Request")
}

/// Dispatch a parsed head to a route. Returns
/// `(status line, content type, body)`.
fn route(head: &str, svc: &EvalService) -> (&'static str, &'static str, String) {
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => {
            return (
                "400 Bad Request",
                "text/plain",
                "malformed request line\n".into(),
            )
        }
    };
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n".into(),
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/healthz" => ("200 OK", "text/plain", "ok\n".into()),
        "/metrics" => (
            "200 OK",
            "application/json",
            Registry::global().snapshot().to_json() + "\n",
        ),
        "/cache" => ("200 OK", "application/json", cache_stats(svc)),
        "/evaluate" => match EvalRequest::from_query(query).and_then(|r| svc.evaluate(&r)) {
            Ok(body) => ("200 OK", "application/json", (*body).clone()),
            Err(e) => ("400 Bad Request", "text/plain", format!("{e}\n")),
        },
        _ => (
            "404 Not Found",
            "text/plain",
            "routes: /healthz /evaluate /cache /metrics\n".into(),
        ),
    }
}

fn cache_stats(svc: &EvalService) -> String {
    let (hits, misses, evictions) = svc.trace_cache().stats();
    let (memo_hits, memo_misses) = svc.memo_stats();
    format!(
        "{{\"trace\": {{\"hits\": {hits}, \"misses\": {misses}, \"evictions\": {evictions}, \
         \"entries\": {}, \"capacity\": {}, \"bytes\": {}}}, \
         \"memo\": {{\"hits\": {memo_hits}, \"misses\": {memo_misses}}}}}\n",
        svc.trace_cache().len(),
        svc.trace_cache().capacity(),
        svc.trace_cache().resident_bytes()
    )
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn get(addr: SocketAddr, target: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("complete response");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_routes_end_to_end() {
        let svc = Arc::new(EvalService::new(4, 4));
        let server = serve("127.0.0.1:0", Arc::clone(&svc), 2).unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, body) = get(addr, "/evaluate?nodes=2&ppn=2");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"ranking\": ["), "{body}");

        // Warm request: byte-identical body.
        let (_, warm) = get(addr, "/evaluate?nodes=2&ppn=2");
        assert_eq!(body, warm, "warm response must be byte-identical");

        let (head, cache) = get(addr, "/cache");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(cache.contains("\"trace\""), "{cache}");

        let (head, metrics) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(metrics.contains("service.memo.hits"), "{metrics}");

        let (head, _) = get(addr, "/evaluate?nodes=2&ppn=2&bogus=1");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.shutdown();
        // After shutdown nothing is listening any more.
        assert!(
            TcpStream::connect(addr).is_err() || {
                // A racing TIME_WAIT accept can still connect; reads then
                // see EOF instead of a response.
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_millis(500)))
                    .unwrap();
                let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
                let mut line = String::new();
                std::io::BufReader::new(&mut s)
                    .read_line(&mut line)
                    .map(|n| n == 0)
                    .unwrap_or(true)
            }
        );
    }

    #[test]
    fn rejects_non_get_methods() {
        let svc = Arc::new(EvalService::new(2, 2));
        let server = serve("127.0.0.1:0", svc, 1).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"POST /evaluate HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        server.shutdown();
    }
}
