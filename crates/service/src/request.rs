//! Evaluation-request parsing: query string → validated job config +
//! family selection.

use hcft_core::{SchemeFamilySpec, TracedJobConfig};
use hcft_telemetry::HcftError;

/// Which strategy-family grid a request sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FamilySelect {
    /// The Table II comparison: the four paper schemes at their classic
    /// sizes plus one striped entrant where the layout divides evenly.
    Table2,
    /// The full family grid for the layout: per-family cluster-size
    /// sweeps, striped L1×L2 combinations, hierarchical bound grids.
    Full,
}

impl FamilySelect {
    /// The query-string spelling (`families=` value).
    pub fn as_str(&self) -> &'static str {
        match self {
            FamilySelect::Table2 => "table2",
            FamilySelect::Full => "full",
        }
    }

    /// Parse a `families=` value.
    pub fn parse(s: &str) -> Result<Self, HcftError> {
        match s {
            "table2" => Ok(FamilySelect::Table2),
            "full" | "all" => Ok(FamilySelect::Full),
            other => Err(HcftError::Config(format!(
                "families must be table2|full, got {other:?}"
            ))),
        }
    }
}

/// One parsed `/evaluate` request: the machine shape and job cadence to
/// trace, and the family grid to rank. Parsing is strict — unknown or
/// repeated keys are errors, so a typoed parameter can never silently
/// fall back to a default and return the wrong comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalRequest {
    /// Compute nodes (required: `nodes=`).
    pub nodes: usize,
    /// Application ranks per node (required: `ppn=`).
    pub ppn: usize,
    /// Solver iterations (`iters=`, default: the builder's preset).
    pub iterations: Option<u64>,
    /// Checkpoint cadence in iterations (`ck=`, default: preset).
    pub checkpoint_every: Option<u64>,
    /// Family grid to sweep (`families=`, default `table2`).
    pub families: FamilySelect,
}

impl EvalRequest {
    /// Parse the query-string part of `GET /evaluate?...`.
    pub fn from_query(query: &str) -> Result<Self, HcftError> {
        let mut nodes: Option<usize> = None;
        let mut ppn: Option<usize> = None;
        let mut iterations: Option<u64> = None;
        let mut checkpoint_every: Option<u64> = None;
        let mut families: Option<FamilySelect> = None;

        for pair in query.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').ok_or_else(|| {
                HcftError::Config(format!("query parameter {pair:?} is not key=value"))
            })?;
            fn int<T: std::str::FromStr>(k: &str, v: &str) -> Result<T, HcftError> {
                v.parse()
                    .map_err(|_| HcftError::Config(format!("{k}={v:?} is not a valid integer")))
            }
            fn once<T>(k: &str, slot: &mut Option<T>, v: T) -> Result<(), HcftError> {
                if slot.is_some() {
                    return Err(HcftError::Config(format!("duplicate query parameter {k}")));
                }
                *slot = Some(v);
                Ok(())
            }
            match k {
                "nodes" => once(k, &mut nodes, int(k, v)?)?,
                "ppn" => once(k, &mut ppn, int(k, v)?)?,
                "iters" => once(k, &mut iterations, int(k, v)?)?,
                "ck" => once(k, &mut checkpoint_every, int(k, v)?)?,
                "families" => once(k, &mut families, FamilySelect::parse(v)?)?,
                other => {
                    return Err(HcftError::Config(format!(
                    "unknown query parameter {other:?} (expected nodes, ppn, iters, ck, families)"
                )))
                }
            }
        }

        let nodes =
            nodes.ok_or_else(|| HcftError::Config("missing required parameter nodes".into()))?;
        let ppn = ppn.ok_or_else(|| HcftError::Config("missing required parameter ppn".into()))?;
        Ok(EvalRequest {
            nodes,
            ppn,
            iterations,
            checkpoint_every,
            families: families.unwrap_or(FamilySelect::Table2),
        })
    }

    /// The traced-job configuration this request resolves to (runtime
    /// knobs at their defaults — they never change the traced bytes).
    pub fn job_config(&self) -> Result<TracedJobConfig, HcftError> {
        let mut b = TracedJobConfig::builder(self.nodes, self.ppn);
        if let Some(it) = self.iterations {
            b = b.iterations(it);
        }
        if let Some(ck) = self.checkpoint_every {
            b = b.checkpoint_every(ck);
        }
        b.build()
    }

    /// The family grid this request sweeps.
    pub fn family_spec(&self) -> SchemeFamilySpec {
        match self.families {
            FamilySelect::Table2 => SchemeFamilySpec::table2(self.nodes, self.ppn),
            FamilySelect::Full => SchemeFamilySpec::for_layout(self.nodes, self.ppn),
        }
    }

    /// The response-memo key: the trace-cache canonical form extended
    /// with the family selection (two requests with equal keys are
    /// guaranteed byte-identical responses).
    pub fn memo_key(&self) -> Result<String, HcftError> {
        Ok(format!(
            "{};families={}",
            self.job_config()?.to_canonical(),
            self.families.as_str()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_query() {
        let r = EvalRequest::from_query("nodes=64&ppn=16&iters=100&ck=25&families=full").unwrap();
        assert_eq!(r.nodes, 64);
        assert_eq!(r.ppn, 16);
        assert_eq!(r.iterations, Some(100));
        assert_eq!(r.checkpoint_every, Some(25));
        assert_eq!(r.families, FamilySelect::Full);
    }

    #[test]
    fn defaults_families_to_table2() {
        let r = EvalRequest::from_query("nodes=4&ppn=2").unwrap();
        assert_eq!(r.families, FamilySelect::Table2);
        assert_eq!(r.iterations, None);
    }

    #[test]
    fn rejects_unknown_duplicate_and_missing_parameters() {
        assert!(EvalRequest::from_query("nodes=4&ppn=2&bogus=1").is_err());
        assert!(EvalRequest::from_query("nodes=4&nodes=8&ppn=2").is_err());
        assert!(EvalRequest::from_query("ppn=2").is_err());
        assert!(EvalRequest::from_query("nodes=four&ppn=2").is_err());
        assert!(EvalRequest::from_query("nodes=4&ppn=2&families=best").is_err());
    }

    #[test]
    fn memo_key_separates_family_selection() {
        let t2 = EvalRequest::from_query("nodes=4&ppn=2").unwrap();
        let full = EvalRequest::from_query("nodes=4&ppn=2&families=full").unwrap();
        assert_ne!(t2.memo_key().unwrap(), full.memo_key().unwrap());
        // Same shape, same selection, spelled differently → same key.
        let t2b = EvalRequest::from_query("ppn=2&nodes=4&families=table2").unwrap();
        assert_eq!(t2.memo_key().unwrap(), t2b.memo_key().unwrap());
    }
}
