//! The always-on evaluation service.
//!
//! Everything before this crate answered "which clustering should this
//! machine + application use?" as a batch run: trace the job, score the
//! schemes, print Table II, exit. This crate turns that question into a
//! long-running HTTP service so a scheduler (or a person with `curl`)
//! can ask it continuously:
//!
//! ```text
//! GET /evaluate?nodes=64&ppn=16&families=table2
//! ```
//!
//! returns the ranked scheme comparison for that machine shape as
//! deterministic JSON. Three layers make it fast and repeatable:
//!
//! * the **trace cache** ([`hcft_core::trace_cache::TraceCache`]):
//!   tracing the communication matrix dominates a cold request by ~20×;
//!   results are cached behind `Arc` keyed by the stable
//!   [`TracedJobConfig::content_hash`](hcft_core::TracedJobConfig::content_hash),
//!   with single-flight coalescing and deterministic LRU eviction;
//! * the **family fan-out**
//!   ([`hcft_core::evaluate_family_sweep`]): each request scores every
//!   applicable strategy-family configuration concurrently over rayon
//!   with order-preserving folds, so the response bytes are identical at
//!   any thread count;
//! * the **response memo** ([`EvalService`]): a fully-warm request
//!   (same shape, same family selection) returns the memoized rendered
//!   response without recomputing the sweep.
//!
//! The HTTP layer ([`http`]) is a hand-rolled `std::net` HTTP/1.1
//! server — the workspace is hermetic (no network crates), and the
//! protocol surface needed (GET + query string, `Connection: close`) is
//! tiny. See DESIGN.md §19 for the architecture.

pub mod http;
pub mod request;
pub mod service;

pub use http::{serve, Server};
pub use request::{EvalRequest, FamilySelect};
pub use service::EvalService;
