//! GF(2⁸) arithmetic.
//!
//! Field elements are bytes; addition is XOR; multiplication is modulo
//! the primitive polynomial `x⁸ + x⁴ + x³ + x² + 1` (0x11d), the same
//! choice as classic Reed–Solomon storage systems. A doubled exponent
//! table makes `mul` branch-free, and a full 64 KiB multiplication table
//! serves the hot encode loops.

use std::sync::OnceLock;

/// Primitive polynomial for the field (with the x⁸ term).
pub const POLY: u16 = 0x11d;

struct Tables {
    /// exp[i] = generator^i, doubled to 512 entries so `exp[a+b]` needs no
    /// modular reduction.
    exp: [u8; 512],
    /// log[x] = discrete log of x (log\[0\] unused).
    log: [u16; 256],
    /// Full product table `mul[a][b]`.
    mul: Vec<[u8; 256]>,
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().take(255).enumerate() {
            *e = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        // Double the table: exp[255 + i] = exp[i] (and two wrap bytes).
        let (head, tail) = exp.split_at_mut(255);
        tail[..255].copy_from_slice(head);
        tail[255..].copy_from_slice(&head[..2]);
        let mut mul = vec![[0u8; 256]; 256];
        for (a, row) in mul.iter_mut().enumerate() {
            if a == 0 {
                continue;
            }
            for (b, cell) in row.iter_mut().enumerate() {
                if b != 0 {
                    *cell = exp[(log[a] + log[b]) as usize];
                }
            }
        }
        Tables { exp, log, mul }
    })
}

/// Field addition (== subtraction).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    tables().mul[a as usize][b as usize]
}

/// The 256-entry row of products `a·x` — the hot-loop lookup used by the
/// shard encoder.
#[inline]
pub fn mul_row(a: u8) -> &'static [u8; 256] {
    &tables().mul[a as usize]
}

/// Multiplicative inverse.
///
/// # Panics
/// Panics on zero, which has no inverse.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    let t = tables();
    t.exp[(255 - t.log[a as usize]) as usize]
}

/// Field division `a / b`.
///
/// # Panics
/// Panics when `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    t.exp[(t.log[a as usize] + 255 - t.log[b as usize]) as usize]
}

/// Exponentiation `a^n`.
pub fn pow(a: u8, n: u64) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let t = tables();
    let e = (t.log[a as usize] as u64 * (n % 255)) % 255;
    t.exp[e as usize]
}

/// XOR-accumulate `coeff · src` into `dst` (the SPMV kernel of encoding).
///
/// Dispatches to the fastest [`crate::kernel::Kernel`] detected for this
/// CPU (SSSE3/AVX2 `pshufb` when present, a `u64`-wide nibble-table path
/// otherwise). Override with `HCFT_GF_KERNEL`.
#[inline]
pub fn mul_acc(dst: &mut [u8], src: &[u8], coeff: u8) {
    crate::kernel::active().mul_acc(dst, src, coeff);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generator_has_full_order() {
        // Powers of the generator must enumerate all 255 non-zero elements.
        let mut seen = [false; 256];
        for i in 0..255 {
            let v = pow(2, i);
            assert!(!seen[v as usize], "generator order < 255");
            seen[v as usize] = true;
        }
        assert!(!seen[0]);
    }

    #[test]
    fn known_products() {
        // 2·128 = 256 ≡ 0x11d ⊕ 0x100 = 0x1d under the 0x11d polynomial.
        assert_eq!(mul(2, 128), 0x1d);
        assert_eq!(mul(1, 0xAB), 0xAB);
        assert_eq!(mul(0, 0xAB), 0);
        assert_eq!(mul(inv(0x53), 0x53), 1);
    }

    #[test]
    fn mul_acc_matches_scalar_loop() {
        let src: Vec<u8> = (0..=255).collect();
        let mut dst = vec![0xAAu8; 256];
        let mut expect = dst.clone();
        mul_acc(&mut dst, &src, 0x37);
        for (e, &s) in expect.iter_mut().zip(&src) {
            *e ^= mul(0x37, s);
        }
        assert_eq!(dst, expect);
    }

    #[test]
    fn mul_acc_identity_and_zero() {
        let src = vec![7u8, 9, 11];
        let mut dst = vec![1u8, 2, 3];
        mul_acc(&mut dst, &src, 0);
        assert_eq!(dst, vec![1, 2, 3]);
        mul_acc(&mut dst, &src, 1);
        assert_eq!(dst, vec![6, 11, 8]);
    }

    proptest! {
        #[test]
        fn addition_is_own_inverse(a: u8, b: u8) {
            prop_assert_eq!(add(add(a, b), b), a);
        }

        #[test]
        fn multiplication_commutes(a: u8, b: u8) {
            prop_assert_eq!(mul(a, b), mul(b, a));
        }

        #[test]
        fn multiplication_associates(a: u8, b: u8, c: u8) {
            prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
        }

        #[test]
        fn distributive_law(a: u8, b: u8, c: u8) {
            prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }

        #[test]
        fn inverse_cancels(a in 1u8..=255) {
            prop_assert_eq!(mul(a, inv(a)), 1);
        }

        #[test]
        fn division_inverts_multiplication(a: u8, b in 1u8..=255) {
            prop_assert_eq!(div(mul(a, b), b), a);
        }

        #[test]
        fn pow_matches_repeated_mul(a: u8, n in 0u64..16) {
            let mut acc = 1u8;
            for _ in 0..n {
                acc = mul(acc, a);
            }
            prop_assert_eq!(pow(a, n), acc);
        }
    }
}
