//! Single-parity XOR code — FTI's cheap encoding level.
//!
//! One parity shard equal to the XOR of all data shards; tolerates exactly
//! one erasure. The paper contrasts "bit-wise XOR or Reed–Solomon"
//! encoding complexities (§II-B1); this is the cheap end of that spectrum
//! and the baseline for the encoding-cost ablation bench.

/// XOR erasure code over `k` data shards (+1 parity).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XorCode {
    k: usize,
}

impl XorCode {
    /// A code over `k` data shards.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one data shard");
        XorCode { k }
    }

    /// Data shard count.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Compute the parity shard.
    ///
    /// # Panics
    /// Panics on shard-count or length mismatch.
    pub fn encode(&self, data: &[&[u8]]) -> Vec<u8> {
        crate::kernel::count_dispatch();
        assert_eq!(data.len(), self.k, "expected {} shards", self.k);
        let len = data[0].len();
        assert!(data.iter().all(|d| d.len() == len), "unequal shard sizes");
        let mut parity = vec![0u8; len];
        for shard in data {
            crate::kernel::xor_acc(&mut parity, shard);
        }
        parity
    }

    /// Rebuild the single missing shard in `shards` (k data + 1 parity).
    /// Returns `Err(missing_count)` when more than one shard is absent.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), usize> {
        crate::kernel::count_dispatch();
        assert_eq!(shards.len(), self.k + 1, "expected k+1 shards");
        let missing: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_none()).collect();
        match missing.len() {
            0 => Ok(()),
            1 => {
                let len = shards
                    .iter()
                    .flatten()
                    .next()
                    .expect("k shards present")
                    .len();
                let mut out = vec![0u8; len];
                for s in shards.iter().flatten() {
                    assert_eq!(s.len(), len, "unequal shard sizes");
                    crate::kernel::xor_acc(&mut out, s);
                }
                shards[missing[0]] = Some(out);
                Ok(())
            }
            n => Err(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parity_is_xor() {
        let c = XorCode::new(3);
        let parity = c.encode(&[&[1, 2], &[4, 8], &[16, 32]]);
        assert_eq!(parity, vec![21, 42]);
    }

    #[test]
    fn rebuilds_any_single_loss() {
        let c = XorCode::new(3);
        let data = [vec![9u8, 7], vec![1, 2], vec![255, 0]];
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let parity = c.encode(&refs);
        for lost in 0..4 {
            let mut work: Vec<Option<Vec<u8>>> = data
                .iter()
                .cloned()
                .chain([parity.clone()])
                .map(Some)
                .collect();
            work[lost] = None;
            c.reconstruct(&mut work).expect("one loss");
            let expect: Vec<Vec<u8>> = data.iter().cloned().chain([parity.clone()]).collect();
            for i in 0..4 {
                assert_eq!(work[i].as_ref().expect("rebuilt"), &expect[i]);
            }
        }
    }

    #[test]
    fn two_losses_fail() {
        let c = XorCode::new(2);
        let mut work = vec![None, Some(vec![1u8]), None];
        assert_eq!(c.reconstruct(&mut work), Err(2));
    }

    proptest! {
        #[test]
        fn xor_roundtrip(data in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 16), 1..6), lost_idx: usize)
        {
            let c = XorCode::new(data.len());
            let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
            let parity = c.encode(&refs);
            let mut work: Vec<Option<Vec<u8>>> = data
                .iter()
                .cloned()
                .chain([parity])
                .map(Some)
                .collect();
            let lost = lost_idx % work.len();
            let original = work[lost].clone().expect("present before erase");
            work[lost] = None;
            c.reconstruct(&mut work).expect("single loss");
            prop_assert_eq!(work[lost].as_ref().expect("rebuilt"), &original);
        }
    }
}
