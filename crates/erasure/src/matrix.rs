//! Matrices over GF(256): multiplication, Gauss–Jordan inversion and the
//! Cauchy construction.
//!
//! The systematic generator used by [`crate::rs`] is `[I_k ; C]` where `C`
//! is an `m × k` Cauchy matrix. Every square submatrix of a Cauchy matrix
//! is invertible, which gives the code its MDS property: *any* k of the
//! k+m shards suffice to reconstruct.

use crate::gf256;

/// A dense matrix over GF(256).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GfMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl GfMatrix {
    /// Zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        GfMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Build from a row-major closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> u8) -> Self {
        let mut m = Self::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// `m × k` Cauchy matrix with `x_i = k + i`, `y_j = j` — disjoint
    /// index sets, so every denominator `x_i ⊕ y_j` is non-zero.
    ///
    /// # Panics
    /// Panics if `k + m > 256` (the field runs out of distinct points).
    pub fn cauchy(m: usize, k: usize) -> Self {
        assert!(k + m <= 256, "Cauchy construction needs k+m <= 256");
        Self::from_fn(m, k, |i, j| gf256::inv(((k + i) as u8) ^ (j as u8)))
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v;
    }

    /// Row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul(&self, rhs: &GfMatrix) -> GfMatrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = GfMatrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0 {
                    continue;
                }
                let row = gf256::mul_row(a);
                for c in 0..rhs.cols {
                    let v = out.get(r, c) ^ row[rhs.get(k, c) as usize];
                    out.set(r, c, v);
                }
            }
        }
        out
    }

    /// Stack `self` on top of `below`.
    pub fn vstack(&self, below: &GfMatrix) -> GfMatrix {
        assert_eq!(self.cols, below.cols);
        let mut m = GfMatrix::zero(self.rows + below.rows, self.cols);
        m.data[..self.data.len()].copy_from_slice(&self.data);
        m.data[self.data.len()..].copy_from_slice(&below.data);
        m
    }

    /// Extract the given rows into a new matrix.
    pub fn select_rows(&self, rows: &[usize]) -> GfMatrix {
        let mut m = GfMatrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            let dst = i * self.cols;
            m.data[dst..dst + self.cols].copy_from_slice(self.row(r));
        }
        m
    }

    /// Gauss–Jordan inverse, or `None` if singular.
    pub fn invert(&self) -> Option<GfMatrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = GfMatrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| a.get(r, col) != 0)?;
            if pivot != col {
                for c in 0..n {
                    let (x, y) = (a.get(col, c), a.get(pivot, c));
                    a.set(col, c, y);
                    a.set(pivot, c, x);
                    let (x, y) = (inv.get(col, c), inv.get(pivot, c));
                    inv.set(col, c, y);
                    inv.set(pivot, c, x);
                }
            }
            // Scale the pivot row to 1.
            let p = a.get(col, col);
            let pinv = gf256::inv(p);
            for c in 0..n {
                a.set(col, c, gf256::mul(a.get(col, c), pinv));
                inv.set(col, c, gf256::mul(inv.get(col, c), pinv));
            }
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a.get(r, col);
                if f == 0 {
                    continue;
                }
                for c in 0..n {
                    a.set(r, c, a.get(r, c) ^ gf256::mul(f, a.get(col, c)));
                    inv.set(r, c, inv.get(r, c) ^ gf256::mul(f, inv.get(col, c)));
                }
            }
        }
        Some(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let m = GfMatrix::from_fn(3, 3, |r, c| (r * 3 + c + 1) as u8);
        assert_eq!(m.mul(&GfMatrix::identity(3)), m);
        assert_eq!(GfMatrix::identity(3).mul(&m), m);
    }

    #[test]
    fn cauchy_has_no_zero_entries() {
        let c = GfMatrix::cauchy(8, 16);
        for r in 0..8 {
            for j in 0..16 {
                assert_ne!(c.get(r, j), 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "k+m <= 256")]
    fn cauchy_rejects_oversized_field_use() {
        GfMatrix::cauchy(200, 100);
    }

    #[test]
    fn invert_roundtrip_on_cauchy_square() {
        let c = GfMatrix::cauchy(5, 5);
        let inv = c.invert().expect("Cauchy squares are invertible");
        assert_eq!(c.mul(&inv), GfMatrix::identity(5));
        assert_eq!(inv.mul(&c), GfMatrix::identity(5));
    }

    #[test]
    fn singular_matrix_returns_none() {
        let mut m = GfMatrix::zero(2, 2);
        m.set(0, 0, 3);
        m.set(1, 0, 3); // duplicate rows
        m.set(0, 1, 5);
        m.set(1, 1, 5);
        assert!(m.invert().is_none());
    }

    #[test]
    fn select_rows_and_vstack() {
        let top = GfMatrix::identity(2);
        let bottom = GfMatrix::from_fn(1, 2, |_, c| (c + 7) as u8);
        let stacked = top.vstack(&bottom);
        assert_eq!(stacked.rows(), 3);
        let sel = stacked.select_rows(&[2, 0]);
        assert_eq!(sel.row(0), &[7, 8]);
        assert_eq!(sel.row(1), &[1, 0]);
    }

    proptest! {
        /// The MDS property: any k rows of [I; Cauchy] form an invertible
        /// matrix. This is exactly what reconstruction relies on.
        #[test]
        fn any_k_rows_of_generator_are_invertible(
            k in 1usize..8,
            m in 1usize..8,
            seed: u64,
        ) {
            let gen = GfMatrix::identity(k).vstack(&GfMatrix::cauchy(m, k));
            // Pick k distinct rows pseudo-randomly from the k+m available.
            let mut rows: Vec<usize> = (0..k + m).collect();
            let mut state = seed | 1;
            for i in (1..rows.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                rows.swap(i, j);
            }
            rows.truncate(k);
            let sub = gen.select_rows(&rows);
            prop_assert!(sub.invert().is_some(), "rows {rows:?} not invertible");
        }
    }
}

impl GfMatrix {
    /// Systematic generator derived from a Vandermonde matrix: build the
    /// `(k+m) × k` Vandermonde `V[i][j] = iʲ`, then column-reduce the top
    /// `k × k` block to the identity. The result is `[I_k ; P]` with the
    /// MDS property — the classic Plank construction for Reed–Solomon
    /// diskless checkpointing, provided as an alternative to
    /// [`GfMatrix::cauchy`] (and cross-checked against it in the tests).
    ///
    /// # Panics
    /// Panics if `k + m > 256`.
    pub fn vandermonde_systematic(m: usize, k: usize) -> GfMatrix {
        assert!(k + m <= 256, "Vandermonde construction needs k+m <= 256");
        let rows = k + m;
        let mut v = GfMatrix::from_fn(rows, k, |i, j| crate::gf256::pow(i as u8, j as u64));
        // Column-reduce the top k×k block to identity (column ops keep
        // every square submatrix's invertibility profile).
        for col in 0..k {
            // Pivot: make v[col][col] non-zero by swapping columns.
            if v.get(col, col) == 0 {
                let swap = (col + 1..k)
                    .find(|&c| v.get(col, c) != 0)
                    .expect("Vandermonde top block is invertible");
                for r in 0..rows {
                    let (a, b) = (v.get(r, col), v.get(r, swap));
                    v.set(r, col, b);
                    v.set(r, swap, a);
                }
            }
            // Scale the pivot column.
            let inv = crate::gf256::inv(v.get(col, col));
            for r in 0..rows {
                v.set(r, col, crate::gf256::mul(v.get(r, col), inv));
            }
            // Eliminate the pivot row's other entries column-wise.
            for c in 0..k {
                if c == col {
                    continue;
                }
                let f = v.get(col, c);
                if f == 0 {
                    continue;
                }
                for r in 0..rows {
                    let val = v.get(r, c) ^ crate::gf256::mul(f, v.get(r, col));
                    v.set(r, c, val);
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod vandermonde_tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn top_block_is_identity() {
        let g = GfMatrix::vandermonde_systematic(3, 5);
        for r in 0..5 {
            for c in 0..5 {
                assert_eq!(g.get(r, c), u8::from(r == c), "({r},{c})");
            }
        }
        assert_eq!(g.rows(), 8);
    }

    proptest! {
        /// The MDS property: any k rows of the systematic Vandermonde
        /// generator are invertible — same guarantee as the Cauchy
        /// construction used in production.
        #[test]
        fn any_k_rows_are_invertible(
            k in 1usize..7,
            m in 1usize..6,
            seed: u64,
        ) {
            let gen = GfMatrix::vandermonde_systematic(m, k);
            let mut rows: Vec<usize> = (0..k + m).collect();
            let mut state = seed | 1;
            for i in (1..rows.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                rows.swap(i, j);
            }
            rows.truncate(k);
            let sub = gen.select_rows(&rows);
            prop_assert!(sub.invert().is_some(), "rows {rows:?} not invertible");
        }

        /// Cross-check: data recovered through a Vandermonde generator
        /// equals data recovered through the Cauchy generator (both are
        /// exact, so both must reproduce the original).
        #[test]
        fn vandermonde_and_cauchy_both_recover(
            k in 2usize..5,
            data in proptest::collection::vec(any::<u8>(), 8..24),
        ) {
            let m = 2usize;
            // Chunk `data` into k shards (pad with zeros).
            let shard = data.len().div_ceil(k);
            let shards: Vec<Vec<u8>> = (0..k)
                .map(|i| {
                    let mut s: Vec<u8> =
                        data.iter().skip(i * shard).take(shard).copied().collect();
                    s.resize(shard, 0);
                    s
                })
                .collect();
            for gen in [
                GfMatrix::identity(k).vstack(&GfMatrix::cauchy(m, k)),
                GfMatrix::vandermonde_systematic(m, k),
            ] {
                // Encode: rows k.. are the parity combinations.
                let mut coded: Vec<Vec<u8>> = shards.clone();
                for p in 0..m {
                    let mut out = vec![0u8; shard];
                    for (j, s) in shards.iter().enumerate() {
                        crate::gf256::mul_acc(&mut out, s, gen.get(k + p, j));
                    }
                    coded.push(out);
                }
                // Erase the first two shards; decode from the rest.
                let survivors: Vec<usize> = (2..k + m).collect();
                let sub = gen.select_rows(&survivors[..k]);
                let inv = sub.invert().expect("MDS");
                for (lost, original) in shards.iter().enumerate().take(2usize.min(k)) {
                    let mut rec = vec![0u8; shard];
                    for (i, &row) in survivors[..k].iter().enumerate() {
                        crate::gf256::mul_acc(&mut rec, &coded[row], inv.get(lost, i));
                    }
                    prop_assert_eq!(&rec, original);
                }
            }
        }
    }
}
