//! Erasure codes for diskless checkpointing.
//!
//! FTI (the paper's checkpointing substrate) protects node-local
//! checkpoints with Reed–Solomon parity computed inside each encoding
//! cluster, so that the data of failed nodes can be rebuilt from the
//! survivors. This crate implements the full data path:
//!
//! * [`gf256`] — GF(2⁸) arithmetic (tables over the AES-adjacent
//!   polynomial `x⁸+x⁴+x³+x²+1`);
//! * [`kernel`] — the multiply-accumulate kernels behind the hot loops:
//!   4-bit split tables in scalar `u64` and SSSE3/AVX2 `pshufb` forms,
//!   selected at runtime by CPU feature detection;
//! * [`matrix`] — matrices over the field, Gauss–Jordan inversion and the
//!   Cauchy construction whose every square submatrix is invertible (the
//!   MDS property Reed–Solomon needs);
//! * [`rs`] — systematic Reed–Solomon encode / verify / reconstruct over
//!   byte shards, parallelised with Rayon;
//! * [`xor`] — the single-parity XOR code (FTI's cheaper level);
//! * [`timing`] — the encoding-time model calibrated to the paper
//!   (≈6.4 s per GiB per cluster member: 25 s for clusters of 4,
//!   51 s for 8, 102 s for 16, 204 s for 32 — Fig. 3b / Table II).

pub mod gf256;
pub mod kernel;
pub mod matrix;
pub mod rs;
pub mod timing;
pub mod xor;

pub use kernel::Kernel;
pub use rs::ReedSolomon;
pub use timing::EncodingModel;
pub use xor::XorCode;
