//! Systematic Reed–Solomon coding over byte shards.
//!
//! `ReedSolomon::new(k, m)` protects `k` data shards with `m` parity
//! shards; any `m` erasures are recoverable. In the paper's setting one
//! shard is one process's node-local checkpoint within an encoding (L2)
//! cluster, and FTI's Reed–Solomon configuration tolerates the loss of
//! half the cluster — [`ReedSolomon::fti_for_group`] captures that
//! convention.
//!
//! Encoding is embarrassingly parallel across the byte dimension, so
//! shards are chunked and processed with Rayon — mirroring how FTI
//! overlaps encoding across dedicated per-node processes.

use rayon::prelude::*;

use crate::gf256;
use crate::matrix::GfMatrix;

/// Errors from reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// More shards are missing than the parity count can repair.
    TooManyErasures {
        /// Missing shard count.
        missing: usize,
        /// Parity (maximum repairable) count.
        parity: usize,
    },
    /// Present shards disagree in length.
    ShardSizeMismatch,
    /// The shard vector length does not equal k+m.
    WrongShardCount,
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::TooManyErasures { missing, parity } => write!(
                f,
                "unrecoverable: {missing} shards missing, only {parity} parity"
            ),
            RsError::ShardSizeMismatch => write!(f, "shard sizes differ"),
            RsError::WrongShardCount => write!(f, "shard vector length != k+m"),
        }
    }
}

impl std::error::Error for RsError {}

/// A systematic Reed–Solomon code with `k` data and `m` parity shards.
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// The parity sub-matrix (m × k Cauchy).
    parity_rows: GfMatrix,
}

/// Chunk size for parallel encoding (bytes per task).
const PAR_CHUNK: usize = 64 * 1024;

impl ReedSolomon {
    /// Create a code with `k` data and `m` parity shards.
    ///
    /// # Panics
    /// Panics if `k == 0`, `m == 0` or `k + m > 256`.
    pub fn new(k: usize, m: usize) -> Self {
        assert!(k > 0 && m > 0, "need at least one data and one parity shard");
        assert!(k + m <= 256, "GF(256) supports at most 256 total shards");
        ReedSolomon {
            k,
            m,
            parity_rows: GfMatrix::cauchy(m, k),
        }
    }

    /// FTI's convention for an encoding cluster of `group_size` processes:
    /// tolerate the loss of half the cluster (⌈s/2⌉ parity on ⌊s/2⌋ data).
    pub fn fti_for_group(group_size: usize) -> Self {
        assert!(group_size >= 2, "encoding clusters need >= 2 members");
        let m = group_size.div_ceil(2);
        Self::new(group_size - m, m)
    }

    /// Data shard count.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Parity shard count (= erasure tolerance).
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// Total shard count.
    pub fn total_shards(&self) -> usize {
        self.k + self.m
    }

    /// Compute the `m` parity shards for `data` (must be `k` equal-length
    /// shards).
    ///
    /// # Panics
    /// Panics on shard-count or shard-length mismatch.
    pub fn encode(&self, data: &[&[u8]]) -> Vec<Vec<u8>> {
        assert_eq!(data.len(), self.k, "expected {} data shards", self.k);
        let len = data[0].len();
        assert!(
            data.iter().all(|d| d.len() == len),
            "data shards must have equal length"
        );
        let mut parity = vec![vec![0u8; len]; self.m];
        // Parallelise across the byte dimension: each task owns the same
        // chunk range of every parity shard.
        let chunks: Vec<(usize, usize)> = (0..len)
            .step_by(PAR_CHUNK.max(1))
            .map(|lo| (lo, (lo + PAR_CHUNK).min(len)))
            .collect();
        // Split each parity shard into per-chunk mutable slices.
        let mut parity_slices: Vec<Vec<&mut [u8]>> = Vec::with_capacity(chunks.len());
        {
            let mut rests: Vec<&mut [u8]> = parity.iter_mut().map(|p| &mut p[..]).collect();
            for &(lo, hi) in &chunks {
                let mut row = Vec::with_capacity(self.m);
                let mut new_rests = Vec::with_capacity(self.m);
                for rest in rests {
                    let (head, tail) = rest.split_at_mut(hi - lo);
                    row.push(head);
                    new_rests.push(tail);
                }
                parity_slices.push(row);
                rests = new_rests;
            }
        }
        parity_slices
            .par_iter_mut()
            .zip(&chunks)
            .for_each(|(prow, &(lo, hi))| {
                for (p, pshard) in prow.iter_mut().enumerate() {
                    for (j, dshard) in data.iter().enumerate() {
                        gf256::mul_acc(pshard, &dshard[lo..hi], self.parity_rows.get(p, j));
                    }
                }
            });
        parity
    }

    /// Verify that `shards` (k data followed by m parity, all present and
    /// equal-length) are consistent.
    pub fn verify(&self, shards: &[&[u8]]) -> bool {
        if shards.len() != self.total_shards() {
            return false;
        }
        let parity = self.encode(&shards[..self.k]);
        parity
            .iter()
            .zip(&shards[self.k..])
            .all(|(computed, given)| computed.as_slice() == *given)
    }

    /// Rebuild all missing shards in place. `shards[i]` is `Some(bytes)`
    /// if shard `i` survives (`i < k`: data, `i >= k`: parity).
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), RsError> {
        if shards.len() != self.total_shards() {
            return Err(RsError::WrongShardCount);
        }
        let present: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        let missing: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(());
        }
        if missing.len() > self.m {
            return Err(RsError::TooManyErasures {
                missing: missing.len(),
                parity: self.m,
            });
        }
        let len = shards[present[0]].as_ref().expect("present shard").len();
        if present
            .iter()
            .any(|&i| shards[i].as_ref().expect("present shard").len() != len)
        {
            return Err(RsError::ShardSizeMismatch);
        }
        // Generator matrix [I; C]; take the rows of k surviving shards,
        // invert, and recover the data shards.
        let gen = GfMatrix::identity(self.k).vstack(&self.parity_rows);
        let use_rows = &present[..self.k];
        let sub = gen.select_rows(use_rows);
        let inv = sub.invert().expect("MDS: any k rows are invertible");
        // data[j] = Σ_i inv[j][i] · shard[use_rows[i]]
        let sources: Vec<&[u8]> = use_rows
            .iter()
            .map(|&i| shards[i].as_deref().expect("present shard"))
            .collect();
        let mut data: Vec<Option<Vec<u8>>> = vec![None; self.k];
        let missing_data: Vec<usize> = missing.iter().copied().filter(|&i| i < self.k).collect();
        for &j in &missing_data {
            let mut out = vec![0u8; len];
            for (i, src) in sources.iter().enumerate() {
                gf256::mul_acc(&mut out, src, inv.get(j, i));
            }
            data[j] = Some(out);
        }
        for &j in &missing_data {
            shards[j] = data[j].take();
        }
        // Recompute any missing parity from the (now complete) data.
        if missing.iter().any(|&i| i >= self.k) {
            let data_refs: Vec<&[u8]> = shards[..self.k]
                .iter()
                .map(|s| s.as_deref().expect("data complete"))
                .collect();
            let parity = self.encode(&data_refs);
            for (p, pshard) in parity.into_iter().enumerate() {
                if shards[self.k + p].is_none() {
                    shards[self.k + p] = Some(pshard);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn shards(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|b| ((i * 131 + b * 7 + 3) % 251) as u8).collect())
            .collect()
    }

    #[test]
    fn encode_verify_roundtrip() {
        let rs = ReedSolomon::new(4, 2);
        let data = shards(4, 1000);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let parity = rs.encode(&refs);
        let mut all: Vec<&[u8]> = refs.clone();
        all.extend(parity.iter().map(|p| &p[..]));
        assert!(rs.verify(&all));
    }

    #[test]
    fn verify_detects_corruption() {
        let rs = ReedSolomon::new(3, 2);
        let data = shards(3, 64);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let mut parity = rs.encode(&refs);
        parity[0][10] ^= 0xFF;
        let mut all: Vec<&[u8]> = refs.clone();
        all.extend(parity.iter().map(|p| &p[..]));
        assert!(!rs.verify(&all));
    }

    #[test]
    fn reconstructs_every_single_erasure() {
        let rs = ReedSolomon::new(4, 2);
        let data = shards(4, 200);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let parity = rs.encode(&refs);
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity.iter().cloned()).collect();
        for lost in 0..6 {
            let mut work: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            work[lost] = None;
            rs.reconstruct(&mut work).expect("single erasure");
            for (i, shard) in work.iter().enumerate() {
                assert_eq!(shard.as_ref().expect("rebuilt"), &full[i], "shard {i}");
            }
        }
    }

    #[test]
    fn reconstructs_every_double_erasure() {
        let rs = ReedSolomon::new(4, 2);
        let data = shards(4, 50);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let parity = rs.encode(&refs);
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity.iter().cloned()).collect();
        for a in 0..6 {
            for b in (a + 1)..6 {
                let mut work: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                work[a] = None;
                work[b] = None;
                rs.reconstruct(&mut work).expect("double erasure");
                for (i, shard) in work.iter().enumerate() {
                    assert_eq!(shard.as_ref().expect("rebuilt"), &full[i], "lost {a},{b}");
                }
            }
        }
    }

    #[test]
    fn too_many_erasures_is_an_error() {
        let rs = ReedSolomon::new(4, 2);
        let data = shards(4, 10);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let parity = rs.encode(&refs);
        let mut work: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .chain(parity.iter().cloned())
            .map(Some)
            .collect();
        work[0] = None;
        work[1] = None;
        work[2] = None;
        assert_eq!(
            rs.reconstruct(&mut work),
            Err(RsError::TooManyErasures {
                missing: 3,
                parity: 2
            })
        );
    }

    #[test]
    fn mismatched_sizes_rejected() {
        let rs = ReedSolomon::new(2, 1);
        let mut work = vec![
            Some(vec![1, 2, 3]),
            Some(vec![1, 2]),
            None,
        ];
        assert_eq!(rs.reconstruct(&mut work), Err(RsError::ShardSizeMismatch));
    }

    #[test]
    fn fti_group_tolerates_half() {
        let rs = ReedSolomon::fti_for_group(4);
        assert_eq!(rs.data_shards(), 2);
        assert_eq!(rs.parity_shards(), 2);
        let rs = ReedSolomon::fti_for_group(5);
        assert_eq!(rs.parity_shards(), 3);
        assert_eq!(rs.total_shards(), 5);
    }

    #[test]
    fn large_shards_cross_parallel_chunk_boundary() {
        let rs = ReedSolomon::new(3, 2);
        let data = shards(3, 3 * PAR_CHUNK + 17);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let parity = rs.encode(&refs);
        let mut work: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .chain(parity.iter().cloned())
            .map(Some)
            .collect();
        work[1] = None;
        work[4] = None;
        rs.reconstruct(&mut work).expect("reconstruct large");
        assert_eq!(work[1].as_ref().expect("rebuilt"), &data[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn encode_erase_reconstruct_identity(
            k in 1usize..6,
            m in 1usize..5,
            len in 1usize..300,
            seed: u64,
        ) {
            let rs = ReedSolomon::new(k, m);
            let data: Vec<Vec<u8>> = (0..k)
                .map(|i| {
                    let mut s = seed.wrapping_add(i as u64) | 1;
                    (0..len)
                        .map(|_| {
                            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                            (s >> 56) as u8
                        })
                        .collect()
                })
                .collect();
            let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
            let parity = rs.encode(&refs);
            let full: Vec<Vec<u8>> =
                data.iter().cloned().chain(parity.iter().cloned()).collect();
            // Erase up to m shards chosen by the seed.
            let mut work: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            let mut s = seed | 1;
            let erase = (seed as usize % m) + 1;
            let mut killed = 0;
            while killed < erase {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let idx = (s >> 33) as usize % (k + m);
                if work[idx].is_some() {
                    work[idx] = None;
                    killed += 1;
                }
            }
            rs.reconstruct(&mut work).expect("within tolerance");
            for (i, shard) in work.iter().enumerate() {
                prop_assert_eq!(shard.as_ref().expect("rebuilt"), &full[i]);
            }
        }
    }
}
