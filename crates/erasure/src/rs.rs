//! Systematic Reed–Solomon coding over byte shards.
//!
//! `ReedSolomon::new(k, m)` protects `k` data shards with `m` parity
//! shards; any `m` erasures are recoverable. In the paper's setting one
//! shard is one process's node-local checkpoint within an encoding (L2)
//! cluster, and FTI's Reed–Solomon configuration tolerates the loss of
//! half the cluster — [`ReedSolomon::fti_for_group`] captures that
//! convention.
//!
//! Both encoding and reconstruction are embarrassingly parallel across
//! the byte dimension, so shards are chunked and processed with Rayon —
//! mirroring how FTI overlaps encoding across dedicated per-node
//! processes. Decode matrices (the inverse of the surviving generator
//! rows) are cached per erasure pattern, so repeated recoveries of the
//! same failure shape — the common case in a drill or campaign loop —
//! skip the Gauss–Jordan inversion entirely.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use rayon::prelude::*;

use crate::gf256;
use crate::matrix::GfMatrix;

/// Process-wide mirrors of the per-code decode-cache counters, so the
/// telemetry registry sees aggregate cache behaviour without walking
/// every live `ReedSolomon` instance (`erasure.decode_cache.{hits,misses}`).
fn global_cache_counters() -> &'static (Arc<hcft_telemetry::Counter>, Arc<hcft_telemetry::Counter>)
{
    static HANDLES: OnceLock<(Arc<hcft_telemetry::Counter>, Arc<hcft_telemetry::Counter>)> =
        OnceLock::new();
    HANDLES.get_or_init(|| {
        let reg = hcft_telemetry::Registry::global();
        (
            reg.counter("erasure.decode_cache.hits"),
            reg.counter("erasure.decode_cache.misses"),
        )
    })
}

/// Errors from reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// More shards are missing than the parity count can repair.
    TooManyErasures {
        /// Missing shard count.
        missing: usize,
        /// Parity (maximum repairable) count.
        parity: usize,
    },
    /// Present shards disagree in length.
    ShardSizeMismatch,
    /// The shard vector length does not equal k+m.
    WrongShardCount,
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::TooManyErasures { missing, parity } => write!(
                f,
                "unrecoverable: {missing} shards missing, only {parity} parity"
            ),
            RsError::ShardSizeMismatch => write!(f, "shard sizes differ"),
            RsError::WrongShardCount => write!(f, "shard vector length != k+m"),
        }
    }
}

impl std::error::Error for RsError {}

/// Hit/miss counters for the decode-matrix cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran a fresh Gauss–Jordan inversion.
    pub misses: u64,
}

/// Decode matrices keyed by the surviving-row set, shared by all clones
/// of a code.
#[derive(Debug, Default)]
struct DecodeCache {
    map: Mutex<HashMap<Vec<u8>, Arc<GfMatrix>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A systematic Reed–Solomon code with `k` data and `m` parity shards.
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// The parity sub-matrix (m × k Cauchy).
    parity_rows: GfMatrix,
    /// The full generator `[I; C]` ((k+m) × k), precomputed so
    /// reconstruction never rebuilds it.
    gen: GfMatrix,
    /// Inverted decode matrices per erasure pattern. Clones share it.
    decode_cache: Arc<DecodeCache>,
}

/// Chunk size for parallel encoding/reconstruction (bytes per task).
const PAR_CHUNK: usize = 64 * 1024;

/// Stack-buffer size for the allocation-free verify path.
const VERIFY_CHUNK: usize = 4096;

/// Split each output shard into `PAR_CHUNK`-sized sub-slices and run
/// `body` once per chunk in parallel; each invocation owns the same byte
/// range of every output. This is the one place that does the
/// `split_at_mut` scaffolding for both encode and reconstruct.
fn par_chunks_of<F>(outputs: Vec<&mut [u8]>, body: F)
where
    F: Fn(usize, &mut [&mut [u8]]) + Send + Sync,
{
    let len = outputs.first().map(|o| o.len()).unwrap_or(0);
    debug_assert!(outputs.iter().all(|o| o.len() == len));
    if len == 0 || outputs.is_empty() {
        return;
    }
    let starts: Vec<usize> = (0..len).step_by(PAR_CHUNK).collect();
    let mut rows: Vec<(usize, Vec<&mut [u8]>)> = Vec::with_capacity(starts.len());
    let mut rests = outputs;
    for &lo in &starts {
        let take = PAR_CHUNK.min(len - lo);
        let mut row = Vec::with_capacity(rests.len());
        let mut next = Vec::with_capacity(rests.len());
        for rest in rests {
            let (head, tail) = rest.split_at_mut(take);
            row.push(head);
            next.push(tail);
        }
        rows.push((lo, row));
        rests = next;
    }
    rows.par_iter_mut()
        .for_each(|(lo, row)| body(*lo, &mut row[..]));
}

/// XOR-accumulate the matrix product `coeff · sources` into `outputs`
/// (which the caller has zeroed), chunked and parallel:
/// `outputs[r] ^= Σ_j coeff(r, j) · sources[j]`.
fn accumulate_products<C>(sources: &[&[u8]], outputs: Vec<&mut [u8]>, coeff: C)
where
    C: Fn(usize, usize) -> u8 + Send + Sync,
{
    par_chunks_of(outputs, |lo, outs| {
        for (r, out) in outs.iter_mut().enumerate() {
            for (j, src) in sources.iter().enumerate() {
                gf256::mul_acc(out, &src[lo..lo + out.len()], coeff(r, j));
            }
        }
    });
}

impl ReedSolomon {
    /// Create a code with `k` data and `m` parity shards.
    ///
    /// # Panics
    /// Panics if `k == 0`, `m == 0` or `k + m > 256`.
    pub fn new(k: usize, m: usize) -> Self {
        assert!(
            k > 0 && m > 0,
            "need at least one data and one parity shard"
        );
        assert!(k + m <= 256, "GF(256) supports at most 256 total shards");
        let parity_rows = GfMatrix::cauchy(m, k);
        let gen = GfMatrix::identity(k).vstack(&parity_rows);
        ReedSolomon {
            k,
            m,
            parity_rows,
            gen,
            decode_cache: Arc::new(DecodeCache::default()),
        }
    }

    /// FTI's convention for an encoding cluster of `group_size` processes:
    /// tolerate the loss of half the cluster (⌈s/2⌉ parity on ⌊s/2⌋ data).
    pub fn fti_for_group(group_size: usize) -> Self {
        assert!(group_size >= 2, "encoding clusters need >= 2 members");
        let m = group_size.div_ceil(2);
        Self::new(group_size - m, m)
    }

    /// Data shard count.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Parity shard count (= erasure tolerance).
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// Total shard count.
    pub fn total_shards(&self) -> usize {
        self.k + self.m
    }

    /// Compute the `m` parity shards for `data` (must be `k` equal-length
    /// shards), allocating the outputs. Loops that encode repeatedly
    /// should hold scratch buffers and call [`ReedSolomon::encode_into`].
    ///
    /// # Panics
    /// Panics on shard-count or shard-length mismatch.
    pub fn encode(&self, data: &[&[u8]]) -> Vec<Vec<u8>> {
        let len = data.first().map(|d| d.len()).unwrap_or(0);
        let mut parity = vec![vec![0u8; len]; self.m];
        {
            let outs: Vec<&mut [u8]> = parity.iter_mut().map(|p| &mut p[..]).collect();
            self.encode_into(data, outs);
        }
        parity
    }

    /// Compute parity into caller-owned buffers (overwritten, so they can
    /// be reused round after round without reallocating).
    ///
    /// # Panics
    /// Panics when `data` is not `k` equal-length shards or `parity` is
    /// not `m` buffers of the same length.
    pub fn encode_into(&self, data: &[&[u8]], parity: Vec<&mut [u8]>) {
        crate::kernel::count_dispatch();
        assert_eq!(data.len(), self.k, "expected {} data shards", self.k);
        let len = data[0].len();
        assert!(
            data.iter().all(|d| d.len() == len),
            "data shards must have equal length"
        );
        assert_eq!(parity.len(), self.m, "expected {} parity buffers", self.m);
        assert!(
            parity.iter().all(|p| p.len() == len),
            "parity buffers must match the data shard length"
        );
        let mut parity = parity;
        for p in &mut parity {
            p.fill(0);
        }
        accumulate_products(data, parity, |p, j| self.parity_rows.get(p, j));
    }

    /// Verify that `shards` (k data followed by m parity, all present and
    /// equal-length) are consistent.
    ///
    /// Runs chunk-wise over a fixed stack buffer — no heap allocation —
    /// and returns at the first mismatching chunk.
    pub fn verify(&self, shards: &[&[u8]]) -> bool {
        crate::kernel::count_dispatch();
        if shards.len() != self.total_shards() {
            return false;
        }
        let len = shards[0].len();
        if shards.iter().any(|s| s.len() != len) {
            return false;
        }
        let (data, parity) = shards.split_at(self.k);
        let mut buf = [0u8; VERIFY_CHUNK];
        let mut lo = 0;
        while lo < len {
            let n = VERIFY_CHUNK.min(len - lo);
            for (p, given) in parity.iter().enumerate() {
                let out = &mut buf[..n];
                out.fill(0);
                for (j, d) in data.iter().enumerate() {
                    gf256::mul_acc(out, &d[lo..lo + n], self.parity_rows.get(p, j));
                }
                if *out != given[lo..lo + n] {
                    return false;
                }
            }
            lo += n;
        }
        true
    }

    /// The inverse of the generator rows in `use_rows` (the k surviving
    /// shards), from the cache when this erasure pattern has been seen.
    fn decode_matrix(&self, use_rows: &[usize]) -> Arc<GfMatrix> {
        let key: Vec<u8> = use_rows.iter().map(|&i| i as u8).collect();
        {
            let map = self.decode_cache.map.lock().expect("cache lock");
            if let Some(m) = map.get(&key) {
                self.decode_cache.hits.fetch_add(1, Ordering::Relaxed);
                global_cache_counters().0.inc();
                return Arc::clone(m);
            }
        }
        self.decode_cache.misses.fetch_add(1, Ordering::Relaxed);
        global_cache_counters().1.inc();
        let inv = self
            .gen
            .select_rows(use_rows)
            .invert()
            .expect("MDS: any k rows are invertible");
        let inv = Arc::new(inv);
        self.decode_cache
            .map
            .lock()
            .expect("cache lock")
            .insert(key, Arc::clone(&inv));
        inv
    }

    /// Decode-matrix cache counters (shared across clones of this code).
    pub fn decode_cache_stats(&self) -> DecodeCacheStats {
        DecodeCacheStats {
            hits: self.decode_cache.hits.load(Ordering::Relaxed),
            misses: self.decode_cache.misses.load(Ordering::Relaxed),
        }
    }

    /// Rebuild all missing shards in place. `shards[i]` is `Some(bytes)`
    /// if shard `i` survives (`i < k`: data, `i >= k`: parity).
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), RsError> {
        crate::kernel::count_dispatch();
        if shards.len() != self.total_shards() {
            return Err(RsError::WrongShardCount);
        }
        let present: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        let missing: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(());
        }
        if missing.len() > self.m {
            return Err(RsError::TooManyErasures {
                missing: missing.len(),
                parity: self.m,
            });
        }
        let len = shards[present[0]].as_ref().expect("present shard").len();
        if present
            .iter()
            .any(|&i| shards[i].as_ref().expect("present shard").len() != len)
        {
            return Err(RsError::ShardSizeMismatch);
        }
        let missing_data: Vec<usize> = missing.iter().copied().filter(|&i| i < self.k).collect();
        let missing_parity: Vec<usize> = missing.iter().copied().filter(|&i| i >= self.k).collect();
        // data[j] = Σ_i inv[j][i] · shard[use_rows[i]], for the missing j.
        if !missing_data.is_empty() {
            let use_rows = &present[..self.k];
            let inv = self.decode_matrix(use_rows);
            let mut rebuilt = vec![vec![0u8; len]; missing_data.len()];
            {
                let sources: Vec<&[u8]> = use_rows
                    .iter()
                    .map(|&i| shards[i].as_deref().expect("present shard"))
                    .collect();
                let outs: Vec<&mut [u8]> = rebuilt.iter_mut().map(|v| &mut v[..]).collect();
                accumulate_products(&sources, outs, |r, i| inv.get(missing_data[r], i));
            }
            for (&j, buf) in missing_data.iter().zip(rebuilt) {
                shards[j] = Some(buf);
            }
        }
        // Recompute just the missing parity rows from the complete data.
        if !missing_parity.is_empty() {
            let mut rebuilt = vec![vec![0u8; len]; missing_parity.len()];
            {
                let sources: Vec<&[u8]> = shards[..self.k]
                    .iter()
                    .map(|s| s.as_deref().expect("data complete"))
                    .collect();
                let outs: Vec<&mut [u8]> = rebuilt.iter_mut().map(|v| &mut v[..]).collect();
                accumulate_products(&sources, outs, |r, j| {
                    self.parity_rows.get(missing_parity[r] - self.k, j)
                });
            }
            for (&p, buf) in missing_parity.iter().zip(rebuilt) {
                shards[p] = Some(buf);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn shards(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|b| ((i * 131 + b * 7 + 3) % 251) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn encode_verify_roundtrip() {
        let rs = ReedSolomon::new(4, 2);
        let data = shards(4, 1000);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let parity = rs.encode(&refs);
        let mut all: Vec<&[u8]> = refs.clone();
        all.extend(parity.iter().map(|p| &p[..]));
        assert!(rs.verify(&all));
    }

    #[test]
    fn encode_into_reuses_scratch() {
        let rs = ReedSolomon::new(3, 2);
        let mut scratch = vec![vec![0xEEu8; 500]; 2];
        for round in 0..3 {
            let data = shards(3, 500)
                .into_iter()
                .map(|mut d| {
                    d[0] ^= round as u8;
                    d
                })
                .collect::<Vec<_>>();
            let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
            let outs: Vec<&mut [u8]> = scratch.iter_mut().map(|p| &mut p[..]).collect();
            rs.encode_into(&refs, outs);
            assert_eq!(rs.encode(&refs), scratch, "round {round}");
        }
    }

    #[test]
    fn verify_detects_corruption() {
        let rs = ReedSolomon::new(3, 2);
        let data = shards(3, 64);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let mut parity = rs.encode(&refs);
        parity[0][10] ^= 0xFF;
        let mut all: Vec<&[u8]> = refs.clone();
        all.extend(parity.iter().map(|p| &p[..]));
        assert!(!rs.verify(&all));
    }

    #[test]
    fn verify_detects_corruption_past_first_chunk() {
        let rs = ReedSolomon::new(2, 2);
        let len = VERIFY_CHUNK * 2 + 37;
        let data = shards(2, len);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let mut parity = rs.encode(&refs);
        // Flip a byte in the last partial chunk of the last parity shard.
        parity[1][len - 1] ^= 0x01;
        let mut all: Vec<&[u8]> = refs.clone();
        all.extend(parity.iter().map(|p| &p[..]));
        assert!(!rs.verify(&all));
    }

    #[test]
    fn reconstructs_every_single_erasure() {
        let rs = ReedSolomon::new(4, 2);
        let data = shards(4, 200);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let parity = rs.encode(&refs);
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity.iter().cloned()).collect();
        for lost in 0..6 {
            let mut work: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            work[lost] = None;
            rs.reconstruct(&mut work).expect("single erasure");
            for (i, shard) in work.iter().enumerate() {
                assert_eq!(shard.as_ref().expect("rebuilt"), &full[i], "shard {i}");
            }
        }
    }

    #[test]
    fn reconstructs_every_double_erasure() {
        let rs = ReedSolomon::new(4, 2);
        let data = shards(4, 50);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let parity = rs.encode(&refs);
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity.iter().cloned()).collect();
        for a in 0..6 {
            for b in (a + 1)..6 {
                let mut work: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                work[a] = None;
                work[b] = None;
                rs.reconstruct(&mut work).expect("double erasure");
                for (i, shard) in work.iter().enumerate() {
                    assert_eq!(shard.as_ref().expect("rebuilt"), &full[i], "lost {a},{b}");
                }
            }
        }
    }

    #[test]
    fn repeated_same_pattern_reconstruction_hits_the_cache() {
        let rs = ReedSolomon::new(6, 2);
        let data = shards(6, 128);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let parity = rs.encode(&refs);
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity.iter().cloned()).collect();
        for round in 0..5 {
            let mut work: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            work[2] = None;
            rs.reconstruct(&mut work).expect("single erasure");
            assert_eq!(
                work[2].as_ref().expect("rebuilt"),
                &full[2],
                "round {round}"
            );
        }
        let stats = rs.decode_cache_stats();
        assert_eq!(stats.misses, 1, "one inversion for the repeated pattern");
        assert_eq!(stats.hits, 4, "subsequent rounds reuse the cache");
        // A different pattern misses once more.
        let mut work: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        work[3] = None;
        rs.reconstruct(&mut work).expect("single erasure");
        assert_eq!(rs.decode_cache_stats().misses, 2);
    }

    #[test]
    fn clones_share_the_decode_cache() {
        let rs = ReedSolomon::new(4, 2);
        let data = shards(4, 64);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let parity = rs.encode(&refs);
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity.iter().cloned()).collect();
        let mut work: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        work[1] = None;
        rs.reconstruct(&mut work).expect("erasure");
        let rs2 = rs.clone();
        let mut work: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        work[1] = None;
        rs2.reconstruct(&mut work).expect("erasure");
        assert_eq!(rs2.decode_cache_stats().hits, 1, "clone reused the cache");
    }

    #[test]
    fn too_many_erasures_is_an_error() {
        let rs = ReedSolomon::new(4, 2);
        let data = shards(4, 10);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let parity = rs.encode(&refs);
        let mut work: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .chain(parity.iter().cloned())
            .map(Some)
            .collect();
        work[0] = None;
        work[1] = None;
        work[2] = None;
        assert_eq!(
            rs.reconstruct(&mut work),
            Err(RsError::TooManyErasures {
                missing: 3,
                parity: 2
            })
        );
    }

    #[test]
    fn mismatched_sizes_rejected() {
        let rs = ReedSolomon::new(2, 1);
        let mut work = vec![Some(vec![1, 2, 3]), Some(vec![1, 2]), None];
        assert_eq!(rs.reconstruct(&mut work), Err(RsError::ShardSizeMismatch));
    }

    #[test]
    fn fti_group_tolerates_half() {
        let rs = ReedSolomon::fti_for_group(4);
        assert_eq!(rs.data_shards(), 2);
        assert_eq!(rs.parity_shards(), 2);
        let rs = ReedSolomon::fti_for_group(5);
        assert_eq!(rs.parity_shards(), 3);
        assert_eq!(rs.total_shards(), 5);
    }

    #[test]
    fn large_shards_cross_parallel_chunk_boundary() {
        let rs = ReedSolomon::new(3, 2);
        let data = shards(3, 3 * PAR_CHUNK + 17);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let parity = rs.encode(&refs);
        let mut work: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .chain(parity.iter().cloned())
            .map(Some)
            .collect();
        work[1] = None;
        work[4] = None;
        rs.reconstruct(&mut work).expect("reconstruct large");
        assert_eq!(work[1].as_ref().expect("rebuilt"), &data[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn encode_erase_reconstruct_identity(
            k in 1usize..6,
            m in 1usize..5,
            len in 1usize..300,
            seed: u64,
        ) {
            let rs = ReedSolomon::new(k, m);
            let data: Vec<Vec<u8>> = (0..k)
                .map(|i| {
                    let mut s = seed.wrapping_add(i as u64) | 1;
                    (0..len)
                        .map(|_| {
                            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                            (s >> 56) as u8
                        })
                        .collect()
                })
                .collect();
            let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
            let parity = rs.encode(&refs);
            let full: Vec<Vec<u8>> =
                data.iter().cloned().chain(parity.iter().cloned()).collect();
            // Erase up to m shards chosen by the seed.
            let mut work: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            let mut s = seed | 1;
            let erase = (seed as usize % m) + 1;
            let mut killed = 0;
            while killed < erase {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let idx = (s >> 33) as usize % (k + m);
                if work[idx].is_some() {
                    work[idx] = None;
                    killed += 1;
                }
            }
            rs.reconstruct(&mut work).expect("within tolerance");
            for (i, shard) in work.iter().enumerate() {
                prop_assert_eq!(shard.as_ref().expect("rebuilt"), &full[i]);
            }
        }
    }
}
