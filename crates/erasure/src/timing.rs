//! Encoding-time model.
//!
//! The paper measures Reed–Solomon encoding on TSUBAME2 and reports a time
//! per GB that is *linear in the encoding-cluster size* (Fig. 3b, Table
//! II): 25 s for clusters of 4, 51 s for 8, 102 s for 16, 204 s for 32 —
//! a slope of ≈ 6.375 s · GB⁻¹ per member. That linearity is structural:
//! with ⌈s/2⌉ parity rows over ⌊s/2⌋ data shards, the GF(256)
//! multiply-accumulate work per checkpoint byte grows with s (and the
//! distributed implementation serialises partial parities around the
//! cluster). [`EncodingModel`] captures the law; the calibration constant
//! reproduces the paper's numbers, and the Criterion benches report our
//! own measured slope next to it.

/// Paper-calibrated slope: seconds per gigabyte of checkpoint data per
/// encoding-cluster member (TSUBAME2, FTI Reed–Solomon; Table II).
pub const TSUBAME2_SECONDS_PER_GB_PER_MEMBER: f64 = 6.375;

/// Bytes per gigabyte as the paper counts them (10⁹; the paper mixes GB
/// and GiB loosely, the shape is unaffected).
pub const GB: f64 = 1.0e9;

/// Linear encoding-time model `t = slope × members × gigabytes`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EncodingModel {
    /// Seconds per GB per cluster member.
    pub seconds_per_gb_per_member: f64,
}

impl EncodingModel {
    /// The model calibrated to the paper's TSUBAME2 measurements.
    pub fn tsubame2() -> Self {
        EncodingModel {
            seconds_per_gb_per_member: TSUBAME2_SECONDS_PER_GB_PER_MEMBER,
        }
    }

    /// A model calibrated from one measurement: encoding `bytes` in an
    /// `members`-process cluster took `seconds`.
    pub fn calibrated(members: usize, bytes: u64, seconds: f64) -> Self {
        assert!(members > 0 && bytes > 0 && seconds > 0.0);
        EncodingModel {
            seconds_per_gb_per_member: seconds / (members as f64 * bytes as f64 / GB),
        }
    }

    /// Predicted wall-clock seconds to encode `bytes` of checkpoint data
    /// in a cluster of `members` processes.
    pub fn seconds(&self, members: usize, bytes: u64) -> f64 {
        self.seconds_per_gb_per_member * members as f64 * bytes as f64 / GB
    }

    /// The paper's headline metric: seconds to encode 1 GB.
    pub fn seconds_per_gb(&self, members: usize) -> f64 {
        self.seconds(members, GB as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table_2_encoding_column() {
        let m = EncodingModel::tsubame2();
        // Table II: Naïve(32) → 204 s, Size-guided(8) → 51 s,
        // Distributed(16) → 102 s, Hierarchical(L2 of 4) → 25 s.
        assert!((m.seconds_per_gb(32) - 204.0).abs() < 1.0);
        assert!((m.seconds_per_gb(16) - 102.0).abs() < 1.0);
        assert!((m.seconds_per_gb(8) - 51.0).abs() < 1.0);
        assert!((m.seconds_per_gb(4) - 25.5).abs() < 1.0);
    }

    #[test]
    fn calibration_inverts_prediction() {
        let m = EncodingModel::calibrated(8, 2_000_000_000, 100.0);
        assert!((m.seconds(8, 2_000_000_000) - 100.0).abs() < 1e-9);
        assert!((m.seconds(16, 2_000_000_000) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn linear_in_both_size_and_bytes() {
        let m = EncodingModel::tsubame2();
        assert!((m.seconds(8, 10u64.pow(9)) * 2.0 - m.seconds(16, 10u64.pow(9))).abs() < 1e-9);
        assert!((m.seconds(8, 10u64.pow(9)) * 3.0 - m.seconds(8, 3 * 10u64.pow(9))).abs() < 1e-9);
    }
}
