//! GF(2⁸) multiply-accumulate kernels.
//!
//! The hot loop of Reed–Solomon encoding is `dst ^= c · src` over long
//! byte slices. The classic implementation walks a 256-byte row of the
//! full 64 KiB product table per source byte; it is correct but touches
//! a different table row per coefficient and moves one byte per step.
//!
//! Every kernel here is built instead on the **4-bit split** of the
//! product: `c·x = LO[c][x & 0xF] ⊕ HI[c][x >> 4]`, valid because
//! multiplication by a constant is GF(2)-linear, so the contribution of
//! the low and high nibble of `x` can be precomputed separately. Each
//! coefficient needs only two 16-byte tables (32 hot bytes instead of
//! 256), and 16-byte tables are exactly what `pshufb` consumes.
//!
//! Kernels, in increasing hardware dependence:
//!
//! * [`Kernel::Reference`] — the full-table scalar loop, kept as the
//!   correctness baseline and the comparison point for benchmarks;
//! * [`Kernel::Portable64`] — safe Rust, 8 bytes per step: loads `src`
//!   and `dst` as `u64`, composes the eight nibble products into a word
//!   and stores one XOR per word;
//! * [`Kernel::Ssse3`] / [`Kernel::Avx2`] — `pshufb`-based table lookup
//!   over 16 / 32 source bytes per instruction, gated at runtime by
//!   `is_x86_feature_detected!`.
//!
//! [`active`] resolves the best available kernel once per process
//! (override with the `HCFT_GF_KERNEL` environment variable: one of
//! `reference`, `portable64`, `ssse3`, `avx2`).

use std::sync::OnceLock;

use crate::gf256;

/// Per-coefficient nibble tables: `lo[c][n] = c·n`, `hi[c][n] = c·(n<<4)`.
struct NibbleTables {
    lo: [[u8; 16]; 256],
    hi: [[u8; 16]; 256],
}

fn nibble_tables() -> &'static NibbleTables {
    static TABLES: OnceLock<NibbleTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut lo = [[0u8; 16]; 256];
        let mut hi = [[0u8; 16]; 256];
        for c in 0..256 {
            for n in 0..16 {
                lo[c][n] = gf256::mul(c as u8, n as u8);
                hi[c][n] = gf256::mul(c as u8, (n << 4) as u8);
            }
        }
        NibbleTables { lo, hi }
    })
}

/// A GF(2⁸) multiply-accumulate implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Scalar loop over the full 64 KiB product table (seed behaviour).
    Reference,
    /// Safe nibble-table kernel, one `u64` word per step.
    Portable64,
    /// 16 bytes per step via SSSE3 `pshufb`.
    Ssse3,
    /// 32 bytes per step via AVX2 `vpshufb`.
    Avx2,
}

impl Kernel {
    /// Every kernel variant, in dispatch-preference order (best last).
    pub const ALL: [Kernel; 4] = [
        Kernel::Reference,
        Kernel::Portable64,
        Kernel::Ssse3,
        Kernel::Avx2,
    ];

    /// Stable lower-case name (matches the `HCFT_GF_KERNEL` values).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Reference => "reference",
            Kernel::Portable64 => "portable64",
            Kernel::Ssse3 => "ssse3",
            Kernel::Avx2 => "avx2",
        }
    }

    /// Whether this kernel can run on the current CPU.
    pub fn is_available(self) -> bool {
        match self {
            Kernel::Reference | Kernel::Portable64 => true,
            #[cfg(target_arch = "x86_64")]
            Kernel::Ssse3 => std::arch::is_x86_feature_detected!("ssse3"),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The kernels that can run here, reference first.
    pub fn available() -> Vec<Kernel> {
        Self::ALL.into_iter().filter(|k| k.is_available()).collect()
    }

    /// XOR-accumulate `coeff · src` into `dst`.
    ///
    /// # Panics
    /// Panics when `dst` and `src` differ in length.
    pub fn mul_acc(self, dst: &mut [u8], src: &[u8], coeff: u8) {
        assert_eq!(dst.len(), src.len(), "mul_acc slice length mismatch");
        if coeff == 0 {
            return;
        }
        if coeff == 1 {
            xor_acc(dst, src);
            return;
        }
        match self {
            Kernel::Reference => mul_acc_reference(dst, src, coeff),
            Kernel::Portable64 => mul_acc_portable64(dst, src, coeff),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: is_available() checked the CPU feature; callers go
            // through active() or guard explicitly (the proptests filter
            // on availability).
            Kernel::Ssse3 => unsafe { x86::mul_acc_ssse3(dst, src, coeff) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above, for AVX2.
            Kernel::Avx2 => unsafe { x86::mul_acc_avx2(dst, src, coeff) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => mul_acc_portable64(dst, src, coeff),
        }
    }
}

/// Count one erasure operation dispatched through the active kernel in
/// the global telemetry registry (`erasure.dispatch.<kernel>`).
///
/// Called once per public encode/verify/reconstruct operation — not per
/// `mul_acc` — so the relaxed-atomic increment is invisible next to the
/// table work. The counter handle is resolved once and cached.
pub(crate) fn count_dispatch() {
    static HANDLE: OnceLock<std::sync::Arc<hcft_telemetry::Counter>> = OnceLock::new();
    HANDLE
        .get_or_init(|| {
            hcft_telemetry::Registry::global()
                .counter(&format!("erasure.dispatch.{}", active().name()))
        })
        .inc();
}

/// The best kernel for this process: `HCFT_GF_KERNEL` override if set
/// and available, else the most capable detected variant. Resolved once.
pub fn active() -> Kernel {
    static ACTIVE: OnceLock<Kernel> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        if let Ok(want) = std::env::var("HCFT_GF_KERNEL") {
            if let Some(k) = Kernel::ALL
                .into_iter()
                .find(|k| k.name().eq_ignore_ascii_case(&want))
            {
                if k.is_available() {
                    return k;
                }
            }
        }
        Kernel::ALL
            .into_iter()
            .rev()
            .find(|k| k.is_available())
            .expect("portable kernels are always available")
    })
}

/// Wide `dst ^= src` (the coefficient-1 fast path, also used by the XOR
/// code): one `u64` per step plus a scalar tail.
pub fn xor_acc(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_acc slice length mismatch");
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dw, sw) in (&mut d).zip(&mut s) {
        let x = u64::from_le_bytes(dw.try_into().expect("8-byte chunk"))
            ^ u64::from_le_bytes(sw.try_into().expect("8-byte chunk"));
        dw.copy_from_slice(&x.to_le_bytes());
    }
    for (db, &sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= sb;
    }
}

/// Seed kernel: per-byte lookup in the coefficient's 256-byte row.
fn mul_acc_reference(dst: &mut [u8], src: &[u8], coeff: u8) {
    let row = gf256::mul_row(coeff);
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= row[s as usize];
    }
}

/// Safe 8-bytes-per-step kernel: split each source word into nibbles,
/// compose the eight products into a word, one wide XOR per step.
///
/// (A branchless carryless-doubling variant — `c·x = ⊕ x·2^i` over the
/// set bits of `c`, doubling all eight packed bytes per `u64` round —
/// was measured at ~0.5× this table composition on Cauchy coefficients,
/// which average four set bits; the tables won.)
fn mul_acc_portable64(dst: &mut [u8], src: &[u8], coeff: u8) {
    let t = nibble_tables();
    let lo = &t.lo[coeff as usize];
    let hi = &t.hi[coeff as usize];
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dw, sw) in (&mut d).zip(&mut s) {
        let sv = u64::from_le_bytes(sw.try_into().expect("8-byte chunk"));
        let mut prod = 0u64;
        // Fully unrolled by the compiler: `b` is a constant 0..8.
        for b in 0..8 {
            let x = (sv >> (8 * b)) as u8;
            let p = lo[(x & 0x0F) as usize] ^ hi[(x >> 4) as usize];
            prod |= (p as u64) << (8 * b);
        }
        let dv = u64::from_le_bytes(dw.try_into().expect("8-byte chunk")) ^ prod;
        dw.copy_from_slice(&dv.to_le_bytes());
    }
    for (db, &sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= lo[(sb & 0x0F) as usize] ^ hi[(sb >> 4) as usize];
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! `pshufb`-based kernels. The 16-entry nibble tables load directly
    //! into one vector register each; `pshufb` then performs 16 (or 32)
    //! parallel table lookups per instruction.

    use super::nibble_tables;
    use std::arch::x86_64::*;

    /// # Safety
    /// Requires SSSE3.
    #[target_feature(enable = "ssse3")]
    pub unsafe fn mul_acc_ssse3(dst: &mut [u8], src: &[u8], coeff: u8) {
        let t = nibble_tables();
        let lo = _mm_loadu_si128(t.lo[coeff as usize].as_ptr().cast());
        let hi = _mm_loadu_si128(t.hi[coeff as usize].as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let words = dst.len() / 16;
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        for i in 0..words {
            let s = _mm_loadu_si128(sp.add(16 * i).cast());
            let pl = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
            let ph = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
            let d = _mm_loadu_si128(dp.add(16 * i).cast());
            _mm_storeu_si128(
                dp.add(16 * i).cast(),
                _mm_xor_si128(d, _mm_xor_si128(pl, ph)),
            );
        }
        let done = words * 16;
        super::mul_acc_portable64(&mut dst[done..], &src[done..], coeff);
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_acc_avx2(dst: &mut [u8], src: &[u8], coeff: u8) {
        let t = nibble_tables();
        // Same 16-byte table in both lanes: vpshufb looks up per lane.
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo[coeff as usize].as_ptr().cast()));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi[coeff as usize].as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let words = dst.len() / 32;
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        for i in 0..words {
            let s = _mm256_loadu_si256(sp.add(32 * i).cast());
            let pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
            let ph = _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
            let d = _mm256_loadu_si256(dp.add(32 * i).cast());
            _mm256_storeu_si256(
                dp.add(32 * i).cast(),
                _mm256_xor_si256(d, _mm256_xor_si256(pl, ph)),
            );
        }
        let done = words * 32;
        super::mul_acc_portable64(&mut dst[done..], &src[done..], coeff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, salt: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
            .collect()
    }

    #[test]
    fn nibble_split_reconstructs_full_product() {
        let t = nibble_tables();
        for c in 0..=255u8 {
            for x in 0..=255u8 {
                let split =
                    t.lo[c as usize][(x & 0x0F) as usize] ^ t.hi[c as usize][(x >> 4) as usize];
                assert_eq!(split, gf256::mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn kernels_agree_with_reference() {
        for kernel in Kernel::available() {
            for len in [
                0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 100, 1000,
            ] {
                for coeff in [0u8, 1, 2, 0x1d, 0x53, 0xFF] {
                    let src = pattern(len, 3);
                    let mut dst = pattern(len, 101);
                    let mut expect = dst.clone();
                    Kernel::Reference.mul_acc(&mut expect, &src, coeff);
                    kernel.mul_acc(&mut dst, &src, coeff);
                    assert_eq!(
                        dst,
                        expect,
                        "kernel={} len={len} coeff={coeff}",
                        kernel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn xor_acc_matches_bytewise() {
        for len in [0usize, 1, 7, 8, 9, 40, 41] {
            let src = pattern(len, 7);
            let mut dst = pattern(len, 99);
            let mut expect = dst.clone();
            for (e, &s) in expect.iter_mut().zip(&src) {
                *e ^= s;
            }
            xor_acc(&mut dst, &src);
            assert_eq!(dst, expect, "len={len}");
        }
    }

    #[test]
    fn active_is_available() {
        assert!(active().is_available());
    }

    #[test]
    fn names_round_trip() {
        for k in Kernel::ALL {
            assert!(Kernel::ALL.iter().any(|o| o.name() == k.name()));
        }
    }
}
