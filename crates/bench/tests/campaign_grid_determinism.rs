//! The campaign grid must be a pure function of its configuration:
//! `repro campaign-grid` must emit a byte-identical `ext_campaign_grid.csv`
//! regardless of rayon thread count — **including with CI-targeted early
//! stopping enabled**, because stop decisions are made on fixed batch
//! boundaries against order-independent statistics.
//!
//! The compat rayon pool latches `RAYON_NUM_THREADS` once per process,
//! so each configuration runs the real `repro` binary in its own
//! process (Cargo exports the path as `CARGO_BIN_EXE_repro`).

use std::path::{Path, PathBuf};
use std::process::Command;

const CSV: &str = "ext_campaign_grid.csv";

fn run_grid(out_dir: &Path, threads: &str, target_ci: Option<&str>) {
    let exe = env!("CARGO_BIN_EXE_repro");
    let mut cmd = Command::new(exe);
    cmd.args(["--scale", "small", "--out"])
        .arg(out_dir)
        .arg("campaign-grid")
        .env("RAYON_NUM_THREADS", threads);
    match target_ci {
        Some(ci) => cmd.env("HCFT_CAMPAIGN_TARGET_CI", ci),
        None => cmd.env_remove("HCFT_CAMPAIGN_TARGET_CI"),
    };
    let status = cmd.status().expect("spawn repro");
    assert!(
        status.success(),
        "repro campaign-grid failed ({threads} threads)"
    );
}

fn read(dir: &Path) -> String {
    let p = dir.join(CSV);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn temp_dir(label: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hcft-campaign-grid-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn grid_csv_is_byte_identical_across_thread_counts() {
    let serial_dir = temp_dir("serial");
    let parallel_dir = temp_dir("parallel");
    run_grid(&serial_dir, "1", None);
    run_grid(&parallel_dir, "4", None);
    let serial = read(&serial_dir);
    let parallel = read(&parallel_dir);
    assert!(!serial.is_empty(), "{CSV} came out empty");
    assert_eq!(
        serial, parallel,
        "{CSV} differs between RAYON_NUM_THREADS=1 and =4"
    );
    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&parallel_dir);
}

#[test]
fn grid_csv_with_early_stopping_is_byte_identical_across_thread_counts() {
    // A CI target loose enough that most cells stop before the full
    // budget — the trials column proves stopping actually engaged, and
    // the byte-compare proves the *decision* is thread-count invariant.
    let serial_dir = temp_dir("ci-serial");
    let parallel_dir = temp_dir("ci-parallel");
    run_grid(&serial_dir, "1", Some("2e-4"));
    run_grid(&parallel_dir, "4", Some("2e-4"));
    let serial = read(&serial_dir);
    let parallel = read(&parallel_dir);
    assert_eq!(
        serial, parallel,
        "{CSV} (early stopping) differs between RAYON_NUM_THREADS=1 and =4"
    );
    let stopped_rows = serial
        .lines()
        .skip(1)
        .filter(|l| l.split(',').nth(6) == Some("1"))
        .count();
    assert!(
        stopped_rows > 0,
        "no cell stopped early at the loose CI target — the test is vacuous:\n{serial}"
    );
    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&parallel_dir);
}
