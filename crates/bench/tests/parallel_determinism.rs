//! The parallel sweep engine must not change results: `repro` run with
//! one worker thread and with several must emit byte-identical CSVs.
//!
//! The compat rayon pool latches `RAYON_NUM_THREADS` once per process,
//! so the serial and parallel configurations have to be separate
//! processes — each test spawns the real `repro` binary (Cargo exports
//! its path as `CARGO_BIN_EXE_repro`) twice into separate output
//! directories and compares the artifacts byte for byte.
//!
//! `fig3a` covers the par-mapped figure sweeps; `campaign` covers the
//! parallel Monte-Carlo trial fan-out (per-trial RNG streams folded in
//! a fixed order). Small scale keeps each run to a few seconds.

use std::path::{Path, PathBuf};
use std::process::Command;

fn run_repro(out_dir: &Path, threads: &str, artifacts: &[&str]) {
    let exe = env!("CARGO_BIN_EXE_repro");
    let status = Command::new(exe)
        .args(["--scale", "small", "--out"])
        .arg(out_dir)
        .args(artifacts)
        .env("RAYON_NUM_THREADS", threads)
        .status()
        .expect("spawn repro");
    assert!(status.success(), "repro failed with {threads} thread(s)");
}

fn read(dir: &Path, name: &str) -> String {
    let p = dir.join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn temp_dir(label: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hcft-determinism-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn serial_and_parallel_csvs_are_byte_identical() {
    let serial_dir = temp_dir("serial");
    let parallel_dir = temp_dir("parallel");
    let artifacts = ["fig3a", "campaign"];
    run_repro(&serial_dir, "1", &artifacts);
    run_repro(&parallel_dir, "4", &artifacts);
    for name in [
        "fig3a_size_vs_logging_restart.csv",
        "ext_campaign_availability.csv",
    ] {
        let serial = read(&serial_dir, name);
        let parallel = read(&parallel_dir, name);
        assert!(!serial.is_empty(), "{name} came out empty");
        assert_eq!(
            serial, parallel,
            "{name} differs between RAYON_NUM_THREADS=1 and =4"
        );
    }
    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&parallel_dir);
}
