//! The scalable partition engines must not change results: `repro
//! table2` at small scale must reproduce the committed snapshot CSVs
//! byte-for-byte, for both `--partition-engine` values and regardless of
//! thread count.
//!
//! The snapshots under `tests/snapshots/` were captured from the
//! pre-heap quadratic engines; the heap CNM and the incremental-seeding
//! multilevel partitioner are required to be drop-in equal, so any drift
//! here means a semantic change to the clustering, not an optimisation.
//! (The paper-scale guard lives in `bench_partition`'s fixture stage —
//! the traced paper run is too slow for a debug-profile test.) Same
//! spawn-the-real-binary pattern as `parallel_determinism.rs`: the
//! compat rayon pool latches `RAYON_NUM_THREADS` once per process, so
//! each configuration is a separate `repro` process.

use std::path::{Path, PathBuf};
use std::process::Command;

fn run_repro(out_dir: &Path, threads: &str, engine: &str) {
    let exe = env!("CARGO_BIN_EXE_repro");
    let status = Command::new(exe)
        .args(["--scale", "small", "--partition-engine", engine, "--out"])
        .arg(out_dir)
        .arg("table2")
        .env("RAYON_NUM_THREADS", threads)
        .status()
        .expect("spawn repro");
    assert!(
        status.success(),
        "repro failed ({engine}, {threads} threads)"
    );
}

fn temp_dir(label: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hcft-partition-det-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn check_engine(engine: &str) {
    let snapshot_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("table2_small_{engine}.csv"));
    let snapshot = std::fs::read_to_string(&snapshot_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", snapshot_path.display()));
    for threads in ["1", "4"] {
        let dir = temp_dir(&format!("{engine}-{threads}"));
        run_repro(&dir, threads, engine);
        let fresh = std::fs::read_to_string(dir.join("table2_clustering_comparison.csv"))
            .expect("read fresh table2 CSV");
        assert!(!fresh.is_empty(), "table2 CSV came out empty");
        assert_eq!(
            fresh, snapshot,
            "table2 drifted from the committed snapshot \
             (engine {engine}, RAYON_NUM_THREADS={threads})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn multilevel_engine_reproduces_snapshot() {
    check_engine("multilevel");
}

#[test]
fn modularity_engine_reproduces_snapshot() {
    check_engine("modularity");
}
