//! The evaluation service must serve byte-identical responses at any
//! rayon thread count — the family fan-out is an order-preserving fold,
//! so parallelism is a latency knob, never a semantic one.
//!
//! The compat rayon pool latches `RAYON_NUM_THREADS` once per process,
//! so each thread count runs as a separate `bench_service --probe`
//! subprocess (Cargo exports the binary path as
//! `CARGO_BIN_EXE_bench_service`); the probe evaluates one request
//! in-process and prints the response body to stdout.

use std::process::Command;

fn probe(query: &str, threads: &str) -> String {
    let exe = env!("CARGO_BIN_EXE_bench_service");
    let out = Command::new(exe)
        .args(["--probe", query])
        .env("RAYON_NUM_THREADS", threads)
        .output()
        .expect("spawn bench_service --probe");
    assert!(
        out.status.success(),
        "probe {query:?} failed with {threads} thread(s): {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("probe output is UTF-8")
}

#[test]
fn responses_are_byte_identical_across_thread_counts() {
    for query in [
        "nodes=8&ppn=4&families=table2",
        "nodes=8&ppn=4&families=full",
    ] {
        let serial = probe(query, "1");
        let parallel = probe(query, "4");
        assert!(
            serial.contains("\"ranking\": ["),
            "probe output is not a ranked response: {serial}"
        );
        assert_eq!(
            serial, parallel,
            "{query} response differs between RAYON_NUM_THREADS=1 and =4"
        );
    }
}
