//! Runtime benchmarks: collective algorithms and the traced stencil.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcft_simmpi::World;
use hcft_tsunami::{TsunamiParams, TsunamiSim};
use std::hint::black_box;

/// Allgather algorithms at a power-of-two and a Bruck size.
fn bench_allgather(c: &mut Criterion) {
    let mut g = c.benchmark_group("allgather_64B_per_rank");
    g.sample_size(10);
    for &(label, n) in &[("recursive_doubling_32", 32usize), ("bruck_33", 33)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &n, |b, &n| {
            b.iter(|| {
                let r = World::run(n, |c| c.allgather(&[c.rank() as u64; 8]));
                black_box(r.outputs.len())
            });
        });
    }
    g.bench_function("ring_32", |b| {
        b.iter(|| {
            let r = World::run(32, |c| c.allgather_ring(&[c.rank() as u64; 8]));
            black_box(r.outputs.len())
        });
    });
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce_1KiB");
    g.sample_size(10);
    for n in [16usize, 48] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let r = World::run(n, |c| c.allreduce_sum(&[c.rank() as f64; 128]));
                black_box(r.outputs.len())
            });
        });
    }
    g.finish();
}

/// The tsunami workload under the threaded runtime (traced), per step.
fn bench_tsunami(c: &mut Criterion) {
    let mut g = c.benchmark_group("tsunami_10_steps");
    g.sample_size(10);
    for ranks in [16usize, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &n| {
            b.iter(|| {
                let r = World::run(n, |c| {
                    let mut sim = TsunamiSim::new(c, TsunamiParams::stable(128, 128));
                    sim.run(10);
                    sim.local_energy()
                });
                black_box(r.outputs.len())
            });
        });
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_allgather, bench_allreduce, bench_tsunami
}
criterion_main!(benches);
