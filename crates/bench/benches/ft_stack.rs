//! Fault-tolerance stack benchmarks: multilevel checkpoint + recovery on
//! real files, reliability estimators, and the evaluator pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcft_checkpoint::{CheckpointStore, Level, MultilevelCheckpointer};
use hcft_cluster::{distributed, naive, Evaluator};
use hcft_graph::{Clustering, CommMatrix};
use hcft_reliability::model::fti_tolerance;
use hcft_reliability::{EventDistribution, ReliabilityModel};
use hcft_topology::{NodeId, Placement};
use std::hint::black_box;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("hcft-ftbench-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&p).expect("temp dir");
    p
}

/// Encoded checkpoint of 16 ranks × 256 KiB over 4 distributed groups.
fn bench_checkpoint_encoded(c: &mut Criterion) {
    let dir = temp_dir("ckpt");
    let placement = Placement::block(4, 4);
    let groups = Clustering::from_assignment(&(0..16).map(|r| r % 4).collect::<Vec<_>>());
    let store = CheckpointStore::create(&dir, 4).expect("store");
    let ml = MultilevelCheckpointer::new(store, groups, placement);
    let payloads: Vec<Vec<u8>> = (0..16)
        .map(|r| (0..1 << 18).map(|b| ((r * 31 + b) % 251) as u8).collect())
        .collect();
    let mut g = c.benchmark_group("multilevel_checkpoint");
    g.sample_size(10);
    let mut epoch = 0u64;
    g.bench_function("encoded_16x256KiB", |b| {
        b.iter(|| {
            epoch += 1;
            ml.checkpoint(epoch, Level::Encoded, black_box(&payloads))
                .expect("ckpt");
        });
    });
    g.bench_function("recover_after_node_loss", |b| {
        b.iter(|| {
            epoch += 1;
            ml.checkpoint(epoch, Level::Encoded, &payloads)
                .expect("ckpt");
            ml.store().fail_node(NodeId(2)).expect("kill");
            black_box(ml.recover(epoch).expect("rebuild"));
        });
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Catastrophic-probability estimators: closed-form vs Monte Carlo.
fn bench_reliability(c: &mut Criterion) {
    let nodes = 64;
    let placement = Placement::block(nodes, 16);
    let dist = distributed(&placement, 16).l2;
    let model = ReliabilityModel::new(nodes, EventDistribution::fti_calibrated());
    let mut g = c.benchmark_group("reliability");
    g.bench_function("analytic_p_catastrophic", |b| {
        b.iter(|| black_box(model.p_catastrophic(&dist, &placement, &fti_tolerance)));
    });
    g.sample_size(10);
    g.bench_function("monte_carlo_q3_100k", |b| {
        b.iter(|| {
            black_box(model.q_given_j_monte_carlo(3, &dist, &placement, &fti_tolerance, 100_000, 7))
        });
    });
    g.finish();
}

/// The whole 4-D evaluation of one scheme over a 1024-rank matrix.
fn bench_evaluator(c: &mut Criterion) {
    let placement = Placement::block(64, 16);
    let mut m = CommMatrix::new(1024);
    for r in 0..1024usize {
        m.add(r, (r + 1) % 1024, 100_000);
        m.add(r, (r + 512) % 1024, 1_000);
    }
    let evaluator = Evaluator::new(m, placement);
    let mut g = c.benchmark_group("evaluator_1024_ranks");
    for size in [8usize, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| black_box(evaluator.evaluate(&naive(1024, size))));
        });
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets =
    bench_checkpoint_encoded,
    bench_reliability,
    bench_evaluator
}
criterion_main!(benches);
