//! Partitioner benchmarks: the two L1 engines on node graphs of
//! increasing size, plus the clustering strategies themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcft_cluster::{distributed, hierarchical, naive, HierarchicalConfig, PartitionEngine};
use hcft_graph::{CommMatrix, WeightedGraph};
use hcft_partition::{modularity_clusters, MultilevelConfig, MultilevelPartitioner, SizeBounds};
use hcft_topology::Placement;
use std::hint::black_box;

/// Ladder node graph like a 2-row stencil's node graph.
fn ladder(nodes: usize) -> WeightedGraph {
    let mut m = CommMatrix::new(nodes);
    for n in 0..nodes - 1 {
        m.add(n, n + 1, 10_000);
        m.add(n + 1, n, 10_000);
    }
    for n in 0..nodes.saturating_sub(2) {
        m.add(n, n + 2, 500);
        m.add(n + 2, n, 500);
    }
    WeightedGraph::from_comm_matrix(&m)
}

fn bench_multilevel(c: &mut Criterion) {
    let mut g = c.benchmark_group("multilevel_partition");
    for nodes in [64usize, 256, 1024] {
        let graph = ladder(nodes);
        let k = nodes / 4;
        let cfg = MultilevelConfig::new(k, SizeBounds::new(4, 4));
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                black_box(MultilevelPartitioner::new(cfg.clone()).partition(black_box(&graph)))
            });
        });
    }
    g.finish();
}

fn bench_modularity(c: &mut Criterion) {
    let mut g = c.benchmark_group("modularity_clusters");
    for nodes in [64usize, 128] {
        let graph = ladder(nodes);
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                black_box(modularity_clusters(
                    black_box(&graph),
                    SizeBounds::new(4, 8),
                ))
            });
        });
    }
    g.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let placement = Placement::block(64, 16);
    let graph = ladder(64);
    let mut g = c.benchmark_group("clustering_strategies_1024_ranks");
    g.bench_function("naive_32", |b| {
        b.iter(|| black_box(naive(1024, 32)));
    });
    g.bench_function("distributed_16", |b| {
        b.iter(|| black_box(distributed(&placement, 16)));
    });
    for engine in [PartitionEngine::Multilevel, PartitionEngine::Modularity] {
        let cfg = HierarchicalConfig {
            min_nodes_per_l1: 4,
            max_nodes_per_l1: 4,
            l2_group_nodes: 4,
            engine,
        };
        g.bench_function(format!("hierarchical_{engine:?}"), |b| {
            b.iter(|| black_box(hierarchical(&placement, &graph, &cfg)));
        });
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_multilevel, bench_modularity, bench_strategies
}
criterion_main!(benches);
