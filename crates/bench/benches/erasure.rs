//! Reed–Solomon / XOR encoding throughput — the measured counterpart of
//! Fig. 3b's encoding-time axis and the XOR-vs-RS complexity contrast of
//! §II-B1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hcft_erasure::{ReedSolomon, XorCode};
use std::hint::black_box;

fn shards(k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..len).map(|b| ((i * 31 + b * 7) % 251) as u8).collect())
        .collect()
}

/// RS(s, s) encode for the paper's cluster sizes. Total moved bytes per
/// iteration = s × shard, so reported throughput is per unit of
/// checkpoint data.
fn bench_rs_encode(c: &mut Criterion) {
    let shard = 1 << 20;
    let mut g = c.benchmark_group("rs_encode_per_cluster_size");
    for size in [4usize, 8, 16, 32] {
        let data = shards(size, shard);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let rs = ReedSolomon::new(size, size);
        g.throughput(Throughput::Bytes((size * shard) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(rs.encode(black_box(&refs))));
        });
    }
    g.finish();
}

/// Reconstruction cost after losing half the cluster's nodes.
fn bench_rs_reconstruct(c: &mut Criterion) {
    let shard = 1 << 18;
    let mut g = c.benchmark_group("rs_reconstruct_half_lost");
    for size in [4usize, 8, 16] {
        let data = shards(size, shard);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let rs = ReedSolomon::new(size, size);
        let parity = rs.encode(&refs);
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let mut work: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                for i in 0..size / 2 {
                    work[i] = None; // data shard
                    work[size + size / 2 + i] = None; // someone's parity
                }
                rs.reconstruct(&mut work).expect("within tolerance");
                black_box(work);
            });
        });
    }
    g.finish();
}

/// XOR single-parity encode — FTI's cheap level, for the complexity
/// contrast.
fn bench_xor_encode(c: &mut Criterion) {
    let shard = 1 << 20;
    let mut g = c.benchmark_group("xor_encode");
    for size in [4usize, 16] {
        let data = shards(size, shard);
        let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
        let code = XorCode::new(size);
        g.throughput(Throughput::Bytes((size * shard) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(code.encode(black_box(&refs))));
        });
    }
    g.finish();
}

/// The raw GF(256) multiply-accumulate kernel.
fn bench_gf256_mul_acc(c: &mut Criterion) {
    let src = vec![0xA7u8; 1 << 20];
    let mut dst = vec![0u8; 1 << 20];
    let mut g = c.benchmark_group("gf256_mul_acc");
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("1MiB", |b| {
        b.iter(|| {
            hcft_erasure::gf256::mul_acc(black_box(&mut dst), black_box(&src), 0x37);
        });
    });
    g.finish();
}

/// Every available GF(2⁸) kernel on the same 1 MiB multiply-accumulate —
/// the apples-to-apples comparison behind `BENCH_erasure.json`.
fn bench_kernel_mul_acc(c: &mut Criterion) {
    let src = vec![0xA7u8; 1 << 20];
    let mut dst = vec![0u8; 1 << 20];
    let mut g = c.benchmark_group("kernel_mul_acc");
    g.throughput(Throughput::Bytes(1 << 20));
    for kernel in hcft_erasure::Kernel::available() {
        g.bench_function(kernel.name(), |b| {
            b.iter(|| {
                kernel.mul_acc(black_box(&mut dst), black_box(&src), 0x37);
            });
        });
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets =
    bench_rs_encode,
    bench_rs_reconstruct,
    bench_xor_encode,
    bench_gf256_mul_acc,
    bench_kernel_mul_acc
}
criterion_main!(benches);
