//! Shared harness machinery: run scales, trace caching, CSV output.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use hcft_core::experiment::{run_traced_job, TraceResult, TracedJobConfig};

/// Experiment scale: the paper's full §V configuration or a laptop-quick
/// reduction with identical structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// 64 nodes × 16 app ranks (+64 encoders) = 1088 ranks, 100
    /// iterations — the paper's run.
    Paper,
    /// 16 nodes × 8 app ranks (+16 encoders) = 144 ranks — same shape,
    /// seconds to run.
    Small,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "paper" => Some(Scale::Paper),
            "small" => Some(Scale::Small),
            _ => None,
        }
    }

    /// The traced-job configuration for this scale.
    pub fn job(self) -> TracedJobConfig {
        match self {
            Scale::Paper => TracedJobConfig::paper_1024(),
            Scale::Small => TracedJobConfig {
                nodes: 16,
                app_per_node: 8,
                with_encoders: true,
                iterations: 100,
                checkpoint_every: 25,
                grid: (256, 64),
                process_grid: Some((64, 2)),
                encoder_group_nodes: 4,
                record_events: false,
                mailbox_shards: 0,
                workers: 0,
                engine: hcft_simmpi::Engine::Auto,
                steal: None,
                yield_budget: None,
            },
        }
    }

    /// Table-II cluster sizes scaled to the configuration: (naïve,
    /// size-guided, distributed, hierarchical L1 max nodes).
    pub fn table2_sizes(self) -> (usize, usize, usize) {
        match self {
            Scale::Paper => (32, 8, 16),
            Scale::Small => (16, 4, 8),
        }
    }
}

/// Trace cache: the 1088-rank run is reused by every figure that needs
/// it within one `repro all` invocation.
pub fn traced(scale: Scale) -> &'static TraceResult {
    static CACHE: OnceLock<Mutex<Vec<(Scale, &'static TraceResult)>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    let mut guard = cache.lock().expect("trace cache");
    if let Some(&(_, t)) = guard.iter().find(|(s, _)| *s == scale) {
        return t;
    }
    eprintln!("[repro] tracing workload at {scale:?} scale…");
    let start = std::time::Instant::now();
    let trace = Box::leak(Box::new(run_traced_job(&scale.job())));
    eprintln!(
        "[repro] traced {} ranks, {} bytes, in {:.1?}",
        trace.full.n(),
        trace.full.total_bytes(),
        start.elapsed()
    );
    guard.push((scale, trace));
    trace
}

/// A CSV artefact to be written under the results directory.
pub struct CsvFile {
    /// File name (no directory).
    pub name: String,
    /// Full CSV content including header.
    pub content: String,
}

impl CsvFile {
    /// Build from a header and rows.
    pub fn new(name: impl Into<String>, header: &str, rows: &[Vec<String>]) -> Self {
        let mut content = String::from(header);
        content.push('\n');
        for row in rows {
            content.push_str(&row.join(","));
            content.push('\n');
        }
        CsvFile {
            name: name.into(),
            content,
        }
    }
}

/// One reproduced artefact: a printable report plus CSV series.
pub struct Artifact {
    /// Identifier, e.g. "fig3a".
    pub id: &'static str,
    /// Human-readable report printed to stdout.
    pub report: String,
    /// CSV files to persist.
    pub csv: Vec<CsvFile>,
}

impl Artifact {
    /// Write all CSVs under `dir` and return the paths.
    pub fn persist(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::new();
        for f in &self.csv {
            let p = dir.join(&f.name);
            let mut out = std::fs::File::create(&p)?;
            out.write_all(f.content.as_bytes())?;
            paths.push(p);
        }
        Ok(paths)
    }
}

/// Format a probability the way the paper's Table II does (powers of
/// ten).
pub fn fmt_prob(p: f64) -> String {
    if p == 0.0 {
        "0".to_string()
    } else if p >= 0.01 {
        format!("{p:.2}")
    } else {
        format!("1e{:.0}", p.log10().round())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn csv_formatting() {
        let f = CsvFile::new(
            "x.csv",
            "a,b",
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(f.content, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn prob_formatting_matches_paper_style() {
        assert_eq!(fmt_prob(0.95), "0.95");
        assert_eq!(fmt_prob(1.0e-4), "1e-4");
        assert_eq!(fmt_prob(3.1e-7), "1e-7");
        assert_eq!(fmt_prob(0.0), "0");
    }

    #[test]
    fn artifact_persist_writes_files() {
        let dir = std::env::temp_dir().join(format!("hcft-bench-{}", std::process::id()));
        let a = Artifact {
            id: "t",
            report: String::new(),
            csv: vec![CsvFile::new("t.csv", "h", &[])],
        };
        let paths = a.persist(&dir).expect("persist");
        assert!(paths[0].exists());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
