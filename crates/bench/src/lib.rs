//! Benchmark & reproduction harness.
//!
//! The `repro` binary (this crate's `src/bin/repro.rs`) regenerates every
//! table and figure of the paper's evaluation; the Criterion benches
//! measure the real implementations (Reed–Solomon throughput, partitioner
//! speed, collective algorithms, reliability estimators) next to the
//! calibrated models.
//!
//! [`figures`] holds one function per paper artefact, each returning a
//! printable report plus CSV series; [`harness`] holds the shared
//! machinery (scales, trace caching, CSV writing).

pub mod figures;
pub mod harness;
