//! Replay-engine smoke harness for CI: kills a whole L1 cluster in a
//! live run, recovers through L2-encoded checkpoints + sender-log
//! replay, and gates on the only acceptable outcome — a final state
//! byte-identical to an uninterrupted run — across worker counts and
//! both `simmpi` scheduler engines.
//!
//! ```text
//! cargo run --release -p hcft-bench --bin replay_smoke
//! ```
//!
//! `BENCH_REPLAY_QUICK=1` shrinks the world and the engine sweep for CI
//! smoke runs. All `replay.*` counters accumulate in the process-global
//! telemetry registry and are snapshotted to
//! `TELEMETRY_replay_smoke.json` (`BENCH_REPLAY_TELEMETRY_OUT`
//! overrides the path).
//!
//! Gates (assert-based, like the other smoke bins):
//! * every scenario — cluster kill, cluster kill + cascade, node loss
//!   with a silently corrupted surviving checkpoint — recovers to the
//!   reference trajectory bit-for-bit;
//! * the cluster-kill scenario reproduces those exact bytes on every
//!   (worker count × engine) combination — replay determinism is a
//!   property of the protocol, not of the schedule;
//! * cross-cluster messages really were served from sender logs
//!   (`messages_replayed > 0`) and the feasibility analysis agrees.

use std::time::Instant;

use hcft_cluster::striped;
use hcft_core::replay::{ReplayConfig, ReplayEngine, TsunamiWorkload};
use hcft_core::scenario::FaultScenario;
use hcft_simmpi::Engine;
use hcft_topology::{NodeId, Placement};
use hcft_tsunami::TsunamiParams;

struct Shape {
    nodes: usize,
    ppn: usize,
    l1_nodes: usize,
    l2_size: usize,
    grid: (usize, usize),
    total: u64,
    fail_at: u64,
}

fn store_dir(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("hcft-replay-smoke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn engine(shape: &Shape, tag: &str, workers: usize, eng: Engine) -> ReplayEngine<TsunamiWorkload> {
    let placement = Placement::block(shape.nodes, shape.ppn);
    let scheme = striped(&placement, shape.l1_nodes, shape.l2_size);
    let mut cfg = ReplayConfig::new(store_dir(tag));
    cfg.workers = workers;
    cfg.engine = eng;
    ReplayEngine::new(
        TsunamiWorkload::new(TsunamiParams::stable(shape.grid.0, shape.grid.1)),
        placement,
        scheme,
        cfg,
    )
}

fn main() {
    let quick = std::env::var("BENCH_REPLAY_QUICK").is_ok();
    let shape = if quick {
        Shape {
            nodes: 8,
            ppn: 4,
            l1_nodes: 2,
            l2_size: 4,
            grid: (24, 24),
            total: 14,
            fail_at: 9,
        }
    } else {
        Shape {
            nodes: 16,
            ppn: 4,
            l1_nodes: 4,
            l2_size: 8,
            grid: (48, 48),
            total: 22,
            fail_at: 13,
        }
    };
    let clusters = shape.nodes / shape.l1_nodes;
    eprintln!(
        "[replay_smoke] {} nodes x {} ranks, {clusters} L1 clusters, L2 groups of {} (quick={quick})",
        shape.nodes, shape.ppn, shape.l2_size
    );

    let reference = engine(&shape, "ref", 0, Engine::Auto).reference(shape.total);

    // Scenario sweep: each complication must still land on the exact
    // reference bytes. The corruption target pairs a lost node with a
    // surviving neighbour whose striped L2 groups are disjoint from it.
    let lost = NodeId(shape.l1_nodes as u32);
    let neighbour = NodeId(shape.l1_nodes as u32 + 1);
    let scenarios = [
        (
            "cluster_kill",
            FaultScenario::at(shape.fail_at).l1_cluster(1).build(),
        ),
        (
            "cluster_kill_cascade",
            FaultScenario::at(shape.fail_at)
                .l1_cluster(1)
                .cascade(NodeId(0), 1)
                .build(),
        ),
        (
            "corrupt_checkpoint",
            FaultScenario::at(shape.fail_at)
                .node(lost)
                .corrupt_checkpoint(neighbour)
                .build(),
        ),
    ];
    for (tag, scenario) in &scenarios {
        let t = Instant::now();
        let out = engine(&shape, tag, 0, Engine::Auto)
            .run(scenario, shape.total)
            .unwrap_or_else(|e| panic!("{tag}: recovery failed: {e}"));
        assert!(out.report.feasible(), "{tag}: protocol analysis infeasible");
        assert!(
            out.messages_replayed > 0,
            "{tag}: no cross-cluster messages were served from sender logs"
        );
        assert!(
            out.matches(&reference),
            "{tag}: recovered state diverged from the uninterrupted run"
        );
        eprintln!(
            "scenario {tag:<22} {:.3} s  attempts={} replayed={} catchup={}  bit-identical",
            t.elapsed().as_secs_f64(),
            out.recovery_attempts,
            out.messages_replayed,
            out.catchup_steps
        );
    }

    // Determinism gate: same scenario, every schedule, same bytes.
    let sweep: &[(usize, Engine)] = if quick {
        &[(1, Engine::Threads), (0, Engine::Tasks)]
    } else {
        &[
            (1, Engine::Threads),
            (2, Engine::Threads),
            (0, Engine::Threads),
            (1, Engine::Tasks),
            (2, Engine::Tasks),
            (0, Engine::Tasks),
        ]
    };
    let scenario = FaultScenario::at(shape.fail_at).l1_cluster(1).build();
    for &(workers, eng) in sweep {
        let tag = format!("det-{workers}-{eng:?}");
        let out = engine(&shape, &tag, workers, eng)
            .run(&scenario, shape.total)
            .unwrap_or_else(|e| panic!("{tag}: recovery failed: {e}"));
        assert!(
            out.matches(&reference),
            "replay diverged with {workers} worker(s) on the {eng:?} engine"
        );
        eprintln!("determinism {workers} worker(s) {eng:?}: bit-identical");
    }

    let telemetry_out = std::env::var("BENCH_REPLAY_TELEMETRY_OUT")
        .unwrap_or_else(|_| "TELEMETRY_replay_smoke.json".into());
    hcft_telemetry::Registry::global()
        .write_json(&telemetry_out)
        .expect("write telemetry JSON");
    eprintln!("wrote {telemetry_out}");
    eprintln!("gates ok");
}
