//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale paper|small] [--out DIR] [--telemetry PATH]
//!       [--partition-engine multilevel|modularity] <artifact>...
//!
//! artifacts: table1 table2 fig3a fig3b fig4a fig4b fig4c
//!            fig5a fig5b fig5c scaling replay all
//! ```
//!
//! `--scale paper` runs the full 1088-rank configuration of §V (64 nodes
//! × 16 application ranks + 64 FTI encoder ranks); `--scale small`
//! (default) runs a structurally identical 144-rank job in seconds.
//! Reports print to stdout; CSV series land under `--out` (default
//! `results/`). `--telemetry PATH` snapshots the process-global
//! telemetry registry to a JSON file after all artifacts complete —
//! the `table2.*` counters in it carry the same logged-bytes and
//! restart numbers as the rendered table, computed through the
//! instrumentation path instead of the report path.
//! `--partition-engine` selects the L1 clustering engine for the
//! hierarchical scheme in `table2`, `fig5c` and `scaling` (default
//! `multilevel`, the paper configuration), so engine sweeps can compare
//! the two from the CLI.
//!
//! ## `repro serve`
//!
//! ```text
//! repro serve [--addr HOST:PORT] [--http-threads N]
//!             [--trace-cap N] [--memo-cap N]
//! ```
//!
//! boots the always-on evaluation service (default `127.0.0.1:7733`)
//! and serves ranked scheme comparisons until killed:
//!
//! ```text
//! curl 'http://127.0.0.1:7733/evaluate?nodes=64&ppn=16&families=table2'
//! ```
//!
//! Routes: `/healthz`, `/evaluate`, `/cache`, `/metrics`. `--trace-cap`
//! bounds the traced-matrix LRU cache (default 8 traces), `--memo-cap`
//! the rendered-response memo (default 64 bodies). See DESIGN.md §19.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use hcft_bench::figures;
use hcft_bench::harness::{Artifact, Scale};

const ALL: &[&str] = &[
    "table1",
    "table2",
    "fig3a",
    "fig3b",
    "fig4a",
    "fig4b",
    "fig4c",
    "fig5a",
    "fig5b",
    "fig5c",
    "scaling",
    "efficiency",
    "alltoall",
    "ablation",
    "campaign",
    "campaign-grid",
    "heat3d",
    "logmem",
    "simtime",
    "replay",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--scale paper|small] [--out DIR] [--telemetry PATH]\n\
         \x20            [--partition-engine multilevel|modularity] <artifact>...\n\
         \x20      repro serve [--addr HOST:PORT] [--http-threads N]\n\
         \x20            [--trace-cap N] [--memo-cap N]\n\
         artifacts: {} all",
        ALL.join(" ")
    );
    ExitCode::FAILURE
}

/// `repro serve`: run the always-on evaluation service until killed.
fn serve_main(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = "127.0.0.1:7733".to_string();
    let mut threads = 4usize;
    let mut trace_cap = 8usize;
    let mut memo_cap = 64usize;
    while let Some(arg) = args.next() {
        let Some(v) = args.next() else {
            return usage();
        };
        let parsed = match arg.as_str() {
            "--addr" => {
                addr = v;
                continue;
            }
            "--http-threads" => v.parse().map(|n| threads = n),
            "--trace-cap" => v.parse().map(|n| trace_cap = n),
            "--memo-cap" => v.parse().map(|n| memo_cap = n),
            _ => return usage(),
        };
        if parsed.is_err() {
            return usage();
        }
    }
    let svc = Arc::new(hcft_service::EvalService::new(trace_cap, memo_cap));
    match hcft_service::serve(addr.as_str(), svc, threads) {
        Ok(server) => {
            let local = server.local_addr();
            println!("serving on http://{local} ({threads} http threads, trace cap {trace_cap}, memo cap {memo_cap})");
            println!("try: curl 'http://{local}/evaluate?nodes=64&ppn=16&families=table2'");
            // Always-on: park until the process is killed.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut scale = Scale::Small;
    let mut out = PathBuf::from("results");
    let mut engine = hcft_cluster::PartitionEngine::Multilevel;
    let mut telemetry_out: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    if std::env::args().nth(1).as_deref() == Some("serve") {
        return serve_main(std::env::args().skip(2));
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = args.next().and_then(|v| Scale::parse(&v)) else {
                    return usage();
                };
                scale = v;
            }
            "--out" => {
                let Some(v) = args.next() else {
                    return usage();
                };
                out = PathBuf::from(v);
            }
            "--telemetry" => {
                let Some(v) = args.next() else {
                    return usage();
                };
                telemetry_out = Some(PathBuf::from(v));
            }
            "--partition-engine" => {
                let Some(v) = args
                    .next()
                    .and_then(|v| hcft_cluster::PartitionEngine::parse(&v))
                else {
                    return usage();
                };
                engine = v;
            }
            "all" => wanted.extend(ALL.iter().map(|s| s.to_string())),
            a if ALL.contains(&a) => wanted.push(a.to_string()),
            _ => return usage(),
        }
    }
    if wanted.is_empty() {
        return usage();
    }
    for id in &wanted {
        let artifact: Artifact = match id.as_str() {
            "table1" => figures::table1(),
            "table2" => figures::table2(scale, engine),
            "fig3a" => figures::fig3a(scale),
            "fig3b" => figures::fig3b(scale),
            "fig4a" => figures::fig4a(),
            "fig4b" => figures::fig4b(scale),
            "fig4c" => figures::fig4c(),
            "fig5a" => figures::fig5a(scale),
            "fig5b" => figures::fig5b(scale),
            "fig5c" => figures::fig5c(scale, engine),
            "scaling" => figures::scaling(scale, engine),
            "efficiency" => figures::efficiency(scale),
            "alltoall" => figures::alltoall(scale),
            "ablation" => figures::ablation(scale),
            "campaign" => figures::campaign(scale),
            "campaign-grid" => figures::campaign_grid(scale),
            "heat3d" => figures::heat3d(scale),
            "logmem" => figures::logmem(scale),
            "simtime" => figures::simtime(scale),
            "replay" => figures::replay(scale),
            _ => unreachable!("validated above"),
        };
        println!("\n================= {} =================\n", artifact.id);
        println!("{}", artifact.report);
        match artifact.persist(&out) {
            Ok(paths) => {
                for p in paths {
                    println!("[csv] {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("failed to write CSVs for {}: {e}", artifact.id);
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = telemetry_out {
        if let Err(e) = hcft_telemetry::Registry::global().write_json(&path) {
            eprintln!("failed to write telemetry JSON: {e}");
            return ExitCode::FAILURE;
        }
        println!("[telemetry] {}", path.display());
    }
    ExitCode::SUCCESS
}
