//! Repro-pipeline perf-regression harness: times the stages the `repro`
//! binary is built from — the traced simmpi run, the Table II scoring
//! sweep, the Fig. 3a cluster-size sweep and the campaign Monte-Carlo —
//! and writes `BENCH_pipeline.json` (seconds per stage, plus the two
//! speedups this PR's runtime work is accountable for: sharded mailboxes
//! vs the single-shard baseline, and the parallel sweep engine vs a
//! serial reference).
//!
//! Run from the repo root so the JSON lands next to the sources:
//!
//! ```text
//! cargo run --release -p hcft-bench --bin bench_pipeline -- --scale small
//! ```
//!
//! `--scale small|paper|both` selects the configurations (default both).
//! `BENCH_PIPELINE_QUICK=1` shrinks repetitions for CI smoke runs;
//! `BENCH_PIPELINE_OUT` / `BENCH_PIPELINE_TELEMETRY_OUT` override the
//! output paths. Every measurement is folded into the process-global
//! telemetry registry under `bench.pipeline.*` and snapshotted to
//! `TELEMETRY_bench_pipeline.json`.
//!
//! Regression gates (assert-based, like `bench_erasure`):
//! * the sharded-mailbox traced run must not be slower than the
//!   single-shard baseline beyond a noise margin;
//! * the paper-scale traced run must hold the combined runtime-work
//!   speedup (zero-copy message path, M:N task scheduler, column-major
//!   stencil): ≥2.4x against the pinned pre-optimisation baseline
//!   ([`TRACED_SEED_BASELINE_SECS`]; `BENCH_PIPELINE_TRACED_REF`
//!   overrides the reference seconds for differently-sized hardware);
//! * the single-shard and sharded traced runs must produce identical
//!   byte matrices — shard count is a performance knob, never a
//!   semantic one;
//! * the parallel Fig. 3a sweep must beat the serial reference ≥2x when
//!   at least four worker threads are available, and must never fall
//!   behind it beyond the noise margin (on one hardware thread the
//!   engine runs inline, so the requirement degrades to "no overhead");
//! * the `sched_mixed` stage runs a deliberately imbalanced mixed job
//!   on the task scheduler with work stealing off and on; the steal-on
//!   run must be ≥1.4x faster when at least four hardware-backed
//!   workers are available (loose 0.75x "no overhead" floor below
//!   that), both runs must trace byte-identical matrices, and the
//!   `simmpi.sched.*` steal/preemption counters must move;
//! * the `ranks_22k` stage (paper scale, skipped under
//!   `BENCH_PIPELINE_QUICK`) runs a full-TSUBAME2 traced job — 1408
//!   nodes × 16 app ranks + encoders = 23 936 simulated ranks, far past
//!   `pid_max` for thread-per-rank — end-to-end on the task scheduler
//!   and asserts it completes with the expected traffic shape.
//!   `BENCH_PIPELINE_SCALE100K=1` additionally runs a 100 352-rank
//!   app-only stencil (stretch target; several minutes).
//!
//! Each stage row also reports `allocs`: the `runtime.alloc.msg_buffers`
//! delta across the stage, i.e. how many times the message path hit the
//! real allocator instead of the buffer pool.

use std::fmt::Write as _;
use std::time::Instant;

use hcft_bench::harness::Scale;
use hcft_cluster::naive;
use hcft_core::experiment::{
    evaluate_schemes, run_traced_job, run_traced_world, TraceResult, TracedJobConfig,
};
use hcft_msglog::HybridProtocol;
use rayon::prelude::*;

/// Wall-clock seconds of the paper-scale traced run before the
/// zero-copy message path, the allocation-free stencil kernels and the
/// yield-before-park receive strategy landed — measured on the same
/// reference box as every other committed baseline. The paper-scale gate
/// holds the product of those optimisations, the M:N task scheduler and
/// the column-major stencil at ≥2.4x.
const TRACED_SEED_BASELINE_SECS: f64 = 11.1694;

/// One timed stage at one scale.
struct Row {
    scale: &'static str,
    stage: &'static str,
    seconds: f64,
    baseline_seconds: f64,
    speedup: f64,
    /// `runtime.alloc.msg_buffers` delta over the stage: real allocator
    /// hits on the message path (0 = fully pooled).
    allocs: u64,
}

/// Minimum seconds over `samples` runs of `f` (wall clock; these stages
/// are seconds-long, so medians over many repeats are not affordable —
/// the minimum is the standard low-noise estimator for long stages).
fn time_min<T>(samples: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..samples {
        let t = Instant::now();
        let out = f();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("samples >= 1"))
}

/// The Fig. 3a per-size computation: logged% and restart% under naive
/// clustering — the unit of work the parallel sweep engine fans out.
fn fig3a_point(t: &TraceResult, size: usize) -> (f64, f64) {
    let placement = t.layout.app_placement();
    let n = placement.nprocs();
    let protocol = HybridProtocol::new(naive(n, size).l1.clone());
    let logged = protocol.stats_from_matrix(&t.app).logged_fraction() * 100.0;
    let restart = protocol.expected_restart_fraction(&placement) * 100.0;
    (logged, restart)
}

fn fig3a_sizes(t: &TraceResult) -> Vec<usize> {
    let n = t.layout.app_placement().nprocs();
    let mut sizes = Vec::new();
    let mut s = 1;
    while s <= n / 2 {
        sizes.push(s);
        s *= 2;
    }
    sizes
}

fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Paper => "paper",
        Scale::Small => "small",
    }
}

fn json_rows(rows: &[Row]) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"scale\": \"{}\", \"stage\": \"{}\", \"seconds\": {:.4}, \
             \"baseline_seconds\": {:.4}, \"speedup\": {:.2}, \"allocs\": {}}}{sep}",
            r.scale, r.stage, r.seconds, r.baseline_seconds, r.speedup, r.allocs
        )
        .expect("string write");
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale_arg = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("both");
    let scales: Vec<Scale> = match scale_arg {
        "both" => vec![Scale::Small, Scale::Paper],
        s => vec![Scale::parse(s).unwrap_or_else(|| {
            eprintln!("unknown scale {s:?} (want small|paper|both)");
            std::process::exit(2);
        })],
    };
    let quick = std::env::var("BENCH_PIPELINE_QUICK").is_ok();
    let trace_samples = 1; // each traced run costs seconds even at small scale
    let sweep_samples = if quick { 2 } else { 5 };

    let threads = rayon::current_num_threads();
    // Speedup expectations are bounded by physical parallelism, not the
    // pool size: RAYON_NUM_THREADS=8 on a 1-core box still runs serially.
    let effective = threads.min(
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    );
    let reg = hcft_telemetry::Registry::global();
    reg.gauge("bench.pipeline.threads").set(threads as f64);
    reg.gauge("bench.pipeline.effective_threads")
        .set(effective as f64);

    let msg_allocs = reg.counter("runtime.alloc.msg_buffers");

    let mut rows: Vec<Row> = Vec::new();
    for &scale in &scales {
        let name = scale_name(scale);
        eprintln!("[bench_pipeline] {name}: traced run, single-shard baseline…");
        let mut single_job = scale.job();
        single_job.mailbox_shards = 1;
        let (t_single, trace_single) = time_min(trace_samples, || run_traced_job(&single_job));
        eprintln!("[bench_pipeline] {name}: traced run, sharded mailboxes…");
        let job = scale.job();
        let allocs_before = msg_allocs.get();
        let (t_sharded, trace) = time_min(trace_samples, || run_traced_job(&job));
        let traced_allocs = msg_allocs.get() - allocs_before;
        // Shard count must be invisible in the results: both runs carry
        // byte-for-byte identical traffic matrices.
        assert_eq!(
            trace_single.full, trace.full,
            "sharded and single-shard traced runs diverged (full matrix) at {name} scale"
        );
        assert_eq!(
            trace_single.app, trace.app,
            "sharded and single-shard traced runs diverged (app matrix) at {name} scale"
        );
        let mailbox_speedup = t_single / t_sharded;
        eprintln!(
            "traced  {name:<6} sharded {t_sharded:7.3} s vs single-shard {t_single:7.3} s \
             ({mailbox_speedup:.2}x, {traced_allocs} allocs)"
        );
        rows.push(Row {
            scale: name,
            stage: "traced_run",
            seconds: t_sharded,
            baseline_seconds: t_single,
            speedup: mailbox_speedup,
            allocs: traced_allocs,
        });
        if scale == Scale::Paper {
            // The headline gate: the traced run against its own history.
            let reference = std::env::var("BENCH_PIPELINE_TRACED_REF")
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(TRACED_SEED_BASELINE_SECS);
            let seed_speedup = reference / t_sharded;
            eprintln!(
                "traced  {name:<6} {t_sharded:7.3} s vs seed baseline {reference:7.3} s \
                 ({seed_speedup:.2}x)"
            );
            rows.push(Row {
                scale: name,
                stage: "traced_vs_seed",
                seconds: t_sharded,
                baseline_seconds: reference,
                speedup: seed_speedup,
                allocs: traced_allocs,
            });
        }

        // Table II scoring: strategy build + four-dimension evaluation
        // (internally parallel over schemes). Serial baseline is the same
        // computation with the scheme loop forced sequential.
        let (nv, sg, ds) = scale.table2_sizes();
        let hier = hcft_cluster::HierarchicalConfig::default();
        let allocs_before = msg_allocs.get();
        let (t_table2, _) = time_min(sweep_samples, || {
            evaluate_schemes(&trace, nv, sg, ds, &hier)
        });
        let table2_allocs = msg_allocs.get() - allocs_before;
        eprintln!("table2  {name:<6} {t_table2:7.3} s");
        rows.push(Row {
            scale: name,
            stage: "table2",
            seconds: t_table2,
            baseline_seconds: t_table2,
            speedup: 1.0,
            allocs: table2_allocs,
        });

        // Fig. 3a sweep: serial reference loop vs the parallel engine.
        // One sweep is sub-millisecond at small scale, where the pool's
        // per-call thread spawn would swamp the measurement — time a
        // repeated item list so the parallel overhead amortizes the same
        // way it does across a full `repro all` run.
        let sizes = fig3a_sizes(&trace);
        let items: Vec<usize> = std::iter::repeat_n(&sizes, 16).flatten().copied().collect();
        let allocs_before = msg_allocs.get();
        let (t_serial, serial_points) = time_min(sweep_samples, || {
            items
                .iter()
                .map(|&s| fig3a_point(&trace, s))
                .collect::<Vec<_>>()
        });
        let (t_par, par_points) = time_min(sweep_samples, || {
            items
                .clone()
                .into_par_iter()
                .map(|s| fig3a_point(&trace, s))
                .collect::<Vec<_>>()
        });
        assert_eq!(
            serial_points, par_points,
            "parallel sweep must reproduce the serial sweep exactly"
        );
        let sweep_speedup = t_serial / t_par;
        eprintln!(
            "fig3a   {name:<6} parallel {t_par:7.3} s vs serial {t_serial:7.3} s \
             ({sweep_speedup:.2}x, {threads} threads)"
        );
        rows.push(Row {
            scale: name,
            stage: "fig3a_sweep",
            seconds: t_par,
            baseline_seconds: t_serial,
            speedup: sweep_speedup,
            allocs: msg_allocs.get() - allocs_before,
        });

        // Campaign Monte-Carlo (trials internally parallel): the batched
        // engine against the retained pre-engine scalar path
        // (`simulate_campaign_reference`). `bench_campaign` holds the
        // hard speedup gate; this row records the ratio at pipeline
        // scale for the committed JSON.
        let placement = trace.layout.app_placement();
        let scheme = naive(placement.nprocs(), nv);
        let campaign_cfg = hcft_core::campaign::CampaignConfig {
            trials: if quick { 50 } else { 200 },
            ..Default::default()
        };
        let allocs_before = msg_allocs.get();
        let (t_campaign, fast_out) = time_min(sweep_samples, || {
            hcft_core::campaign::simulate_campaign(&scheme, &placement, &campaign_cfg)
        });
        let (t_campaign_ref, ref_out) = time_min(sweep_samples, || {
            hcft_core::campaign::simulate_campaign_reference(&scheme, &placement, &campaign_cfg)
        });
        assert_eq!(
            (fast_out.failures, fast_out.catastrophic, fast_out.transient),
            (ref_out.failures, ref_out.catastrophic, ref_out.transient),
            "engine and reference campaigns must count the same events"
        );
        let campaign_speedup = t_campaign_ref / t_campaign;
        eprintln!(
            "campaign {name:<5} engine {t_campaign:7.3} s vs reference {t_campaign_ref:7.3} s \
             ({campaign_speedup:.2}x, {} trials)",
            campaign_cfg.trials
        );
        rows.push(Row {
            scale: name,
            stage: "campaign",
            seconds: t_campaign,
            baseline_seconds: t_campaign_ref,
            speedup: campaign_speedup,
            allocs: msg_allocs.get() - allocs_before,
        });

        for r in rows.iter().filter(|r| r.scale == name) {
            reg.gauge(&format!("bench.pipeline.{name}.{}.seconds", r.stage))
                .set(r.seconds);
            reg.gauge(&format!("bench.pipeline.{name}.{}.speedup", r.stage))
                .set(r.speedup);
            reg.gauge(&format!("bench.pipeline.{name}.{}.allocs", r.stage))
                .set(r.allocs as f64);
        }
    }

    // Full-TSUBAME2 scale: 1408 nodes × 16 app ranks + one encoder per
    // node = 23 936 simulated ranks, ~22× the paper's job and well past
    // the kernel's `pid_max` for thread-per-rank — it completes only on
    // the M:N task scheduler with the sparse trace recorder. The gate is
    // completion with the full traffic structure (init allgather, split,
    // stencil halos, checkpoint pushes, parity rings), not a time floor:
    // the row records the wall clock for the committed JSON.
    if scales.contains(&Scale::Paper) && !quick {
        eprintln!("[bench_pipeline] tsubame2: 23936-rank traced run (task scheduler)…");
        let job = TracedJobConfig::builder(1408, 16)
            .iterations(10)
            .checkpoint_every(5)
            .grid(22528, 4096)
            .process_grid(11264, 2)
            .encoder_group_nodes(4)
            .build()
            .expect("tsubame2 config is valid");
        let allocs_before = msg_allocs.get();
        let t = Instant::now();
        let world = run_traced_world(&job);
        let t_22k = t.elapsed().as_secs_f64();
        assert_eq!(world.layout.total_ranks(), 23_936);
        assert_eq!(world.trace.n(), 23_936);
        let msgs = world.trace.total_messages();
        // 22 528 app ranks × 10 iterations × ≥2 halo messages bounds the
        // stencil traffic alone from below; the allgathers add more.
        assert!(msgs > 450_000, "22k-rank run traced only {msgs} messages");
        eprintln!(
            "ranks_22k       {t_22k:7.3} s ({msgs} messages, {} bytes)",
            world.trace.total_bytes()
        );
        rows.push(Row {
            scale: "tsubame2",
            stage: "ranks_22k",
            seconds: t_22k,
            baseline_seconds: t_22k,
            speedup: 1.0,
            allocs: msg_allocs.get() - allocs_before,
        });
        reg.gauge("bench.pipeline.tsubame2.ranks_22k.seconds")
            .set(t_22k);
        drop(world);

        // Stretch row: 100 352 application ranks running the stencil
        // directly on the world communicator. No init allgather and no
        // communicator split — at this size each would hold an n-block
        // flat buffer per rank concurrently (hundreds of GB); the point
        // of the row is the scheduler and solver at 100k. Opt-in: it
        // costs minutes and ~20 GB.
        if std::env::var("BENCH_PIPELINE_SCALE100K").is_ok() {
            use hcft_simmpi::{World, WorldConfig};
            use hcft_tsunami::{TsunamiParams, TsunamiSim};
            eprintln!("[bench_pipeline] scale100k: 100352-rank stencil run…");
            let mut params = TsunamiParams::stable(100_352, 4096);
            params.process_grid = Some((50_176, 2));
            let iters = 5u64;
            let allocs_before = msg_allocs.get();
            let t = Instant::now();
            let result = World::run_with(
                100_352,
                WorldConfig {
                    recv_timeout: std::time::Duration::from_secs(600),
                    ..WorldConfig::default()
                },
                move |c| {
                    let mut sim = TsunamiSim::new(c, params.clone());
                    for _ in 0..iters {
                        sim.step();
                    }
                },
            );
            let t_100k = t.elapsed().as_secs_f64();
            let msgs = result.trace.total_messages();
            assert!(
                msgs >= 100_352 * iters * 2,
                "100k-rank run traced only {msgs} messages"
            );
            eprintln!("ranks_100k      {t_100k:7.3} s ({msgs} messages)");
            rows.push(Row {
                scale: "tsubame2",
                stage: "ranks_100k",
                seconds: t_100k,
                baseline_seconds: t_100k,
                speedup: 1.0,
                allocs: msg_allocs.get() - allocs_before,
            });
            reg.gauge("bench.pipeline.tsubame2.ranks_100k.seconds")
                .set(t_100k);
        }
    }

    // Scheduler stealing gate: a deliberately imbalanced mixed workload.
    // With `workers` workers and 4·workers ranks the static chunk
    // placement puts four ranks on each worker, and the first `workers`
    // ranks are heavy compute loops — so the low-numbered workers each
    // own several heavies while the rest own only trivial ranks. With
    // stealing off the heavy homes grind through their pile serially;
    // with stealing on the idle workers pull the surplus over. Stealing
    // moves *where* a rank runs, never what it computes: outputs and
    // byte matrices must match exactly.
    let sched_workers = std::env::var("HCFT_SIMMPI_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&w| w > 0)
        .unwrap_or(effective);
    {
        use hcft_simmpi::{Engine, World, WorldConfig};
        let workers = sched_workers;
        let n = workers * 4;
        let heavy_reps: u64 = if quick { 600 } else { 2_000 };
        eprintln!(
            "[bench_pipeline] mixed: {n}-rank imbalanced job on {workers} workers, \
             steal off vs on…"
        );
        let run = |steal: bool| {
            let cfg = WorldConfig {
                workers,
                engine: Engine::Tasks,
                steal: Some(steal),
                yield_budget: Some(32),
                recv_timeout: std::time::Duration::from_secs(120),
                ..WorldConfig::default()
            };
            World::run_with(n, cfg, move |c| {
                let rank = c.rank();
                let last = c.size() - 1;
                let value = if rank < workers {
                    // Heavy: a 1-D relaxation over 32k cells, repeated,
                    // with one deterministic yield point per sweep.
                    let mut grid = vec![0.0f64; 64 * 512];
                    for (i, g) in grid.iter_mut().enumerate() {
                        *g = (rank * 31 + i) as f64 * 1e-6;
                    }
                    let mut acc = 0.0f64;
                    for _ in 0..heavy_reps {
                        hcft_simmpi::maybe_yield();
                        for i in 1..64 * 512 - 1 {
                            grid[i] = 0.25 * grid[i - 1] + 0.5 * grid[i] + 0.25 * grid[i + 1];
                        }
                        acc += grid[grid.len() / 2];
                    }
                    acc.to_bits()
                } else {
                    // Light: a dab of integer mixing.
                    let mut acc = rank as u64;
                    for i in 0..20_000u64 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                    }
                    acc
                };
                // Funnel every result to the last (light) rank so the
                // trace has a fixed, order-checked shape.
                if rank == last {
                    let mut sum = value;
                    for src in 0..last {
                        sum = sum.wrapping_add(c.recv_vec::<u64>(src, 42)[0]);
                    }
                    sum
                } else {
                    c.send_slice(last, 42, &[value]);
                    value
                }
            })
        };
        let steal_hits = reg.counter("simmpi.sched.steal_hits");
        let preemptions = reg.counter("simmpi.sched.preemptions");
        let (t_off, out_off) = time_min(1, || run(false));
        let hits_before = steal_hits.get();
        let preempt_before = preemptions.get();
        let (t_on, out_on) = time_min(1, || run(true));
        let hits_delta = steal_hits.get() - hits_before;
        let preempt_delta = preemptions.get() - preempt_before;
        assert_eq!(
            out_off.outputs, out_on.outputs,
            "work stealing changed rank outputs"
        );
        assert_eq!(
            out_off.trace.byte_matrix(),
            out_on.trace.byte_matrix(),
            "work stealing changed the traffic matrix"
        );
        assert!(
            preempt_delta > 0,
            "yield budget 32 produced no preemptions in the mixed job"
        );
        if workers >= 4 {
            assert!(
                hits_delta > 0,
                "stealing enabled on {workers} workers but simmpi.sched.steal_hits \
                 never moved"
            );
        }
        let steal_speedup = t_off / t_on;
        eprintln!(
            "sched   mixed  steal-on {t_on:7.3} s vs steal-off {t_off:7.3} s \
             ({steal_speedup:.2}x, {workers} workers, {hits_delta} steals, \
             {preempt_delta} preemptions)"
        );
        rows.push(Row {
            scale: "mixed",
            stage: "sched_mixed",
            seconds: t_on,
            baseline_seconds: t_off,
            speedup: steal_speedup,
            allocs: 0,
        });
        reg.gauge("bench.pipeline.mixed.sched_mixed.seconds")
            .set(t_on);
        reg.gauge("bench.pipeline.mixed.sched_mixed.speedup")
            .set(steal_speedup);
    }

    let mut json = String::new();
    json.push_str("{\n");
    writeln!(json, "  \"bench\": \"pipeline\",").expect("write");
    writeln!(
        json,
        "  \"unit\": \"seconds of wall clock per stage (min over repeats)\","
    )
    .expect("write");
    writeln!(json, "  \"threads\": {threads},").expect("write");
    writeln!(json, "  \"stages\": [").expect("write");
    json.push_str(&json_rows(&rows));
    writeln!(json, "  ]").expect("write");
    json.push_str("}\n");

    let out = std::env::var("BENCH_PIPELINE_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into());
    std::fs::write(&out, &json).expect("write BENCH_pipeline.json");
    eprintln!("wrote {out}");

    let telemetry_out = std::env::var("BENCH_PIPELINE_TELEMETRY_OUT")
        .unwrap_or_else(|_| "TELEMETRY_bench_pipeline.json".into());
    reg.write_json(&telemetry_out)
        .expect("write telemetry JSON");
    eprintln!("wrote {telemetry_out}");

    // Regression gates. Timing noise on shared CI boxes is real; the
    // margins are deliberately loose in the "no change expected"
    // direction and strict where the hardware can actually show a win.
    for r in &rows {
        match r.stage {
            "traced_run" => {
                assert!(
                    r.speedup >= 0.75,
                    "perf regression: sharded mailboxes are {:.2}x the single-shard \
                     baseline at {} scale (floor 0.75x)",
                    r.speedup,
                    r.scale
                );
            }
            "traced_vs_seed" => {
                assert!(
                    r.speedup >= 2.4,
                    "perf regression: paper-scale traced run is {:.3} s, only {:.2}x \
                     the {:.3} s seed baseline (floor 2.4x; set \
                     BENCH_PIPELINE_TRACED_REF to re-reference on other hardware)",
                    r.seconds,
                    r.speedup,
                    r.baseline_seconds
                );
            }
            "fig3a_sweep" => {
                let required = if effective >= 4 {
                    2.0
                } else if effective >= 2 {
                    1.2
                } else {
                    0.85
                };
                assert!(
                    r.speedup >= required,
                    "perf regression: parallel fig3a sweep is {:.2}x the serial \
                     reference at {} scale with {effective} effective threads \
                     (need {required:.2}x)",
                    r.speedup,
                    r.scale
                );
            }
            "sched_mixed" => {
                // Stealing can only win where hardware threads back the
                // workers; below four it degrades to "no overhead".
                let backed = sched_workers.min(effective);
                let required = if backed >= 4 { 1.4 } else { 0.75 };
                assert!(
                    r.speedup >= required,
                    "perf regression: work stealing is {:.2}x the steal-off \
                     baseline on {backed} hardware-backed workers (need {required:.2}x)",
                    r.speedup
                );
            }
            _ => {}
        }
    }
    eprintln!("gates ok ({threads} threads)");
}
