//! Evaluation-service throughput harness: boots the always-on HTTP
//! service in-process, measures every cache tier end-to-end over real
//! sockets, and writes `BENCH_service.json`.
//!
//! ```text
//! cargo run --release -p hcft-bench --bin bench_service
//! ```
//!
//! `BENCH_SERVICE_QUICK=1` shrinks the request shape and burst sizes
//! for CI smoke runs (the gates stay on); `BENCH_SERVICE_OUT` /
//! `BENCH_SERVICE_TELEMETRY_OUT` override the output paths. Every
//! measurement also lands under `bench.service.*` in the process-global
//! registry, snapshotted to `TELEMETRY_bench_service.json`.
//!
//! Three request tiers are timed (all over HTTP, fresh connection per
//! request, exactly what a scheduler client sees):
//!
//! * **cold** — trace miss + family sweep: the full traced run;
//! * **warm-eval** — trace hit, response-memo miss: the family sweep
//!   recomputed on the cached matrix;
//! * **memo** — fully warm: the stored response bytes.
//!
//! Regression gates (assert-based, like `bench_pipeline`):
//! * memo-warm requests must be ≥20× faster than cold — the cache is
//!   the service's reason to exist;
//! * warm-eval requests must beat cold ≥1.2× — the traced matrix must
//!   actually be reused;
//! * sustained memo-warm throughput must hold ≥50 requests/s;
//! * responses must be **byte-identical** across the cold, warm-eval
//!   and memo paths, across a server restart, and across rayon thread
//!   counts (subprocess probes with `RAYON_NUM_THREADS=1` and `=4` —
//!   the pool latches the variable once per process);
//! * the `service.cache.*` counters must move: hits, misses and (after
//!   a deliberate overflow of a 2-entry cache) at least one eviction.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use hcft_service::{serve, EvalRequest, EvalService};

/// `--probe <query>`: evaluate one request in-process and print the
/// response body to stdout. Run as a subprocess with a pinned
/// `RAYON_NUM_THREADS` to prove responses are byte-identical at any
/// thread count (the rayon pool latches the variable once per process,
/// so the comparison needs separate processes).
fn probe(query: &str) -> ! {
    let svc = EvalService::new(2, 2);
    let req = EvalRequest::from_query(query).expect("probe query parses");
    let body = svc.evaluate(&req).expect("probe evaluation succeeds");
    print!("{body}");
    std::process::exit(0);
}

fn get(addr: SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to service");
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("complete response");
    let status = head.lines().next().unwrap_or_default().to_string();
    assert!(
        status.contains("200"),
        "GET {target} failed: {status}\n{body}"
    );
    (status, body.to_string())
}

fn time_get(addr: SocketAddr, target: &str) -> (f64, String) {
    let t = Instant::now();
    let (_, body) = get(addr, target);
    (t.elapsed().as_secs_f64(), body)
}

/// Pull one integer counter out of the `/cache` JSON
/// (`"name": 123` under the given section).
fn cache_counter(cache_json: &str, section: &str, name: &str) -> u64 {
    let sect = cache_json
        .split(&format!("\"{section}\""))
        .nth(1)
        .unwrap_or_else(|| panic!("no {section} section in {cache_json}"));
    let sect = &sect[..sect.find('}').unwrap_or(sect.len())];
    sect.split(&format!("\"{name}\": "))
        .nth(1)
        .and_then(|s| {
            s.split(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or_else(|| panic!("no {section}.{name} counter in {cache_json}"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--probe") {
        let query = args.get(i + 1).expect("--probe takes a query string");
        probe(query);
    }

    let quick = std::env::var("BENCH_SERVICE_QUICK").is_ok();
    let (scale, shape) = if quick {
        ("small", "nodes=8&ppn=4")
    } else {
        // The paper machine: §V's 64 nodes × 16 app ranks, 100
        // iterations — the same trace key as `TracedJobConfig::paper_1024`.
        ("paper", "nodes=64&ppn=16&iters=100")
    };
    let eval_full = format!("/evaluate?{shape}&families=full");
    let eval_t2 = format!("/evaluate?{shape}&families=table2");
    let warm_eval_samples = if quick { 2 } else { 4 };
    let memo_samples = if quick { 15 } else { 40 };
    let burst = if quick { 60 } else { 200 };

    // trace cap 2 / memo cap 1 on purpose: small enough that the run
    // itself exercises response re-rendering (memo eviction via family
    // alternation) and trace eviction (a third machine shape below).
    let svc = Arc::new(EvalService::new(2, 1));
    let server = serve("127.0.0.1:0", Arc::clone(&svc), 4).expect("bind service");
    let addr = server.local_addr();
    let (_, health) = get(addr, "/healthz");
    assert_eq!(health, "ok\n");

    eprintln!("[bench_service] {scale}: cold request ({eval_full})…");
    let (t_cold_first, body_cold) = time_get(addr, &eval_full);
    eprintln!(
        "cold            {t_cold_first:9.4} s ({} bytes)",
        body_cold.len()
    );

    // Warm-eval: alternate the family selection so the 1-entry memo
    // always misses while the trace stays resident — the request pays
    // for the sweep, never for the trace.
    eprintln!("[bench_service] {scale}: warm-eval requests (trace hit, memo miss)…");
    let mut t_warm_eval = f64::INFINITY;
    for _ in 0..warm_eval_samples {
        let (_, t2_body) = get(addr, &eval_t2);
        assert_ne!(t2_body, body_cold, "different sweeps, different bodies");
        let (t, body) = time_get(addr, &eval_full);
        assert_eq!(body, body_cold, "warm-eval response must be byte-identical");
        t_warm_eval = t_warm_eval.min(t);
    }
    eprintln!("warm-eval       {t_warm_eval:9.4} s");

    // Memo tier: the response the previous loop left resident.
    eprintln!("[bench_service] {scale}: memo-warm requests…");
    let mut t_memo = f64::INFINITY;
    for _ in 0..memo_samples {
        let (t, body) = time_get(addr, &eval_full);
        assert_eq!(body, body_cold, "memo response must be byte-identical");
        t_memo = t_memo.min(t);
    }
    eprintln!("memo            {t_memo:9.4} s");

    // Sustained throughput on the memo tier, fresh connection each time.
    eprintln!("[bench_service] {scale}: {burst}-request burst…");
    let t = Instant::now();
    for _ in 0..burst {
        let (_, body) = get(addr, &eval_full);
        debug_assert_eq!(body, body_cold);
    }
    let requests_per_sec = burst as f64 / t.elapsed().as_secs_f64();
    eprintln!("throughput      {requests_per_sec:9.1} requests/s");

    // Overflow the 2-entry trace cache with two cheap extra shapes so
    // the eviction path (deterministic LRU) runs in every bench run.
    let (_, _) = get(addr, "/evaluate?nodes=8&ppn=4&iters=11");
    let (_, _) = get(addr, "/evaluate?nodes=8&ppn=4&iters=13");
    let (_, cache_json) = get(addr, "/cache");
    let trace_hits = cache_counter(&cache_json, "trace", "hits");
    let trace_misses = cache_counter(&cache_json, "trace", "misses");
    let trace_evictions = cache_counter(&cache_json, "trace", "evictions");
    let memo_hits = cache_counter(&cache_json, "memo", "hits");
    eprintln!(
        "cache           {trace_hits} hits, {trace_misses} misses, \
         {trace_evictions} evictions (memo: {memo_hits} hits)"
    );

    // Restart: a fresh service must rebuild the same bytes from scratch.
    server.shutdown();
    eprintln!("[bench_service] {scale}: restarted server, cold again…");
    let svc2 = Arc::new(EvalService::new(2, 1));
    let server2 = serve("127.0.0.1:0", Arc::clone(&svc2), 4).expect("rebind service");
    let (t_cold_restart, body_restart) = time_get(server2.local_addr(), &eval_full);
    assert_eq!(
        body_restart, body_cold,
        "response must be byte-identical across a server restart"
    );
    server2.shutdown();
    let t_cold = t_cold_first.min(t_cold_restart);
    eprintln!("cold (restart)  {t_cold_restart:9.4} s");

    // Thread-count invariance: the rayon pool latches RAYON_NUM_THREADS
    // once per process, so probe subprocesses pin 1 and 4 threads and
    // must print the exact bytes the (default-threaded) server produced.
    let exe = std::env::current_exe().expect("current exe");
    let probe_query = format!("{shape}&families=full");
    for threads in ["1", "4"] {
        eprintln!("[bench_service] {scale}: probe with RAYON_NUM_THREADS={threads}…");
        let out = std::process::Command::new(&exe)
            .arg("--probe")
            .arg(&probe_query)
            .env("RAYON_NUM_THREADS", threads)
            .output()
            .expect("spawn probe subprocess");
        assert!(
            out.status.success(),
            "probe failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            body_cold,
            "response must be byte-identical with RAYON_NUM_THREADS={threads}"
        );
    }

    let cold_over_memo = t_cold / t_memo;
    let cold_over_warm_eval = t_cold / t_warm_eval;
    let reg = hcft_telemetry::Registry::global();
    for (k, v) in [
        ("cold_seconds", t_cold),
        ("warm_eval_seconds", t_warm_eval),
        ("memo_seconds", t_memo),
        ("cold_over_memo", cold_over_memo),
        ("cold_over_warm_eval", cold_over_warm_eval),
        ("requests_per_sec", requests_per_sec),
    ] {
        reg.gauge(&format!("bench.service.{scale}.{k}")).set(v);
    }

    let mut json = String::new();
    json.push_str("{\n");
    writeln!(json, "  \"bench\": \"service\",").expect("write");
    writeln!(json, "  \"scale\": \"{scale}\",").expect("write");
    writeln!(json, "  \"request\": \"{eval_full}\",").expect("write");
    writeln!(json, "  \"body_bytes\": {},", body_cold.len()).expect("write");
    writeln!(json, "  \"cold_seconds\": {t_cold:.4},").expect("write");
    writeln!(json, "  \"warm_eval_seconds\": {t_warm_eval:.6},").expect("write");
    writeln!(json, "  \"memo_seconds\": {t_memo:.6},").expect("write");
    writeln!(json, "  \"cold_over_memo\": {cold_over_memo:.1},").expect("write");
    writeln!(json, "  \"cold_over_warm_eval\": {cold_over_warm_eval:.2},").expect("write");
    writeln!(json, "  \"requests_per_sec\": {requests_per_sec:.1},").expect("write");
    writeln!(
        json,
        "  \"cache\": {{\"hits\": {trace_hits}, \"misses\": {trace_misses}, \
         \"evictions\": {trace_evictions}, \"memo_hits\": {memo_hits}}},"
    )
    .expect("write");
    writeln!(
        json,
        "  \"byte_identical\": {{\"cache_paths\": true, \"restart\": true, \"thread_counts\": true}}"
    )
    .expect("write");
    json.push_str("}\n");

    let out = std::env::var("BENCH_SERVICE_OUT").unwrap_or_else(|_| "BENCH_service.json".into());
    std::fs::write(&out, &json).expect("write BENCH_service.json");
    eprintln!("wrote {out}");
    let telemetry_out = std::env::var("BENCH_SERVICE_TELEMETRY_OUT")
        .unwrap_or_else(|_| "TELEMETRY_bench_service.json".into());
    reg.write_json(&telemetry_out)
        .expect("write telemetry JSON");
    eprintln!("wrote {telemetry_out}");

    // Gates.
    assert!(trace_hits > 0, "trace-cache hits never moved");
    assert!(
        trace_misses >= 3,
        "expected >= 3 trace misses (main + two eviction shapes), got {trace_misses}"
    );
    assert!(
        trace_evictions >= 1,
        "2-entry cache never evicted under 3 shapes"
    );
    assert!(memo_hits > 0, "response memo never hit");
    assert!(
        cold_over_memo >= 20.0,
        "perf regression: memo-warm request is only {cold_over_memo:.1}x faster than \
         cold ({t_memo:.6} s vs {t_cold:.4} s; floor 20x)"
    );
    // At paper scale the traced run dominates a cold request, so reusing
    // the matrix must show a clear win. At the quick smoke shape the
    // sweep itself dominates and the ratio is ~1 by construction — the
    // gate degrades to "warm-eval is not slower than cold beyond noise"
    // (trace reuse is still proven by the hits counter above).
    let warm_eval_floor = if quick { 0.8 } else { 1.2 };
    assert!(
        cold_over_warm_eval >= warm_eval_floor,
        "perf regression: warm-eval request is only {cold_over_warm_eval:.2}x faster \
         than cold — the traced matrix is not being reused (floor {warm_eval_floor}x)"
    );
    assert!(
        requests_per_sec >= 50.0,
        "perf regression: {requests_per_sec:.1} requests/s sustained on the memo tier \
         (floor 50/s)"
    );
    eprintln!("gates ok (cold/memo {cold_over_memo:.0}x, {requests_per_sec:.0} req/s)");
}
