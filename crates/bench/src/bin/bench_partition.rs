//! Partition-engine perf-regression harness: proves the scalable
//! clustering engines (lazy-deletion heap CNM, incremental corner-heap
//! seeding, gain-bucket refinement) against their retained quadratic
//! references on synthetic large machines, and pins the paper-scale
//! Table II partitions bit-for-bit. Writes `BENCH_partition.json`.
//!
//! Run from the repo root so the JSON lands next to the sources:
//!
//! ```text
//! cargo run --release -p hcft-bench --bin bench_partition
//! ```
//!
//! `BENCH_PARTITION_QUICK=1` trims graph sizes for CI smoke runs (and
//! checks the fixture at small scale only — the paper-scale trace costs
//! ~13 s of simulation before partitioning starts).
//! `BENCH_PARTITION_OUT` / `BENCH_PARTITION_TELEMETRY_OUT` override the
//! output paths. `--dump-fixture [path]` regenerates
//! `results/partition_fixtures.txt` from the current engines instead of
//! benchmarking (only legitimate after an intentional, reviewed change
//! to partition semantics).
//!
//! Regression gates (assert-based, like `bench_pipeline`):
//! * heap CNM must produce the *identical* partition to the quadratic
//!   reference at every size, and be ≥5× faster at ≥8k nodes;
//! * incremental seeding must reproduce the per-seed-scan reference
//!   exactly, and be ≥5× faster at ≥32k nodes;
//! * edge-cut must match the reference within 2% (trivially exact here,
//!   asserted anyway so the gate survives future divergence);
//! * the Table II node-graph partitions must match
//!   `results/partition_fixtures.txt` byte-for-byte.

use std::fmt::Write as _;
use std::time::Instant;

use hcft_bench::harness::{traced, Scale};
use hcft_graph::WeightedGraph;
use hcft_partition::reference::grow_initial_scan;
use hcft_partition::{
    check_partition, modularity_clusters, modularity_clusters_reference, MultilevelConfig,
    MultilevelPartitioner, SizeBounds,
};
use hcft_topology::synthetic::{fat_tree, torus2d, torus3d, SyntheticGraph};

/// One timed stage on one graph.
struct Row {
    stage: &'static str,
    graph: String,
    nodes: usize,
    seconds: f64,
    baseline_seconds: f64,
    speedup: f64,
    cut: u64,
    baseline_cut: u64,
}

/// Minimum seconds over `samples` runs of `f` (the low-noise estimator
/// for stages that run tens of milliseconds to seconds).
fn time_min<T>(samples: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..samples {
        let t = Instant::now();
        let out = f();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("samples >= 1"))
}

fn to_weighted(sg: &SyntheticGraph) -> WeightedGraph {
    let mut g = WeightedGraph::new(sg.nodes);
    for &(u, v, w) in &sg.edges {
        g.add_edge(u as usize, v as usize, w);
    }
    g
}

fn node_graph(scale: Scale) -> WeightedGraph {
    let t = traced(scale);
    let placement = t.layout.app_placement();
    WeightedGraph::from_comm_matrix(&t.app.aggregate_by_node(&placement))
}

/// The Table II multilevel configuration: exact 4-node L1 clusters, with
/// the same k-relaxation the scheme builder applies.
fn multilevel_table2(g: &WeightedGraph) -> Vec<usize> {
    let nodes = g.n();
    let bounds = SizeBounds::new(4, 4);
    let mut k = (nodes / 4).max(1);
    while k > 1 && (k * 4 > nodes || nodes > k * 4) {
        k -= 1;
    }
    MultilevelPartitioner::new(MultilevelConfig::new(k, bounds)).partition(g)
}

fn fixture_line(out: &mut String, label: &str, part: &[usize]) {
    write!(out, "{label}:").expect("write");
    for &p in part {
        write!(out, " {p}").expect("write");
    }
    out.push('\n');
}

/// The Table II engine partitions at one scale, in fixture format.
fn fixture_entries(name: &str, scale: Scale) -> String {
    let g = node_graph(scale);
    let mut out = String::new();
    fixture_line(
        &mut out,
        &format!("{name} multilevel_4_4"),
        &multilevel_table2(&g),
    );
    fixture_line(
        &mut out,
        &format!("{name} modularity_4_8"),
        &modularity_clusters(&g, SizeBounds::new(4, 8)),
    );
    out
}

fn json_rows(rows: &[Row], threads: usize, effective: usize) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"stage\": \"{}\", \"graph\": \"{}\", \"nodes\": {}, \
             \"seconds\": {:.4}, \"baseline_seconds\": {:.4}, \"speedup\": {:.2}, \
             \"cut\": {}, \"baseline_cut\": {}, \"threads\": {threads}, \
             \"effective_threads\": {effective}}}{sep}",
            r.stage,
            r.graph,
            r.nodes,
            r.seconds,
            r.baseline_seconds,
            r.speedup,
            r.cut,
            r.baseline_cut
        )
        .expect("string write");
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--dump-fixture") {
        let path = args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| "results/partition_fixtures.txt".into());
        let mut out = String::new();
        for (name, scale) in [("small", Scale::Small), ("paper", Scale::Paper)] {
            out.push_str(&fixture_entries(name, scale));
        }
        std::fs::write(&path, &out).expect("write fixtures");
        eprintln!("wrote {path}");
        return;
    }

    let quick = std::env::var("BENCH_PARTITION_QUICK").is_ok();
    let samples = if quick { 1 } else { 3 };
    let threads = rayon::current_num_threads();
    let effective = threads.min(
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    );
    let reg = hcft_telemetry::Registry::global();
    reg.gauge("bench.partition.threads").set(threads as f64);
    reg.gauge("bench.partition.effective_threads")
        .set(effective as f64);

    let mut rows: Vec<Row> = Vec::new();

    // ---- CNM: lazy-deletion heap vs the quadratic scan reference ----
    let cnm_graphs: Vec<(String, SyntheticGraph)> = {
        let mut v = vec![
            ("torus2d_64x64".to_string(), torus2d(64, 64, 1)),
            ("torus3d_16x16x32".to_string(), torus3d(16, 16, 32, 2)),
        ];
        if !quick {
            v.push(("torus3d_32x32x16".to_string(), torus3d(32, 32, 16, 3)));
        }
        v
    };
    for (gname, sg) in &cnm_graphs {
        let g = to_weighted(sg);
        let bounds = SizeBounds::new(2, 64);
        eprintln!("[bench_partition] cnm {gname} ({} nodes)…", g.n());
        let (t_ref, part_ref) = time_min(1, || modularity_clusters_reference(&g, bounds));
        let (t_heap, part_heap) = time_min(samples, || modularity_clusters(&g, bounds));
        assert_eq!(
            part_heap, part_ref,
            "heap CNM diverged from the quadratic reference on {gname}"
        );
        let cut = g.cut_weight(&part_heap);
        let baseline_cut = g.cut_weight(&part_ref);
        let speedup = t_ref / t_heap;
        eprintln!(
            "cnm     {gname:<18} heap {t_heap:8.3} s vs reference {t_ref:8.3} s ({speedup:.1}x)"
        );
        rows.push(Row {
            stage: "cnm",
            graph: gname.clone(),
            nodes: g.n(),
            seconds: t_heap,
            baseline_seconds: t_ref,
            speedup,
            cut,
            baseline_cut,
        });
    }

    // ---- Seeding: incremental corner heap vs the per-seed scan ----
    let seed_graphs: Vec<(String, SyntheticGraph)> = {
        let mut v = vec![("torus2d_256x128".to_string(), torus2d(256, 128, 4))];
        if !quick {
            v.push(("torus2d_256x256".to_string(), torus2d(256, 256, 5)));
        }
        v
    };
    for (gname, sg) in &seed_graphs {
        let g = to_weighted(sg);
        let k = g.n() / 64;
        eprintln!("[bench_partition] seed {gname} ({} nodes, k={k})…", g.n());
        let (t_scan, part_scan) = time_min(1, || grow_initial_scan(&g, k, 0x5eed));
        let (t_heap, part_heap) = time_min(samples, || {
            hcft_partition::multilevel::grow_initial(&g, k, 0x5eed)
        });
        assert_eq!(
            part_heap, part_scan,
            "incremental seeding diverged from the scan reference on {gname}"
        );
        let cut = g.cut_weight(&part_heap);
        let speedup = t_scan / t_heap;
        eprintln!("seed    {gname:<18} heap {t_heap:8.3} s vs scan {t_scan:8.3} s ({speedup:.1}x)");
        rows.push(Row {
            stage: "seed",
            graph: gname.clone(),
            nodes: g.n(),
            seconds: t_heap,
            baseline_seconds: t_scan,
            speedup,
            cut,
            baseline_cut: cut,
        });
    }

    // ---- Multilevel end-to-end on large machines ----
    let ml_graphs: Vec<(String, SyntheticGraph)> = {
        let mut v = vec![("fat_tree_16x16x16".to_string(), fat_tree(16, 16, 16, 6))];
        if !quick {
            v.push(("torus3d_32x32x32".to_string(), torus3d(32, 32, 32, 7)));
            v.push(("torus3d_64x64x32".to_string(), torus3d(64, 64, 32, 8)));
        }
        v
    };
    for (gname, sg) in &ml_graphs {
        let g = to_weighted(sg);
        let k = g.n() / 64;
        let bounds = SizeBounds::new(16, 256);
        eprintln!(
            "[bench_partition] multilevel {gname} ({} nodes, k={k})…",
            g.n()
        );
        let cfg = MultilevelConfig::new(k, bounds);
        let (t_full, part) = time_min(1, || MultilevelPartitioner::new(cfg.clone()).partition(&g));
        check_partition(&g, &part, Some(bounds)).expect("valid large partition");
        let cut = g.cut_weight(&part);
        eprintln!("mlevel  {gname:<18} {t_full:8.3} s (cut {cut})");
        rows.push(Row {
            stage: "multilevel",
            graph: gname.clone(),
            nodes: g.n(),
            seconds: t_full,
            baseline_seconds: t_full,
            speedup: 1.0,
            cut,
            baseline_cut: cut,
        });
    }

    // ---- Paper-scale identity: Table II partitions vs the fixture ----
    let fixture_path = std::env::var("BENCH_PARTITION_FIXTURES")
        .unwrap_or_else(|_| "results/partition_fixtures.txt".into());
    let fixture = std::fs::read_to_string(&fixture_path)
        .unwrap_or_else(|e| panic!("read {fixture_path}: {e} (run from the repo root)"));
    let scales: &[(&str, Scale)] = if quick {
        &[("small", Scale::Small)]
    } else {
        &[("small", Scale::Small), ("paper", Scale::Paper)]
    };
    for &(name, scale) in scales {
        eprintln!("[bench_partition] fixture check at {name} scale…");
        let (t_id, entries) = time_min(1, || fixture_entries(name, scale));
        for line in entries.lines() {
            assert!(
                fixture.lines().any(|l| l == line),
                "partition drift at {name} scale: fresh `{}` not in {fixture_path}",
                line.split(':').next().unwrap_or(line)
            );
        }
        eprintln!("fixture {name:<18} identical ({t_id:8.3} s incl. trace)");
        rows.push(Row {
            stage: "paper_identity",
            graph: format!("table2_{name}"),
            nodes: 0,
            seconds: t_id,
            baseline_seconds: t_id,
            speedup: 1.0,
            cut: 0,
            baseline_cut: 0,
        });
    }

    for r in &rows {
        reg.gauge(&format!("bench.partition.{}.{}.seconds", r.stage, r.graph))
            .set(r.seconds);
        reg.gauge(&format!("bench.partition.{}.{}.speedup", r.stage, r.graph))
            .set(r.speedup);
    }

    let mut json = String::new();
    json.push_str("{\n");
    writeln!(json, "  \"bench\": \"partition\",").expect("write");
    writeln!(
        json,
        "  \"unit\": \"seconds of wall clock per stage (min over repeats)\","
    )
    .expect("write");
    writeln!(json, "  \"threads\": {threads},").expect("write");
    writeln!(json, "  \"effective_threads\": {effective},").expect("write");
    writeln!(json, "  \"stages\": [").expect("write");
    json.push_str(&json_rows(&rows, threads, effective));
    writeln!(json, "  ]").expect("write");
    json.push_str("}\n");

    let out =
        std::env::var("BENCH_PARTITION_OUT").unwrap_or_else(|_| "BENCH_partition.json".into());
    std::fs::write(&out, &json).expect("write BENCH_partition.json");
    eprintln!("wrote {out}");

    let telemetry_out = std::env::var("BENCH_PARTITION_TELEMETRY_OUT")
        .unwrap_or_else(|_| "TELEMETRY_bench_partition.json".into());
    reg.write_json(&telemetry_out)
        .expect("write telemetry JSON");
    eprintln!("wrote {telemetry_out}");

    // Regression gates. The speedups are algorithmic (heap vs quadratic
    // scan), not parallelism-bound, so the floors hold on one core too.
    for r in &rows {
        let cut_ratio = if r.baseline_cut == 0 {
            1.0
        } else {
            r.cut as f64 / r.baseline_cut as f64
        };
        assert!(
            (cut_ratio - 1.0).abs() <= 0.02,
            "edge-cut drift: {} on {} is {:.3}x the reference cut (allowed ±2%)",
            r.stage,
            r.graph,
            cut_ratio
        );
        match r.stage {
            "cnm" if r.nodes >= 8192 => {
                assert!(
                    r.speedup >= 5.0,
                    "perf regression: heap CNM is only {:.1}x the quadratic reference \
                     on {} ({} nodes, floor 5x)",
                    r.speedup,
                    r.graph,
                    r.nodes
                );
            }
            "seed" if r.nodes >= 32768 => {
                assert!(
                    r.speedup >= 5.0,
                    "perf regression: incremental seeding is only {:.1}x the scan \
                     reference on {} ({} nodes, floor 5x)",
                    r.speedup,
                    r.graph,
                    r.nodes
                );
            }
            _ => {}
        }
    }
    eprintln!("gates ok ({threads} threads, {effective} effective)");
}
