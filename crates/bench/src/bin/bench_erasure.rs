//! Erasure perf-regression harness: measures every available GF(2⁸)
//! kernel across code shapes and shard sizes, single-threaded, and
//! writes `BENCH_erasure.json` (GB/s per kernel × (k,m) × shard size,
//! plus each kernel's speedup over the full-table reference).
//!
//! Run from the repo root so the JSON lands next to the sources:
//!
//! ```text
//! cargo run --release -p hcft-bench --bin bench_erasure
//! ```
//!
//! `BENCH_ERASURE_QUICK=1` shrinks warm-up/measurement for CI smoke runs;
//! `BENCH_ERASURE_OUT` overrides the output path. Every measurement is
//! also folded into the process-global telemetry registry
//! (`bench.erasure.*` gauges, `erasure.dispatch.*` counters from the
//! kernels themselves) and snapshotted to `TELEMETRY_bench_erasure.json`
//! next to the benchmark JSON (`BENCH_ERASURE_TELEMETRY_OUT`
//! overrides).

use std::fmt::Write as _;
use std::time::Duration;

use criterion::black_box;
use hcft_erasure::matrix::GfMatrix;
use hcft_erasure::{Kernel, ReedSolomon};

/// One measured configuration.
struct Row {
    kernel: &'static str,
    k: usize,
    m: usize,
    shard_bytes: usize,
    gbps: f64,
    speedup_vs_reference: f64,
}

fn shards(k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..len).map(|b| ((i * 31 + b * 7) % 251) as u8).collect())
        .collect()
}

/// Single-threaded systematic encode with an explicit kernel: the same
/// coefficient matrix and access pattern as `ReedSolomon::encode`, minus
/// the Rayon layer, so kernels compare on pure compute.
fn encode_with(kernel: Kernel, parity_rows: &GfMatrix, data: &[&[u8]], parity: &mut [Vec<u8>]) {
    for (p, out) in parity.iter_mut().enumerate() {
        out.fill(0);
        for (j, d) in data.iter().enumerate() {
            kernel.mul_acc(out, d, parity_rows.get(p, j));
        }
    }
}

/// Median seconds per call of `f`, after warm-up.
fn measure<F: FnMut()>(mut f: F, warm_up: Duration, target: Duration, samples: usize) -> f64 {
    let t0 = std::time::Instant::now();
    let mut warm_iters = 0u64;
    while t0.elapsed() < warm_up || warm_iters == 0 {
        f();
        warm_iters += 1;
    }
    let per_iter = t0.elapsed().as_secs_f64() / warm_iters as f64;
    let batch = ((target.as_secs_f64() / samples as f64 / per_iter).round() as u64).max(1);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = std::time::Instant::now();
        for _ in 0..batch {
            f();
        }
        times.push(t.elapsed().as_secs_f64() / batch as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn json_rows(rows: &[Row]) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"kernel\": \"{}\", \"k\": {}, \"m\": {}, \"shard_bytes\": {}, \
             \"gbps\": {:.3}, \"speedup_vs_reference\": {:.2}}}{sep}",
            r.kernel, r.k, r.m, r.shard_bytes, r.gbps, r.speedup_vs_reference
        )
        .expect("string write");
    }
    out
}

fn main() {
    // Kernel comparisons are single-thread by construction; pin the Rayon
    // pool too so the ReedSolomon-level numbers match the contract.
    std::env::set_var("RAYON_NUM_THREADS", "1");

    let quick = std::env::var("BENCH_ERASURE_QUICK").is_ok();
    let (warm_up, target, samples) = if quick {
        (Duration::from_millis(50), Duration::from_millis(200), 3)
    } else {
        (Duration::from_millis(300), Duration::from_secs(1), 10)
    };

    let reg = hcft_telemetry::Registry::global();
    let kernels = Kernel::available();
    let shapes: &[(usize, usize)] = &[(4, 2), (8, 4), (16, 8)];
    let shard_sizes: &[usize] = &[64 * 1024, 1 << 20];

    let mut rows: Vec<Row> = Vec::new();
    for &(k, m) in shapes {
        let parity_rows = GfMatrix::cauchy(m, k);
        for &shard in shard_sizes {
            let data = shards(k, shard);
            let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
            let mut parity = vec![vec![0u8; shard]; m];
            let mut reference_gbps = 0.0;
            for &kernel in &kernels {
                let secs = measure(
                    || {
                        encode_with(
                            kernel,
                            &parity_rows,
                            black_box(&refs),
                            black_box(&mut parity),
                        )
                    },
                    warm_up,
                    target,
                    samples,
                );
                // Throughput in source (checkpoint) bytes, as in Fig. 3b.
                let gbps = (k * shard) as f64 / secs / 1e9;
                if kernel == Kernel::Reference {
                    reference_gbps = gbps;
                }
                let speedup = if reference_gbps > 0.0 {
                    gbps / reference_gbps
                } else {
                    1.0
                };
                eprintln!(
                    "encode  {:<10} k={k:<2} m={m:<2} shard={shard:>7}  {gbps:6.3} GB/s  ({speedup:.2}x ref)",
                    kernel.name()
                );
                reg.gauge(&format!(
                    "bench.erasure.encode.{}.k{k}m{m}.s{shard}.gbps",
                    kernel.name()
                ))
                .set(gbps);
                rows.push(Row {
                    kernel: kernel.name(),
                    k,
                    m,
                    shard_bytes: shard,
                    gbps,
                    speedup_vs_reference: speedup,
                });
            }
        }
    }

    // Reconstruction of one erased shard in an 8-shard (FTI) group, via
    // the full ReedSolomon path: Rayon-chunked, decode matrix cached.
    let rs = ReedSolomon::fti_for_group(8);
    let shard = 1 << 20;
    let data = shards(rs.data_shards(), shard);
    let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
    let parity = rs.encode(&refs);
    let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();
    let secs = measure(
        || {
            let mut work: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            work[1] = None;
            rs.reconstruct(&mut work).expect("single erasure");
            black_box(work);
        },
        warm_up,
        target,
        samples,
    );
    let reconstruct_gbps = shard as f64 / secs / 1e9;
    let cache = rs.decode_cache_stats();
    reg.gauge("bench.erasure.reconstruct.fti8.gbps")
        .set(reconstruct_gbps);
    eprintln!(
        "reconstruct fti(8) 1-erasure: {reconstruct_gbps:.3} GB/s rebuilt \
         (decode cache: {} hits / {} misses)",
        cache.hits, cache.misses
    );

    let active = hcft_erasure::kernel::active();
    let mut json = String::new();
    json.push_str("{\n");
    writeln!(json, "  \"bench\": \"erasure\",").expect("write");
    writeln!(json, "  \"unit\": \"GB/s of source data, single thread\",").expect("write");
    writeln!(
        json,
        "  \"kernels_available\": [{}],",
        kernels
            .iter()
            .map(|k| format!("\"{}\"", k.name()))
            .collect::<Vec<_>>()
            .join(", ")
    )
    .expect("write");
    writeln!(json, "  \"active_kernel\": \"{}\",", active.name()).expect("write");
    writeln!(json, "  \"encode\": [").expect("write");
    json.push_str(&json_rows(&rows));
    writeln!(json, "  ],").expect("write");
    writeln!(
        json,
        "  \"reconstruct\": [\n    {{\"group\": 8, \"erasures\": 1, \"shard_bytes\": {shard}, \
         \"gbps_rebuilt\": {reconstruct_gbps:.3}, \"decode_cache_hits\": {}, \
         \"decode_cache_misses\": {}}}\n  ]",
        cache.hits, cache.misses
    )
    .expect("write");
    json.push_str("}\n");

    let out = std::env::var("BENCH_ERASURE_OUT").unwrap_or_else(|_| "BENCH_erasure.json".into());
    std::fs::write(&out, &json).expect("write BENCH_erasure.json");
    eprintln!("wrote {out}");

    // The same measurements through the observability path: gauges set
    // above plus the kernels' own dispatch counters.
    let telemetry_out = std::env::var("BENCH_ERASURE_TELEMETRY_OUT")
        .unwrap_or_else(|_| "TELEMETRY_bench_erasure.json".into());
    reg.write_json(&telemetry_out)
        .expect("write telemetry JSON");
    eprintln!("wrote {telemetry_out}");

    // Regression gate: the dispatched kernel must beat the full-table
    // reference by ≥3x on the (k=4, m=2), 1 MiB shard configuration.
    let gate = rows
        .iter()
        .find(|r| r.kernel == active.name() && r.k == 4 && r.m == 2 && r.shard_bytes == 1 << 20)
        .expect("gate row measured");
    assert!(
        gate.speedup_vs_reference >= 3.0,
        "perf regression: {} is only {:.2}x the reference at (4,2)/1MiB",
        gate.kernel,
        gate.speedup_vs_reference
    );
    eprintln!(
        "gate ok: {} = {:.2}x reference at (4,2)/1MiB",
        gate.kernel, gate.speedup_vs_reference
    );
}
