//! Campaign-engine perf gate: the batched Monte-Carlo kernel against
//! the retained pre-engine scalar path, plus a grid throughput record.
//!
//! Run from the repo root so the JSON lands next to the sources:
//!
//! ```text
//! cargo run --release -p hcft-bench --bin bench_campaign
//! ```
//!
//! Stages:
//! * `equivalence` — the kernel must reproduce `run_trial_reference`
//!   bit-for-bit on the gate cell (hard assert, not a timing);
//! * `reference` — trials/s of the pre-engine scalar implementation
//!   (per-event `Vec` materialisation, `FaultScenario`, O(nprocs)
//!   `defeated_by` scan), measured through the same rayon fan-out;
//! * `engine` — trials/s of the batched engine on the same cell;
//! * `grid` — a strategy × MTBF × size × nodes sweep through
//!   [`CampaignGrid`], with and without CI-targeted early stopping.
//!
//! Regression gates (assert-based, like the other `bench_*` binaries):
//! * engine ≥ 100× reference trials/s on the gate cell
//!   (`BENCH_CAMPAIGN_MIN_SPEEDUP` overrides) — this is the algorithmic
//!   win and is thread-count independent since both sides share the
//!   pool;
//! * engine ≥ 50 000 trials/s absolute (`BENCH_CAMPAIGN_MIN_TPS`
//!   overrides) — the floor a single CI core must hold;
//! * engine ≥ 1 000 000 trials/s when ≥16 effective cores are available
//!   (`BENCH_CAMPAIGN_MIN_TPS_MULTI` overrides) — the headline target;
//! * early stopping must not run more trials than the fixed rule.
//!
//! `BENCH_CAMPAIGN_QUICK=1` shrinks trial counts for CI smoke runs;
//! `BENCH_CAMPAIGN_OUT` / `BENCH_CAMPAIGN_TELEMETRY_OUT` override the
//! output paths (`BENCH_campaign.json`, `TELEMETRY_bench_campaign.json`).

use std::fmt::Write as _;
use std::time::Instant;

use hcft_cluster::{naive, SchemeIndex};
use hcft_core::campaign::{
    run_trial_reference, simulate_campaign_reference, simulate_campaign_stats, CampaignConfig,
    CampaignGrid, CampaignKernel, CiTarget, GridStrategy, StopRule,
};
use hcft_msglog::HybridProtocol;
use hcft_topology::Placement;

/// The gate cell: the full TSUBAME2 machine (1408 nodes × 16 ranks =
/// 22 528 ranks) under naive 32-rank clusters and the default month-long
/// campaign. At this scale the reference pays its O(nprocs) per-event
/// scan in full while the engine's counting path stays machine-size
/// independent — exactly the asymptotic gap the engine exists to close.
fn gate_cell() -> (Placement, hcft_cluster::ClusteringScheme, CampaignConfig) {
    let placement = Placement::block(1408, 16);
    let scheme = naive(placement.nprocs(), 32);
    (placement, scheme, CampaignConfig::default())
}

struct Stage {
    stage: &'static str,
    seconds: f64,
    trials: u64,
    trials_per_s: f64,
}

fn main() {
    let quick = std::env::var("BENCH_CAMPAIGN_QUICK").is_ok();
    let threads = rayon::current_num_threads();
    let (placement, scheme, cfg) = gate_cell();
    let reg = hcft_telemetry::Registry::global();
    let mut stages: Vec<Stage> = Vec::new();

    // Equivalence: the engine's speed means nothing if it simulates a
    // different campaign. Bit-exact on the gate cell's first trials.
    {
        let protocol = HybridProtocol::new(scheme.l1.clone());
        let sampler = cfg.events.sampler();
        let index = SchemeIndex::new(&scheme, &placement);
        let mut kernel = CampaignKernel::new(&index, &sampler, &cfg, placement.nprocs());
        for trial in 0..32 {
            let fast = kernel.run_trial(trial);
            let slow = run_trial_reference(trial, &scheme, &protocol, &placement, &cfg, &sampler);
            assert_eq!(
                fast, slow,
                "kernel diverged from reference on trial {trial}"
            );
        }
        eprintln!("equivalence: kernel == reference on 32 gate-cell trials");
    }

    // Reference throughput. Few trials — this is the slow path.
    let ref_trials: u64 = if quick { 24 } else { 200 };
    let t0 = Instant::now();
    let ref_out = {
        let mut c = cfg.clone();
        c.trials = ref_trials as usize;
        simulate_campaign_reference(&scheme, &placement, &c)
    };
    let ref_secs = t0.elapsed().as_secs_f64();
    let ref_tps = ref_trials as f64 / ref_secs;
    eprintln!(
        "reference: {ref_trials} trials in {ref_secs:.3} s = {ref_tps:.0} trials/s \
         (availability {:.4})",
        ref_out.availability
    );
    stages.push(Stage {
        stage: "reference",
        seconds: ref_secs,
        trials: ref_trials,
        trials_per_s: ref_tps,
    });

    // Engine throughput on the same cell.
    let engine_trials: u64 = if quick { 50_000 } else { 1_000_000 };
    let t0 = Instant::now();
    let engine_stats =
        simulate_campaign_stats(&scheme, &placement, &cfg, &StopRule::fixed(engine_trials));
    let engine_secs = t0.elapsed().as_secs_f64();
    let engine_tps = engine_trials as f64 / engine_secs;
    eprintln!(
        "engine:    {engine_trials} trials in {engine_secs:.3} s = {engine_tps:.0} trials/s \
         (availability {:.6} ±{:.6})",
        engine_stats.availability.mean(),
        engine_stats.availability.ci95()
    );
    stages.push(Stage {
        stage: "engine",
        seconds: engine_secs,
        trials: engine_trials,
        trials_per_s: engine_tps,
    });

    // Grid throughput: fixed budget, then the same grid early-stopped.
    let grid_trials: u64 = if quick { 512 } else { 8_192 };
    let mut grid = CampaignGrid {
        strategies: vec![
            GridStrategy::Naive,
            GridStrategy::Distributed,
            GridStrategy::Striped,
        ],
        mtbfs_h: vec![2.0, 6.0, 24.0],
        cluster_sizes: vec![8],
        machine_nodes: vec![32],
        ppn: 8,
        base: CampaignConfig {
            duration_h: 7.0 * 24.0,
            ..Default::default()
        },
        stop: StopRule::fixed(grid_trials),
    };
    let t0 = Instant::now();
    let fixed_cells = grid.run().expect("gate grid is valid");
    let grid_secs = t0.elapsed().as_secs_f64();
    let fixed_total: u64 = fixed_cells.iter().map(|c| c.stats.trials).sum();
    eprintln!(
        "grid:      {} cells, {fixed_total} trials in {grid_secs:.3} s = {:.0} trials/s",
        fixed_cells.len(),
        fixed_total as f64 / grid_secs
    );
    stages.push(Stage {
        stage: "grid",
        seconds: grid_secs,
        trials: fixed_total,
        trials_per_s: fixed_total as f64 / grid_secs,
    });

    grid.stop = StopRule::until_ci(
        grid_trials,
        grid_trials.div_ceil(16),
        grid_trials.div_ceil(16),
        CiTarget::availability(2e-4),
    );
    let t0 = Instant::now();
    let stopped_cells = grid.run().expect("gate grid is valid");
    let stopped_secs = t0.elapsed().as_secs_f64();
    let stopped_total: u64 = stopped_cells.iter().map(|c| c.stats.trials).sum();
    let stopped_count = stopped_cells
        .iter()
        .filter(|c| c.stats.early_stopped)
        .count();
    eprintln!(
        "grid+ci:   {stopped_total} trials ({stopped_count}/{} cells stopped early) \
         in {stopped_secs:.3} s",
        stopped_cells.len()
    );
    stages.push(Stage {
        stage: "grid_early_stop",
        seconds: stopped_secs,
        trials: stopped_total,
        trials_per_s: stopped_total as f64 / stopped_secs,
    });

    let speedup = engine_tps / ref_tps;
    eprintln!("speedup:   engine is {speedup:.1}x the pre-engine reference");

    for s in &stages {
        reg.gauge(&format!("campaign.bench.{}.seconds", s.stage))
            .set(s.seconds);
        reg.gauge(&format!("campaign.bench.{}.trials_per_s", s.stage))
            .set(s.trials_per_s);
    }
    reg.gauge("campaign.bench.speedup").set(speedup);

    let mut json = String::from("{\n");
    writeln!(json, "  \"bench\": \"campaign\",").expect("write");
    writeln!(
        json,
        "  \"unit\": \"Monte-Carlo trials per second on the gate cell (1408 nodes x 16 ranks, naive-32)\","
    )
    .expect("write");
    writeln!(json, "  \"threads\": {threads},").expect("write");
    writeln!(json, "  \"quick\": {quick},").expect("write");
    writeln!(json, "  \"speedup_vs_reference\": {speedup:.2},").expect("write");
    writeln!(json, "  \"stages\": [").expect("write");
    for (i, s) in stages.iter().enumerate() {
        let sep = if i + 1 == stages.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"stage\": \"{}\", \"seconds\": {:.4}, \"trials\": {}, \
             \"trials_per_s\": {:.1}}}{sep}",
            s.stage, s.seconds, s.trials, s.trials_per_s
        )
        .expect("write");
    }
    writeln!(json, "  ]").expect("write");
    json.push('}');
    json.push('\n');

    let out = std::env::var("BENCH_CAMPAIGN_OUT").unwrap_or_else(|_| "BENCH_campaign.json".into());
    std::fs::write(&out, &json).expect("write BENCH_campaign.json");
    eprintln!("wrote {out}");
    let telemetry_out = std::env::var("BENCH_CAMPAIGN_TELEMETRY_OUT")
        .unwrap_or_else(|_| "TELEMETRY_bench_campaign.json".into());
    reg.write_json(&telemetry_out)
        .expect("write telemetry JSON");
    eprintln!("wrote {telemetry_out}");

    // Gates.
    let min_speedup: f64 = std::env::var("BENCH_CAMPAIGN_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100.0);
    assert!(
        speedup >= min_speedup,
        "perf regression: campaign engine is only {speedup:.1}x the pre-engine \
         reference (floor {min_speedup:.0}x)"
    );
    let min_tps: f64 = std::env::var("BENCH_CAMPAIGN_MIN_TPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000.0);
    assert!(
        engine_tps >= min_tps,
        "perf regression: campaign engine sustains only {engine_tps:.0} trials/s \
         (floor {min_tps:.0})"
    );
    // The million-trials-per-second headline needs real parallelism:
    // trials cost ~4-5 us each on one core, so the absolute target only
    // binds where the pool has the cores to spread them.
    let effective = threads.min(
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    );
    if effective >= 16 {
        let min_tps_multi: f64 = std::env::var("BENCH_CAMPAIGN_MIN_TPS_MULTI")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1_000_000.0);
        assert!(
            engine_tps >= min_tps_multi,
            "perf regression: campaign engine sustains only {engine_tps:.0} trials/s \
             on {effective} cores (floor {min_tps_multi:.0})"
        );
    }
    assert!(
        stopped_total <= fixed_total,
        "early stopping ran more trials ({stopped_total}) than the fixed budget ({fixed_total})"
    );
    eprintln!("bench_campaign: all gates passed");
}
