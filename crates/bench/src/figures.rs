//! One function per paper artefact (tables I & II, figures 3–5).

use hcft_cluster::{
    distributed, hierarchical, naive, BaselineRequirements, Evaluator, HierarchicalConfig,
    PartitionEngine,
};
use hcft_erasure::{EncodingModel, ReedSolomon};
use hcft_graph::WeightedGraph;
use hcft_msglog::HybridProtocol;
use hcft_reliability::model::fti_tolerance;
use hcft_reliability::{EventDistribution, ReliabilityModel};
use hcft_topology::{MachineSpec, Placement};
use rayon::prelude::*;

use crate::harness::{fmt_prob, traced, Artifact, CsvFile, Scale};

fn power_of_two_sizes(max: usize, from: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut s = from;
    while s <= max {
        v.push(s);
        s *= 2;
    }
    v
}

/// Table I: the TSUBAME2 architecture summary.
pub fn table1() -> Artifact {
    let m = MachineSpec::tsubame2();
    Artifact {
        id: "table1",
        report: format!("TABLE I — TSUBAME2 ARCHITECTURE\n\n{}", m.render_table()),
        csv: Vec::new(),
    }
}

/// Fig. 3a: message-logging overhead vs restart cost as a function of
/// the (naïve, consecutive-rank) cluster size.
pub fn fig3a(scale: Scale) -> Artifact {
    let t = traced(scale);
    let placement = t.layout.app_placement();
    let n = placement.nprocs();
    let mut rows = Vec::new();
    let mut report = String::from(
        "FIG 3a — cluster size vs (message logging %, restart %) [naive clustering]\n\n\
         size     logged%   restart%\n",
    );
    // Each cluster size is an independent model evaluation: fan the
    // sweep out and reassemble rows in size order (ordered collect), so
    // the report and CSV match the serial sweep byte for byte.
    let sweep: Vec<(usize, f64, f64)> = power_of_two_sizes(n / 2, 1)
        .into_par_iter()
        .map(|size| {
            let scheme = naive(n, size);
            let protocol = HybridProtocol::new(scheme.l1.clone());
            let logged = protocol.stats_from_matrix(&t.app).logged_fraction() * 100.0;
            let restart = protocol.expected_restart_fraction(&placement) * 100.0;
            (size, logged, restart)
        })
        .collect();
    for (size, logged, restart) in sweep {
        report.push_str(&format!("{size:<8} {logged:>7.2}   {restart:>7.2}\n"));
        rows.push(vec![
            size.to_string(),
            format!("{logged:.3}"),
            format!("{restart:.3}"),
        ]);
    }
    report.push_str(
        "\nPaper shape: logging falls with size, restart grows; sweet spot where both\n\
         are small (paper: 32 processes → <4% logged, ~3% restart).\n",
    );
    Artifact {
        id: "fig3a",
        report,
        csv: vec![CsvFile::new(
            "fig3a_size_vs_logging_restart.csv",
            "cluster_size,logged_pct,restart_pct",
            &rows,
        )],
    }
}

/// Fig. 3b: message-logging overhead vs encoding time (log-scale axis in
/// the paper) as a function of cluster size. Model values are the
/// TSUBAME2 calibration; the `measured` column extrapolates from an
/// actual Reed–Solomon encode performed here.
pub fn fig3b(scale: Scale) -> Artifact {
    let t = traced(scale);
    let placement = t.layout.app_placement();
    let n = placement.nprocs();
    let model = EncodingModel::tsubame2();
    let mut rows = Vec::new();
    let mut report = String::from(
        "FIG 3b — cluster size vs (message logging %, encoding time per GB)\n\n\
         size     logged%   model s/GB   measured s/GB(per-member wall)\n",
    );
    for size in power_of_two_sizes(n / 2, 4) {
        let scheme = naive(n, size);
        let protocol = HybridProtocol::new(scheme.l1.clone());
        let logged = protocol.stats_from_matrix(&t.app).logged_fraction() * 100.0;
        let model_s = model.seconds_per_gb(size);
        // RS over GF(256) caps at 256 shards (k = m = size), so the live
        // measurement stops at 128; the model extrapolates beyond.
        let measured_s = (size <= 128).then(|| measure_encode_seconds_per_gb(size));
        match measured_s {
            Some(m) => report.push_str(&format!(
                "{size:<8} {logged:>7.2}   {model_s:>9.1}    {m:>9.1}\n"
            )),
            None => report.push_str(&format!(
                "{size:<8} {logged:>7.2}   {model_s:>9.1}            -\n"
            )),
        }
        rows.push(vec![
            size.to_string(),
            format!("{logged:.3}"),
            format!("{model_s:.2}"),
            measured_s.map(|m| format!("{m:.2}")).unwrap_or_default(),
        ]);
    }
    report.push_str(
        "\nPaper shape: encoding time grows linearly with cluster size (one order of\n\
         magnitude from 4 to 32); logging falls. Sizes around 8 satisfy both axes.\n",
    );
    Artifact {
        id: "fig3b",
        report,
        csv: vec![CsvFile::new(
            "fig3b_size_vs_logging_encoding.csv",
            "cluster_size,logged_pct,encode_s_per_gb_model,encode_s_per_gb_measured",
            &rows,
        )],
    }
}

/// Measure a real RS(s, s) encode and scale it to the paper's metric:
/// wall seconds per GB of per-member checkpoint data, assuming FTI's
/// distribution of parity work across the s members.
fn measure_encode_seconds_per_gb(group: usize) -> f64 {
    const SHARD: usize = 1 << 20; // 1 MiB per member
    let rs = ReedSolomon::new(group, group);
    let data: Vec<Vec<u8>> = (0..group)
        .map(|i| (0..SHARD).map(|b| ((i * 31 + b * 7) % 251) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| &d[..]).collect();
    let start = std::time::Instant::now();
    let parity = rs.encode(&refs);
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(&parity);
    // The encode computed `group` parity rows; FTI spreads those rows
    // over the group's members, so per-member wall time is elapsed/group.
    // Scale the 1 MiB test shard up to the paper's 1 GB unit. The result
    // grows linearly with the group size (each parity row combines
    // `group` data shards), which is exactly Fig. 3b's law.
    (elapsed / group as f64) * (1.0e9 / SHARD as f64)
}

/// Fig. 4a: probability of catastrophic failure, distributed vs
/// non-distributed, for cluster sizes 4/8/16 on 128 nodes × 8 ranks.
pub fn fig4a() -> Artifact {
    let nodes = 128;
    let ppn = 8;
    let placement = Placement::block(nodes, ppn);
    let model = ReliabilityModel::new(nodes, EventDistribution::fti_calibrated());
    let mut rows = Vec::new();
    let mut report = String::from(
        "FIG 4a — reliability (P(catastrophic failure)), 128 nodes x 8 ranks\n\n\
         size   non-distributed   distributed\n",
    );
    for size in [4usize, 8, 16] {
        let nd = naive(nodes * ppn, size);
        let d = distributed(&placement, size);
        let p_nd = model.p_catastrophic(&nd.l2, &placement, &fti_tolerance);
        let p_d = model.p_catastrophic(&d.l2, &placement, &fti_tolerance);
        report.push_str(&format!(
            "{size:<6} {:>15}   {:>11}\n",
            fmt_prob(p_nd),
            fmt_prob(p_d)
        ));
        rows.push(vec![
            size.to_string(),
            format!("{p_nd:e}"),
            format!("{p_d:e}"),
        ]);
    }
    report.push_str(
        "\nPaper shape: non-distributed clusters of 4/8 die on a single node failure\n\
         (P ≈ 1-transient); distribution buys many orders of magnitude.\n",
    );
    Artifact {
        id: "fig4a",
        report,
        csv: vec![CsvFile::new(
            "fig4a_reliability.csv",
            "cluster_size,p_cat_nondistributed,p_cat_distributed",
            &rows,
        )],
    }
}

/// Fig. 4b: message-logging overhead, distributed vs non-distributed.
pub fn fig4b(scale: Scale) -> Artifact {
    let t = traced(scale);
    let placement = t.layout.app_placement();
    let n = placement.nprocs();
    let mut rows = Vec::new();
    let mut report = String::from(
        "FIG 4b — message logging %, distributed vs non-distributed\n\n\
         size     non-distributed%   distributed%\n",
    );
    let sweep: Vec<(usize, f64, f64)> = power_of_two_sizes(placement.nodes(), 4)
        .into_par_iter()
        .map(|size| {
            let nd = HybridProtocol::new(naive(n, size).l1);
            let d = HybridProtocol::new(distributed(&placement, size).l1);
            let l_nd = nd.stats_from_matrix(&t.app).logged_fraction() * 100.0;
            let l_d = d.stats_from_matrix(&t.app).logged_fraction() * 100.0;
            (size, l_nd, l_d)
        })
        .collect();
    for (size, l_nd, l_d) in sweep {
        report.push_str(&format!("{size:<8} {l_nd:>15.2}   {l_d:>11.2}\n"));
        rows.push(vec![
            size.to_string(),
            format!("{l_nd:.3}"),
            format!("{l_d:.3}"),
        ]);
    }
    report.push_str(
        "\nPaper shape: with topology-aware placement, distribution forces nearly all\n\
         bytes across cluster boundaries regardless of cluster size.\n",
    );
    Artifact {
        id: "fig4b",
        report,
        csv: vec![CsvFile::new(
            "fig4b_logging_distribution.csv",
            "cluster_size,logged_pct_nondistributed,logged_pct_distributed",
            &rows,
        )],
    }
}

/// Fig. 4c: restart cost, distributed vs non-distributed, 64 nodes × 16
/// ranks (model-only, like the paper's analysis).
pub fn fig4c() -> Artifact {
    let nodes = 64;
    let ppn = 16;
    let placement = Placement::block(nodes, ppn);
    let n = nodes * ppn;
    let mut rows = Vec::new();
    let mut report = String::from(
        "FIG 4c — restart cost %, 64 nodes x 16 ranks\n\n\
         size     non-distributed%   distributed%\n",
    );
    let sweep: Vec<(usize, f64, f64)> = power_of_two_sizes(nodes, 2)
        .into_par_iter()
        .map(|size| {
            let nd = HybridProtocol::new(naive(n, size).l1);
            let d = HybridProtocol::new(distributed(&placement, size).l1);
            let r_nd = nd.expected_restart_fraction(&placement) * 100.0;
            let r_d = d.expected_restart_fraction(&placement) * 100.0;
            (size, r_nd, r_d)
        })
        .collect();
    for (size, r_nd, r_d) in sweep {
        report.push_str(&format!("{size:<8} {r_nd:>15.2}   {r_d:>11.2}\n"));
        rows.push(vec![
            size.to_string(),
            format!("{r_nd:.3}"),
            format!("{r_d:.3}"),
        ]);
    }
    report.push_str(
        "\nPaper shape: non-distributed restart grows like size/P (3% at 32);\n\
         distributed amplifies by ranks-per-node (50% at 32).\n",
    );
    Artifact {
        id: "fig4c",
        report,
        csv: vec![CsvFile::new(
            "fig4c_restart_distribution.csv",
            "cluster_size,restart_pct_nondistributed,restart_pct_distributed",
            &rows,
        )],
    }
}

/// Fig. 5a: the full communication heat map of the traced execution.
pub fn fig5a(scale: Scale) -> Artifact {
    let t = traced(scale);
    let ascii = t.full.render_ascii(64);
    let report = format!(
        "FIG 5a — communication matrix, {} global ranks, {} bytes total\n\
         (log-scale ASCII density; full data in the CSV)\n\n{ascii}",
        t.full.n(),
        t.full.total_bytes()
    );
    Artifact {
        id: "fig5a",
        report,
        csv: vec![CsvFile::new(
            "fig5a_comm_matrix.csv",
            "src,dst,bytes",
            &t.full
                .entries()
                .map(|(s, d, b)| vec![s.to_string(), d.to_string(), b.to_string()])
                .collect::<Vec<_>>(),
        )],
    }
}

/// Fig. 5b: zoom on the first 4 nodes (68 ranks at paper scale) with the
/// paper's pattern inventory verified quantitatively.
pub fn fig5b(scale: Scale) -> Artifact {
    let t = traced(scale);
    let rpn = t.layout.ranks_per_node();
    let k = 4 * rpn;
    let zoom = t.full.zoom(k);
    let px = t.process_grid.0;
    // Pattern inventory over the zoomed corner, in *global* rank space.
    let enc = |r: usize| r.is_multiple_of(rpn);
    let mut stencil = 0u64;
    let mut to_encoder = 0u64;
    let mut encoder_pairs = 0u64;
    let mut other = 0u64;
    for (s, d, b) in zoom.entries() {
        if enc(s) && enc(d) {
            encoder_pairs += b;
        } else if enc(d) || enc(s) {
            to_encoder += b;
        } else {
            // Application pair: distance in app-rank space.
            let (sa, da) = (s - s / rpn - 1, d - d / rpn - 1);
            let dist = sa.abs_diff(da);
            if dist == 1 || dist == px {
                stencil += b;
            } else {
                other += b;
            }
        }
    }
    let ascii = zoom.render_ascii(k.min(96));
    let report = format!(
        "FIG 5b — zoom on the first 4 nodes ({k} ranks; encoders at 0, {rpn}, {}, {})\n\n\
         pattern inventory (bytes):\n\
           stencil double diagonal (app ±1, ±{px})  {stencil}\n\
           app -> encoder checkpoint pushes          {to_encoder}\n\
           encoder <-> encoder parity ring           {encoder_pairs}\n\
           other (MPI_Allgather init diagonals)      {other}\n\n{ascii}",
        2 * rpn,
        3 * rpn
    );
    Artifact {
        id: "fig5b",
        report,
        csv: vec![CsvFile::new(
            "fig5b_zoom_matrix.csv",
            "src,dst,bytes",
            &zoom
                .entries()
                .map(|(s, d, b)| vec![s.to_string(), d.to_string(), b.to_string()])
                .collect::<Vec<_>>(),
        )],
    }
}

/// Build the four paper schemes and their scores for a scale, with the
/// default (multilevel) L1 partition engine.
fn schemes_and_scores(
    scale: Scale,
) -> (
    Vec<hcft_cluster::ClusteringScheme>,
    Vec<hcft_cluster::FourDScore>,
) {
    schemes_and_scores_with(scale, hcft_cluster::PartitionEngine::Multilevel)
}

/// [`schemes_and_scores`] with an explicit L1 partition engine (the
/// `repro --partition-engine` plumbing, so engine sweeps reuse the same
/// scoring path as the paper artifacts).
fn schemes_and_scores_with(
    scale: Scale,
    engine: hcft_cluster::PartitionEngine,
) -> (
    Vec<hcft_cluster::ClusteringScheme>,
    Vec<hcft_cluster::FourDScore>,
) {
    let t = traced(scale);
    let (nv, sg, ds) = scale.table2_sizes();
    let hier_cfg = HierarchicalConfig {
        min_nodes_per_l1: 4,
        max_nodes_per_l1: 4,
        l2_group_nodes: 4,
        engine,
    };
    // Iterates the ClusteringStrategy registry and publishes the
    // `table2.*` metrics into the global telemetry registry as a side
    // effect (picked up by `repro --telemetry`).
    let ev = hcft_core::experiment::evaluate_schemes(t, nv, sg, ds, &hier_cfg);
    (ev.schemes, ev.scores)
}

/// Table II: the four-dimension comparison of all clustering strategies.
pub fn table2(scale: Scale, engine: hcft_cluster::PartitionEngine) -> Artifact {
    let (_, scores) = schemes_and_scores_with(scale, engine);
    let mut report = String::from(
        "TABLE II — clustering comparison\n\n\
         method                   log.ovh  recovery  enc.(1GB)  P(cat.failure)\n",
    );
    let mut rows = Vec::new();
    for s in &scores {
        report.push_str(&format!(
            "{:<24} {:>6.1}%  {:>7.2}%  {:>7.0} s  {:>12}\n",
            s.name,
            s.logging_fraction * 100.0,
            s.restart_fraction * 100.0,
            s.encode_s_per_gb,
            fmt_prob(s.p_catastrophic)
        ));
        rows.push(vec![
            s.name.clone(),
            format!("{:.4}", s.logging_fraction),
            format!("{:.4}", s.restart_fraction),
            format!("{:.1}", s.encode_s_per_gb),
            format!("{:e}", s.p_catastrophic),
        ]);
    }
    report.push_str(
        "\nPaper (1024 ranks): naive(32) 3.5%/3.1%/204s/1e-4 · size-guided(8)\n\
         12.9%/0.7%/51s/0.95 · distributed(16) 100%/25%/102s/1e-15 ·\n\
         hierarchical(64-4) 1.9%/6.25%/25s/1e-6.\n",
    );
    Artifact {
        id: "table2",
        report,
        csv: vec![CsvFile::new(
            "table2_clustering_comparison.csv",
            "method,logging_fraction,restart_fraction,encode_s_per_gb,p_catastrophic",
            &rows,
        )],
    }
}

/// Fig. 5c: all strategies normalised against the §III baseline.
pub fn fig5c(scale: Scale, engine: hcft_cluster::PartitionEngine) -> Artifact {
    let (_, scores) = schemes_and_scores_with(scale, engine);
    let baseline = BaselineRequirements::default();
    let labels = BaselineRequirements::axis_labels();
    let mut report = format!(
        "FIG 5c — overall comparison against the baseline (value / threshold;\n\
         inside the unit polygon = admissible)\n\n\
         method                   {:<16} {:<14} {:<14} {:<16} meets-all\n",
        labels[0], labels[1], labels[2], labels[3]
    );
    let mut rows = Vec::new();
    for s in &scores {
        let norm = baseline.normalize(s);
        let all = baseline.meets_all(s);
        report.push_str(&format!(
            "{:<24} {:>14.3}  {:>12.3}  {:>12.3}  {:>14.3e}  {}\n",
            s.name,
            norm[0],
            norm[1],
            norm[2],
            norm[3],
            if all { "YES" } else { "no" }
        ));
        rows.push(vec![
            s.name.clone(),
            format!("{:.4}", norm[0]),
            format!("{:.4}", norm[1]),
            format!("{:.4}", norm[2]),
            format!("{:e}", norm[3]),
            all.to_string(),
        ]);
    }
    report.push_str(
        "\nPaper shape: only the hierarchical clustering stays inside the baseline on\n\
         all four axes.\n",
    );
    Artifact {
        id: "fig5c",
        report,
        csv: vec![CsvFile::new(
            "fig5c_baseline_radar.csv",
            "method,norm_logging,norm_restart,norm_encoding,norm_reliability,meets_all",
            &rows,
        )],
    }
}

/// §V scaling: the hierarchical clustering evaluated from 64 to the
/// scale's full rank count.
pub fn scaling(scale: Scale, engine: hcft_cluster::PartitionEngine) -> Artifact {
    let full_nodes = scale.job().nodes;
    let ppn = scale.job().app_per_node;
    let mut rows = Vec::new();
    let mut report = String::from(
        "SCALING — hierarchical clustering from small to full size\n\n\
         ranks    logged%   restart%  enc.(1GB)  P(cat)\n",
    );
    let mut sizes = Vec::new();
    let mut nodes = 4;
    while nodes <= full_nodes {
        sizes.push(nodes);
        nodes *= 2;
    }
    // Every point re-runs the traced job at its own size — by far the
    // most expensive sweep in the pipeline. The simmpi worlds are fully
    // independent, so the sizes run concurrently; the ordered collect
    // keeps the report rows in ascending-size order.
    let sweep: Vec<(usize, _)> = sizes
        .into_par_iter()
        .map(|nodes| {
            let mut job = scale.job();
            job.nodes = nodes;
            // Keep the quasi-1-D decomposition shape at every size.
            let nprocs = nodes * ppn;
            let (px, py) = (nprocs / 2, 2);
            job.process_grid = Some((px, py));
            // Keep the per-rank tile shape of the full-scale run (2×2048)
            // so the logging fractions are comparable across sizes.
            job.grid = ((2 * px).max(16), 2048 * py);
            let t = hcft_core::experiment::run_traced_job(&job);
            let placement = t.layout.app_placement();
            let node_graph = WeightedGraph::from_comm_matrix(&t.app.aggregate_by_node(&placement));
            let cfg = HierarchicalConfig {
                min_nodes_per_l1: 4,
                max_nodes_per_l1: 4,
                l2_group_nodes: 4,
                engine,
            };
            let scheme = hierarchical(&placement, &node_graph, &cfg);
            let s = Evaluator::new(t.app.clone(), placement).evaluate(&scheme);
            (nodes, s)
        })
        .collect();
    for (nodes, s) in sweep {
        report.push_str(&format!(
            "{:<8} {:>7.2}   {:>7.2}  {:>7.0} s  {}\n",
            nodes * ppn,
            s.logging_fraction * 100.0,
            s.restart_fraction * 100.0,
            s.encode_s_per_gb,
            fmt_prob(s.p_catastrophic)
        ));
        rows.push(vec![
            (nodes * ppn).to_string(),
            format!("{:.4}", s.logging_fraction),
            format!("{:.4}", s.restart_fraction),
            format!("{:.1}", s.encode_s_per_gb),
            format!("{:e}", s.p_catastrophic),
        ]);
    }
    report.push_str("\nRestart fraction shrinks with scale (fixed 4-node L1 clusters).\n");
    Artifact {
        id: "scaling",
        report,
        csv: vec![CsvFile::new(
            "scaling_hierarchical.csv",
            "app_ranks,logging_fraction,restart_fraction,encode_s_per_gb,p_catastrophic",
            &rows,
        )],
    }
}

// ---------------------------------------------------------------------
// Extensions beyond the paper's artefacts (DESIGN.md §8).
// ---------------------------------------------------------------------

/// Extension: application efficiency under the four clusterings — the
/// Young/Daly analysis with failure containment, fed by each scheme's
/// measured restart fraction and encoding-derived checkpoint cost.
pub fn efficiency(scale: Scale) -> Artifact {
    use hcft_reliability::EfficiencyModel;
    let (_, scores) = schemes_and_scores(scale);
    // 1 GB checkpoints; recovery latency = decode ≈ encode time; MTBF
    // sweep around the exascale-projection regime.
    let mut rows = Vec::new();
    let mut report = String::from(
        "EFFICIENCY (extension) — Young/Daly with containment, 1 GB checkpoints\n\n\
         method                    MTBF 1h   MTBF 4h   MTBF 24h   tau*(4h)\n",
    );
    for s in &scores {
        let mut cells = vec![s.name.clone()];
        let mut line = format!("{:<24}", s.name);
        // A catastrophic failure falls back to an (hourly) PFS
        // checkpoint: bill the full machine for the lost interval.
        let model_at = |mtbf_h: f64| {
            EfficiencyModel::new(
                mtbf_h * 3600.0,
                s.encode_s_per_gb,
                s.encode_s_per_gb,
                s.restart_fraction.max(1e-6),
            )
            .with_catastrophe(s.p_catastrophic, 2.0 * 3600.0)
        };
        for mtbf_h in [1.0f64, 4.0, 24.0] {
            let e = model_at(mtbf_h).peak_efficiency();
            line.push_str(&format!("  {:>7.3}", e));
            cells.push(format!("{e:.4}"));
        }
        let tau = model_at(4.0).optimal_interval();
        line.push_str(&format!("   {:>6.0} s\n", tau));
        cells.push(format!("{tau:.0}"));
        report.push_str(&line);
        rows.push(cells);
    }
    report.push_str(
        "\nContainment (small restart fraction) + fast encoding (small L2) compound:\n\
         the hierarchical clustering sustains the highest machine efficiency.\n",
    );
    Artifact {
        id: "efficiency",
        report,
        csv: vec![CsvFile::new(
            "ext_efficiency.csv",
            "method,eff_mtbf_1h,eff_mtbf_4h,eff_mtbf_24h,tau_opt_4h_s",
            &rows,
        )],
    }
}

/// Extension: the §V caveat quantified — the same strategies evaluated on
/// a uniform all-to-all pattern, where no partition can contain traffic.
pub fn alltoall(scale: Scale) -> Artifact {
    let job = scale.job();
    let nodes = job.nodes;
    let ppn = job.app_per_node;
    let n = nodes * ppn;
    let placement = Placement::block(nodes, ppn);
    let matrix = hcft_graph::patterns::all_to_all(n, 1_000);
    let node_graph = WeightedGraph::from_comm_matrix(&matrix.aggregate_by_node(&placement));
    let (nv, sg, ds) = scale.table2_sizes();
    let hier_cfg = HierarchicalConfig {
        min_nodes_per_l1: 4,
        max_nodes_per_l1: 4,
        l2_group_nodes: 4,
        ..Default::default()
    };
    let schemes = [
        naive(n, nv),
        hcft_cluster::size_guided(n, sg),
        distributed(&placement, ds),
        hierarchical(&placement, &node_graph, &hier_cfg),
    ];
    let evaluator = Evaluator::new(matrix, placement);
    let mut rows = Vec::new();
    let mut report = String::from(
        "ALL-TO-ALL CAVEAT (extension) — §V last paragraph, quantified\n\n\
         method                    logged%   (stencil traced run for contrast)\n",
    );
    let traced_scores = schemes_and_scores(scale).1;
    for (scheme, stencil) in schemes.iter().zip(&traced_scores) {
        let s = evaluator.evaluate(scheme);
        report.push_str(&format!(
            "{:<24} {:>8.1}   (stencil: {:.1}%)\n",
            s.name,
            s.logging_fraction * 100.0,
            stencil.logging_fraction * 100.0
        ));
        rows.push(vec![
            s.name.clone(),
            format!("{:.4}", s.logging_fraction),
            format!("{:.4}", stencil.logging_fraction),
        ]);
    }
    report.push_str(
        "\nUniform all-to-all: every clustering logs ≈ (n−k)/(n−1) of the traffic —\n\
         no partition helps, exactly the caveat the paper closes §V with.\n",
    );
    Artifact {
        id: "alltoall",
        report,
        csv: vec![CsvFile::new(
            "ext_alltoall_logging.csv",
            "method,logged_fraction_alltoall,logged_fraction_stencil",
            &rows,
        )],
    }
}

/// Extension ablation: hierarchical design choices — L1 cluster width,
/// partitioning engine, and L2 group width.
pub fn ablation(scale: Scale) -> Artifact {
    let t = traced(scale);
    let placement = t.layout.app_placement();
    let node_graph = WeightedGraph::from_comm_matrix(&t.app.aggregate_by_node(&placement));
    let evaluator = Evaluator::new(t.app.clone(), placement.clone());
    let mut rows = Vec::new();
    let mut report = String::from(
        "ABLATION (extension) — hierarchical design choices\n\n\
         variant                        logged%  restart%  enc(1GB)   P(cat)\n",
    );
    let mut variants: Vec<(String, HierarchicalConfig)> = Vec::new();
    for l1 in [4usize, 8, 16] {
        if l1 > placement.nodes() / 2 {
            continue;
        }
        variants.push((
            format!("L1 = {l1} nodes (multilevel)"),
            HierarchicalConfig {
                min_nodes_per_l1: l1,
                max_nodes_per_l1: l1,
                l2_group_nodes: 4,
                engine: PartitionEngine::Multilevel,
            },
        ));
    }
    variants.push((
        "L1 = 4..8 nodes (modularity)".to_string(),
        HierarchicalConfig {
            min_nodes_per_l1: 4,
            max_nodes_per_l1: 8,
            l2_group_nodes: 4,
            engine: PartitionEngine::Modularity,
        },
    ));
    variants.push((
        "L2 groups of 8 nodes".to_string(),
        HierarchicalConfig {
            min_nodes_per_l1: 8,
            max_nodes_per_l1: 8,
            l2_group_nodes: 8,
            engine: PartitionEngine::Multilevel,
        },
    ));
    // Each variant partitions and scores independently; the ordered
    // collect keeps the table in declaration order.
    let scored: Vec<(String, _)> = variants
        .into_par_iter()
        .map(|(label, cfg)| {
            let s = evaluator.evaluate(&hierarchical(&placement, &node_graph, &cfg));
            (label, s)
        })
        .collect();
    for (label, s) in scored {
        report.push_str(&format!(
            "{label:<30} {:>7.2}  {:>7.2}  {:>7.0} s  {:>9.2e}\n",
            s.logging_fraction * 100.0,
            s.restart_fraction * 100.0,
            s.encode_s_per_gb,
            s.p_catastrophic
        ));
        rows.push(vec![
            label,
            format!("{:.4}", s.logging_fraction),
            format!("{:.4}", s.restart_fraction),
            format!("{:.1}", s.encode_s_per_gb),
            format!("{:e}", s.p_catastrophic),
        ]);
    }
    report.push_str(
        "\nWider L1 trades restart cost for logging; wider L2 trades encoding time\n\
         for (already ample) reliability — the paper's 4/4 choice is the knee.\n",
    );
    Artifact {
        id: "ablation",
        report,
        csv: vec![CsvFile::new(
            "ext_ablation_hierarchical.csv",
            "variant,logged_fraction,restart_fraction,encode_s_per_gb,p_catastrophic",
            &rows,
        )],
    }
}

/// Extension: a simulated month of operation under each clustering —
/// failures arrive stochastically, the clustering decides who rolls back
/// (or whether the erasure level is defeated), and the ledger yields
/// useful-work availability.
pub fn campaign(scale: Scale) -> Artifact {
    use hcft_core::campaign::{simulate_campaign, CampaignConfig};
    let (schemes, scores) = schemes_and_scores(scale);
    let t = traced(scale);
    let placement = t.layout.app_placement();
    let mut rows = Vec::new();
    let mut report = String::from(
        "CAMPAIGN (extension) — 30 days, MTBF 6 h, checkpoint every 10 min\n\n\
         method                    failures  catastrophic  availability\n",
    );
    for (scheme, score) in schemes.iter().zip(&scores) {
        let cfg = CampaignConfig {
            checkpoint_cost_s: score.encode_s_per_gb,
            recovery_latency_s: score.encode_s_per_gb,
            trials: 100,
            ..Default::default()
        };
        let out = simulate_campaign(scheme, &placement, &cfg);
        report.push_str(&format!(
            "{:<24} {:>9.1}  {:>12.2}  {:>11.4}\n",
            scheme.name, out.failures, out.catastrophic, out.availability
        ));
        rows.push(vec![
            scheme.name.clone(),
            format!("{:.2}", out.failures),
            format!("{:.3}", out.catastrophic),
            format!("{:.5}", out.availability),
        ]);
    }
    report.push_str(
        "\nThe operational bottom line: the hierarchical clustering combines the\n\
         near-zero catastrophic count of distribution with the small restart sets\n\
         of containment, yielding the best availability.\n",
    );
    Artifact {
        id: "campaign",
        report,
        csv: vec![CsvFile::new(
            "ext_campaign_availability.csv",
            "method,failures,catastrophic,availability",
            &rows,
        )],
    }
}

/// Extension: the million-trial campaign grid — sweep
/// strategy × MTBF × cluster size × machine size through the batched
/// Monte-Carlo engine, reporting every metric with a 95 % confidence
/// interval.
///
/// At `--scale paper` the grid runs 36 cells × 32 768 trials ≈ 1.18 M
/// trials in one command. Early stopping is off by default (fixed trial
/// counts keep the CSV reproducible run-to-run); set
/// `HCFT_CAMPAIGN_TARGET_CI` to an availability CI half-width (and
/// optionally `HCFT_CAMPAIGN_TARGET_CI_CAT` for the catastrophic-count
/// CI) to let converged cells stop at batch boundaries — the stopping
/// decision is deterministic, so the CSV stays byte-identical at any
/// thread count.
pub fn campaign_grid(scale: Scale) -> Artifact {
    use hcft_core::campaign::{CampaignConfig, CampaignGrid, CiTarget, GridStrategy, StopRule};
    let strategies = vec![
        GridStrategy::Naive,
        GridStrategy::Distributed,
        GridStrategy::Striped,
    ];
    let mtbfs_h = vec![2.0, 6.0, 24.0];
    let (cluster_sizes, machine_nodes, ppn, trials, batch) = match scale {
        Scale::Paper => (vec![8, 32], vec![64, 128], 16, 32_768u64, 4_096u64),
        Scale::Small => (vec![4, 8], vec![16, 32], 4, 2_048u64, 512u64),
    };
    let stop = match std::env::var("HCFT_CAMPAIGN_TARGET_CI")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        Some(avail_ci) => {
            let cat_ci = std::env::var("HCFT_CAMPAIGN_TARGET_CI_CAT")
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(f64::INFINITY);
            StopRule::until_ci(
                trials,
                batch,
                batch,
                CiTarget {
                    availability: avail_ci,
                    catastrophic: cat_ci,
                },
            )
        }
        None => StopRule {
            max_trials: trials,
            batch,
            min_trials: trials,
            target_ci: None,
        },
    };
    let grid = CampaignGrid {
        strategies,
        mtbfs_h,
        cluster_sizes,
        machine_nodes,
        ppn,
        base: CampaignConfig {
            duration_h: match scale {
                Scale::Paper => 30.0 * 24.0,
                Scale::Small => 7.0 * 24.0,
            },
            ..Default::default()
        },
        stop,
    };
    let cells = grid.run().expect("grid axes are valid by construction");
    let total_trials: u64 = cells.iter().map(|c| c.stats.trials).sum();
    let stopped = cells.iter().filter(|c| c.stats.early_stopped).count();
    let mut rows = Vec::with_capacity(cells.len());
    let mut report = format!(
        "CAMPAIGN GRID (extension) — {} cells, {} trials total\
         {}\n\nstrategy     mtbf_h  size  nodes       avail ±95%CI        catastrophic ±95%CI\n",
        cells.len(),
        total_trials,
        if stopped > 0 {
            format!(", {stopped} cells stopped early at the CI target")
        } else {
            String::new()
        },
    );
    for c in &cells {
        report.push_str(&format!(
            "{:<12} {:>6.1} {:>5} {:>6}  {:>9.6} ±{:<9.6}  {:>9.4} ±{:<9.4}\n",
            c.strategy,
            c.mtbf_h,
            c.cluster_size,
            c.nodes,
            c.stats.availability.mean(),
            c.stats.availability.ci95(),
            c.stats.catastrophic.mean(),
            c.stats.catastrophic.ci95(),
        ));
        rows.push(vec![
            c.strategy.to_string(),
            format!("{:.1}", c.mtbf_h),
            c.cluster_size.to_string(),
            c.nodes.to_string(),
            c.ppn.to_string(),
            c.stats.trials.to_string(),
            (c.stats.early_stopped as u8).to_string(),
            format!("{:.4}", c.stats.failures.mean()),
            format!("{:.4}", c.stats.failures.ci95()),
            format!("{:.6}", c.stats.catastrophic.mean()),
            format!("{:.6}", c.stats.catastrophic.ci95()),
            format!("{:.4}", c.stats.transient.mean()),
            format!("{:.4}", c.stats.transient.ci95()),
            format!("{:.6}", c.stats.availability.mean()),
            format!("{:.6}", c.stats.availability.ci95()),
        ]);
    }
    report.push_str(
        "\nEach row is one Monte-Carlo cell; counts are means per campaign with\n\
         95 % normal CIs from streaming Welford moments. The verdict of the\n\
         single-point campaign holds across the grid: striped containment\n\
         tracks distributed reliability at a fraction of the restart waste.\n",
    );
    Artifact {
        id: "campaign-grid",
        report,
        csv: vec![CsvFile::new(
            "ext_campaign_grid.csv",
            "strategy,mtbf_h,cluster_size,nodes,ppn,trials,early_stopped,\
             failures_mean,failures_ci95,catastrophic_mean,catastrophic_ci95,\
             transient_mean,transient_ci95,availability_mean,availability_ci95",
            &rows,
        )],
    }
}

/// Extension: the §V generalisation claim — evaluate the four clusterings
/// on a structurally different workload (3-D heat diffusion, seven-point
/// stencil) and check the same verdicts hold.
pub fn heat3d(scale: Scale) -> Artifact {
    use hcft_simmpi::{World, WorldConfig};
    use hcft_tsunami::heat3d::{run_heat3d, Heat3dParams};
    // Match the scale's node/rank shape.
    let job = scale.job();
    let (nodes, ppn) = (job.nodes, job.app_per_node);
    let nprocs = nodes * ppn;
    // A flat-ish 3-D process grid: x covers most ranks, 2×2 in y/z.
    let px = nprocs / 4;
    let grid = (px, 2, 2);
    let dims = (2 * px, 32, 32);
    let params = Heat3dParams::stable(dims, grid);
    let world_cfg = WorldConfig {
        recv_timeout: std::time::Duration::from_secs(300),
        ..WorldConfig::default()
    };
    eprintln!("[repro] tracing 3-D heat workload ({nprocs} ranks)…");
    let result = World::run_with(nprocs, world_cfg, move |c| {
        run_heat3d(c, &params, 50);
    });
    let matrix = result.trace.byte_matrix();
    let placement = Placement::block(nodes, ppn);
    let node_graph = WeightedGraph::from_comm_matrix(&matrix.aggregate_by_node(&placement));
    let (nv, sg, ds) = scale.table2_sizes();
    let hier_cfg = HierarchicalConfig {
        min_nodes_per_l1: 4,
        max_nodes_per_l1: 4,
        l2_group_nodes: 4,
        ..Default::default()
    };
    let schemes = vec![
        naive(nprocs, nv),
        hcft_cluster::size_guided(nprocs, sg),
        distributed(&placement, ds),
        hierarchical(&placement, &node_graph, &hier_cfg),
    ];
    let evaluator = Evaluator::new(matrix, placement);
    let baseline = BaselineRequirements::default();
    let mut rows = Vec::new();
    let mut report = String::from(
        "HEAT-3D (extension) — the four clusterings on a 7-point 3-D stencil\n\n\
         method                    logged%   restart%  enc(1GB)   P(cat)   meets-all\n",
    );
    for scheme in &schemes {
        let s = evaluator.evaluate(scheme);
        report.push_str(&format!(
            "{:<24} {:>8.1}  {:>8.2}  {:>7.0} s  {:>8.1e}  {}\n",
            s.name,
            s.logging_fraction * 100.0,
            s.restart_fraction * 100.0,
            s.encode_s_per_gb,
            s.p_catastrophic,
            if baseline.meets_all(&s) { "YES" } else { "no" }
        ));
        rows.push(vec![
            s.name.clone(),
            format!("{:.4}", s.logging_fraction),
            format!("{:.4}", s.restart_fraction),
            format!("{:.1}", s.encode_s_per_gb),
            format!("{:e}", s.p_catastrophic),
            baseline.meets_all(&s).to_string(),
        ]);
    }
    report.push_str(
        "\n§V's generalisation claim: stencil-class applications keep the Table-II\n\
         verdicts — only the hierarchical clustering meets the full baseline.\n",
    );
    Artifact {
        id: "heat3d",
        report,
        csv: vec![CsvFile::new(
            "ext_heat3d_comparison.csv",
            "method,logging_fraction,restart_fraction,encode_s_per_gb,p_catastrophic,meets_all",
            &rows,
        )],
    }
}

/// Extension: the discrete-event simulator vs the closed-form cost model
/// — the same cross-validation role Monte Carlo plays for reliability.
pub fn simtime(_scale: Scale) -> Artifact {
    use hcft_checkpoint::{CheckpointCostModel, Level};
    use hcft_graph::Clustering;
    use hcft_simtime::{simulate_checkpoint, SimConfig, SimLevel};
    let rates = hcft_simtime::Rates::tsubame2();
    let cost = CheckpointCostModel::tsubame2();
    let gb: u64 = 1_000_000_000;
    let placement = Placement::block(32, 1);
    let distributed =
        |size: usize| Clustering::from_assignment(&(0..32).map(|r| r / size).collect::<Vec<_>>());
    let mut rows = Vec::new();
    let mut report = String::from(
        "SIMTIME (extension) — discrete-event simulation vs closed-form model\n\
         (1 GB per rank, 32 nodes x 1 rank, distributed encoding groups)\n\n\
         configuration                 simulated   closed-form\n",
    );
    let mut emit = |label: String, sim_s: f64, model_s: f64| {
        report.push_str(&format!("{label:<28} {sim_s:>9.1} s {model_s:>10.1} s\n"));
        rows.push(vec![label, format!("{sim_s:.2}"), format!("{model_s:.2}")]);
    };
    let sim_cfg = SimConfig {
        rates,
        bytes_per_rank: gb,
    };
    for g in [4usize, 8, 16, 32] {
        let t = simulate_checkpoint(&sim_cfg, SimLevel::Encoded, &distributed(g), &placement);
        let m = cost.cost(Level::Encoded, gb, 1, 32, g);
        emit(
            format!("RS encode, group {g}"),
            t,
            m.local_write_s + m.encode_s,
        );
    }
    let singles = Clustering::singletons(32);
    let t = simulate_checkpoint(&sim_cfg, SimLevel::Local, &singles, &placement);
    let m = cost.cost(Level::Local, gb, 1, 32, 4);
    emit("local only".to_string(), t, m.total_s());
    let t = simulate_checkpoint(&sim_cfg, SimLevel::Pfs, &singles, &placement);
    let m = cost.cost(Level::Pfs, gb, 1, 32, 4);
    emit("PFS drain".to_string(), t, m.total_s());
    report.push_str(
        "\nThe simulated times reproduce the closed-form model's linear encoding law\n\
         (same ≈6.4 s/GB/member slope) with a small additive I/O offset the model's\n\
         encode term excludes — two independent routes to the paper's Fig. 3b.\n",
    );
    Artifact {
        id: "simtime",
        report,
        csv: vec![CsvFile::new(
            "ext_simtime_vs_model.csv",
            "configuration,simulated_s,model_s",
            &rows,
        )],
    }
}

/// Extension: sender-log memory over time (§II-B2's footprint concern).
/// Traces a reduced event-logged run and plots the sawtooth of log bytes
/// between coordinated checkpoints for three clusterings.
pub fn logmem(scale: Scale) -> Artifact {
    use hcft_msglog::log_memory_timeline;
    // Event logging at full paper scale is memory-heavy; a quarter-size
    // run with identical structure suffices for the timeline shape.
    let mut job = scale.job();
    job.nodes = (job.nodes / 2).max(8);
    let nprocs = job.nodes * job.app_per_node;
    let px = nprocs / 2;
    job.process_grid = Some((px, 2));
    job.grid = ((2 * px).max(16), 1024);
    job.record_events = true;
    let t = hcft_core::experiment::run_traced_job(&job);
    let placement = t.layout.app_placement();
    let n = placement.nprocs();
    let node_graph = WeightedGraph::from_comm_matrix(&t.app.aggregate_by_node(&placement));
    let hier = hierarchical(
        &placement,
        &node_graph,
        &HierarchicalConfig {
            min_nodes_per_l1: 4,
            max_nodes_per_l1: 4,
            l2_group_nodes: 4,
            ..Default::default()
        },
    );
    let schemes = vec![
        naive(n, 32.min(n / 2)),
        distributed(&placement, 8.min(placement.nodes())),
        hier,
    ];
    let ckpt_every = job.checkpoint_every;
    let mut rows = Vec::new();
    let mut report = format!(
        "LOG MEMORY (extension) — sender-log bytes over time, checkpoints every {ckpt_every} iterations\n\n\
         phase"
    );
    let timelines: Vec<_> = schemes
        .iter()
        .map(|s| log_memory_timeline(&s.l1, &t.app_events, ckpt_every))
        .collect();
    for s in &schemes {
        report.push_str(&format!("  {:>22}", s.name));
    }
    report.push('\n');
    let phases = timelines[0].len();
    for ph in (0..phases).step_by((phases / 12).max(1)) {
        report.push_str(&format!("{ph:<5}"));
        let mut row = vec![ph.to_string()];
        for tl in &timelines {
            report.push_str(&format!("  {:>22}", tl[ph].bytes));
            row.push(tl[ph].bytes.to_string());
        }
        report.push('\n');
        rows.push(row);
    }
    report.push_str(
        "\nThe sawtooth: logs grow between coordinated checkpoints and are garbage\n\
         collected at each one. Distributed clustering's log grows an order of\n\
         magnitude faster — the §II-B2 memory-footprint concern, measured.\n",
    );
    Artifact {
        id: "logmem",
        report,
        csv: vec![CsvFile::new(
            "ext_logmem_timeline.csv",
            "phase,naive_bytes,distributed_bytes,hierarchical_bytes",
            &rows,
        )],
    }
}

/// Extension: the live replay engine, measured. Three scenarios of
/// rising severity run against a striped two-level scheme — single node
/// loss, a whole-L1-cluster kill, and a cluster kill with a cascading
/// second failure mid-recovery — each verified bit-identical to an
/// uninterrupted run. The engine reports through the process-global
/// registry, so `repro --telemetry` carries the `replay.*` counters.
pub fn replay(scale: Scale) -> Artifact {
    use hcft_core::replay::{ReplayConfig, ReplayEngine, TsunamiWorkload};
    use hcft_core::scenario::FaultScenario;
    use hcft_topology::NodeId;
    use hcft_tsunami::TsunamiParams;

    let (nodes, ppn, l1_nodes, l2_size, grid) = match scale {
        Scale::Paper => (16, 8, 4, 16, (96, 96)),
        Scale::Small => (8, 4, 2, 8, (32, 32)),
    };
    let placement = Placement::block(nodes, ppn);
    let scheme = hcft_cluster::striped(&placement, l1_nodes, l2_size);
    let total = 18u64;
    let fail_at = 13u64;
    let store = std::env::temp_dir().join(format!("hcft-repro-replay-{}", std::process::id()));
    let cfg = ReplayConfig::new(&store);

    // A cascade victim outside the primary L1 cluster (cluster 1).
    let cascade_node = NodeId(0);
    let scenarios: Vec<(&str, FaultScenario)> = vec![
        (
            "node loss",
            FaultScenario::node_loss(NodeId(l1_nodes as u32), fail_at),
        ),
        (
            "L1 cluster kill",
            FaultScenario::at(fail_at).l1_cluster(1).build(),
        ),
        (
            "cluster kill + cascade",
            FaultScenario::at(fail_at)
                .l1_cluster(1)
                .cascade(cascade_node, 1)
                .build(),
        ),
    ];

    let engine = ReplayEngine::new(
        TsunamiWorkload::new(TsunamiParams::stable(grid.0, grid.1)),
        placement,
        scheme,
        cfg,
    );
    let reference = engine.reference(total);
    let mut rows = Vec::new();
    let mut report = String::from(
        "REPLAY (extension) — live cluster-loss recovery, bit-exact catch-up\n\n\
         scenario                  nodes  restart  attempts  replayed msgs  catchup  identical\n",
    );
    for (name, scenario) in &scenarios {
        // Each run needs a fresh store: the engine owns its epochs.
        let _ = std::fs::remove_dir_all(&store);
        let out = engine.run(scenario, total).expect("scenario recoverable");
        let identical = out.matches(&reference);
        report.push_str(&format!(
            "{:<24} {:>6} {:>8} {:>9} {:>14} {:>8}  {}\n",
            name,
            out.failed_nodes.len(),
            out.restart_set.len(),
            out.recovery_attempts,
            out.messages_replayed,
            out.catchup_steps,
            if identical { "YES" } else { "NO" },
        ));
        rows.push(vec![
            name.to_string(),
            out.failed_nodes.len().to_string(),
            out.restart_set.len().to_string(),
            out.recovery_attempts.to_string(),
            out.messages_replayed.to_string(),
            out.bytes_replayed.to_string(),
            out.catchup_steps.to_string(),
            out.wasted_catchup_steps.to_string(),
            identical.to_string(),
        ]);
        assert!(identical, "{name}: replayed state diverged");
    }
    let _ = std::fs::remove_dir_all(&store);
    report.push_str(
        "\nEvery scenario recovers to a state byte-identical to an uninterrupted\n\
         run: checkpoints restore the restart set, sender logs re-feed the\n\
         cross-cluster halos, send-determinism regenerates the rest.\n",
    );
    Artifact {
        id: "replay",
        report,
        csv: vec![CsvFile::new(
            "ext_replay_scenarios.csv",
            "scenario,failed_nodes,restart_ranks,attempts,messages_replayed,bytes_replayed,catchup_steps,wasted_catchup_steps,bit_identical",
            &rows,
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_only_figures_run_without_a_trace() {
        let a = fig4a();
        assert!(a.report.contains("128 nodes"));
        assert_eq!(a.csv.len(), 1);
        let c = fig4c();
        assert!(c.report.contains("distributed"));
        // Paper anchors: non-distributed 32 → 3.125%, distributed 32 → 50%.
        assert!(c.csv[0].content.contains("32,3.125,50.000"));
    }

    #[test]
    fn table1_is_tsubame2() {
        assert!(table1().report.contains("TSUBAME2"));
    }

    #[test]
    fn measured_encode_grows_with_group_size() {
        // Fig. 3b's law: per-member encode time is linear in the group
        // size. Allow generous slack for scheduler noise.
        let t4 = measure_encode_seconds_per_gb(4);
        let t16 = measure_encode_seconds_per_gb(16);
        assert!(t16 > 1.5 * t4, "t4={t4}, t16={t16}");
    }
}
