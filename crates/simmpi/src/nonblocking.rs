//! Nonblocking point-to-point operations.
//!
//! Real stencil codes post `MPI_Irecv`/`MPI_Isend` for all neighbours and
//! `MPI_Waitall` once — the pattern the paper's tsunami code uses on
//! MPICH2. Because this runtime's sends are buffered, `isend` completes
//! immediately; `irecv` returns a [`RecvRequest`] that resolves on
//! [`RecvRequest::wait`] (or in a batch via [`wait_all`]).
//!
//! Requests are checked at drop time: forgetting to wait on a receive is
//! a correctness bug (the message would be silently lost), so an
//! unwaited `RecvRequest` panics — the moral equivalent of MPI's
//! "pending request leaked" error.

use bytes::Bytes;

use crate::comm::Comm;
use crate::datatype::{decode, decode_into, Datum};

/// A pending receive posted with [`Comm::irecv`].
#[must_use = "a posted receive must be waited on"]
pub struct RecvRequest<'a> {
    comm: &'a Comm,
    src: usize,
    tag: u32,
    done: bool,
}

impl<'a> RecvRequest<'a> {
    /// Block until the message arrives and return its payload (the
    /// sender's refcounted buffer, not a copy).
    pub fn wait_bytes(mut self) -> Bytes {
        self.done = true;
        self.comm.recv_bytes(self.src, self.tag)
    }

    /// Block until the message arrives and decode it.
    pub fn wait<T: Datum>(mut self) -> Vec<T> {
        self.done = true;
        let raw = self.comm.recv_bytes(self.src, self.tag);
        let out = decode(&raw);
        self.comm.recycle(raw);
        out
    }

    /// Block until the message arrives and decode it into caller-owned
    /// scratch (cleared first). The allocation-free counterpart of
    /// [`RecvRequest::wait`]: the transport buffer goes back to the pool
    /// and `out` reuses its capacity.
    pub fn wait_into<T: Datum>(mut self, out: &mut Vec<T>) {
        self.done = true;
        let raw = self.comm.recv_bytes(self.src, self.tag);
        decode_into(&raw, out);
        self.comm.recycle(raw);
    }

    /// The posted source rank.
    pub fn source(&self) -> usize {
        self.src
    }

    /// The posted tag.
    pub fn tag(&self) -> u32 {
        self.tag
    }
}

impl Drop for RecvRequest<'_> {
    fn drop(&mut self) {
        if !self.done && !std::thread::panicking() {
            panic!(
                "RecvRequest (src {}, tag {:#x}) dropped without wait",
                self.src, self.tag
            );
        }
    }
}

impl Comm {
    /// Post a nonblocking receive. The returned request must be waited.
    pub fn irecv(&self, src: usize, tag: u32) -> RecvRequest<'_> {
        assert!(src < self.size(), "src {src} out of range");
        assert!(tag <= crate::comm::MAX_USER_TAG, "tag {tag:#x} is reserved");
        RecvRequest {
            comm: self,
            src,
            tag,
            done: false,
        }
    }

    /// Nonblocking send. Buffered semantics: the payload is enqueued
    /// immediately and the call never blocks (the analogue of MPI's
    /// `MPI_Ibsend` completing at once).
    pub fn isend<T: Datum>(&self, dst: usize, tag: u32, data: &[T]) {
        self.send_slice(dst, tag, data);
    }
}

/// Wait on a batch of receives, returning payloads in posting order —
/// `MPI_Waitall` for this runtime.
pub fn wait_all<T: Datum>(requests: Vec<RecvRequest<'_>>) -> Vec<Vec<T>> {
    requests.into_iter().map(RecvRequest::wait).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::World;

    #[test]
    fn irecv_before_send_resolves() {
        let r = World::run(2, |c| {
            if c.rank() == 0 {
                let req = c.irecv(1, 5);
                // The message is sent after the receive is posted.
                c.send_slice(1, 6, &[0u8]); // tell rank 1 to go
                req.wait::<u64>()
            } else {
                c.recv_bytes(0, 6);
                c.isend(0, 5, &[99u64]);
                vec![]
            }
        });
        assert_eq!(r.outputs[0], vec![99]);
    }

    #[test]
    fn wait_all_preserves_posting_order() {
        let r = World::run(4, |c| {
            if c.rank() == 0 {
                let reqs: Vec<_> = (1..4).map(|src| c.irecv(src, 1)).collect();
                wait_all::<u64>(reqs)
                    .into_iter()
                    .map(|v| v[0])
                    .collect::<Vec<_>>()
            } else {
                c.isend(0, 1, &[c.rank() as u64 * 10]);
                vec![]
            }
        });
        assert_eq!(r.outputs[0], vec![10, 20, 30]);
    }

    #[test]
    fn halo_pattern_with_nonblocking_ops() {
        // The canonical stencil exchange: post all receives, send all
        // edges, wait all.
        let r = World::run(3, |c| {
            let left = (c.rank() + 2) % 3;
            let right = (c.rank() + 1) % 3;
            let r_left = c.irecv(left, 7);
            let r_right = c.irecv(right, 8);
            c.isend(right, 7, &[c.rank() as f64]);
            c.isend(left, 8, &[c.rank() as f64]);
            (r_left.wait::<f64>()[0], r_right.wait::<f64>()[0])
        });
        assert_eq!(r.outputs[1], (0.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "dropped without wait")]
    fn leaked_request_panics() {
        World::run(1, |c| {
            let _req = c.irecv(0, 1);
            // dropped unwaited
        });
    }

    #[test]
    fn request_metadata_is_visible() {
        World::run(1, |c| {
            let req = c.irecv(0, 3);
            assert_eq!(req.source(), 0);
            assert_eq!(req.tag(), 3);
            c.isend(0, 3, &[1u8]);
            let got = req.wait_bytes();
            assert_eq!(got, vec![1]);
        });
    }
}
