//! `simmpi` — an in-process MPI-like runtime for six-figure rank counts.
//!
//! The paper runs its tsunami workload under a modified MPICH2 that traces
//! every message. We have no cluster and no MPI, so this crate *is* the
//! substitute substrate: each rank is a resumable task multiplexed M:N
//! onto a fixed worker pool (or, as a portable fallback, an OS thread),
//! point-to-point messages go through per-rank mailboxes, and the
//! collectives implement the same algorithms MPICH2 uses (notably
//! recursive-doubling allgather, whose power-of-two communication
//! diagonals are explicitly visible in the paper's Fig. 5b). A
//! [`TraceRecorder`] observes every byte on the wire, exactly like the
//! paper's instrumented MPI library.
//!
//! Design notes:
//! * **Buffered sends** — `send` never blocks, so naive SPMD exchange
//!   patterns cannot deadlock; `recv` blocks with a watchdog timeout that
//!   converts genuine deadlocks into a panic naming rank/src/tag.
//! * **Communicators** — `Comm::split` implements `MPI_Comm_split` on top
//!   of an allgather; sub-communicator traffic is still traced in *world*
//!   ranks so the global communication matrix stays coherent.
//! * **Determinism** — matching is FIFO per (communicator, sender, tag),
//!   and there is no wildcard receive, so applications written against
//!   this API are send-deterministic — the property HydEE requires of its
//!   MPI applications.

pub mod collectives;
pub mod comm;
pub mod datatype;
pub mod nonblocking;
pub mod replay;
pub mod runtime;
mod sched;
pub mod trace;

pub use comm::Comm;
pub use datatype::Datum;
pub use nonblocking::{wait_all, RecvRequest};
pub use replay::{ReplayFeed, ReplayPlan, ReplayWorldResult};
pub use runtime::{maybe_yield, Engine, ResolvedWorldConfig, World, WorldConfig};
pub use trace::{MessageEvent, TraceRecorder};
