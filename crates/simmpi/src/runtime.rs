//! World construction: one OS thread per rank, sharded shared mailboxes.
//!
//! 1088 ranks (the paper's largest job) means 1088 threads; with 512 KiB
//! stacks that is ~0.5 GiB of reserved (mostly untouched) address space —
//! cheap on Linux. Threads block on condvars while waiting for messages,
//! so oversubscription costs context switches only when traffic flows.
//!
//! Each rank's mailbox is split into shards indexed by *sender* world
//! rank, so concurrent senders to the same destination (the all-to-one
//! patterns of gather/reduce, and the encoder ranks absorbing checkpoint
//! pushes) do not serialize on one mutex. A message's channel
//! (ctx, src, tag) always maps to exactly one shard, so FIFO per channel
//! is preserved by construction. `HCFT_SIMMPI_SHARDS=1` collapses to the
//! pre-sharding design (one mutex + condvar per rank) — the baseline the
//! `bench_pipeline` harness compares against.

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hcft_telemetry::{Counter, Registry};
use parking_lot::{Condvar, Mutex};

use crate::comm::Comm;
use crate::trace::TraceRecorder;

/// Message-queue key: (communicator context, sender comm-rank, tag).
pub(crate) type MsgKey = (u64, u32, u32);

/// Default shard count per mailbox (capped at the world size).
const DEFAULT_SHARDS: usize = 8;

/// One lock domain of a mailbox: FIFO queues per (ctx, src, tag) for the
/// subset of senders hashing here, plus the condvar receivers park on.
struct Shard {
    queues: Mutex<HashMap<MsgKey, std::collections::VecDeque<Vec<u8>>>>,
    cv: Condvar,
}

impl Shard {
    fn new() -> Self {
        Shard {
            queues: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }
}

/// Per-rank mailbox, sharded by sender comm-rank.
pub(crate) struct Mailbox {
    shards: Vec<Shard>,
}

impl Mailbox {
    fn new(num_shards: usize) -> Self {
        Mailbox {
            shards: (0..num_shards.max(1)).map(|_| Shard::new()).collect(),
        }
    }

    /// The shard owning a channel. Sharding on the sender keeps every
    /// (ctx, src, tag) channel on a single lock, which is what makes
    /// per-channel FIFO survive the split.
    #[inline]
    fn shard(&self, key: &MsgKey) -> &Shard {
        &self.shards[key.1 as usize % self.shards.len()]
    }
}

/// Mailbox telemetry, resolved once per world so the per-message path
/// touches relaxed atomics only (no registry name lookups).
pub(crate) struct MailboxMetrics {
    /// Messages deposited into any mailbox.
    pub(crate) messages: Arc<Counter>,
    /// Payload bytes moved through mailboxes.
    pub(crate) bytes: Arc<Counter>,
    /// Times a receiver actually parked on a condvar (message not ready).
    pub(crate) waits: Arc<Counter>,
    /// Sends that found the shard lock held and had to block for it.
    pub(crate) contended: Arc<Counter>,
}

impl MailboxMetrics {
    fn from_registry(reg: &Registry) -> Self {
        MailboxMetrics {
            messages: reg.counter("simmpi.mailbox.messages"),
            bytes: reg.counter("simmpi.mailbox.bytes"),
            waits: reg.counter("simmpi.mailbox.wait_events"),
            contended: reg.counter("simmpi.mailbox.send_contended"),
        }
    }
}

/// Recycled payload buffers. `send_*` checks out a buffer, the matching
/// typed receive recycles it after decoding, so steady-state traffic
/// (halo exchanges, allreduce rounds) stops hitting the allocator.
pub(crate) struct BufferPool {
    slots: Mutex<Vec<Vec<u8>>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl BufferPool {
    /// Buffers retained at once; beyond this, returns go to the allocator.
    const MAX_POOLED: usize = 256;
    /// Largest capacity worth retaining — one halo column is a few KiB,
    /// one checkpoint push ≤ 1 MiB; bigger buffers are one-offs.
    const MAX_POOLED_CAPACITY: usize = 1 << 20;

    fn new(reg: &Registry) -> Self {
        BufferPool {
            slots: Mutex::new(Vec::new()),
            hits: reg.counter("simmpi.pool.hits"),
            misses: reg.counter("simmpi.pool.misses"),
        }
    }

    /// An empty buffer with at least `capacity` reserved.
    pub(crate) fn checkout(&self, capacity: usize) -> Vec<u8> {
        let reused = self.slots.lock().pop();
        match reused {
            Some(mut v) => {
                self.hits.inc();
                v.clear();
                v.reserve(capacity);
                v
            }
            None => {
                self.misses.inc();
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Return a spent payload for reuse (oversized buffers are dropped).
    pub(crate) fn recycle(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > Self::MAX_POOLED_CAPACITY {
            return;
        }
        let mut slots = self.slots.lock();
        if slots.len() < Self::MAX_POOLED {
            slots.push(buf);
        }
    }
}

/// State shared by all ranks of a world.
pub(crate) struct Shared {
    pub(crate) n: usize,
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) trace: Arc<TraceRecorder>,
    pub(crate) phases: Vec<AtomicU64>,
    pub(crate) recv_timeout: Duration,
    pub(crate) metrics: MailboxMetrics,
    pub(crate) pool: BufferPool,
}

impl Shared {
    /// Block until a message matching `key` arrives in `rank`'s mailbox.
    /// Panics with a diagnostic if `recv_timeout` elapses — a deadlocked
    /// SPMD program is a bug we want loudly, not a hung test suite.
    pub(crate) fn blocking_recv(&self, rank: usize, key: MsgKey) -> Vec<u8> {
        let shard = self.mailboxes[rank].shard(&key);
        let deadline = Instant::now() + self.recv_timeout;
        let mut queues = shard.queues.lock();
        loop {
            if let Some(q) = queues.get_mut(&key) {
                if let Some(msg) = q.pop_front() {
                    if q.is_empty() {
                        queues.remove(&key);
                    }
                    return msg;
                }
            }
            self.metrics.waits.inc();
            if shard.cv.wait_until(&mut queues, deadline).timed_out() {
                panic!(
                    "simmpi deadlock: rank {rank} waited {:?} for (ctx={}, src={}, tag={:#x})",
                    self.recv_timeout, key.0, key.1, key.2
                );
            }
        }
    }

    /// Deposit a message into `dst`'s mailbox.
    pub(crate) fn deliver(&self, dst: usize, key: MsgKey, payload: Vec<u8>) {
        self.metrics.messages.inc();
        self.metrics.bytes.add(payload.len() as u64);
        let shard = self.mailboxes[dst].shard(&key);
        let mut queues = match shard.queues.try_lock() {
            Some(guard) => guard,
            None => {
                self.metrics.contended.inc();
                shard.queues.lock()
            }
        };
        queues.entry(key).or_default().push_back(payload);
        drop(queues);
        shard.cv.notify_all();
    }
}

/// Tunables for a world run.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Per-rank thread stack size in bytes.
    pub stack_size: usize,
    /// How long a blocking receive may wait before declaring deadlock.
    pub recv_timeout: Duration,
    /// Also keep the ordered per-sender event log (needed by the
    /// message-logging analyses; costs memory per message).
    pub trace_events: bool,
    /// Mailbox shards per rank; 0 = auto (`HCFT_SIMMPI_SHARDS` env
    /// override, else 8, capped at the world size). 1 reproduces the
    /// unsharded single-mutex-per-rank design.
    pub mailbox_shards: usize,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            stack_size: 512 * 1024,
            recv_timeout: Duration::from_secs(60),
            trace_events: false,
            mailbox_shards: 0,
        }
    }
}

/// Shards per mailbox for a world of `n` ranks under `cfg`.
fn resolve_shards(cfg: &WorldConfig, n: usize) -> usize {
    let requested = if cfg.mailbox_shards > 0 {
        cfg.mailbox_shards
    } else {
        std::env::var("HCFT_SIMMPI_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&s| s > 0)
            .unwrap_or(DEFAULT_SHARDS)
    };
    requested.min(n).max(1)
}

/// A finished world run: per-rank outputs (rank-ordered) plus the trace.
pub struct WorldResult<T> {
    /// The value returned by each rank's closure, indexed by world rank.
    pub outputs: Vec<T>,
    /// The recorded communication trace.
    pub trace: Arc<TraceRecorder>,
}

/// Entry point: spawn `n` ranks and run `f` on each.
pub struct World;

impl World {
    /// Run `f(comm)` on `n` ranks with default configuration.
    pub fn run<T, F>(n: usize, f: F) -> WorldResult<T>
    where
        T: Send + 'static,
        F: Fn(&mut Comm) -> T + Send + Sync + 'static,
    {
        Self::run_with(n, WorldConfig::default(), f)
    }

    /// Run `f(comm)` on `n` ranks with explicit configuration.
    ///
    /// # Panics
    /// Re-raises the first rank panic (annotated with the rank) and panics
    /// on deadlock via the receive watchdog.
    pub fn run_with<T, F>(n: usize, cfg: WorldConfig, f: F) -> WorldResult<T>
    where
        T: Send + 'static,
        F: Fn(&mut Comm) -> T + Send + Sync + 'static,
    {
        assert!(n > 0, "world needs at least one rank");
        let shards = resolve_shards(&cfg, n);
        let reg = Registry::global();
        reg.counter("simmpi.worlds").inc();
        reg.gauge("simmpi.mailbox.shards").set(shards as f64);
        let trace = Arc::new(TraceRecorder::new(n, cfg.trace_events));
        let shared = Arc::new(Shared {
            n,
            mailboxes: (0..n).map(|_| Mailbox::new(shards)).collect(),
            trace: Arc::clone(&trace),
            phases: (0..n).map(|_| AtomicU64::new(0)).collect(),
            recv_timeout: cfg.recv_timeout,
            metrics: MailboxMetrics::from_registry(reg),
            pool: BufferPool::new(reg),
        });
        let f = Arc::new(f);
        let mut handles = Vec::with_capacity(n);
        for rank in 0..n {
            let shared = Arc::clone(&shared);
            let f = Arc::clone(&f);
            let handle = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(cfg.stack_size)
                .spawn(move || {
                    let mut comm = Comm::world(shared, rank);
                    f(&mut comm)
                })
                .expect("spawn rank thread");
            handles.push(handle);
        }
        let mut outputs = Vec::with_capacity(n);
        let mut panicked: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(v) => outputs.push(v),
                Err(e) => {
                    if panicked.is_none() {
                        panicked = Some((rank, e));
                    }
                }
            }
        }
        if let Some((rank, e)) = panicked {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".to_string());
            panic!("rank {rank} panicked: {msg}");
        }
        WorldResult { outputs, trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world_runs() {
        let r = World::run(1, |c| c.rank() * 10 + c.size());
        assert_eq!(r.outputs, vec![1]);
    }

    #[test]
    fn outputs_are_rank_ordered() {
        let r = World::run(8, |c| c.rank());
        assert_eq!(r.outputs, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn ping_pong_traced() {
        let r = World::run(2, |c| {
            if c.rank() == 0 {
                c.send_bytes(1, 7, &[1, 2, 3]);
                c.recv_bytes(1, 8)
            } else {
                let m = c.recv_bytes(0, 7);
                c.send_bytes(0, 8, &[9; 5]);
                m
            }
        });
        assert_eq!(r.outputs[0], vec![9; 5]);
        assert_eq!(r.outputs[1], vec![1, 2, 3]);
        let m = r.trace.byte_matrix();
        assert_eq!(m.get(0, 1), 3);
        assert_eq!(m.get(1, 0), 5);
    }

    #[test]
    fn fifo_order_per_sender_tag() {
        let r = World::run(2, |c| {
            if c.rank() == 0 {
                for i in 0..10u8 {
                    c.send_bytes(1, 3, &[i]);
                }
                vec![]
            } else {
                (0..10).map(|_| c.recv_bytes(0, 3)[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(r.outputs[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn recv_without_send_deadlocks_loudly() {
        let cfg = WorldConfig {
            recv_timeout: Duration::from_millis(50),
            ..WorldConfig::default()
        };
        World::run_with(2, cfg, |c| {
            if c.rank() == 1 {
                c.recv_bytes(0, 1);
            }
        });
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked: boom")]
    fn rank_panic_is_annotated() {
        World::run(3, |c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn many_ranks_all_to_one() {
        let r = World::run(64, |c| {
            if c.rank() == 0 {
                let mut sum = 0u64;
                for src in 1..c.size() {
                    sum += c.recv_vec::<u64>(src, 1)[0];
                }
                sum
            } else {
                c.send_slice(0, 1, &[c.rank() as u64]);
                0
            }
        });
        assert_eq!(r.outputs[0], (1..64).sum::<u64>());
    }

    /// Same workload under every shard count that exercises a distinct
    /// code path: 1 (the unsharded baseline), 3 (ranks share shards
    /// unevenly), and more shards than ranks (capped).
    #[test]
    fn shard_counts_do_not_change_results() {
        for shards in [1usize, 3, 64] {
            let cfg = WorldConfig {
                mailbox_shards: shards,
                ..WorldConfig::default()
            };
            let r = World::run_with(8, cfg, |c| {
                let mut got = Vec::new();
                for src in 0..c.size() {
                    if src != c.rank() {
                        c.send_slice(src, 2, &[(c.rank() * 100) as u64]);
                    }
                }
                for src in 0..c.size() {
                    if src != c.rank() {
                        got.push(c.recv_vec::<u64>(src, 2)[0]);
                    }
                }
                got.iter().sum::<u64>()
            });
            let total: u64 = (0..8u64).map(|r| r * 100).sum();
            for (rank, &sum) in r.outputs.iter().enumerate() {
                assert_eq!(sum, total - rank as u64 * 100, "shards={shards}");
            }
        }
    }

    #[test]
    fn mailbox_metrics_count_traffic() {
        let reg = Registry::global();
        let msgs_before = reg.counter("simmpi.mailbox.messages").get();
        let bytes_before = reg.counter("simmpi.mailbox.bytes").get();
        World::run(2, |c| {
            if c.rank() == 0 {
                c.send_bytes(1, 1, &[0u8; 100]);
            } else {
                c.recv_bytes(0, 1);
            }
        });
        assert!(reg.counter("simmpi.mailbox.messages").get() > msgs_before);
        assert!(reg.counter("simmpi.mailbox.bytes").get() >= bytes_before + 100);
    }

    #[test]
    fn buffer_pool_reuses_payloads() {
        let reg = Registry::global();
        let hits_before = reg.counter("simmpi.pool.hits").get();
        // A long ping-pong of typed messages: after warm-up every send
        // can check out the buffer the previous receive recycled.
        World::run(2, |c| {
            let other = 1 - c.rank();
            for i in 0..200u64 {
                if c.rank() == 0 {
                    c.send_slice(other, 1, &[i]);
                    c.recv_vec::<u64>(other, 2);
                } else {
                    c.recv_vec::<u64>(other, 1);
                    c.send_slice(other, 2, &[i]);
                }
            }
        });
        assert!(
            reg.counter("simmpi.pool.hits").get() > hits_before,
            "pool should serve repeat sends from recycled buffers"
        );
    }
}
