//! World construction: simulated ranks over sharded shared mailboxes.
//!
//! Two execution engines share one mailbox fabric:
//!
//! * **Tasks** (default on x86_64 Linux): rank bodies run as stackful
//!   coroutines multiplexed M:N onto a fixed worker pool
//!   (`HCFT_SIMMPI_WORKERS`, default = cores) by the `sched` module. A
//!   blocking receive context-switches to the next runnable rank in tens
//!   of nanoseconds, so six-figure rank counts fit on one box — far past
//!   the kernel's thread limits — and a sender wakes its receiver by
//!   pushing a task id, not a futex syscall.
//! * **Threads**: one OS thread per rank, receivers parked on shard
//!   condvars after a yield-spin budget. 1088 ranks (the paper's largest
//!   job) is comfortably within this engine; it remains the portable
//!   fallback and the apples-to-apples baseline
//!   (`HCFT_SIMMPI_ENGINE=threads`).
//!
//! Each rank's mailbox is split into shards indexed by *sender* world
//! rank, so concurrent senders to the same destination (the all-to-one
//! patterns of gather/reduce, and the encoder ranks absorbing checkpoint
//! pushes) do not serialize on one mutex. A message's channel
//! (ctx, src, tag) always maps to exactly one shard, so FIFO per channel
//! is preserved by construction. `HCFT_SIMMPI_SHARDS=1` collapses to the
//! pre-sharding design (one mutex + condvar per rank) — the baseline the
//! `bench_pipeline` harness compares against.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use bytes::Bytes;
use hcft_telemetry::{Counter, HcftError, Registry};
use parking_lot::{Condvar, Mutex};

use crate::comm::Comm;
use crate::replay::{ReplayPlan, ReplayState, ReplayWorldResult};
use crate::sched::{self, TaskSched};
use crate::trace::TraceRecorder;

/// Message-queue key: (communicator context, sender comm-rank, tag).
pub(crate) type MsgKey = (u64, u32, u32);

/// Default shard count per mailbox (capped at the world size).
const DEFAULT_SHARDS: usize = 8;

/// Default coroutine/thread stack size when neither `WorldConfig` nor
/// `HCFT_SIMMPI_STACK_KB` says otherwise.
const DEFAULT_STACK_SIZE: usize = 512 * 1024;
/// Accepted `HCFT_SIMMPI_STACK_KB` range. The floor keeps headroom for
/// the panic machinery the deadlock watchdog relies on; the ceiling (1
/// GiB in KiB) catches byte-vs-KiB confusion before the slab allocator
/// tries to honour it times the rank count.
const MIN_STACK_KB: usize = 64;
const MAX_STACK_KB: usize = 1 << 20;

/// Default yield slices a receiver burns before parking on the shard
/// condvar when neither `WorldConfig::yield_spins` nor
/// `HCFT_SIMMPI_YIELD_SPINS` says otherwise.
const DEFAULT_YIELD_SPINS: u32 = 4;

/// `HCFT_SIMMPI_YIELD_SPINS` (cached): yield slices before a thread-engine
/// receiver parks; 0 disables the yield phase. (Distinct from
/// `HCFT_SIMMPI_YIELD_BUDGET`, the task-engine preemption budget.)
fn env_yield_spins() -> Option<u32> {
    static SPINS: OnceLock<Option<u32>> = OnceLock::new();
    *SPINS.get_or_init(|| {
        std::env::var("HCFT_SIMMPI_YIELD_SPINS")
            .ok()
            .and_then(|v| v.parse().ok())
    })
}

/// `HCFT_SIMMPI_SHARDS` (cached — the per-world resolve must not re-read
/// the environment).
fn env_shards() -> Option<usize> {
    static SHARDS: OnceLock<Option<usize>> = OnceLock::new();
    *SHARDS.get_or_init(|| {
        std::env::var("HCFT_SIMMPI_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&s| s > 0)
    })
}

/// `HCFT_SIMMPI_WORKERS` (cached).
fn env_workers() -> Option<usize> {
    static WORKERS: OnceLock<Option<usize>> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("HCFT_SIMMPI_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w > 0)
    })
}

/// `HCFT_SIMMPI_ENGINE` (cached): `tasks` or `threads`.
fn env_engine() -> Option<Engine> {
    static ENGINE: OnceLock<Option<Engine>> = OnceLock::new();
    *ENGINE.get_or_init(|| match std::env::var("HCFT_SIMMPI_ENGINE").as_deref() {
        Ok("tasks") => Some(Engine::Tasks),
        Ok("threads") => Some(Engine::Threads),
        _ => None,
    })
}

/// `HCFT_SIMMPI_STEAL` (cached): work stealing between task-engine
/// workers.
fn env_steal() -> Option<bool> {
    static STEAL: OnceLock<Option<bool>> = OnceLock::new();
    *STEAL.get_or_init(|| match std::env::var("HCFT_SIMMPI_STEAL").as_deref() {
        Ok("1") | Ok("true") => Some(true),
        Ok("0") | Ok("false") => Some(false),
        _ => None,
    })
}

/// `HCFT_SIMMPI_YIELD_BUDGET` (cached): `maybe_yield` calls between
/// cooperative preemptions; 0 disables preemption.
fn env_yield_budget() -> Option<u32> {
    static BUDGET: OnceLock<Option<u32>> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("HCFT_SIMMPI_YIELD_BUDGET")
            .ok()
            .and_then(|v| v.parse().ok())
    })
}

/// `HCFT_SIMMPI_STACK_KB` (cached): per-rank stack size in KiB,
/// validated once. The error (if any) is reported per world through
/// [`WorldConfig::validate`] / `World::run_with`.
fn env_stack_kb() -> &'static Result<Option<usize>, String> {
    static STACK: OnceLock<Result<Option<usize>, String>> = OnceLock::new();
    STACK.get_or_init(|| match std::env::var("HCFT_SIMMPI_STACK_KB") {
        Ok(raw) => validate_stack_kb(&raw).map(Some),
        Err(_) => Ok(None),
    })
}

/// Parse + range-check a `HCFT_SIMMPI_STACK_KB` value; returns bytes.
fn validate_stack_kb(raw: &str) -> Result<usize, String> {
    let kb: usize = raw
        .trim()
        .parse()
        .map_err(|_| format!("HCFT_SIMMPI_STACK_KB must be an integer KiB count, got {raw:?}"))?;
    if !(MIN_STACK_KB..=MAX_STACK_KB).contains(&kb) {
        return Err(format!(
            "HCFT_SIMMPI_STACK_KB must be between {MIN_STACK_KB} and {MAX_STACK_KB} KiB, got {kb}"
        ));
    }
    Ok(kb * 1024)
}

/// FNV-1a over the key words. The default SipHash hasher is a measurable
/// cost on the per-message path (the queue map is looked up twice per
/// message), and mailbox keys are process-internal — no DoS surface.
#[derive(Default)]
pub(crate) struct FnvHasher(u64);

impl FnvHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        let h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        self.0 = (h ^ word).wrapping_mul(0x100_0000_01b3);
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(b as u64);
        }
    }

    // The key tuple hashes as three fixed-width writes; folding each as
    // one word instead of byte-at-a-time cuts the dependent-multiply
    // chain from 16 to 3 on the per-message map lookups.
    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.mix(x as u64);
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.mix(x);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

pub(crate) type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// Sentinel for [`Channel::waiter`]: no task is parked on the channel.
const NO_WAITER: u32 = u32::MAX;

/// One message channel: its FIFO plus the wake hint for the task engine.
/// Keeping the hint inside the map value means deliver and receive each
/// do a single map lookup for both the payload and the handshake.
struct Channel {
    q: VecDeque<Bytes>,
    /// World rank of the task blocked on this channel (task engine), or
    /// [`NO_WAITER`]. Written under the shard lock; a sender that takes
    /// it owns the wake.
    waiter: u32,
}

impl Default for Channel {
    fn default() -> Self {
        Channel {
            q: VecDeque::new(),
            waiter: NO_WAITER,
        }
    }
}

/// One lock domain of a mailbox: FIFO queues per (ctx, src, tag) for the
/// subset of senders hashing here, plus the condvar receivers park on.
/// Queues stay resident once created — a drained channel keeps its
/// (empty) `VecDeque`, so steady-state traffic never reallocates queue
/// storage or rehashes the map.
struct Shard {
    queues: Mutex<FnvMap<MsgKey, Channel>>,
    cv: Condvar,
    /// Receivers currently parked (or about to park) on `cv`. Senders
    /// skip the condvar entirely when this is zero — on Linux a notify
    /// with no waiters is still a futex syscall, and at paper scale the
    /// common case is that the receiver has not posted yet. Mutated only
    /// under `queues`, so a sender holding the lock sees an exact count.
    waiters: AtomicU32,
}

impl Shard {
    fn new() -> Self {
        Shard {
            queues: Mutex::new(FnvMap::default()),
            cv: Condvar::new(),
            waiters: AtomicU32::new(0),
        }
    }
}

/// Per-rank mailbox, sharded by sender comm-rank.
pub(crate) struct Mailbox {
    shards: Vec<Shard>,
}

impl Mailbox {
    fn new(num_shards: usize) -> Self {
        Mailbox {
            shards: (0..num_shards.max(1)).map(|_| Shard::new()).collect(),
        }
    }

    /// The shard owning a channel. Sharding on the sender keeps every
    /// (ctx, src, tag) channel on a single lock, which is what makes
    /// per-channel FIFO survive the split.
    #[inline]
    fn shard(&self, key: &MsgKey) -> &Shard {
        &self.shards[key.1 as usize % self.shards.len()]
    }
}

/// Mailbox telemetry, resolved once per world so the per-message path
/// touches relaxed atomics only (no registry name lookups).
pub(crate) struct MailboxMetrics {
    /// Messages deposited into any mailbox.
    pub(crate) messages: Arc<Counter>,
    /// Payload bytes moved through mailboxes.
    pub(crate) bytes: Arc<Counter>,
    /// Times a receiver actually parked on a condvar (message not ready).
    pub(crate) waits: Arc<Counter>,
    /// Time slices a receiver yielded back to the scheduler before
    /// resorting to a park (the oversubscription fast path).
    pub(crate) yields: Arc<Counter>,
    /// Sends that found the shard lock held and had to block for it.
    pub(crate) contended: Arc<Counter>,
}

impl MailboxMetrics {
    fn from_registry(reg: &Registry) -> Self {
        MailboxMetrics {
            messages: reg.counter("simmpi.mailbox.messages"),
            bytes: reg.counter("simmpi.mailbox.bytes"),
            waits: reg.counter("simmpi.mailbox.wait_events"),
            yields: reg.counter("simmpi.mailbox.yield_events"),
            contended: reg.counter("simmpi.mailbox.send_contended"),
        }
    }
}

/// An exclusively-held pool buffer being filled by a sender. Freezing it
/// turns it into a refcounted [`Bytes`] that travels the mailbox path
/// without further copies; the receiver recycles the same allocation
/// (vector *and* `Arc` control block) back into the pool.
pub(crate) struct PooledBuf {
    arc: Arc<Vec<u8>>,
}

impl PooledBuf {
    /// Mutable access to the buffer. Pool invariant: checked-out buffers
    /// are uniquely held.
    #[inline]
    pub(crate) fn buf(&mut self) -> &mut Vec<u8> {
        Arc::get_mut(&mut self.arc).expect("checked-out pool buffer is uniquely held")
    }

    /// Seal the buffer into an immutable shared payload.
    #[inline]
    pub(crate) fn freeze(self) -> Bytes {
        Bytes::from_shared(self.arc)
    }
}

thread_local! {
    /// Per-thread buffer magazine: rank threads live for the whole world,
    /// and in steady state each rank re-checks-out exactly the buffers
    /// its own receives recycled — no lock, no sharing, LIFO for cache
    /// warmth. Overflow and cross-thread imbalance fall back to the
    /// world-shared slots below.
    static MAGAZINE: RefCell<Vec<Arc<Vec<u8>>>> = const { RefCell::new(Vec::new()) };
}

/// Recycled payload buffers backing the zero-copy message path. `send_*`
/// checks out a buffer, fills it, freezes it into [`Bytes`]; the final
/// consumer (typed receive, collective, sender-log eviction) recycles it.
/// Two tiers: a lock-free thread-local magazine, then a shared mutex
/// vector. `runtime.alloc.msg_buffers` counts *actual* allocator hits —
/// fresh buffers and capacity growth of reused ones — which is what the
/// steady-state zero-allocation test asserts on.
pub(crate) struct BufferPool {
    slots: Mutex<Vec<Arc<Vec<u8>>>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    allocs: Arc<Counter>,
}

impl BufferPool {
    /// Buffers retained in the shared tier; beyond this, returns go to
    /// the allocator.
    const MAX_POOLED: usize = 256;
    /// Buffers retained per thread-local magazine.
    const MAGAZINE_CAP: usize = 16;
    /// Largest capacity worth retaining — one halo column is a few KiB,
    /// one checkpoint push ≤ 1 MiB; bigger buffers are one-offs.
    const MAX_POOLED_CAPACITY: usize = 1 << 20;

    fn new(reg: &Registry) -> Self {
        BufferPool {
            slots: Mutex::new(Vec::new()),
            hits: reg.counter("runtime.pool.hits"),
            misses: reg.counter("runtime.pool.misses"),
            allocs: reg.counter("runtime.alloc.msg_buffers"),
        }
    }

    /// An empty buffer with at least `capacity` reserved.
    pub(crate) fn checkout(&self, capacity: usize) -> PooledBuf {
        let reused = MAGAZINE
            .with(|m| m.borrow_mut().pop())
            .or_else(|| self.slots.lock().pop());
        match reused {
            Some(mut arc) => {
                self.hits.inc();
                let v = Arc::get_mut(&mut arc).expect("pooled buffer is uniquely held");
                v.clear();
                if v.capacity() < capacity {
                    // Growing a pooled buffer is a real allocation; once
                    // capacities converge this branch goes quiet.
                    self.allocs.inc();
                    v.reserve(capacity);
                }
                PooledBuf { arc }
            }
            None => {
                self.misses.inc();
                self.allocs.inc();
                PooledBuf {
                    arc: Arc::new(Vec::with_capacity(capacity)),
                }
            }
        }
    }

    /// Return a spent payload for reuse. Payloads still referenced
    /// elsewhere (sender logs, in-flight clones), narrowed views, and
    /// oversized buffers are simply dropped.
    pub(crate) fn recycle(&self, payload: Bytes) {
        let Ok(arc) = payload.into_shared() else {
            return;
        };
        self.recycle_arc(arc);
    }

    fn recycle_arc(&self, mut arc: Arc<Vec<u8>>) {
        if Arc::get_mut(&mut arc).is_none() {
            return; // still shared; the last holder will drop it
        }
        if arc.capacity() == 0 || arc.capacity() > Self::MAX_POOLED_CAPACITY {
            return;
        }
        let overflow = MAGAZINE.with(move |m| {
            let mut m = m.borrow_mut();
            if m.len() < Self::MAGAZINE_CAP {
                m.push(arc);
                None
            } else {
                Some(arc)
            }
        });
        if let Some(arc) = overflow {
            let mut slots = self.slots.lock();
            if slots.len() < Self::MAX_POOLED {
                slots.push(arc);
            }
        }
    }

    /// Drain the calling thread's magazine into the shared tier. Called
    /// when a rank thread or scheduler worker retires: its magazine is
    /// about to die with the thread, and without this the buffers would
    /// strand (be freed) while the rest of the world still wants them.
    pub(crate) fn flush_magazine(&self) {
        MAGAZINE.with(|m| {
            let mut m = m.borrow_mut();
            if m.is_empty() {
                return;
            }
            let mut slots = self.slots.lock();
            while slots.len() < Self::MAX_POOLED {
                let Some(arc) = m.pop() else {
                    return;
                };
                slots.push(arc);
            }
            m.clear();
        });
    }
}

/// State shared by all ranks of a world.
pub(crate) struct Shared {
    pub(crate) n: usize,
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) trace: Arc<TraceRecorder>,
    pub(crate) phases: Vec<AtomicU64>,
    pub(crate) recv_timeout: Duration,
    /// Resolved yield-spin budget for thread-engine receivers (explicit
    /// [`WorldConfig::yield_spins`] wins over the cached env lookup).
    pub(crate) yield_spins: u32,
    pub(crate) metrics: MailboxMetrics,
    pub(crate) pool: BufferPool,
    /// The task scheduler, when this world runs on the task engine. Set
    /// before any rank body starts.
    pub(crate) sched: OnceLock<Arc<TaskSched>>,
    /// Replay-mode state ([`crate::World::run_replay`]): live-rank mask
    /// plus the logged-message feed standing in for dead senders. `None`
    /// for normal worlds — one branch on the message path.
    pub(crate) replay: Option<Arc<ReplayState>>,
}

impl Shared {
    /// Block until a message matching `key` arrives in `rank`'s mailbox.
    /// Panics with a diagnostic if `recv_timeout` elapses — a deadlocked
    /// SPMD program is a bug we want loudly, not a hung test suite.
    pub(crate) fn blocking_recv(&self, rank: usize, key: MsgKey) -> Bytes {
        // Task engine: the caller is a coroutine, so "blocking" means
        // registering a wake hint and switching to the next runnable
        // rank — no spinning, no condvar.
        if let Some(cur) = sched::current() {
            return self.task_recv(rank, key, cur);
        }
        // Thread engine. With far more rank threads than cores the
        // expected producer of a missing message is merely *behind us in
        // the run queue*, not blocked: yielding the time slice a few
        // times lets it run and deliver, avoiding a futex park + wake
        // round trip per halo message. Only after the yield budget is
        // spent do we register as a waiter and park on the shard condvar.
        let yield_budget = self.yield_spins;
        let shard = self.mailboxes[rank].shard(&key);
        let deadline = Instant::now() + self.recv_timeout;
        let mut yields = 0u32;
        let mut queues = shard.queues.lock();
        loop {
            // Drained queues are intentionally left in the map: removing
            // them frees the VecDeque, so every steady-state message on
            // the channel would pay a fresh queue allocation plus a map
            // insert/remove cycle.
            if let Some(msg) = queues.get_mut(&key).and_then(|c| c.q.pop_front()) {
                return msg;
            }
            if yields < yield_budget {
                yields += 1;
                self.metrics.yields.inc();
                drop(queues);
                std::thread::yield_now();
                queues = shard.queues.lock();
                continue;
            }
            self.metrics.waits.inc();
            shard.waiters.fetch_add(1, Ordering::Relaxed);
            let timed_out = shard.cv.wait_until(&mut queues, deadline).timed_out();
            shard.waiters.fetch_sub(1, Ordering::Relaxed);
            if timed_out {
                panic!(
                    "simmpi deadlock: rank {rank} waited {:?} for (ctx={}, src={}, tag={:#x})",
                    self.recv_timeout, key.0, key.1, key.2
                );
            }
        }
    }

    /// Task-engine receive: register this task as the channel's waiter
    /// (under the shard lock, so a sender that sees the hint is ordered
    /// after our blocked-state store) and switch away. The home worker's
    /// watchdog resumes us with the timeout flag if the deadline passes;
    /// one final queue check closes the race where the message and the
    /// timeout arrive together.
    fn task_recv(&self, rank: usize, key: MsgKey, cur: sched::CurrentTask) -> Bytes {
        let shard = self.mailboxes[rank].shard(&key);
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            let mut queues = shard.queues.lock();
            let ch = queues.entry(key).or_default();
            if let Some(msg) = ch.q.pop_front() {
                return msg;
            }
            ch.waiter = rank as u32;
            cur.prepare_block();
            drop(queues);
            self.metrics.waits.inc();
            cur.block(deadline);
            if cur.take_timed_out() {
                let mut queues = shard.queues.lock();
                let ch = queues.entry(key).or_default();
                // Clear the stale hint so a later sender on this channel
                // does not try to wake us while we block elsewhere.
                if ch.waiter == rank as u32 {
                    ch.waiter = NO_WAITER;
                }
                if let Some(msg) = ch.q.pop_front() {
                    return msg;
                }
                drop(queues);
                panic!(
                    "simmpi deadlock: rank {rank} waited {:?} for (ctx={}, src={}, tag={:#x})",
                    self.recv_timeout, key.0, key.1, key.2
                );
            }
        }
    }

    /// Deposit a message into `dst`'s mailbox. The payload is refcounted,
    /// so this moves a pointer, not the bytes.
    pub(crate) fn deliver(&self, dst: usize, key: MsgKey, payload: Bytes) {
        self.metrics.messages.inc();
        self.metrics.bytes.add(payload.len() as u64);
        let shard = self.mailboxes[dst].shard(&key);
        let mut queues = match shard.queues.try_lock() {
            Some(guard) => guard,
            None => {
                self.metrics.contended.inc();
                shard.queues.lock()
            }
        };
        let ch = queues.entry(key).or_default();
        ch.q.push_back(payload);
        // Taking the hint under the lock makes this sender the wake
        // owner; the CAS inside `wake` settles any race with the
        // deadline watchdog.
        let task_waiter = std::mem::replace(&mut ch.waiter, NO_WAITER);
        // Read the thread-waiter count before releasing the lock: a
        // receiver either registered itself under this lock (count
        // visible here) or will acquire it after us and see the message
        // in the queue.
        let has_thread_waiter = shard.waiters.load(Ordering::Relaxed) > 0;
        drop(queues);
        if task_waiter != NO_WAITER {
            if let Some(sched) = self.sched.get() {
                sched.wake(task_waiter);
            }
        }
        if has_thread_waiter {
            shard.cv.notify_all();
        }
    }
}

/// Which execution engine carries the rank bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// `HCFT_SIMMPI_ENGINE` env override, else [`Engine::Tasks`] where
    /// supported (x86_64 Linux) and [`Engine::Threads`] elsewhere.
    Auto,
    /// One OS thread per rank (portable baseline).
    Threads,
    /// M:N stackful coroutines on a fixed worker pool.
    Tasks,
}

/// Tunables for a world run.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Per-rank stack size in bytes (thread stack or coroutine stack);
    /// 0 = auto (`HCFT_SIMMPI_STACK_KB` env override, else 512 KiB).
    pub stack_size: usize,
    /// How long a blocking receive may wait before declaring deadlock.
    pub recv_timeout: Duration,
    /// Also keep the ordered per-sender event log (needed by the
    /// message-logging analyses; costs memory per message).
    pub trace_events: bool,
    /// Mailbox shards per rank; 0 = auto (`HCFT_SIMMPI_SHARDS` env
    /// override, else 8, capped at the world size). 1 reproduces the
    /// unsharded single-mutex-per-rank design.
    pub mailbox_shards: usize,
    /// Worker threads for the task engine; 0 = auto
    /// (`HCFT_SIMMPI_WORKERS` env override, else the core count), always
    /// capped at the rank count.
    pub workers: usize,
    /// Execution engine selection.
    pub engine: Engine,
    /// Work stealing between task-engine workers: idle workers take
    /// runnable ranks from saturated ones. Changes only *where* a rank
    /// runs, never message order — traces stay byte-identical. `None` =
    /// auto (`HCFT_SIMMPI_STEAL` env override, default off).
    pub steal: Option<bool>,
    /// Cooperative preemption budget for the task engine: a rank body
    /// switches out after this many [`maybe_yield`] calls, so
    /// long-computing kernels cannot starve their worker's other ranks.
    /// Deterministic (call-count based, never timer based). `None` =
    /// auto (`HCFT_SIMMPI_YIELD_BUDGET` env override, default 0 = never
    /// preempt).
    pub yield_budget: Option<u32>,
    /// Yield slices a thread-engine receiver burns before parking on the
    /// shard condvar; 0 disables the yield phase. `None` = auto
    /// (`HCFT_SIMMPI_YIELD_SPINS` env override, default 4).
    pub yield_spins: Option<u32>,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            stack_size: 0,
            recv_timeout: Duration::from_secs(60),
            trace_events: false,
            mailbox_shards: 0,
            workers: 0,
            engine: Engine::Auto,
            steal: None,
            yield_budget: None,
            yield_spins: None,
        }
    }
}

/// The concrete runtime settings a world of `n` ranks will run with,
/// after the documented precedence is applied to every knob:
///
/// 1. an explicit [`WorldConfig`] value always wins;
/// 2. otherwise the `HCFT_SIMMPI_*` environment override applies —
///    **snapshotted once per process** (`OnceLock`-cached) at first use,
///    so a long-running service sees one consistent environment for its
///    whole lifetime rather than whatever the variable mutates to later;
/// 3. otherwise the built-in default.
///
/// Long-running processes that need per-request settings must therefore
/// pass them explicitly (as [`WorldConfig`] / `TracedJobConfig` fields,
/// which always win) instead of mutating the environment — the cached
/// env lookups silently pin the first-seen values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolvedWorldConfig {
    /// Per-rank stack size in bytes.
    pub stack_size: usize,
    /// Mailbox shards per rank (capped at the world size).
    pub mailbox_shards: usize,
    /// Task-engine worker-pool size (capped at the rank count).
    pub workers: usize,
    /// The engine that will actually carry the rank bodies ([`Engine::Auto`]
    /// and unsupported-target requests are resolved away).
    pub engine: Engine,
    /// Work stealing between task-engine workers.
    pub steal: bool,
    /// Task-engine cooperative preemption budget (0 = never preempt).
    pub yield_budget: u32,
    /// Thread-engine yield slices before a receiver parks.
    pub yield_spins: u32,
}

impl WorldConfig {
    /// Validate the configuration, including environment overrides
    /// (currently `HCFT_SIMMPI_STACK_KB`). `World::run_with` performs
    /// the same checks and panics on failure; call this first to reject
    /// invalid configuration gracefully.
    pub fn validate(&self) -> Result<(), HcftError> {
        resolve_stack_size(self).map(|_| ())
    }

    /// Resolve every knob to the concrete value a world of `n` ranks
    /// would run with. This is the single precedence point the runtime
    /// itself uses (see [`ResolvedWorldConfig`] for the rules), exposed
    /// so callers — and the env-precedence regression tests — can
    /// observe the outcome without running a world.
    pub fn resolve(&self, n: usize) -> Result<ResolvedWorldConfig, HcftError> {
        let n = n.max(1);
        Ok(ResolvedWorldConfig {
            stack_size: resolve_stack_size(self)?,
            mailbox_shards: resolve_shards(self, n),
            workers: resolve_workers(self, n),
            engine: resolve_engine(self),
            steal: resolve_steal(self),
            yield_budget: resolve_yield_budget(self),
            yield_spins: resolve_yield_spins(self),
        })
    }
}

/// Shards per mailbox for a world of `n` ranks under `cfg`.
fn resolve_shards(cfg: &WorldConfig, n: usize) -> usize {
    let requested = if cfg.mailbox_shards > 0 {
        cfg.mailbox_shards
    } else {
        env_shards().unwrap_or(DEFAULT_SHARDS)
    };
    requested.min(n).max(1)
}

/// Concrete engine for this run: explicit config wins, then the env
/// override, then tasks-where-supported. A task request on an
/// unsupported target degrades to threads (same semantics, just slower
/// at scale) rather than failing.
fn resolve_engine(cfg: &WorldConfig) -> Engine {
    let wanted = match cfg.engine {
        Engine::Auto => env_engine().unwrap_or(if sched::SUPPORTED {
            Engine::Tasks
        } else {
            Engine::Threads
        }),
        explicit => explicit,
    };
    if wanted == Engine::Tasks && !sched::SUPPORTED {
        return Engine::Threads;
    }
    wanted
}

/// Worker-pool size for a task-engine world of `n` ranks.
fn resolve_workers(cfg: &WorldConfig, n: usize) -> usize {
    let requested = if cfg.workers > 0 {
        cfg.workers
    } else {
        env_workers().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
    };
    requested.clamp(1, n)
}

/// Per-rank stack size in bytes: explicit config wins, then the
/// (validated) `HCFT_SIMMPI_STACK_KB` override, then 512 KiB.
fn resolve_stack_size(cfg: &WorldConfig) -> Result<usize, HcftError> {
    if cfg.stack_size > 0 {
        return Ok(cfg.stack_size);
    }
    match env_stack_kb() {
        Ok(Some(bytes)) => Ok(*bytes),
        Ok(None) => Ok(DEFAULT_STACK_SIZE),
        Err(msg) => Err(HcftError::Config(msg.clone())),
    }
}

/// Work stealing for this run: explicit config wins, then the env
/// override, then off.
fn resolve_steal(cfg: &WorldConfig) -> bool {
    cfg.steal.or_else(env_steal).unwrap_or(false)
}

/// Yield budget for this run: explicit config wins, then the env
/// override, then 0 (never preempt).
fn resolve_yield_budget(cfg: &WorldConfig) -> u32 {
    cfg.yield_budget.or_else(env_yield_budget).unwrap_or(0)
}

/// Thread-engine yield spins for this run: explicit config wins, then
/// the env override, then [`DEFAULT_YIELD_SPINS`].
fn resolve_yield_spins(cfg: &WorldConfig) -> u32 {
    cfg.yield_spins
        .or_else(env_yield_spins)
        .unwrap_or(DEFAULT_YIELD_SPINS)
}

/// Cooperative preemption hook for long-computing rank bodies.
///
/// Compute kernels call this once per natural unit of work — a stencil
/// tile, an erasure stripe. Under the task engine with a yield budget
/// configured ([`WorldConfig::yield_budget`] /
/// `HCFT_SIMMPI_YIELD_BUDGET`), every budget-th call switches to the
/// next runnable rank, bounding how long one rank can monopolise a
/// scheduler worker. Everywhere else — thread engine, non-rank threads,
/// budget 0 — it is a couple of branches. Yield points are counted, not
/// timed, so preemption never perturbs message contents or order:
/// traces stay byte-identical at any budget.
#[inline]
pub fn maybe_yield() {
    sched::maybe_yield_task();
}

/// A finished world run: per-rank outputs (rank-ordered) plus the trace.
pub struct WorldResult<T> {
    /// The value returned by each rank's closure, indexed by world rank.
    pub outputs: Vec<T>,
    /// The recorded communication trace.
    pub trace: Arc<TraceRecorder>,
}

/// Entry point: spawn `n` ranks and run `f` on each.
pub struct World;

impl World {
    /// Run `f(comm)` on `n` ranks with default configuration.
    pub fn run<T, F>(n: usize, f: F) -> WorldResult<T>
    where
        T: Send + 'static,
        F: Fn(&mut Comm) -> T + Send + Sync + 'static,
    {
        Self::run_with(n, WorldConfig::default(), f)
    }

    /// Run `f(comm)` on `n` ranks with explicit configuration.
    ///
    /// # Panics
    /// Re-raises the first rank panic (annotated with the rank) and panics
    /// on deadlock via the receive watchdog.
    pub fn run_with<T, F>(n: usize, cfg: WorldConfig, f: F) -> WorldResult<T>
    where
        T: Send + 'static,
        F: Fn(&mut Comm) -> T + Send + Sync + 'static,
    {
        let (outputs, trace) = Self::run_inner(n, cfg, None, f);
        WorldResult { outputs, trace }
    }

    /// Run a *replay world*: only ranks with `plan.live[r]` execute `f`;
    /// receives from dead ranks are served from `plan.feed`, sends to
    /// dead ranks are suppressed as duplicates. See [`crate::replay`].
    ///
    /// Dead ranks produce `None` in the outputs; the result also reports
    /// the fed/suppressed/leftover message counts for the recovery
    /// engine's bookkeeping.
    pub fn run_replay<T, F>(
        n: usize,
        cfg: WorldConfig,
        plan: ReplayPlan,
        f: F,
    ) -> ReplayWorldResult<T>
    where
        T: Send + 'static,
        F: Fn(&mut Comm) -> T + Send + Sync + 'static,
    {
        assert_eq!(
            plan.live.len(),
            n,
            "replay plan live mask must cover all {n} ranks"
        );
        let state = Arc::new(ReplayState::new(plan));
        let live = state.live.clone();
        let (outputs, trace) = Self::run_inner(n, cfg, Some(Arc::clone(&state)), move |c| {
            if live[c.rank()] {
                Some(f(c))
            } else {
                None
            }
        });
        let reg = Registry::global();
        let fed = state.fed_messages.load(Ordering::Relaxed);
        let fed_bytes = state.fed_bytes.load(Ordering::Relaxed);
        let suppressed = state.suppressed_sends.load(Ordering::Relaxed);
        reg.counter("simmpi.replay.fed_messages").add(fed);
        reg.counter("simmpi.replay.fed_bytes").add(fed_bytes);
        reg.counter("simmpi.replay.suppressed_sends")
            .add(suppressed);
        ReplayWorldResult {
            outputs,
            trace,
            fed_messages: fed,
            fed_bytes,
            suppressed_sends: suppressed,
            leftover_messages: state.leftover(),
        }
    }

    fn run_inner<T, F>(
        n: usize,
        cfg: WorldConfig,
        replay: Option<Arc<ReplayState>>,
        f: F,
    ) -> (Vec<T>, Arc<TraceRecorder>)
    where
        T: Send + 'static,
        F: Fn(&mut Comm) -> T + Send + Sync + 'static,
    {
        assert!(n > 0, "world needs at least one rank");
        let resolved = match cfg.resolve(n) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        };
        let reg = Registry::global();
        reg.counter("simmpi.worlds").inc();
        reg.gauge("simmpi.mailbox.shards")
            .set(resolved.mailbox_shards as f64);
        let trace = Arc::new(TraceRecorder::new(n, cfg.trace_events));
        let shared = Arc::new(Shared {
            n,
            mailboxes: (0..n)
                .map(|_| Mailbox::new(resolved.mailbox_shards))
                .collect(),
            trace: Arc::clone(&trace),
            phases: (0..n).map(|_| AtomicU64::new(0)).collect(),
            recv_timeout: cfg.recv_timeout,
            yield_spins: resolved.yield_spins,
            metrics: MailboxMetrics::from_registry(reg),
            pool: BufferPool::new(reg),
            sched: OnceLock::new(),
            replay,
        });
        let f = Arc::new(f);
        let outputs = match resolved.engine {
            Engine::Tasks => Self::run_tasks(n, &cfg, &resolved, &shared, f),
            _ => Self::run_threads(n, resolved.stack_size, &shared, f),
        };
        let mut outs = Vec::with_capacity(n);
        let mut panicked: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        for (rank, r) in outputs.into_iter().enumerate() {
            match r {
                Ok(v) => outs.push(v),
                Err(e) => {
                    if panicked.is_none() {
                        panicked = Some((rank, e));
                    }
                }
            }
        }
        if let Some((rank, e)) = panicked {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".to_string());
            panic!("rank {rank} panicked: {msg}");
        }
        (outs, trace)
    }

    /// Thread engine: one named OS thread per rank.
    fn run_threads<T, F>(
        n: usize,
        stack_size: usize,
        shared: &Arc<Shared>,
        f: Arc<F>,
    ) -> Vec<std::thread::Result<T>>
    where
        T: Send + 'static,
        F: Fn(&mut Comm) -> T + Send + Sync + 'static,
    {
        let mut handles = Vec::with_capacity(n);
        for rank in 0..n {
            let shared = Arc::clone(shared);
            let f = Arc::clone(&f);
            let handle = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(stack_size)
                .spawn(move || {
                    let mut comm = Comm::world(Arc::clone(&shared), rank);
                    let out = f(&mut comm);
                    drop(comm);
                    // Ranks that finish early (the paper's encoder ranks
                    // return before the app ranks) hand their magazine
                    // back so the still-running ranks keep hitting the
                    // pool instead of the allocator.
                    shared.pool.flush_magazine();
                    out
                })
                .expect("spawn rank thread");
            handles.push(handle);
        }
        handles.into_iter().map(|h| h.join()).collect()
    }

    /// Task engine: rank bodies as coroutines on a worker pool.
    fn run_tasks<T, F>(
        n: usize,
        cfg: &WorldConfig,
        resolved: &ResolvedWorldConfig,
        shared: &Arc<Shared>,
        f: Arc<F>,
    ) -> Vec<std::thread::Result<T>>
    where
        T: Send + 'static,
        F: Fn(&mut Comm) -> T + Send + Sync + 'static,
    {
        let workers = resolved.workers;
        let steal = resolved.steal;
        let yield_budget = resolved.yield_budget;
        let stack_size = resolved.stack_size;
        let reg = Registry::global();
        reg.gauge("simmpi.sched.workers").set(workers as f64);
        reg.gauge("simmpi.sched.steal").set(u64::from(steal) as f64);
        reg.gauge("simmpi.sched.yield_budget")
            .set(yield_budget as f64);
        // Idle workers double as the deadline watchdog for their own
        // blocked tasks; scanning at a fraction of the receive timeout
        // keeps detection latency proportional to the configured limit.
        let watchdog =
            (cfg.recv_timeout / 4).clamp(Duration::from_millis(2), Duration::from_millis(100));
        let slots: Arc<Vec<Mutex<Option<std::thread::Result<T>>>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let bodies: Vec<Box<dyn FnOnce() + Send>> = (0..n)
            .map(|rank| {
                let shared = Arc::clone(shared);
                let f = Arc::clone(&f);
                let slots = Arc::clone(&slots);
                Box::new(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut comm = Comm::world(shared, rank);
                        f(&mut comm)
                    }));
                    *slots[rank].lock() = Some(result);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let sched = TaskSched::new(workers, stack_size, watchdog, steal, yield_budget, bodies);
        // Senders need the scheduler to wake receivers; install it before
        // the first task can possibly run.
        if shared.sched.set(Arc::clone(&sched)).is_err() {
            unreachable!("scheduler installed twice");
        }
        let flush = {
            let shared = Arc::clone(shared);
            move || shared.pool.flush_magazine()
        };
        sched.run(flush);
        slots
            .iter()
            .enumerate()
            .map(|(rank, slot)| {
                slot.lock()
                    .take()
                    .unwrap_or_else(|| panic!("rank {rank} produced no output"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world_runs() {
        let r = World::run(1, |c| c.rank() * 10 + c.size());
        assert_eq!(r.outputs, vec![1]);
    }

    #[test]
    fn stack_kb_validation_rejects_garbage_and_extremes() {
        assert!(validate_stack_kb("512").is_ok_and(|b| b == 512 * 1024));
        assert!(validate_stack_kb(" 1024 ").is_ok_and(|b| b == 1024 * 1024));
        for bad in ["", "abc", "-1", "0", "63", "12.5", "1048577"] {
            let err = validate_stack_kb(bad).expect_err(bad);
            assert!(err.contains("HCFT_SIMMPI_STACK_KB"), "{err}");
        }
        // The world-construction surface wraps the same check in
        // HcftError::Config (via the cached env read, which is absent or
        // valid in the test environment — so this validates clean).
        assert!(WorldConfig::default().validate().is_ok());
        let cfg = WorldConfig {
            stack_size: 256 * 1024,
            ..WorldConfig::default()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn explicit_steal_and_yield_budget_override_env() {
        let cfg = WorldConfig {
            steal: Some(true),
            yield_budget: Some(9),
            ..WorldConfig::default()
        };
        assert!(resolve_steal(&cfg));
        assert_eq!(resolve_yield_budget(&cfg), 9);
        let auto = WorldConfig::default();
        // With no env override the defaults are off/0; with one set the
        // cached value applies — either way Some(..) wins above.
        let _ = resolve_steal(&auto);
        let _ = resolve_yield_budget(&auto);
    }

    #[test]
    fn maybe_yield_is_safe_everywhere() {
        // Off-world (no task context): a no-op.
        maybe_yield();
        // Thread engine: also a no-op, any number of times.
        let cfg = WorldConfig {
            engine: Engine::Threads,
            yield_budget: Some(2),
            ..WorldConfig::default()
        };
        let r = World::run_with(2, cfg, |c| {
            for _ in 0..10 {
                maybe_yield();
            }
            c.barrier();
            c.rank()
        });
        assert_eq!(r.outputs, vec![0, 1]);
    }

    #[test]
    fn worlds_run_with_stealing_and_yield_budget() {
        // Smoke the full knob surface on both steal settings: results
        // and traffic must be identical.
        let run = |steal: bool| {
            let cfg = WorldConfig {
                steal: Some(steal),
                yield_budget: Some(3),
                workers: 2,
                engine: Engine::Tasks,
                ..WorldConfig::default()
            };
            World::run_with(8, cfg, |c| {
                let mut acc = 0u64;
                for step in 0..20u64 {
                    maybe_yield();
                    let peer = (c.rank() + 1) % c.size();
                    let from = (c.rank() + c.size() - 1) % c.size();
                    c.send_slice(peer, 5, &[c.rank() as u64 * 1000 + step]);
                    acc += c.recv_vec::<u64>(from, 5)[0];
                }
                acc
            })
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(off.outputs, on.outputs);
        assert_eq!(off.trace.byte_matrix(), on.trace.byte_matrix());
    }

    #[test]
    fn outputs_are_rank_ordered() {
        let r = World::run(8, |c| c.rank());
        assert_eq!(r.outputs, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn ping_pong_traced() {
        let r = World::run(2, |c| {
            if c.rank() == 0 {
                c.send_bytes(1, 7, &[1, 2, 3]);
                c.recv_bytes(1, 8)
            } else {
                let m = c.recv_bytes(0, 7);
                c.send_bytes(0, 8, &[9; 5]);
                m
            }
        });
        assert_eq!(r.outputs[0], vec![9; 5]);
        assert_eq!(r.outputs[1], vec![1, 2, 3]);
        let m = r.trace.byte_matrix();
        assert_eq!(m.get(0, 1), 3);
        assert_eq!(m.get(1, 0), 5);
    }

    #[test]
    fn fifo_order_per_sender_tag() {
        let r = World::run(2, |c| {
            if c.rank() == 0 {
                for i in 0..10u8 {
                    c.send_bytes(1, 3, &[i]);
                }
                vec![]
            } else {
                (0..10).map(|_| c.recv_bytes(0, 3)[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(r.outputs[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn recv_without_send_deadlocks_loudly() {
        let cfg = WorldConfig {
            recv_timeout: Duration::from_millis(50),
            ..WorldConfig::default()
        };
        World::run_with(2, cfg, |c| {
            if c.rank() == 1 {
                c.recv_bytes(0, 1);
            }
        });
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked: boom")]
    fn rank_panic_is_annotated() {
        World::run(3, |c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn many_ranks_all_to_one() {
        let r = World::run(64, |c| {
            if c.rank() == 0 {
                let mut sum = 0u64;
                for src in 1..c.size() {
                    sum += c.recv_vec::<u64>(src, 1)[0];
                }
                sum
            } else {
                c.send_slice(0, 1, &[c.rank() as u64]);
                0
            }
        });
        assert_eq!(r.outputs[0], (1..64).sum::<u64>());
    }

    /// Same workload under every shard count that exercises a distinct
    /// code path: 1 (the unsharded baseline), 3 (ranks share shards
    /// unevenly), and more shards than ranks (capped).
    #[test]
    fn shard_counts_do_not_change_results() {
        for shards in [1usize, 3, 64] {
            let cfg = WorldConfig {
                mailbox_shards: shards,
                ..WorldConfig::default()
            };
            let r = World::run_with(8, cfg, |c| {
                let mut got = Vec::new();
                for src in 0..c.size() {
                    if src != c.rank() {
                        c.send_slice(src, 2, &[(c.rank() * 100) as u64]);
                    }
                }
                for src in 0..c.size() {
                    if src != c.rank() {
                        got.push(c.recv_vec::<u64>(src, 2)[0]);
                    }
                }
                got.iter().sum::<u64>()
            });
            let total: u64 = (0..8u64).map(|r| r * 100).sum();
            for (rank, &sum) in r.outputs.iter().enumerate() {
                assert_eq!(sum, total - rank as u64 * 100, "shards={shards}");
            }
        }
    }

    #[test]
    fn replay_world_serves_dead_sender_from_feed() {
        use crate::replay::{ReplayFeed, ReplayPlan};
        // 3 ranks; rank 1 is dead. Rank 0 expects one message from dead
        // rank 1 (fed), one from live rank 2 (real); rank 2 also sends a
        // message *to* dead rank 1 (suppressed).
        let mut feed = ReplayFeed::new(3);
        feed.push(1, 0, 7, Bytes::from(vec![42u8, 43]));
        let plan = ReplayPlan {
            live: vec![true, false, true],
            feed,
        };
        let r = World::run_replay(3, WorldConfig::default(), plan, |c| match c.rank() {
            0 => {
                let from_dead = c.recv_bytes(1, 7);
                let from_live = c.recv_bytes(2, 8);
                (from_dead, from_live)
            }
            2 => {
                c.send_bytes(0, 8, &[9]);
                c.send_bytes(1, 9, &[1, 2, 3]); // dead dst: suppressed
                (Bytes::new(), Bytes::new())
            }
            _ => unreachable!("dead rank body must not run"),
        });
        let (from_dead, from_live) = r.outputs[0].clone().expect("rank 0 ran");
        assert_eq!(from_dead, vec![42u8, 43]);
        assert_eq!(from_live, vec![9u8]);
        assert!(r.outputs[1].is_none(), "dead rank must produce no output");
        assert_eq!(r.fed_messages, 1);
        assert_eq!(r.fed_bytes, 2);
        assert_eq!(r.suppressed_sends, 1);
        assert_eq!(r.leftover_messages, 0);
    }

    #[test]
    #[should_panic(expected = "replay feed exhausted")]
    fn replay_feed_underrun_panics_loudly() {
        use crate::replay::{ReplayFeed, ReplayPlan};
        let plan = ReplayPlan {
            live: vec![true, false],
            feed: ReplayFeed::new(2),
        };
        World::run_replay(2, WorldConfig::default(), plan, |c| {
            if c.rank() == 0 {
                c.recv_bytes(1, 5);
            }
        });
    }

    #[test]
    fn mailbox_metrics_count_traffic() {
        let reg = Registry::global();
        let msgs_before = reg.counter("simmpi.mailbox.messages").get();
        let bytes_before = reg.counter("simmpi.mailbox.bytes").get();
        World::run(2, |c| {
            if c.rank() == 0 {
                c.send_bytes(1, 1, &[0u8; 100]);
            } else {
                c.recv_bytes(0, 1);
            }
        });
        assert!(reg.counter("simmpi.mailbox.messages").get() > msgs_before);
        assert!(reg.counter("simmpi.mailbox.bytes").get() >= bytes_before + 100);
    }

    #[test]
    fn buffer_pool_reuses_payloads() {
        let reg = Registry::global();
        let hits_before = reg.counter("runtime.pool.hits").get();
        // A long ping-pong of typed messages: after warm-up every send
        // can check out the buffer the previous receive recycled.
        World::run(2, |c| {
            let other = 1 - c.rank();
            for i in 0..200u64 {
                if c.rank() == 0 {
                    c.send_slice(other, 1, &[i]);
                    c.recv_vec::<u64>(other, 2);
                } else {
                    c.recv_vec::<u64>(other, 1);
                    c.send_slice(other, 2, &[i]);
                }
            }
        });
        assert!(
            reg.counter("runtime.pool.hits").get() > hits_before,
            "pool should serve repeat sends from recycled buffers"
        );
    }

    #[test]
    fn steady_ping_pong_stops_allocating() {
        let reg = Registry::global();
        // Allocation counters are process-global, so other tests in this
        // binary may run concurrently; use a dedicated payload size and
        // assert on pool-miss *stability* inside a single world instead.
        World::run(2, |c| {
            let other = 1 - c.rank();
            let payload = [c.rank() as u64; 37];
            // Warm-up: fills the magazines and sizes every buffer.
            for _ in 0..20 {
                if c.rank() == 0 {
                    c.send_slice(other, 1, &payload);
                    c.recv_vec::<u64>(other, 2);
                } else {
                    c.recv_vec::<u64>(other, 1);
                    c.send_slice(other, 2, &payload);
                }
            }
            c.barrier();
            let allocs = reg.counter("runtime.alloc.msg_buffers").get();
            for _ in 0..50 {
                if c.rank() == 0 {
                    c.send_slice(other, 1, &payload);
                    c.recv_vec::<u64>(other, 2);
                } else {
                    c.recv_vec::<u64>(other, 1);
                    c.send_slice(other, 2, &payload);
                }
            }
            c.barrier();
            // Other worlds in this test binary can allocate concurrently,
            // but this world's own traffic must be served by the pool; a
            // per-message allocation here would add >= 100 to the counter.
            let grew = reg.counter("runtime.alloc.msg_buffers").get() - allocs;
            assert!(
                grew < 100,
                "steady-state ping-pong allocated {grew} buffers in 100 messages"
            );
        });
    }
}
