//! World construction: one OS thread per rank, shared mailboxes.
//!
//! 1088 ranks (the paper's largest job) means 1088 threads; with 512 KiB
//! stacks that is ~0.5 GiB of reserved (mostly untouched) address space —
//! cheap on Linux. Threads block on condvars while waiting for messages,
//! so oversubscription costs context switches only when traffic flows.

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::comm::Comm;
use crate::trace::TraceRecorder;

/// Message-queue key: (communicator context, sender comm-rank, tag).
pub(crate) type MsgKey = (u64, u32, u32);

/// Per-rank mailbox with FIFO queues per (ctx, src, tag).
pub(crate) struct Mailbox {
    pub(crate) queues: Mutex<HashMap<MsgKey, std::collections::VecDeque<Vec<u8>>>>,
    pub(crate) cv: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            queues: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }
}

/// State shared by all ranks of a world.
pub(crate) struct Shared {
    pub(crate) n: usize,
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) trace: Arc<TraceRecorder>,
    pub(crate) phases: Vec<AtomicU64>,
    pub(crate) recv_timeout: Duration,
}

impl Shared {
    /// Block until a message matching `key` arrives in `rank`'s mailbox.
    /// Panics with a diagnostic if `recv_timeout` elapses — a deadlocked
    /// SPMD program is a bug we want loudly, not a hung test suite.
    pub(crate) fn blocking_recv(&self, rank: usize, key: MsgKey) -> Vec<u8> {
        let mb = &self.mailboxes[rank];
        let deadline = Instant::now() + self.recv_timeout;
        let mut queues = mb.queues.lock();
        loop {
            if let Some(q) = queues.get_mut(&key) {
                if let Some(msg) = q.pop_front() {
                    if q.is_empty() {
                        queues.remove(&key);
                    }
                    return msg;
                }
            }
            if mb.cv.wait_until(&mut queues, deadline).timed_out() {
                panic!(
                    "simmpi deadlock: rank {rank} waited {:?} for (ctx={}, src={}, tag={:#x})",
                    self.recv_timeout, key.0, key.1, key.2
                );
            }
        }
    }

    /// Deposit a message into `dst`'s mailbox.
    pub(crate) fn deliver(&self, dst: usize, key: MsgKey, payload: Vec<u8>) {
        let mb = &self.mailboxes[dst];
        mb.queues.lock().entry(key).or_default().push_back(payload);
        mb.cv.notify_all();
    }
}

/// Tunables for a world run.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Per-rank thread stack size in bytes.
    pub stack_size: usize,
    /// How long a blocking receive may wait before declaring deadlock.
    pub recv_timeout: Duration,
    /// Also keep the ordered per-sender event log (needed by the
    /// message-logging analyses; costs memory per message).
    pub trace_events: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            stack_size: 512 * 1024,
            recv_timeout: Duration::from_secs(60),
            trace_events: false,
        }
    }
}

/// A finished world run: per-rank outputs (rank-ordered) plus the trace.
pub struct WorldResult<T> {
    /// The value returned by each rank's closure, indexed by world rank.
    pub outputs: Vec<T>,
    /// The recorded communication trace.
    pub trace: Arc<TraceRecorder>,
}

/// Entry point: spawn `n` ranks and run `f` on each.
pub struct World;

impl World {
    /// Run `f(comm)` on `n` ranks with default configuration.
    pub fn run<T, F>(n: usize, f: F) -> WorldResult<T>
    where
        T: Send + 'static,
        F: Fn(&mut Comm) -> T + Send + Sync + 'static,
    {
        Self::run_with(n, WorldConfig::default(), f)
    }

    /// Run `f(comm)` on `n` ranks with explicit configuration.
    ///
    /// # Panics
    /// Re-raises the first rank panic (annotated with the rank) and panics
    /// on deadlock via the receive watchdog.
    pub fn run_with<T, F>(n: usize, cfg: WorldConfig, f: F) -> WorldResult<T>
    where
        T: Send + 'static,
        F: Fn(&mut Comm) -> T + Send + Sync + 'static,
    {
        assert!(n > 0, "world needs at least one rank");
        let trace = Arc::new(TraceRecorder::new(n, cfg.trace_events));
        let shared = Arc::new(Shared {
            n,
            mailboxes: (0..n).map(|_| Mailbox::new()).collect(),
            trace: Arc::clone(&trace),
            phases: (0..n).map(|_| AtomicU64::new(0)).collect(),
            recv_timeout: cfg.recv_timeout,
        });
        let f = Arc::new(f);
        let mut handles = Vec::with_capacity(n);
        for rank in 0..n {
            let shared = Arc::clone(&shared);
            let f = Arc::clone(&f);
            let handle = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(cfg.stack_size)
                .spawn(move || {
                    let mut comm = Comm::world(shared, rank);
                    f(&mut comm)
                })
                .expect("spawn rank thread");
            handles.push(handle);
        }
        let mut outputs = Vec::with_capacity(n);
        let mut panicked: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(v) => outputs.push(v),
                Err(e) => {
                    if panicked.is_none() {
                        panicked = Some((rank, e));
                    }
                }
            }
        }
        if let Some((rank, e)) = panicked {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".to_string());
            panic!("rank {rank} panicked: {msg}");
        }
        WorldResult { outputs, trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world_runs() {
        let r = World::run(1, |c| c.rank() * 10 + c.size());
        assert_eq!(r.outputs, vec![1]);
    }

    #[test]
    fn outputs_are_rank_ordered() {
        let r = World::run(8, |c| c.rank());
        assert_eq!(r.outputs, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn ping_pong_traced() {
        let r = World::run(2, |c| {
            if c.rank() == 0 {
                c.send_bytes(1, 7, &[1, 2, 3]);
                c.recv_bytes(1, 8)
            } else {
                let m = c.recv_bytes(0, 7);
                c.send_bytes(0, 8, &[9; 5]);
                m
            }
        });
        assert_eq!(r.outputs[0], vec![9; 5]);
        assert_eq!(r.outputs[1], vec![1, 2, 3]);
        let m = r.trace.byte_matrix();
        assert_eq!(m.get(0, 1), 3);
        assert_eq!(m.get(1, 0), 5);
    }

    #[test]
    fn fifo_order_per_sender_tag() {
        let r = World::run(2, |c| {
            if c.rank() == 0 {
                for i in 0..10u8 {
                    c.send_bytes(1, 3, &[i]);
                }
                vec![]
            } else {
                (0..10).map(|_| c.recv_bytes(0, 3)[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(r.outputs[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn recv_without_send_deadlocks_loudly() {
        let cfg = WorldConfig {
            recv_timeout: Duration::from_millis(50),
            ..WorldConfig::default()
        };
        World::run_with(2, cfg, |c| {
            if c.rank() == 1 {
                c.recv_bytes(0, 1);
            }
        });
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked: boom")]
    fn rank_panic_is_annotated() {
        World::run(3, |c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn many_ranks_all_to_one() {
        let r = World::run(64, |c| {
            if c.rank() == 0 {
                let mut sum = 0u64;
                for src in 1..c.size() {
                    sum += c.recv_vec::<u64>(src, 1)[0];
                }
                sum
            } else {
                c.send_slice(0, 1, &[c.rank() as u64]);
                0
            }
        });
        assert_eq!(r.outputs[0], (1..64).sum::<u64>());
    }
}
