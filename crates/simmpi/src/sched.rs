//! M:N scheduler: rank bodies as stackful coroutines, with optional
//! work stealing and cooperative preemption.
//!
//! Thread-per-rank tops out well below full-machine scale: the kernel
//! caps task counts (`pid_max` is 32768 here) long before the paper's
//! full-TSUBAME2 job (≈22k ranks, stretch 100k) fits, and even at the
//! paper's 1088 ranks every halo message pays a futex park + wake round
//! trip. This module multiplexes rank bodies onto a fixed worker pool
//! instead: each rank becomes a resumable task with its own stack, and a
//! blocking receive *switches* to the next runnable rank (~tens of ns)
//! rather than parking an OS thread.
//!
//! Design invariants, in order of importance:
//!
//! * **Single-owner hand-off.** Exactly one thread "holds" a task at any
//!   instant: the worker currently running it, the worker completing its
//!   context save, or (while queued) nobody — the next holder is whoever
//!   pops it from a run queue. Every hand-off goes through a
//!   release/acquire edge (a state CAS or a queue push/pop), so the saved
//!   stack pointer and the task-private cells are always visible to the
//!   next holder even when that is a *different* worker (work stealing).
//! * **Two-phase block.** A task cannot be woken between "announced it
//!   will block" and "finished saving its context": `prepare_block`
//!   stores `BLOCKING` (under the mailbox shard lock), and only after the
//!   switch back does the worker CAS `BLOCKING → BLOCKED`, publishing the
//!   saved context. A sender that races in between CASes
//!   `BLOCKING → WOKEN` instead; the switching worker sees its CAS fail
//!   and finishes the wake itself, *after* the save. Without stealing the
//!   home worker both saves and resumes, hiding this race; with stealing
//!   any worker may resume, so the protocol is load-bearing.
//! * **Wake ownership by CAS.** A blocked task is woken by exactly one
//!   party: a sender that finds the task's id registered on the message
//!   channel, or the deadline watchdog. All wakers race through one
//!   `compare_exchange` on the state word; the loser does nothing.
//! * **Quiescence-gated watchdog.** The receive-deadline watchdog may
//!   declare timeouts only when the global runnable count is zero. Every
//!   sender is itself a running task, so `runnable == 0` means no message
//!   can be in flight — true deadlock. A legitimately long-computing rank
//!   (no yield budget) keeps `runnable > 0` and can never trip a false
//!   positive, no matter how many receive deadlines lapse meanwhile.
//!
//! Work stealing (`HCFT_SIMMPI_STEAL=1` / `WorldConfig::steal`) moves
//! only *where* a rank body executes, never *what* it does: per-channel
//! FIFO is a property of the mailbox fabric and collective combining
//! orders are fixed by the algorithms, so traces stay byte-identical with
//! stealing on or off (pinned by `tests/scheduler_determinism.rs`).
//! Yield budgets (`HCFT_SIMMPI_YIELD_BUDGET`) preempt at *call counts*,
//! never timers, for the same reason.
//!
//! The context switch is ~20 instructions of inline assembly (x86_64
//! SysV: save/restore the six callee-saved GPRs plus `rsp`; the FP/SSE
//! control words are never modified by generated code, and no xmm
//! register is callee-saved). Stacks are carved out of large slabs — one
//! allocation per ~512 stacks — so 100k ranks do not exhaust
//! `vm.max_map_count`. There are no guard pages; a canary word at the
//! stack base turns silent overflow into a loud panic at the next
//! switch.

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub(crate) use imp::*;

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
pub(crate) use stub::*;

/// Whether the task engine exists on this target. Off-target builds fall
/// back to thread-per-rank (see `runtime::resolve_engine`).
pub(crate) const SUPPORTED: bool = cfg!(all(target_arch = "x86_64", target_os = "linux"));

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod imp {
    use std::cell::{Cell, UnsafeCell};
    use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use hcft_telemetry::{Counter, Histogram, Registry};
    use parking_lot::{Condvar, Mutex};

    // ----- context switch ------------------------------------------------

    core::arch::global_asm!(
        ".text",
        ".balign 16",
        ".globl hcft_simmpi_ctx_switch",
        ".hidden hcft_simmpi_ctx_switch",
        ".type hcft_simmpi_ctx_switch, @function",
        // fn(save: *mut *mut u8 /* rdi */, load: *mut u8 /* rsi */)
        //
        // Saves the SysV callee-saved GPRs on the current stack, parks the
        // resulting rsp in *save, adopts `load` as the new rsp and pops the
        // same frame back off it. Returning then "returns" on the target
        // context — either into the trampoline (first run) or back into a
        // previous hcft_simmpi_ctx_switch call site.
        "hcft_simmpi_ctx_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov qword ptr [rdi], rsp",
        "mov rsp, rsi",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
        ".size hcft_simmpi_ctx_switch, . - hcft_simmpi_ctx_switch",
        ".balign 16",
        ".globl hcft_simmpi_task_tramp",
        ".hidden hcft_simmpi_task_tramp",
        ".type hcft_simmpi_task_tramp, @function",
        // First-run entry: a fresh task frame "returns" here with the task
        // pointer preloaded in (callee-saved) r12. rsp is 16-aligned at
        // this point, so the call below leaves the ABI-mandated rsp%16==8
        // at the entry of hcft_simmpi_task_entry.
        "hcft_simmpi_task_tramp:",
        "mov rdi, r12",
        "call hcft_simmpi_task_entry",
        "ud2",
        ".size hcft_simmpi_task_tramp, . - hcft_simmpi_task_tramp",
    );

    extern "C" {
        fn hcft_simmpi_ctx_switch(save: *mut *mut u8, load: *mut u8);
        fn hcft_simmpi_task_tramp();
    }

    // ----- task state ----------------------------------------------------

    /// Runnable: queued on a run queue or currently executing.
    const READY: u8 = 0;
    /// Parked on a message channel; saved context is published.
    const BLOCKED: u8 = 1;
    /// Body returned; never resumed again.
    const DONE: u8 = 2;
    /// Mid-switch: the task announced it will block but its context save
    /// may not be complete. Wakers must not queue it yet.
    const BLOCKING: u8 = 3;
    /// A waker caught the task at `BLOCKING`: the wake is owed, and the
    /// worker completing the switch pays it (requeues the task).
    const WOKEN: u8 = 4;

    /// Written at the lowest address of every stack; clobbered means the
    /// task overflowed (there are no guard pages).
    const STACK_CANARY: u64 = 0x5AFE_57AC_CA4A_B1E5;

    /// Why a task switched back to its worker.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub(crate) enum Reason {
        Blocked,
        Done,
        /// Cooperative preemption: the task exhausted its yield budget
        /// and goes back on the run queue, still `READY`.
        Yielded,
    }

    /// One rank task. The non-atomic fields are only touched by the
    /// thread currently holding the task (see module docs: single-owner
    /// hand-off); `state` and `deadline_ns` carry the cross-thread
    /// handshakes.
    struct Task {
        state: AtomicU8,
        /// Saved stack pointer while suspended. Written by the holder
        /// during the context switch; published to the next holder by the
        /// state CAS or run-queue push that follows the save.
        sp: Cell<*mut u8>,
        /// Lowest address of this task's stack (canary location).
        stack_lo: *mut u8,
        /// Receive deadline while blocked, as nanoseconds relative to the
        /// scheduler epoch; 0 = none. Atomic because the watchdog reads
        /// it from outside the hand-off chain.
        deadline_ns: AtomicU64,
        /// Set by the watchdog before a timeout wake.
        timed_out: Cell<bool>,
        /// Remaining `maybe_yield` calls before the task switches out.
        yield_left: Cell<u32>,
        /// The rank body; taken on first entry.
        body: UnsafeCell<Option<Box<dyn FnOnce() + Send>>>,
    }

    // SAFETY: `sp`/`timed_out`/`yield_left`/`body` are only accessed by
    // the thread currently holding the task, and every hand-off between
    // holders goes through a release/acquire edge (state CAS, run-queue
    // push/pop, or injector mutex). `state` and `deadline_ns` are
    // atomic; `stack_lo` is immutable.
    unsafe impl Send for Task {}
    unsafe impl Sync for Task {}

    /// A slab holding many task stacks — one allocation per ~512 stacks so
    /// six-figure rank counts stay far under `vm.max_map_count`.
    struct StackSlab {
        base: *mut u8,
        layout: std::alloc::Layout,
    }

    // SAFETY: the slab is raw memory; all aliasing is managed by the
    // scheduler (each stack range is used by exactly one task).
    unsafe impl Send for StackSlab {}
    unsafe impl Sync for StackSlab {}

    impl Drop for StackSlab {
        fn drop(&mut self) {
            // SAFETY: allocated with this layout in `TaskSched::new`.
            unsafe { std::alloc::dealloc(self.base, self.layout) };
        }
    }

    // ----- run queues ----------------------------------------------------

    /// Fixed-capacity FIFO run queue: single producer (the owning
    /// worker), multiple consumers (the owner and any thief). FIFO at
    /// the *head* for everyone — unlike a classic Chase–Lev deque, the
    /// owner does not LIFO-pop its own tail, because a task that yielded
    /// must go behind its siblings or the yield budget would not be fair.
    ///
    /// Capacity is a power of two strictly greater than the task count,
    /// so `tail - head <= mask` always holds and a push can never lap an
    /// unconsumed slot.
    struct RunQueue {
        head: AtomicU64,
        tail: AtomicU64,
        mask: u64,
        slots: Box<[AtomicU32]>,
    }

    impl RunQueue {
        fn new(min_capacity: usize) -> Self {
            let cap = min_capacity.next_power_of_two().max(2);
            RunQueue {
                head: AtomicU64::new(0),
                tail: AtomicU64::new(0),
                mask: cap as u64 - 1,
                slots: (0..cap).map(|_| AtomicU32::new(0)).collect(),
            }
        }

        /// Owner-only push at the tail. Every push site in this module
        /// runs on the queue's own worker thread, which is what makes the
        /// plain tail load sound. The `Release` store publishes both the
        /// slot value and everything the pusher did before (the task's
        /// saved context) to whoever pops it.
        fn push(&self, tid: u32) {
            let t = self.tail.load(Ordering::Relaxed);
            debug_assert!(
                t.wrapping_sub(self.head.load(Ordering::Relaxed)) <= self.mask,
                "run queue lapped: capacity must exceed the task count"
            );
            self.slots[(t & self.mask) as usize].store(tid, Ordering::Relaxed);
            self.tail.store(t.wrapping_add(1), Ordering::Release);
        }

        /// Pop at the head; owner and thieves share this path. The head
        /// CAS both claims the slot and (on the thief side) acquires the
        /// pusher's release edge. A slot cannot be overwritten between
        /// the value read and a *successful* CAS: overwriting slot
        /// `h & mask` requires `tail - head == capacity`, which the
        /// capacity invariant rules out.
        fn pop(&self) -> Option<u32> {
            let mut h = self.head.load(Ordering::Acquire);
            loop {
                let t = self.tail.load(Ordering::Acquire);
                if h == t {
                    return None;
                }
                let v = self.slots[(h & self.mask) as usize].load(Ordering::Relaxed);
                match self.head.compare_exchange_weak(
                    h,
                    h.wrapping_add(1),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return Some(v),
                    Err(nh) => h = nh,
                }
            }
        }

        /// Approximate occupancy (telemetry only).
        fn len(&self) -> u64 {
            let t = self.tail.load(Ordering::Relaxed);
            let h = self.head.load(Ordering::Relaxed);
            t.wrapping_sub(h).min(self.mask + 1)
        }
    }

    /// Cross-thread face of one worker: the wake injector.
    struct WorkerShared {
        injector: Mutex<Vec<u32>>,
        cv: Condvar,
        /// True while the worker is (about to be) parked in `cv`. Written
        /// under `injector`, so a waker holding the lock sees the truth
        /// and can skip the futex syscall when the worker is busy.
        sleeping: Cell<bool>,
    }

    // SAFETY: `sleeping` is only accessed with `injector` held.
    unsafe impl Send for WorkerShared {}
    unsafe impl Sync for WorkerShared {}

    /// Scheduler telemetry, resolved once per world.
    struct SchedMetrics {
        resumes: Arc<Counter>,
        wakes_local: Arc<Counter>,
        wakes_remote: Arc<Counter>,
        timeouts: Arc<Counter>,
        steal_attempts: Arc<Counter>,
        steal_hits: Arc<Counter>,
        preemptions: Arc<Counter>,
        busy_nanos: Arc<Counter>,
        idle_nanos: Arc<Counter>,
        runq_depth: Arc<Histogram>,
    }

    /// The per-world scheduler: tasks, workers, stacks.
    pub(crate) struct TaskSched {
        /// Distinguishes schedulers when worlds nest (TLS sanity checks).
        id: u64,
        /// Reference point for `Task::deadline_ns`.
        epoch: Instant,
        tasks: Vec<Task>,
        workers: Vec<WorkerShared>,
        /// One run queue per worker; worker `w` owns (pushes) `runqs[w]`.
        runqs: Vec<RunQueue>,
        /// Ranks per worker: rank r's *home* worker is r / chunk. With
        /// stealing off this is also where it always runs.
        chunk: usize,
        /// Work stealing between workers (resolved per world).
        steal: bool,
        /// `maybe_yield` calls between preemptions; 0 = never preempt.
        yield_budget: u32,
        /// How often an *idle* worker rescans its blocked tasks for
        /// expired receive deadlines.
        watchdog_period: Duration,
        /// Tasks not yet `DONE`; workers exit when this hits zero.
        live: AtomicUsize,
        /// Tasks that are `READY` (queued or executing) or mid-switch.
        /// The watchdog may declare timeouts only at zero — see module
        /// docs (quiescence-gated watchdog).
        runnable: AtomicUsize,
        /// Workers currently parked; wakers only hunt for a sleeper to
        /// notify (steal mode) when this is nonzero.
        idle_workers: AtomicUsize,
        metrics: SchedMetrics,
        /// Keeps the stacks alive; dropped (deallocated) with the sched.
        _slabs: Vec<StackSlab>,
    }

    // ----- worker-thread TLS ---------------------------------------------

    /// Worker-private state, reachable from task context via TLS so a
    /// task blocking itself (or waking a sibling on the same worker)
    /// touches no locks.
    struct WorkerCtl {
        sched_id: u64,
        index: usize,
        /// Copy of the scheduler epoch (deadline encoding).
        epoch: Instant,
        /// Copy of the scheduler yield budget (`maybe_yield` fast path).
        yield_budget: u32,
        /// The worker loop's saved context while a task runs.
        sched_sp: Cell<*mut u8>,
        /// Why the last task switch returned to the worker.
        reason: Cell<Reason>,
        /// xorshift state for randomized victim selection.
        rng: Cell<u64>,
    }

    thread_local! {
        static WORKER: Cell<*const WorkerCtl> = const { Cell::new(std::ptr::null()) };
        static CURRENT: Cell<*const Task> = const { Cell::new(std::ptr::null()) };
    }

    /// Handle to the task currently executing on this thread, if any.
    /// `None` on rank threads of the thread engine (and off-worker code).
    pub(crate) struct CurrentTask {
        task: *const Task,
    }

    pub(crate) fn current() -> Option<CurrentTask> {
        let t = CURRENT.with(|c| c.get());
        if t.is_null() {
            None
        } else {
            Some(CurrentTask { task: t })
        }
    }

    impl CurrentTask {
        fn task(&self) -> &Task {
            // SAFETY: the pointer came from CURRENT, which the worker
            // sets for exactly the duration of this task's execution, and
            // `CurrentTask` is neither Send nor returned across switches.
            unsafe { &*self.task }
        }

        /// Announce that the task is about to block (phase one of the
        /// two-phase block). Must be called while holding the mailbox
        /// shard lock on which the wake-hint was registered: the lock
        /// orders this store against the waker's read of the hint, so a
        /// sender that saw the hint always finds `BLOCKING` or `BLOCKED`.
        pub(crate) fn prepare_block(&self) {
            self.task().state.store(BLOCKING, Ordering::Release);
        }

        /// Switch to the scheduler until woken (phase two). Call after
        /// [`CurrentTask::prepare_block`], with no locks held.
        pub(crate) fn block(&self, deadline: Instant) {
            let t = self.task();
            let ctl = WORKER.with(|w| w.get());
            debug_assert!(!ctl.is_null());
            // SAFETY: installed by this thread's worker loop; outlives
            // every task switch on this thread.
            let epoch = unsafe { (*ctl).epoch };
            let rel = deadline.saturating_duration_since(epoch).as_nanos() as u64;
            t.deadline_ns.store(rel.max(1), Ordering::Release);
            switch_to_worker(Reason::Blocked);
            t.deadline_ns.store(0, Ordering::Release);
        }

        /// Whether the last wake came from the deadline watchdog rather
        /// than a sender (reading clears the flag).
        pub(crate) fn take_timed_out(&self) -> bool {
            self.task().timed_out.replace(false)
        }
    }

    /// Suspend the running task and resume its worker loop.
    fn switch_to_worker(reason: Reason) {
        let ctl = WORKER.with(|w| w.get());
        let task = CURRENT.with(|c| c.get());
        debug_assert!(!ctl.is_null() && !task.is_null());
        // SAFETY: both pointers are installed by this thread's worker
        // loop and outlive the task; the switch returns here only when
        // a worker (possibly a different one, under stealing) resumes
        // this exact saved context.
        unsafe {
            (*ctl).reason.set(reason);
            hcft_simmpi_ctx_switch((*task).sp.as_ptr(), (*ctl).sched_sp.get());
        }
    }

    /// Cooperative preemption check; the body of
    /// [`crate::runtime::maybe_yield`]. Kept branch-cheap: one TLS read
    /// when no budget is configured.
    #[inline]
    pub(crate) fn maybe_yield_task() {
        let ctl = WORKER.with(|w| w.get());
        if ctl.is_null() {
            return;
        }
        // SAFETY: installed by this thread's worker loop.
        let budget = unsafe { (*ctl).yield_budget };
        if budget == 0 {
            return;
        }
        let task = CURRENT.with(|c| c.get());
        if task.is_null() {
            return;
        }
        // SAFETY: set by the worker for the duration of this task's run.
        let t = unsafe { &*task };
        let left = t.yield_left.get();
        if left > 1 {
            t.yield_left.set(left - 1);
            return;
        }
        t.yield_left.set(budget);
        switch_to_worker(Reason::Yielded);
    }

    /// First-run entry for every task, reached from the trampoline with
    /// the ABI in a normal post-`call` state.
    #[no_mangle]
    extern "C" fn hcft_simmpi_task_entry(task: *const Task) -> ! {
        {
            // SAFETY: the trampoline passes the pointer the scheduler
            // planted in the initial frame; the task outlives its run.
            let t = unsafe { &*task };
            let body = unsafe { (*t.body.get()).take() }.expect("task body runs exactly once");
            // Rank panics are caught (and recorded) inside the body by the
            // runtime; this catch is the backstop that keeps any stray
            // unwind from reaching the trampoline frame, which has no
            // unwind tables.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
        }
        loop {
            switch_to_worker(Reason::Done);
        }
    }

    // ----- scheduler -----------------------------------------------------

    impl TaskSched {
        /// Build a scheduler running `bodies` (one per rank, rank order)
        /// on `workers` OS threads with `stack_size`-byte task stacks.
        pub(crate) fn new(
            workers: usize,
            stack_size: usize,
            watchdog_period: Duration,
            steal: bool,
            yield_budget: u32,
            bodies: Vec<Box<dyn FnOnce() + Send>>,
        ) -> Arc<Self> {
            static NEXT_ID: AtomicU64 = AtomicU64::new(1);
            let n = bodies.len();
            assert!(n > 0 && workers > 0);
            let workers = workers.min(n);
            // Align the stack span so every stack top is 16-aligned, and
            // keep enough headroom below the deepest frame for the panic
            // machinery the deadlock watchdog relies on. (The runtime
            // validates the configured size; this clamp is the backstop.)
            let stack_size = stack_size.clamp(64 * 1024, 1 << 30) & !4095;
            let reg = Registry::global();
            let mut tasks: Vec<Task> = Vec::with_capacity(n);
            let mut slabs = Vec::new();
            let mut remaining = n;
            // ~256 MiB per slab: big enough that 100k ranks need a few
            // hundred mappings, small enough to not trip overcommit
            // heuristics on modest machines.
            let per_slab = ((256 << 20) / stack_size).max(1);
            while remaining > 0 {
                let count = remaining.min(per_slab);
                let layout = std::alloc::Layout::from_size_align(count * stack_size, 4096)
                    .expect("stack slab layout");
                // SAFETY: layout is non-zero; allocation checked below.
                let base = unsafe { std::alloc::alloc(layout) };
                assert!(!base.is_null(), "stack slab allocation failed");
                for i in 0..count {
                    // SAFETY: i < count, so the offset stays in the slab.
                    let lo = unsafe { base.add(i * stack_size) };
                    // SAFETY: lo is the bottom of an unused stack.
                    unsafe { (lo as *mut u64).write(STACK_CANARY) };
                    tasks.push(Task {
                        state: AtomicU8::new(READY),
                        sp: Cell::new(std::ptr::null_mut()),
                        stack_lo: lo,
                        deadline_ns: AtomicU64::new(0),
                        timed_out: Cell::new(false),
                        yield_left: Cell::new(yield_budget),
                        body: UnsafeCell::new(None),
                    });
                }
                slabs.push(StackSlab { base, layout });
                remaining -= count;
            }
            // The task vector is complete (no more pushes): pointers into
            // it are stable, so the initial frames can be planted now.
            for (task, body) in tasks.iter().zip(bodies) {
                // SAFETY: single-threaded setup, before any worker runs.
                unsafe { *task.body.get() = Some(body) };
                // Initial frame, popped by the first context switch into
                // the task (descending from the 16-aligned stack top):
                //   [top-8]  return address -> trampoline
                //   [top-16] rbp  [top-24] rbx  [top-32] r12 = task ptr
                //   [top-40] r13  [top-48] r14  [top-56] r15  <- saved rsp
                // SAFETY: the frame lies entirely within this task's stack.
                unsafe {
                    let top = task.stack_lo.add(stack_size);
                    let top16 = ((top as usize) & !15) as *mut u8;
                    let sp = top16.sub(56);
                    (sp as *mut usize).write_bytes(0, 6);
                    (sp.add(24) as *mut usize).write(task as *const Task as usize);
                    (sp.add(48) as *mut usize).write(hcft_simmpi_task_tramp as *const () as usize);
                    task.sp.set(sp);
                }
            }
            let chunk = n.div_ceil(workers);
            Arc::new(TaskSched {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                tasks,
                workers: (0..workers)
                    .map(|_| WorkerShared {
                        injector: Mutex::new(Vec::new()),
                        cv: Condvar::new(),
                        sleeping: Cell::new(false),
                    })
                    .collect(),
                // Capacity must strictly exceed n: in the worst case every
                // task lands on one queue (see RunQueue docs).
                runqs: (0..workers).map(|_| RunQueue::new(n + 1)).collect(),
                chunk,
                steal,
                yield_budget,
                watchdog_period,
                live: AtomicUsize::new(n),
                runnable: AtomicUsize::new(n),
                idle_workers: AtomicUsize::new(0),
                metrics: SchedMetrics {
                    resumes: reg.counter("simmpi.sched.resumes"),
                    wakes_local: reg.counter("simmpi.sched.wakes_local"),
                    wakes_remote: reg.counter("simmpi.sched.wakes_remote"),
                    timeouts: reg.counter("simmpi.sched.timeouts"),
                    steal_attempts: reg.counter("simmpi.sched.steal_attempts"),
                    steal_hits: reg.counter("simmpi.sched.steal_hits"),
                    preemptions: reg.counter("simmpi.sched.preemptions"),
                    busy_nanos: reg.counter("simmpi.sched.busy_nanos"),
                    idle_nanos: reg.counter("simmpi.sched.idle_nanos"),
                    runq_depth: reg.histogram("simmpi.sched.runq_depth"),
                },
                _slabs: slabs,
            })
        }

        /// Make a blocked task runnable. Callable from any thread; the
        /// CAS guarantees exactly one waker wins even when a sender races
        /// the deadline watchdog. Waking a task that is not blocked (the
        /// sender's channel hint can be stale for one round trip) is a
        /// harmless no-op.
        pub(crate) fn wake(&self, tid: u32) {
            let t = &self.tasks[tid as usize];
            let mut state = t.state.load(Ordering::Relaxed);
            loop {
                match state {
                    BLOCKED => {
                        match t.state.compare_exchange_weak(
                            BLOCKED,
                            READY,
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break, // we own the wake; enqueue below
                            Err(s) => state = s,
                        }
                    }
                    BLOCKING => {
                        // Mid-switch: the context save may be incomplete.
                        // Hand the wake debt to the switching worker.
                        match t.state.compare_exchange_weak(
                            BLOCKING,
                            WOKEN,
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => return,
                            Err(s) => state = s,
                        }
                    }
                    // READY / WOKEN: someone else owns the wake. DONE:
                    // nothing to wake.
                    _ => return,
                }
            }
            self.runnable.fetch_add(1, Ordering::AcqRel);
            let home = tid as usize / self.chunk;
            // Same-worker fast path: a task waking a sibling pushes
            // straight onto this worker's own run queue — no lock, no
            // condvar. With stealing on, *any* worker of this scheduler
            // may do so (the task can run anywhere); with stealing off,
            // only the home worker may (placement is part of the
            // execution model there).
            let pushed_local = WORKER.with(|w| {
                let ctl = w.get();
                if ctl.is_null() {
                    return false;
                }
                // SAFETY: installed by this thread's worker loop.
                let ctl = unsafe { &*ctl };
                if ctl.sched_id != self.id {
                    return false;
                }
                if self.steal || ctl.index == home {
                    self.runqs[ctl.index].push(tid);
                    return true;
                }
                false
            });
            if pushed_local {
                self.metrics.wakes_local.inc();
                if self.steal {
                    // An idle worker can steal the task we just queued.
                    self.notify_sleeper();
                }
                return;
            }
            self.metrics.wakes_remote.inc();
            let ws = &self.workers[home];
            let mut inj = ws.injector.lock();
            inj.push(tid);
            let sleeping = ws.sleeping.get();
            drop(inj);
            if sleeping {
                ws.cv.notify_one();
            } else if self.steal {
                self.notify_sleeper();
            }
        }

        /// Wake one parked worker, if any (steal mode: new work can be
        /// taken by anyone, so a busy home worker must not strand it).
        fn notify_sleeper(&self) {
            if self.idle_workers.load(Ordering::Relaxed) == 0 {
                return;
            }
            for ws in &self.workers {
                let inj = ws.injector.lock();
                let sleeping = ws.sleeping.get();
                drop(inj);
                if sleeping {
                    ws.cv.notify_one();
                    return;
                }
            }
        }

        /// Spawn the worker pool, run every task to completion, join.
        /// `on_worker_exit` runs once per worker thread after its last
        /// task finishes (the buffer-magazine flush hook).
        pub(crate) fn run(self: &Arc<Self>, on_worker_exit: impl Fn() + Send + Sync + 'static) {
            let on_exit = Arc::new(on_worker_exit);
            let handles: Vec<_> = (0..self.workers.len())
                .map(|w| {
                    let sched = Arc::clone(self);
                    let on_exit = Arc::clone(&on_exit);
                    std::thread::Builder::new()
                        .name(format!("simmpi-worker-{w}"))
                        .spawn(move || {
                            sched.worker_main(w);
                            on_exit();
                        })
                        .expect("spawn simmpi worker")
                })
                .collect();
            for h in handles {
                if let Err(e) = h.join() {
                    let msg = e
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "<non-string panic>".to_string());
                    panic!("simmpi worker panicked: {msg}");
                }
            }
        }

        /// One worker: run tasks until the whole world is done.
        fn worker_main(&self, index: usize) {
            let lo = (index * self.chunk).min(self.tasks.len());
            let hi = (lo + self.chunk).min(self.tasks.len());
            let ctl = WorkerCtl {
                sched_id: self.id,
                index,
                epoch: self.epoch,
                yield_budget: self.yield_budget,
                sched_sp: Cell::new(std::ptr::null_mut()),
                reason: Cell::new(Reason::Blocked),
                // Deterministic per-worker seed: victim order must not
                // depend on wall clock (and does not affect results
                // anyway, only steal locality).
                rng: Cell::new(
                    (self.id << 32) ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            };
            WORKER.with(|w| w.set(&ctl as *const WorkerCtl));
            let runq = &self.runqs[index];
            for tid in lo..hi {
                runq.push(tid as u32);
            }
            let started = Instant::now();
            let mut idle = Duration::ZERO;
            while self.live.load(Ordering::Acquire) > 0 {
                let mut tid = runq.pop();
                if tid.is_none() {
                    tid = self.drain_injector(index);
                }
                if tid.is_none() && self.steal {
                    tid = self.steal_task(&ctl);
                }
                match tid {
                    Some(tid) => self.run_one(&ctl, tid),
                    None => idle += self.idle_wait(index, lo, hi),
                }
            }
            WORKER.with(|w| w.set(std::ptr::null()));
            let total = started.elapsed();
            let busy = total.saturating_sub(idle);
            self.metrics.busy_nanos.add(busy.as_nanos() as u64);
            self.metrics.idle_nanos.add(idle.as_nanos() as u64);
            let reg = Registry::global();
            reg.gauge(&format!("simmpi.sched.worker.{index}.busy_nanos"))
                .set(busy.as_nanos() as f64);
            reg.gauge(&format!("simmpi.sched.worker.{index}.idle_nanos"))
                .set(idle.as_nanos() as f64);
        }

        /// Resume one task and settle its post-switch state.
        fn run_one(&self, ctl: &WorkerCtl, tid: u32) {
            let t = &self.tasks[tid as usize];
            self.metrics.resumes.inc();
            CURRENT.with(|c| c.set(t as *const Task));
            // SAFETY: t.sp holds a context previously saved on (or
            // planted in) this task's stack. Popping the task from a run
            // queue (or injector) made this worker its unique holder, and
            // the pop's acquire edge makes the save visible.
            unsafe { hcft_simmpi_ctx_switch(ctl.sched_sp.as_ptr(), t.sp.get()) };
            CURRENT.with(|c| c.set(std::ptr::null()));
            // SAFETY: stack_lo points at this task's canary.
            let canary = unsafe { (t.stack_lo as *const u64).read() };
            assert!(
                canary == STACK_CANARY,
                "simmpi task stack overflow (rank {tid}): raise WorldConfig.stack_size \
                 or HCFT_SIMMPI_STACK_KB"
            );
            match ctl.reason.get() {
                Reason::Done => {
                    t.state.store(DONE, Ordering::Release);
                    self.runnable.fetch_sub(1, Ordering::AcqRel);
                    if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
                        // Last task in the world: release every parked
                        // worker so the pool can exit.
                        for ws in &self.workers {
                            let _inj = ws.injector.lock();
                            ws.cv.notify_all();
                        }
                    }
                }
                Reason::Blocked => {
                    // Phase two of the block: publish the saved context.
                    if t.state
                        .compare_exchange(BLOCKING, BLOCKED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.runnable.fetch_sub(1, Ordering::AcqRel);
                    } else {
                        // A waker caught the task at BLOCKING (now WOKEN).
                        // The save is complete, so pay the wake debt here:
                        // the task never counted out of `runnable`.
                        t.state.store(READY, Ordering::Release);
                        self.runqs[ctl.index].push(tid);
                        if self.steal {
                            self.notify_sleeper();
                        }
                    }
                }
                Reason::Yielded => {
                    // Still READY; goes behind its queue siblings, which
                    // is the whole point of the yield budget.
                    self.metrics.preemptions.inc();
                    self.runqs[ctl.index].push(tid);
                }
            }
        }

        /// Move injected wakes onto this worker's run queue; returns the
        /// first, if any.
        fn drain_injector(&self, index: usize) -> Option<u32> {
            let ws = &self.workers[index];
            let mut inj = ws.injector.lock();
            if inj.is_empty() {
                return None;
            }
            let runq = &self.runqs[index];
            let mut drained = inj.drain(..);
            let first = drained.next();
            for tid in drained {
                runq.push(tid);
            }
            drop(inj);
            self.metrics.runq_depth.observe(runq.len());
            first
        }

        /// Take one runnable task from another worker: run queues first
        /// (lock-free), then parked injector wakes whose home worker is
        /// too busy to drain them. Victim order is randomized per attempt
        /// so a hot worker is not mobbed from the same side every time.
        fn steal_task(&self, ctl: &WorkerCtl) -> Option<u32> {
            let n = self.workers.len();
            if n <= 1 {
                return None;
            }
            self.metrics.steal_attempts.inc();
            let mut s = ctl.rng.get();
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ctl.rng.set(s);
            let start = (s % n as u64) as usize;
            for i in 0..n {
                let v = (start + i) % n;
                if v == ctl.index {
                    continue;
                }
                if let Some(tid) = self.runqs[v].pop() {
                    self.metrics.steal_hits.inc();
                    self.metrics.runq_depth.observe(self.runqs[v].len());
                    return Some(tid);
                }
            }
            for i in 0..n {
                let v = (start + i) % n;
                if v == ctl.index {
                    continue;
                }
                let mut inj = self.workers[v].injector.lock();
                if let Some(tid) = inj.pop() {
                    self.metrics.steal_hits.inc();
                    return Some(tid);
                }
            }
            None
        }

        /// Nothing runnable here: scan for expired deadlines, then park
        /// on the injector condvar for up to one watchdog period. Returns
        /// the time spent (idle-nanos accounting).
        fn idle_wait(&self, index: usize, lo: usize, hi: usize) -> Duration {
            let start = Instant::now();
            self.metrics.runq_depth.observe(0);
            let ws = &self.workers[index];
            if self.expire_deadlines(index, lo, hi, Instant::now()) > 0 {
                return start.elapsed();
            }
            let mut inj = ws.injector.lock();
            // Re-check liveness under the lock: the finishing worker
            // decrements `live` *before* taking this lock to notify, so a
            // `> 0` read here guarantees its notify is still to come.
            if inj.is_empty() && self.live.load(Ordering::Acquire) > 0 {
                ws.sleeping.set(true);
                self.idle_workers.fetch_add(1, Ordering::SeqCst);
                let _ = ws
                    .cv
                    .wait_until(&mut inj, Instant::now() + self.watchdog_period);
                self.idle_workers.fetch_sub(1, Ordering::SeqCst);
                ws.sleeping.set(false);
            }
            start.elapsed()
        }

        /// Wake owned tasks whose receive deadline has passed, marking
        /// them timed out so they resume on the deadlock path.
        ///
        /// Gated on global quiescence: with any task `READY` somewhere, a
        /// message that satisfies a lapsed deadline may still be coming
        /// (every sender is itself a running task), so firing would be a
        /// false positive — the long-computing-rank bug this gate fixes.
        /// Conversely `runnable == 0` with an expired deadline is a true
        /// deadlock. Each worker scans only its home range; in a
        /// quiescent world every worker is idle, so all ranges get
        /// scanned.
        fn expire_deadlines(&self, index: usize, lo: usize, hi: usize, now: Instant) -> usize {
            if self.runnable.load(Ordering::Acquire) > 0 {
                return 0;
            }
            let now_ns = now.saturating_duration_since(self.epoch).as_nanos() as u64;
            let mut woken = 0;
            for tid in lo..hi {
                let t = &self.tasks[tid];
                if t.state.load(Ordering::Acquire) != BLOCKED {
                    continue;
                }
                let d = t.deadline_ns.load(Ordering::Acquire);
                if d == 0 || now_ns < d {
                    continue;
                }
                if t.state
                    .compare_exchange(BLOCKED, READY, Ordering::AcqRel, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                self.runnable.fetch_add(1, Ordering::AcqRel);
                // Re-read now that the CAS made us the task's holder:
                // between the first read and the CAS the task may have
                // been woken, run elsewhere and re-blocked with a fresh
                // deadline — that is a spurious wake, not a timeout.
                let d = t.deadline_ns.load(Ordering::Acquire);
                if d != 0 && now_ns >= d {
                    t.timed_out.set(true);
                    self.metrics.timeouts.inc();
                }
                self.runqs[index].push(tid as u32);
                woken += 1;
            }
            woken
        }
    }
}

/// Stub for targets without the task engine: `current()` is always
/// `None` and the scheduler type is never instantiated (the runtime
/// resolves the engine to thread-per-rank when `SUPPORTED` is false).
#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
mod stub {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    pub(crate) struct TaskSched;

    pub(crate) struct CurrentTask;

    pub(crate) fn current() -> Option<CurrentTask> {
        None
    }

    #[inline]
    pub(crate) fn maybe_yield_task() {}

    impl CurrentTask {
        pub(crate) fn prepare_block(&self) {}
        pub(crate) fn block(&self, _deadline: Instant) {}
        pub(crate) fn take_timed_out(&self) -> bool {
            false
        }
    }

    impl TaskSched {
        pub(crate) fn new(
            _workers: usize,
            _stack_size: usize,
            _watchdog_period: Duration,
            _steal: bool,
            _yield_budget: u32,
            _bodies: Vec<Box<dyn FnOnce() + Send>>,
        ) -> Arc<Self> {
            unreachable!("task engine unsupported on this target")
        }

        pub(crate) fn wake(&self, _tid: u32) {}

        pub(crate) fn run(self: &Arc<Self>, _on_worker_exit: impl Fn() + Send + Sync + 'static) {}
    }
}
