//! M:N cooperative scheduler: rank bodies as stackful coroutines.
//!
//! Thread-per-rank tops out well below full-machine scale: the kernel
//! caps task counts (`pid_max` is 32768 here) long before the paper's
//! full-TSUBAME2 job (≈22k ranks, stretch 100k) fits, and even at the
//! paper's 1088 ranks every halo message pays a futex park + wake round
//! trip. This module multiplexes rank bodies onto a fixed worker pool
//! instead: each rank becomes a resumable task with its own stack, and a
//! blocking receive *switches* to the next runnable rank (~tens of ns)
//! rather than parking an OS thread.
//!
//! Design invariants, in order of importance:
//!
//! * **Static home workers.** Rank `r` is owned by worker `r / chunk`
//!   forever; tasks never migrate. Only the home worker ever resumes a
//!   task, so a waker can enqueue a task id the instant it flips the
//!   task's state — the home worker is by definition busy completing that
//!   task's context save (or doing something else) and cannot resume it
//!   concurrently. No other synchronisation of the saved context is
//!   needed. Block assignment also co-locates stencil neighbours.
//! * **Wake ownership by CAS.** A blocked task is woken by exactly one
//!   party: a sender that finds the task's id registered on the message
//!   channel, or the home worker's deadline watchdog. Both race through
//!   one `compare_exchange(BLOCKED → READY)`; the loser does nothing.
//! * **Single-threaded task cells.** A task's saved stack pointer,
//!   deadline and timeout flag are only touched by code running *on the
//!   home worker* (the task itself, or the worker loop), so they are
//!   plain `Cell`s; cross-thread traffic goes through the one atomic
//!   state word.
//!
//! The context switch is ~20 instructions of inline assembly (x86_64
//! SysV: save/restore the six callee-saved GPRs plus `rsp`; the FP/SSE
//! control words are never modified by generated code, and no xmm
//! register is callee-saved). Stacks are carved out of large slabs — one
//! `mmap` per ~512 stacks — so 100k ranks do not exhaust
//! `vm.max_map_count`. There are no guard pages; a canary word at the
//! stack base turns silent overflow into a loud panic at the next
//! switch.

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub(crate) use imp::*;

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
pub(crate) use stub::*;

/// Whether the task engine exists on this target. Off-target builds fall
/// back to thread-per-rank (see `runtime::resolve_engine`).
pub(crate) const SUPPORTED: bool = cfg!(all(target_arch = "x86_64", target_os = "linux"));

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod imp {
    use std::cell::{Cell, RefCell, UnsafeCell};
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use hcft_telemetry::{Counter, Registry};
    use parking_lot::{Condvar, Mutex};

    // ----- context switch ------------------------------------------------

    core::arch::global_asm!(
        ".text",
        ".balign 16",
        ".globl hcft_simmpi_ctx_switch",
        ".hidden hcft_simmpi_ctx_switch",
        ".type hcft_simmpi_ctx_switch, @function",
        // fn(save: *mut *mut u8 /* rdi */, load: *mut u8 /* rsi */)
        //
        // Saves the SysV callee-saved GPRs on the current stack, parks the
        // resulting rsp in *save, adopts `load` as the new rsp and pops the
        // same frame back off it. Returning then "returns" on the target
        // context — either into the trampoline (first run) or back into a
        // previous hcft_simmpi_ctx_switch call site.
        "hcft_simmpi_ctx_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov qword ptr [rdi], rsp",
        "mov rsp, rsi",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
        ".size hcft_simmpi_ctx_switch, . - hcft_simmpi_ctx_switch",
        ".balign 16",
        ".globl hcft_simmpi_task_tramp",
        ".hidden hcft_simmpi_task_tramp",
        ".type hcft_simmpi_task_tramp, @function",
        // First-run entry: a fresh task frame "returns" here with the task
        // pointer preloaded in (callee-saved) r12. rsp is 16-aligned at
        // this point, so the call below leaves the ABI-mandated rsp%16==8
        // at the entry of hcft_simmpi_task_entry.
        "hcft_simmpi_task_tramp:",
        "mov rdi, r12",
        "call hcft_simmpi_task_entry",
        "ud2",
        ".size hcft_simmpi_task_tramp, . - hcft_simmpi_task_tramp",
    );

    extern "C" {
        fn hcft_simmpi_ctx_switch(save: *mut *mut u8, load: *mut u8);
        fn hcft_simmpi_task_tramp();
    }

    // ----- task state ----------------------------------------------------

    /// Runnable (queued or currently executing on its home worker).
    const READY: u8 = 0;
    /// Parked on a message channel, waiting for a wake.
    const BLOCKED: u8 = 1;
    /// Body returned; never resumed again.
    const DONE: u8 = 2;

    /// Written at the lowest address of every stack; clobbered means the
    /// task overflowed (there are no guard pages).
    const STACK_CANARY: u64 = 0x5AFE_57AC_CA4A_B1E5;

    /// Why a task switched back to its worker.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub(crate) enum Reason {
        Blocked,
        Done,
    }

    /// One rank task. Cells are home-worker-only (see module docs); the
    /// `state` word is the sole cross-thread handshake.
    struct Task {
        state: AtomicU8,
        /// Saved stack pointer while suspended.
        sp: Cell<*mut u8>,
        /// Lowest address of this task's stack (canary location).
        stack_lo: *mut u8,
        /// Receive deadline while blocked (watchdog input).
        deadline: Cell<Option<Instant>>,
        /// Set by the watchdog before a timeout wake.
        timed_out: Cell<bool>,
        /// The rank body; taken on first entry.
        body: UnsafeCell<Option<Box<dyn FnOnce() + Send>>>,
    }

    // SAFETY: `sp`/`deadline`/`timed_out`/`body` are only accessed from
    // the task's home worker thread (the static-ownership invariant);
    // `state` is atomic. `stack_lo` is immutable.
    unsafe impl Send for Task {}
    unsafe impl Sync for Task {}

    /// A slab holding many task stacks — one allocation per ~512 stacks so
    /// six-figure rank counts stay far under `vm.max_map_count`.
    struct StackSlab {
        base: *mut u8,
        layout: std::alloc::Layout,
    }

    // SAFETY: the slab is raw memory; all aliasing is managed by the
    // scheduler (each stack range is used by exactly one task).
    unsafe impl Send for StackSlab {}
    unsafe impl Sync for StackSlab {}

    impl Drop for StackSlab {
        fn drop(&mut self) {
            // SAFETY: allocated with this layout in `TaskSched::new`.
            unsafe { std::alloc::dealloc(self.base, self.layout) };
        }
    }

    /// Cross-thread face of one worker: the wake injector.
    struct WorkerShared {
        injector: Mutex<Vec<u32>>,
        cv: Condvar,
        /// True while the worker is (about to be) parked in `cv`. Written
        /// under `injector`, so a waker holding the lock sees the truth
        /// and can skip the futex syscall when the worker is busy.
        sleeping: Cell<bool>,
    }

    // SAFETY: `sleeping` is only accessed with `injector` held.
    unsafe impl Send for WorkerShared {}
    unsafe impl Sync for WorkerShared {}

    /// Scheduler telemetry, resolved once per world.
    struct SchedMetrics {
        resumes: Arc<Counter>,
        wakes_local: Arc<Counter>,
        wakes_remote: Arc<Counter>,
        timeouts: Arc<Counter>,
    }

    /// The per-world scheduler: tasks, workers, stacks.
    pub(crate) struct TaskSched {
        /// Distinguishes schedulers when worlds nest (TLS sanity checks).
        id: u64,
        tasks: Vec<Task>,
        workers: Vec<WorkerShared>,
        /// Ranks per worker: rank r is owned by worker r / chunk.
        chunk: usize,
        /// How often an *idle* worker rescans its blocked tasks for
        /// expired receive deadlines.
        watchdog_period: Duration,
        metrics: SchedMetrics,
        /// Keeps the stacks alive; dropped (deallocated) with the sched.
        _slabs: Vec<StackSlab>,
    }

    // ----- worker-thread TLS ---------------------------------------------

    /// Home-worker-private state, reachable from task context via TLS so
    /// a task blocking itself (or waking a sibling on the same worker)
    /// touches no locks.
    struct WorkerCtl {
        sched_id: u64,
        index: usize,
        /// The worker loop's saved context while a task runs.
        sched_sp: Cell<*mut u8>,
        /// Local run queue. Never borrowed across a context switch.
        local: RefCell<VecDeque<u32>>,
        /// Why the last task switch returned to the worker.
        reason: Cell<Reason>,
    }

    thread_local! {
        static WORKER: Cell<*const WorkerCtl> = const { Cell::new(std::ptr::null()) };
        static CURRENT: Cell<*const Task> = const { Cell::new(std::ptr::null()) };
    }

    /// Handle to the task currently executing on this thread, if any.
    /// `None` on rank threads of the thread engine (and off-worker code).
    pub(crate) struct CurrentTask {
        task: *const Task,
    }

    pub(crate) fn current() -> Option<CurrentTask> {
        let t = CURRENT.with(|c| c.get());
        if t.is_null() {
            None
        } else {
            Some(CurrentTask { task: t })
        }
    }

    impl CurrentTask {
        fn task(&self) -> &Task {
            // SAFETY: the pointer came from CURRENT, which the home worker
            // sets for exactly the duration of this task's execution, and
            // `CurrentTask` is neither Send nor returned across switches.
            unsafe { &*self.task }
        }

        /// Mark the task as blocked. Must be called while holding the
        /// mailbox shard lock on which the wake-hint was registered: the
        /// lock orders this store against the waker's read of the hint,
        /// so a sender that saw the hint always succeeds its wake CAS.
        pub(crate) fn prepare_block(&self) {
            self.task().state.store(BLOCKED, Ordering::Release);
        }

        /// Switch to the scheduler until woken. Call after
        /// [`CurrentTask::prepare_block`], with no locks held.
        pub(crate) fn block(&self, deadline: Instant) {
            let t = self.task();
            t.deadline.set(Some(deadline));
            switch_to_worker(Reason::Blocked);
            t.deadline.set(None);
        }

        /// Whether the last wake came from the deadline watchdog rather
        /// than a sender (reading clears the flag).
        pub(crate) fn take_timed_out(&self) -> bool {
            self.task().timed_out.replace(false)
        }
    }

    /// Suspend the running task and resume its worker loop.
    fn switch_to_worker(reason: Reason) {
        let ctl = WORKER.with(|w| w.get());
        let task = CURRENT.with(|c| c.get());
        debug_assert!(!ctl.is_null() && !task.is_null());
        // SAFETY: both pointers are installed by this thread's worker
        // loop and outlive the task; the switch returns here only when
        // the home worker resumes this exact context.
        unsafe {
            (*ctl).reason.set(reason);
            hcft_simmpi_ctx_switch((*task).sp.as_ptr(), (*ctl).sched_sp.get());
        }
    }

    /// First-run entry for every task, reached from the trampoline with
    /// the ABI in a normal post-`call` state.
    #[no_mangle]
    extern "C" fn hcft_simmpi_task_entry(task: *const Task) -> ! {
        {
            // SAFETY: the trampoline passes the pointer the scheduler
            // planted in the initial frame; the task outlives its run.
            let t = unsafe { &*task };
            let body = unsafe { (*t.body.get()).take() }.expect("task body runs exactly once");
            // Rank panics are caught (and recorded) inside the body by the
            // runtime; this catch is the backstop that keeps any stray
            // unwind from reaching the trampoline frame, which has no
            // unwind tables.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
        }
        loop {
            switch_to_worker(Reason::Done);
        }
    }

    // ----- scheduler -----------------------------------------------------

    impl TaskSched {
        /// Build a scheduler running `bodies` (one per rank, rank order)
        /// on `workers` OS threads with `stack_size`-byte task stacks.
        pub(crate) fn new(
            workers: usize,
            stack_size: usize,
            watchdog_period: Duration,
            bodies: Vec<Box<dyn FnOnce() + Send>>,
        ) -> Arc<Self> {
            static NEXT_ID: AtomicU64 = AtomicU64::new(1);
            let n = bodies.len();
            assert!(n > 0 && workers > 0);
            let workers = workers.min(n);
            // Align the stack span so every stack top is 16-aligned, and
            // keep enough headroom below the deepest frame for the panic
            // machinery the deadlock watchdog relies on.
            let stack_size = stack_size.clamp(64 * 1024, 1 << 30) & !4095;
            let reg = Registry::global();
            let mut tasks: Vec<Task> = Vec::with_capacity(n);
            let mut slabs = Vec::new();
            let mut remaining = n;
            // ~256 MiB per slab: big enough that 100k ranks need a few
            // hundred mappings, small enough to not trip overcommit
            // heuristics on modest machines.
            let per_slab = ((256 << 20) / stack_size).max(1);
            while remaining > 0 {
                let count = remaining.min(per_slab);
                let layout = std::alloc::Layout::from_size_align(count * stack_size, 4096)
                    .expect("stack slab layout");
                // SAFETY: layout is non-zero; allocation checked below.
                let base = unsafe { std::alloc::alloc(layout) };
                assert!(!base.is_null(), "stack slab allocation failed");
                for i in 0..count {
                    // SAFETY: i < count, so the offset stays in the slab.
                    let lo = unsafe { base.add(i * stack_size) };
                    // SAFETY: lo is the bottom of an unused stack.
                    unsafe { (lo as *mut u64).write(STACK_CANARY) };
                    tasks.push(Task {
                        state: AtomicU8::new(READY),
                        sp: Cell::new(std::ptr::null_mut()),
                        stack_lo: lo,
                        deadline: Cell::new(None),
                        timed_out: Cell::new(false),
                        body: UnsafeCell::new(None),
                    });
                }
                slabs.push(StackSlab { base, layout });
                remaining -= count;
            }
            // The task vector is complete (no more pushes): pointers into
            // it are stable, so the initial frames can be planted now.
            for (task, body) in tasks.iter().zip(bodies) {
                // SAFETY: single-threaded setup, before any worker runs.
                unsafe { *task.body.get() = Some(body) };
                // Initial frame, popped by the first context switch into
                // the task (descending from the 16-aligned stack top):
                //   [top-8]  return address -> trampoline
                //   [top-16] rbp  [top-24] rbx  [top-32] r12 = task ptr
                //   [top-40] r13  [top-48] r14  [top-56] r15  <- saved rsp
                // SAFETY: the frame lies entirely within this task's stack.
                unsafe {
                    let top = task.stack_lo.add(stack_size);
                    let top16 = ((top as usize) & !15) as *mut u8;
                    let sp = top16.sub(56);
                    (sp as *mut usize).write_bytes(0, 6);
                    (sp.add(24) as *mut usize).write(task as *const Task as usize);
                    (sp.add(48) as *mut usize).write(hcft_simmpi_task_tramp as *const () as usize);
                    task.sp.set(sp);
                }
            }
            let chunk = n.div_ceil(workers);
            Arc::new(TaskSched {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                tasks,
                workers: (0..workers)
                    .map(|_| WorkerShared {
                        injector: Mutex::new(Vec::new()),
                        cv: Condvar::new(),
                        sleeping: Cell::new(false),
                    })
                    .collect(),
                chunk,
                watchdog_period,
                metrics: SchedMetrics {
                    resumes: reg.counter("simmpi.sched.resumes"),
                    wakes_local: reg.counter("simmpi.sched.wakes_local"),
                    wakes_remote: reg.counter("simmpi.sched.wakes_remote"),
                    timeouts: reg.counter("simmpi.sched.timeouts"),
                },
                _slabs: slabs,
            })
        }

        /// Make a blocked task runnable. Callable from any thread; the
        /// CAS guarantees exactly one waker wins even when a sender races
        /// the deadline watchdog. Waking a task that is not blocked (the
        /// sender's channel hint can be stale for one round trip) is a
        /// harmless no-op.
        pub(crate) fn wake(&self, tid: u32) {
            let t = &self.tasks[tid as usize];
            if t.state
                .compare_exchange(BLOCKED, READY, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                return;
            }
            let home = tid as usize / self.chunk;
            // Same-worker fast path: a task waking its neighbour pushes
            // straight onto the home worker's local queue — no lock, no
            // condvar. This is the common case under block ownership
            // (stencil neighbours share a worker).
            let local = WORKER.with(|w| {
                let ctl = w.get();
                if !ctl.is_null() {
                    // SAFETY: installed by this thread's worker loop.
                    let ctl = unsafe { &*ctl };
                    if ctl.sched_id == self.id && ctl.index == home {
                        ctl.local.borrow_mut().push_back(tid);
                        return true;
                    }
                }
                false
            });
            if local {
                self.metrics.wakes_local.inc();
                return;
            }
            self.metrics.wakes_remote.inc();
            let ws = &self.workers[home];
            let mut inj = ws.injector.lock();
            inj.push(tid);
            let sleeping = ws.sleeping.get();
            drop(inj);
            if sleeping {
                ws.cv.notify_one();
            }
        }

        /// Spawn the worker pool, run every task to completion, join.
        /// `on_worker_exit` runs once per worker thread after its last
        /// task finishes (the buffer-magazine flush hook).
        pub(crate) fn run(self: &Arc<Self>, on_worker_exit: impl Fn() + Send + Sync + 'static) {
            let on_exit = Arc::new(on_worker_exit);
            let handles: Vec<_> = (0..self.workers.len())
                .map(|w| {
                    let sched = Arc::clone(self);
                    let on_exit = Arc::clone(&on_exit);
                    std::thread::Builder::new()
                        .name(format!("simmpi-worker-{w}"))
                        .spawn(move || {
                            sched.worker_main(w);
                            on_exit();
                        })
                        .expect("spawn simmpi worker")
                })
                .collect();
            for h in handles {
                if let Err(e) = h.join() {
                    let msg = e
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "<non-string panic>".to_string());
                    panic!("simmpi worker panicked: {msg}");
                }
            }
        }

        /// One worker: resume runnable owned tasks until all are done.
        fn worker_main(&self, index: usize) {
            let lo = index * self.chunk;
            let hi = (lo + self.chunk).min(self.tasks.len());
            let ctl = WorkerCtl {
                sched_id: self.id,
                index,
                sched_sp: Cell::new(std::ptr::null_mut()),
                local: RefCell::new((lo as u32..hi as u32).collect()),
                reason: Cell::new(Reason::Blocked),
            };
            WORKER.with(|w| w.set(&ctl as *const WorkerCtl));
            let mut live = hi - lo;
            // Busy workers still owe their blocked tasks a deadline scan
            // now and then; checking the clock every switch would be pure
            // overhead, so amortise it over batches of switches.
            let mut next_scan = Instant::now() + self.watchdog_period;
            let mut switches = 0u32;
            while live > 0 {
                let tid = ctl.local.borrow_mut().pop_front();
                match tid {
                    Some(tid) => {
                        let t = &self.tasks[tid as usize];
                        self.metrics.resumes.inc();
                        CURRENT.with(|c| c.set(t as *const Task));
                        // SAFETY: t.sp holds a context previously saved on
                        // (or planted in) this task's stack, and only this
                        // worker resumes it.
                        unsafe { hcft_simmpi_ctx_switch(ctl.sched_sp.as_ptr(), t.sp.get()) };
                        CURRENT.with(|c| c.set(std::ptr::null()));
                        // SAFETY: stack_lo points at this task's canary.
                        let canary = unsafe { (t.stack_lo as *const u64).read() };
                        assert!(
                            canary == STACK_CANARY,
                            "simmpi task stack overflow (rank {tid}): raise WorldConfig.stack_size"
                        );
                        if ctl.reason.get() == Reason::Done {
                            t.state.store(DONE, Ordering::Release);
                            live -= 1;
                        }
                        switches += 1;
                        if switches >= 1024 {
                            switches = 0;
                            let now = Instant::now();
                            if now >= next_scan {
                                next_scan = now + self.watchdog_period;
                                self.expire_deadlines(&ctl, lo, hi, now);
                            }
                        }
                    }
                    None => {
                        let ws = &self.workers[index];
                        let mut inj = ws.injector.lock();
                        loop {
                            if !inj.is_empty() {
                                ctl.local.borrow_mut().extend(inj.drain(..));
                                break;
                            }
                            drop(inj);
                            let now = Instant::now();
                            if self.expire_deadlines(&ctl, lo, hi, now) > 0 {
                                next_scan = now + self.watchdog_period;
                                inj = ws.injector.lock();
                                if !inj.is_empty() {
                                    ctl.local.borrow_mut().extend(inj.drain(..));
                                }
                                break;
                            }
                            inj = ws.injector.lock();
                            if !inj.is_empty() {
                                continue;
                            }
                            ws.sleeping.set(true);
                            let _ = ws
                                .cv
                                .wait_until(&mut inj, Instant::now() + self.watchdog_period);
                            ws.sleeping.set(false);
                        }
                    }
                }
            }
            WORKER.with(|w| w.set(std::ptr::null()));
        }

        /// Wake owned tasks whose receive deadline has passed, marking
        /// them timed out first so they resume on the deadlock path. Only
        /// the home worker calls this for its own range, so the deadline
        /// cells are safe to read.
        fn expire_deadlines(&self, ctl: &WorkerCtl, lo: usize, hi: usize, now: Instant) -> usize {
            let mut woken = 0;
            for tid in lo..hi {
                let t = &self.tasks[tid];
                if t.state.load(Ordering::Acquire) != BLOCKED {
                    continue;
                }
                let Some(deadline) = t.deadline.get() else {
                    continue;
                };
                if now < deadline {
                    continue;
                }
                if t.state
                    .compare_exchange(BLOCKED, READY, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    // Flag before queueing: this worker is the only one
                    // that pops its local queue, so the task cannot run
                    // before the flag is visible.
                    t.timed_out.set(true);
                    self.metrics.timeouts.inc();
                    ctl.local.borrow_mut().push_back(tid as u32);
                    woken += 1;
                }
            }
            woken
        }
    }
}

/// Stub for targets without the task engine: `current()` is always
/// `None` and the scheduler type is never instantiated (the runtime
/// resolves the engine to thread-per-rank when `SUPPORTED` is false).
#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
mod stub {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    pub(crate) struct TaskSched;

    pub(crate) struct CurrentTask;

    pub(crate) fn current() -> Option<CurrentTask> {
        None
    }

    impl CurrentTask {
        pub(crate) fn prepare_block(&self) {}
        pub(crate) fn block(&self, _deadline: Instant) {}
        pub(crate) fn take_timed_out(&self) -> bool {
            false
        }
    }

    impl TaskSched {
        pub(crate) fn new(
            _workers: usize,
            _stack_size: usize,
            _watchdog_period: Duration,
            _bodies: Vec<Box<dyn FnOnce() + Send>>,
        ) -> Arc<Self> {
            unreachable!("task engine unsupported on this target")
        }

        pub(crate) fn wake(&self, _tid: u32) {}

        pub(crate) fn run(self: &Arc<Self>, _on_worker_exit: impl Fn() + Send + Sync + 'static) {}
    }
}
