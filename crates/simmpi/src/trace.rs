//! Message tracing — the stand-in for the paper's modified MPICH2.
//!
//! Two views are recorded:
//! * a **byte matrix** over world ranks — this becomes Fig. 5a/5b and
//!   feeds every clustering metric;
//! * an optional **ordered event log per sender** carrying the
//!   application-defined *phase* (iteration / checkpoint epoch), which the
//!   message-logging replay simulation consumes.
//!
//! The matrix storage switches on world size. Up to
//! `SPARSE_THRESHOLD` ranks it is two dense `n²` atomic arrays
//! (contention-free because each cell is touched by a single sender at a
//! time in practice). Beyond that — the full-TSUBAME2 22k-rank run would
//! need ~9 GiB of dense counters for a matrix that is overwhelmingly
//! zeros (stencil + power-of-two collective edges are O(n log n)) — it
//! is one lock-striped hash map per sender, keyed by destination. The
//! sender-major striping preserves the dense layout's contention story:
//! a rank only ever locks its own row.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::runtime::FnvMap;
use hcft_graph::CommMatrix;
use parking_lot::Mutex;

/// World sizes above this record into per-sender sparse rows instead of
/// dense `n²` arrays. 4096 dense ranks cost 256 MiB of counters — fine;
/// the next doubling starts to hurt, and paper-scale runs (1088) stay
/// comfortably dense, keeping the hot path branch-predictable.
const SPARSE_THRESHOLD: usize = 4096;

/// One traced point-to-point message (collective steps decompose into
/// these too, exactly as a PMPI tracer would see them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageEvent {
    /// Sender world rank.
    pub src: u32,
    /// Receiver world rank.
    pub dst: u32,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Message tag (collective-internal tags have the top bits set).
    pub tag: u32,
    /// Application phase at send time (see [`crate::Comm::set_phase`]).
    pub phase: u64,
}

/// Matrix storage: dense atomics below `SPARSE_THRESHOLD`, per-sender
/// sparse rows above.
enum Cells {
    Dense {
        bytes: Vec<AtomicU64>,
        msgs: Vec<AtomicU64>,
    },
    /// `rows[src]` maps destination → (bytes, msgs).
    Sparse(Vec<Mutex<FnvMap<u32, (u64, u64)>>>),
}

/// Concurrent trace sink shared by all ranks of a [`crate::World`].
pub struct TraceRecorder {
    n: usize,
    cells: Cells,
    events: Option<Vec<Mutex<Vec<MessageEvent>>>>,
    enabled: AtomicBool,
}

impl TraceRecorder {
    /// A recorder over `n` world ranks. `with_events` additionally keeps
    /// the per-sender ordered event log (costs memory proportional to the
    /// message count).
    pub fn new(n: usize, with_events: bool) -> Self {
        let cells = if n <= SPARSE_THRESHOLD {
            Cells::Dense {
                bytes: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
                msgs: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
            }
        } else {
            Cells::Sparse((0..n).map(|_| Mutex::new(FnvMap::default())).collect())
        };
        TraceRecorder {
            n,
            cells,
            events: with_events.then(|| (0..n).map(|_| Mutex::new(Vec::new())).collect()),
            enabled: AtomicBool::new(true),
        }
    }

    /// Number of world ranks covered.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Pause/resume recording (e.g. to exclude a warm-up phase).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// Record one message. Called by the runtime on every send.
    pub fn record(&self, ev: MessageEvent) {
        if !self.enabled.load(Ordering::Acquire) {
            return;
        }
        match &self.cells {
            Cells::Dense { bytes, msgs } => {
                let cell = ev.src as usize * self.n + ev.dst as usize;
                bytes[cell].fetch_add(ev.bytes, Ordering::Relaxed);
                msgs[cell].fetch_add(1, Ordering::Relaxed);
            }
            Cells::Sparse(rows) => {
                let e = &mut *rows[ev.src as usize].lock();
                let slot = e.entry(ev.dst).or_insert((0, 0));
                slot.0 += ev.bytes;
                slot.1 += 1;
            }
        }
        if let Some(logs) = &self.events {
            logs[ev.src as usize].lock().push(ev);
        }
    }

    /// Visit every non-zero cell as `(src, dst, bytes, msgs)`. Sparse
    /// rows iterate in hash order; callers that need determinism (CSV
    /// emission) sort or re-grid downstream, and the dense path feeds
    /// [`CommMatrix`] which is order-insensitive.
    pub fn for_each_cell(&self, mut f: impl FnMut(usize, usize, u64, u64)) {
        match &self.cells {
            Cells::Dense { bytes, msgs } => {
                for s in 0..self.n {
                    for d in 0..self.n {
                        let b = bytes[s * self.n + d].load(Ordering::Relaxed);
                        let c = msgs[s * self.n + d].load(Ordering::Relaxed);
                        if b > 0 || c > 0 {
                            f(s, d, b, c);
                        }
                    }
                }
            }
            Cells::Sparse(rows) => {
                for (s, row) in rows.iter().enumerate() {
                    for (&d, &(b, c)) in row.lock().iter() {
                        f(s, d as usize, b, c);
                    }
                }
            }
        }
    }

    /// Snapshot the byte matrix.
    pub fn byte_matrix(&self) -> CommMatrix {
        let mut m = CommMatrix::new(self.n);
        self.for_each_cell(|s, d, b, _| {
            if b > 0 {
                m.add(s, d, b);
            }
        });
        m
    }

    /// Snapshot the message-count matrix.
    pub fn count_matrix(&self) -> CommMatrix {
        let mut m = CommMatrix::new(self.n);
        self.for_each_cell(|s, d, _, c| {
            if c > 0 {
                m.add(s, d, c);
            }
        });
        m
    }

    /// Total traced bytes.
    pub fn total_bytes(&self) -> u64 {
        let mut t = 0;
        self.for_each_cell(|_, _, b, _| t += b);
        t
    }

    /// Total traced messages.
    pub fn total_messages(&self) -> u64 {
        let mut t = 0;
        self.for_each_cell(|_, _, _, c| t += c);
        t
    }

    /// Drain the ordered event logs (sender-major). Empty if the recorder
    /// was built without event logging.
    pub fn take_events(&self) -> Vec<Vec<MessageEvent>> {
        match &self.events {
            None => Vec::new(),
            Some(logs) => logs
                .iter()
                .map(|l| std::mem::take(&mut *l.lock()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: u32, dst: u32, bytes: u64) -> MessageEvent {
        MessageEvent {
            src,
            dst,
            bytes,
            tag: 0,
            phase: 0,
        }
    }

    #[test]
    fn records_bytes_and_counts() {
        let t = TraceRecorder::new(3, false);
        t.record(ev(0, 1, 10));
        t.record(ev(0, 1, 5));
        t.record(ev(2, 0, 7));
        let b = t.byte_matrix();
        assert_eq!(b.get(0, 1), 15);
        assert_eq!(b.get(2, 0), 7);
        assert_eq!(t.count_matrix().get(0, 1), 2);
        assert_eq!(t.total_bytes(), 22);
        assert_eq!(t.total_messages(), 3);
    }

    #[test]
    fn sparse_recorder_matches_dense_semantics() {
        // One rank past the threshold flips to sparse rows; the
        // observable API must not change.
        let t = TraceRecorder::new(SPARSE_THRESHOLD + 1, false);
        assert!(matches!(t.cells, Cells::Sparse(_)));
        t.record(ev(0, 1, 10));
        t.record(ev(0, 1, 5));
        t.record(ev(4096, 0, 7));
        let b = t.byte_matrix();
        assert_eq!(b.get(0, 1), 15);
        assert_eq!(b.get(4096, 0), 7);
        assert_eq!(t.count_matrix().get(0, 1), 2);
        assert_eq!(t.total_bytes(), 22);
        assert_eq!(t.total_messages(), 3);
        let mut cells = Vec::new();
        t.for_each_cell(|s, d, bytes, msgs| cells.push((s, d, bytes, msgs)));
        cells.sort_unstable();
        assert_eq!(cells, vec![(0, 1, 15, 2), (4096, 0, 7, 1)]);
    }

    #[test]
    fn disable_suppresses_recording() {
        let t = TraceRecorder::new(2, false);
        t.record(ev(0, 1, 1));
        t.set_enabled(false);
        t.record(ev(0, 1, 100));
        t.set_enabled(true);
        t.record(ev(0, 1, 2));
        assert_eq!(t.total_bytes(), 3);
    }

    #[test]
    fn event_log_preserves_sender_order() {
        let t = TraceRecorder::new(2, true);
        t.record(MessageEvent {
            src: 0,
            dst: 1,
            bytes: 1,
            tag: 9,
            phase: 3,
        });
        t.record(ev(0, 1, 2));
        let logs = t.take_events();
        assert_eq!(logs[0].len(), 2);
        assert_eq!(logs[0][0].tag, 9);
        assert_eq!(logs[0][0].phase, 3);
        assert_eq!(logs[0][1].bytes, 2);
        assert!(logs[1].is_empty());
        // Drained.
        assert!(t.take_events()[0].is_empty());
    }

    #[test]
    fn no_event_log_when_disabled_at_construction() {
        let t = TraceRecorder::new(2, false);
        t.record(ev(0, 1, 1));
        assert!(t.take_events().is_empty());
    }
}
