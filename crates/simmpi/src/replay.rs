//! Replay-mode message sourcing: run a world in which some ranks are
//! *dead* and their logged sends are served from a pre-recorded feed.
//!
//! This is the runtime half of the hybrid protocol's recovery story
//! (`hcft-msglog` holds the logging half): after an L1 cluster is lost,
//! the restored ranks re-execute from their last checkpoint inside a
//! *replay world* where
//!
//! * ranks **outside** the restart set do not run at all (their bodies
//!   return immediately — the survivors are parked at the failure
//!   frontier, not re-executing),
//! * a **receive** from a dead (non-live) rank is served from the
//!   [`ReplayFeed`] — the sender-side logs the survivors kept — in the
//!   exact per-channel FIFO order the original sends were recorded, and
//! * a **send** to a dead rank is suppressed: the original delivery
//!   already happened in the pre-failure world, so re-delivering it
//!   would duplicate the message. (This models receiver-side duplicate
//!   suppression via sequence numbers in a real MPI.)
//!
//! Send determinism makes this sound: a restored rank re-executing from
//! the checkpoint issues the same sends with the same payloads, so
//! suppressed sends are bit-identical to messages the survivors already
//! consumed, and fed receives are bit-identical to what a live sender
//! would have produced.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::Mutex;

use crate::runtime::FnvMap;

/// Per-destination channel key inside a feed: (source world rank, tag).
type FeedKey = (u32, u32);

/// Logged messages to serve during replay, bucketed per destination rank
/// and keyed by (source, tag) — the same channel granularity the live
/// mailboxes use, so per-channel FIFO order is preserved by construction.
///
/// Build one by pushing entries in the order the *sender* recorded them
/// (sender logs are already in send order); pushes for distinct channels
/// are independent, matching the runtime's ordering guarantees.
#[derive(Default)]
pub struct ReplayFeed {
    per_dst: Vec<FnvMap<FeedKey, VecDeque<Bytes>>>,
    messages: u64,
    bytes: u64,
}

impl ReplayFeed {
    /// An empty feed for a world of `n` ranks.
    pub fn new(n: usize) -> Self {
        ReplayFeed {
            per_dst: (0..n).map(|_| FnvMap::default()).collect(),
            messages: 0,
            bytes: 0,
        }
    }

    /// Append a logged payload for `dst` on channel (`src`, `tag`).
    pub fn push(&mut self, src: u32, dst: u32, tag: u32, payload: Bytes) {
        self.messages += 1;
        self.bytes += payload.len() as u64;
        self.per_dst[dst as usize]
            .entry((src, tag))
            .or_default()
            .push_back(payload);
    }

    /// Total messages pushed.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total payload bytes pushed.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// A replay-world specification: which ranks run live, and the logged
/// messages standing in for the dead ones.
pub struct ReplayPlan {
    /// `live[r]` — whether world rank `r` executes its body. Dead ranks'
    /// sends into live ranks must be covered by `feed`.
    pub live: Vec<bool>,
    /// Logged messages served for receives from non-live ranks.
    pub feed: ReplayFeed,
}

/// Shared replay state installed on a world by
/// [`crate::World::run_replay`]. Checked on the send/recv hot path only
/// when present (`Option` in `Shared`), so normal worlds pay one branch.
pub(crate) struct ReplayState {
    pub(crate) live: Vec<bool>,
    /// Remaining feed entries, per destination rank. One mutex per dst:
    /// only that rank's body pops from it, so contention is nil; the lock
    /// exists for `Sync`.
    feeds: Vec<Mutex<FnvMap<FeedKey, VecDeque<Bytes>>>>,
    /// Messages served from the feed.
    pub(crate) fed_messages: AtomicU64,
    /// Payload bytes served from the feed.
    pub(crate) fed_bytes: AtomicU64,
    /// Sends to non-live ranks that were suppressed as duplicates.
    pub(crate) suppressed_sends: AtomicU64,
}

impl ReplayState {
    pub(crate) fn new(plan: ReplayPlan) -> Self {
        let ReplayPlan { live, feed } = plan;
        assert_eq!(
            live.len(),
            feed.per_dst.len(),
            "replay plan: live mask and feed must cover the same world size"
        );
        ReplayState {
            live,
            feeds: feed.per_dst.into_iter().map(Mutex::new).collect(),
            fed_messages: AtomicU64::new(0),
            fed_bytes: AtomicU64::new(0),
            suppressed_sends: AtomicU64::new(0),
        }
    }

    /// Serve the next logged message on channel (`src`, `tag`) for `dst`.
    ///
    /// # Panics
    /// If the feed has no message left on the channel: the restored rank
    /// expected a send the survivors never logged — a protocol violation
    /// (the message crossed a cluster boundary without being logged, or
    /// replay ran past the failure frontier).
    pub(crate) fn serve(&self, dst: usize, src: u32, tag: u32) -> Bytes {
        let msg = self.feeds[dst]
            .lock()
            .get_mut(&(src, tag))
            .and_then(|q| q.pop_front());
        match msg {
            Some(payload) => {
                self.fed_messages.fetch_add(1, Ordering::Relaxed);
                self.fed_bytes
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                payload
            }
            None => panic!(
                "replay feed exhausted: rank {dst} expected a logged message from \
                 dead rank {src} (tag {tag:#x}) — protocol violation: the send was \
                 never logged, or replay ran past the failure frontier"
            ),
        }
    }

    /// Messages still unserved (should be zero after a complete replay).
    pub(crate) fn leftover(&self) -> u64 {
        self.feeds
            .iter()
            .map(|f| f.lock().values().map(|q| q.len() as u64).sum::<u64>())
            .sum()
    }
}

/// A finished replay-world run.
pub struct ReplayWorldResult<T> {
    /// Per-rank outputs: `Some` for live ranks, `None` for dead ones.
    pub outputs: Vec<Option<T>>,
    /// The recorded communication trace (live ranks' traffic only).
    pub trace: std::sync::Arc<crate::TraceRecorder>,
    /// Messages served from the feed in place of dead senders.
    pub fed_messages: u64,
    /// Payload bytes served from the feed.
    pub fed_bytes: u64,
    /// Sends to dead ranks suppressed as already-delivered duplicates.
    pub suppressed_sends: u64,
    /// Feed messages never requested (non-zero means the plan over-fed —
    /// e.g. log entries past the replay frontier were included).
    pub leftover_messages: u64,
}
