//! Collective operations, implemented with the algorithms MPICH2 uses.
//!
//! The choice of algorithm matters here beyond performance: the paper's
//! Fig. 5b identifies "diagonals … starting from processes with a
//! power-of-two rank" as the MPICH2 `MPI_Allgather` signature. Those
//! diagonals come from the power-of-two partner distances of recursive
//! doubling (power-of-two communicators) and Bruck's algorithm (everything
//! else), so that is what we implement. All collective-internal traffic
//! flows through the ordinary traced point-to-point layer.

use crate::comm::Comm;
use crate::datatype::{decode, encode, Datum};

/// Tally one collective invocation in the global telemetry registry:
/// `simmpi.<op>.calls` and `simmpi.<op>.bytes` (the caller's contributed
/// payload, not the algorithm's internal traffic — the trace matrices
/// already capture wire bytes).
fn tally(op: &str, bytes: u64) {
    let reg = hcft_telemetry::Registry::global();
    reg.counter(&format!("simmpi.{op}.calls")).inc();
    reg.counter(&format!("simmpi.{op}.bytes")).add(bytes);
}

/// Contributed payload size of a typed slice.
fn payload_bytes<T: Datum>(xs: &[T]) -> u64 {
    (xs.len() * T::WIDTH) as u64
}

// Reserved tag blocks (above MAX_USER_TAG).
const TAG_BARRIER: u32 = 0xC100_0000;
const TAG_ALLGATHER: u32 = 0xC200_0000;
const TAG_ALLREDUCE: u32 = 0xC300_0000;
const TAG_BCAST: u32 = 0xC400_0000;
const TAG_GATHER: u32 = 0xC500_0000;
const TAG_ALLTOALL: u32 = 0xC600_0000;
const TAG_REDUCE: u32 = 0xC700_0000;

impl Comm {
    /// Dissemination barrier: ⌈log₂ n⌉ rounds, rank r signals r+2ᵏ and
    /// waits for r−2ᵏ.
    pub fn barrier(&self) {
        tally("barrier", 0);
        let n = self.size();
        let mut k = 0u32;
        let mut dist = 1usize;
        while dist < n {
            let to = (self.rank() + dist) % n;
            let from = (self.rank() + n - dist) % n;
            self.send_raw(to, TAG_BARRIER | k, self.pooled_from(&[0]));
            let token = self.recv_raw(from, TAG_BARRIER | k);
            self.recycle(token);
            dist <<= 1;
            k += 1;
        }
    }

    /// Allgather: every rank contributes `mine` (same length everywhere)
    /// and receives the concatenation in rank order. Uses recursive
    /// doubling when `size` is a power of two, Bruck's algorithm
    /// otherwise — the MPICH2 short-message strategy.
    pub fn allgather<T: Datum>(&self, mine: &[T]) -> Vec<T> {
        tally("allgather", payload_bytes(mine));
        let n = self.size();
        if n == 1 {
            return mine.to_vec();
        }
        if n.is_power_of_two() {
            self.allgather_recursive_doubling(mine)
        } else {
            self.allgather_bruck(mine)
        }
    }

    /// Recursive doubling (power-of-two sizes): at step k exchange all
    /// currently held blocks with partner `rank XOR 2^k`.
    ///
    /// All n blocks live in one flat byte buffer (every rank contributes
    /// the same encoded width, so block i sits at `i * blk`), and each
    /// step ships a single contiguous slice of it with no framing — the
    /// wire carries exactly the payload bytes. At 22k+ ranks this is the
    /// difference between one buffer per call and hundreds of millions
    /// of per-block `Vec`s across the init allgathers.
    fn allgather_recursive_doubling<T: Datum>(&self, mine: &[T]) -> Vec<T> {
        let n = self.size();
        let rank = self.rank();
        let blk = mine.len() * T::WIDTH;
        let mut flat = vec![0u8; n * blk];
        crate::datatype::encode_to_slice(mine, &mut flat[rank * blk..(rank + 1) * blk]);
        let mut dist = 1usize;
        let mut step = 0u32;
        while dist < n {
            let partner = rank ^ dist;
            // My "corner" of the butterfly owns the contiguous block
            // range base..base+2*dist; I hold the half my dist-bit
            // selects, the partner holds — and sends — the other half.
            let base = rank & !(2 * dist - 1);
            let (my_lo, their_lo) = if rank & dist == 0 {
                (base, base + dist)
            } else {
                (base + dist, base)
            };
            self.send_raw(
                partner,
                TAG_ALLGATHER | step,
                self.pooled_from(&flat[my_lo * blk..(my_lo + dist) * blk]),
            );
            let recv = self.recv_raw(partner, TAG_ALLGATHER | step);
            flat[their_lo * blk..(their_lo + dist) * blk].copy_from_slice(&recv);
            self.recycle(recv);
            dist <<= 1;
            step += 1;
        }
        decode(&flat)
    }

    /// Bruck's allgather (any size): step k sends the first
    /// `min(2^k, n − 2^k)` held blocks to `rank − 2^k` and receives from
    /// `rank + 2^k`; a final rotation restores rank order.
    ///
    /// Same flat-buffer discipline as recursive doubling: block j of the
    /// buffer is the contribution of rank `(rank + j) mod n`, the blocks
    /// held so far are always a prefix, and each step ships that prefix
    /// (or the part of it still needed) unframed. The closing rotation
    /// is a single `rotate_right` on the byte buffer.
    fn allgather_bruck<T: Datum>(&self, mine: &[T]) -> Vec<T> {
        let n = self.size();
        let rank = self.rank();
        let blk = mine.len() * T::WIDTH;
        let mut flat = vec![0u8; n * blk];
        crate::datatype::encode_to_slice(mine, &mut flat[..blk]);
        let mut have = 1usize;
        let mut dist = 1usize;
        let mut step = 0u32;
        while have < n {
            let to = (rank + n - dist) % n;
            let from = (rank + dist) % n;
            let cnt = have.min(n - have);
            self.send_raw(
                to,
                TAG_ALLGATHER | step,
                self.pooled_from(&flat[..cnt * blk]),
            );
            let recv = self.recv_raw(from, TAG_ALLGATHER | step);
            flat[have * blk..(have + cnt) * blk].copy_from_slice(&recv);
            self.recycle(recv);
            have += cnt;
            dist <<= 1;
            step += 1;
        }
        // Block j belongs to rank (rank + j) mod n → rotate into order.
        flat.rotate_right(rank * blk);
        decode(&flat)
    }

    /// Ring allgather (the MPICH2 long-message algorithm). Exposed for the
    /// ablation benches; produces nearest-neighbour traffic instead of
    /// power-of-two diagonals.
    pub fn allgather_ring<T: Datum>(&self, mine: &[T]) -> Vec<T> {
        tally("allgather_ring", payload_bytes(mine));
        let n = self.size();
        let rank = self.rank();
        let mut have: Vec<Option<bytes::Bytes>> = vec![None; n];
        have[rank] = Some(self.encode_pooled(mine));
        let next = (rank + 1) % n;
        let prev = (rank + n - 1) % n;
        let mut cursor = rank;
        for step in 0..(n - 1) as u32 {
            // Forwarding a held block is a refcount bump, not a copy.
            let payload = have[cursor].clone().expect("held block");
            self.send_raw(next, TAG_ALLGATHER | 0x8000 | step, payload);
            let recv = self.recv_raw(prev, TAG_ALLGATHER | 0x8000 | step);
            cursor = (cursor + n - 1) % n;
            have[cursor] = Some(recv);
        }
        let mut out = Vec::new();
        for b in have {
            out.extend(decode::<T>(&b.expect("ring complete")));
        }
        out
    }

    /// Allreduce with an element-wise operation (recursive doubling, with
    /// the MPICH2 pre/post phase folding non-power-of-two stragglers into
    /// the nearest power of two).
    pub fn allreduce<T: Datum, F>(&self, mine: &[T], op: F) -> Vec<T>
    where
        F: Fn(T, T) -> T,
    {
        tally("allreduce", payload_bytes(mine));
        let n = self.size();
        let rank = self.rank();
        let mut acc = mine.to_vec();
        if n == 1 {
            return acc;
        }
        let m = usize::BITS - 1 - n.leading_zeros(); // floor(log2 n)
        let pof2 = 1usize << m;
        let rem = n - pof2;
        let reduce_in = |acc: &mut Vec<T>, bytes: &[u8], op: &F| {
            let theirs = decode::<T>(bytes);
            assert_eq!(theirs.len(), acc.len(), "allreduce length mismatch");
            for (a, b) in acc.iter_mut().zip(theirs) {
                *a = op(*a, b);
            }
        };
        // Phase 1: ranks < 2*rem pair up; odd ranks absorb even ranks.
        let newrank = if rank < 2 * rem {
            if rank.is_multiple_of(2) {
                self.send_raw(rank + 1, TAG_ALLREDUCE, self.encode_pooled(&acc));
                None
            } else {
                let b = self.recv_raw(rank - 1, TAG_ALLREDUCE);
                reduce_in(&mut acc, &b, &op);
                self.recycle(b);
                Some(rank / 2)
            }
        } else {
            Some(rank - rem)
        };
        // Phase 2: recursive doubling among pof2 participants.
        if let Some(nr) = newrank {
            let mut dist = 1usize;
            let mut step = 1u32;
            while dist < pof2 {
                let partner_nr = nr ^ dist;
                let partner = if partner_nr < rem {
                    partner_nr * 2 + 1
                } else {
                    partner_nr + rem
                };
                self.send_raw(partner, TAG_ALLREDUCE | step, self.encode_pooled(&acc));
                let b = self.recv_raw(partner, TAG_ALLREDUCE | step);
                reduce_in(&mut acc, &b, &op);
                self.recycle(b);
                dist <<= 1;
                step += 1;
            }
        }
        // Phase 3: hand results back to the absorbed even ranks.
        if rank < 2 * rem {
            if rank % 2 == 1 {
                self.send_raw(rank - 1, TAG_ALLREDUCE | 0xFF, self.encode_pooled(&acc));
            } else {
                let b = self.recv_raw(rank + 1, TAG_ALLREDUCE | 0xFF);
                acc = decode(&b);
                self.recycle(b);
            }
        }
        acc
    }

    /// Element-wise sum allreduce for f64 — the common HPC reduction.
    pub fn allreduce_sum(&self, mine: &[f64]) -> Vec<f64> {
        self.allreduce(mine, |a, b| a + b)
    }

    /// Maximum allreduce for f64 (CFL time-step computation etc.).
    pub fn allreduce_max(&self, mine: &[f64]) -> Vec<f64> {
        self.allreduce(mine, f64::max)
    }

    /// Binomial-tree broadcast from `root`.
    pub fn bcast<T: Datum>(&self, root: usize, data: &mut Vec<T>) {
        tally("bcast", payload_bytes(data));
        let n = self.size();
        if n == 1 {
            return;
        }
        let rank = self.rank();
        let vrank = (rank + n - root) % n;
        let mut mask = 1usize;
        while mask < n {
            if vrank & mask != 0 {
                let src = (vrank - mask + root) % n;
                let b = self.recv_raw(src, TAG_BCAST);
                *data = decode(&b);
                self.recycle(b);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank & mask == 0 && vrank + mask < n {
                let dst = (vrank + mask + root) % n;
                self.send_raw(dst, TAG_BCAST, self.encode_pooled(data));
            }
            mask >>= 1;
        }
    }

    /// Linear gather to `root`: returns `Some(concatenation)` at the root,
    /// `None` elsewhere.
    pub fn gather<T: Datum>(&self, root: usize, mine: &[T]) -> Option<Vec<T>> {
        tally("gather", payload_bytes(mine));
        let n = self.size();
        if self.rank() == root {
            let mut out = Vec::with_capacity(n * mine.len());
            for src in 0..n {
                if src == root {
                    out.extend_from_slice(mine);
                } else {
                    let b = self.recv_raw(src, TAG_GATHER);
                    out.extend(decode::<T>(&b));
                    self.recycle(b);
                }
            }
            Some(out)
        } else {
            self.send_raw(root, TAG_GATHER, self.encode_pooled(mine));
            None
        }
    }

    /// Reduce to `root` with an element-wise op (linear reference
    /// algorithm; the hot path in this codebase is allreduce).
    pub fn reduce<T: Datum, F>(&self, root: usize, mine: &[T], op: F) -> Option<Vec<T>>
    where
        F: Fn(T, T) -> T,
    {
        tally("reduce", payload_bytes(mine));
        let n = self.size();
        if self.rank() == root {
            let mut acc = mine.to_vec();
            for src in 0..n {
                if src == root {
                    continue;
                }
                let raw = self.recv_raw(src, TAG_REDUCE);
                let theirs = decode::<T>(&raw);
                self.recycle(raw);
                for (a, b) in acc.iter_mut().zip(theirs) {
                    *a = op(*a, b);
                }
            }
            Some(acc)
        } else {
            self.send_raw(root, TAG_REDUCE, self.encode_pooled(mine));
            None
        }
    }

    /// Pairwise all-to-all personalised exchange: `sends[d]` goes to rank
    /// `d`; returns the vector received from each rank.
    pub fn alltoall<T: Datum>(&self, sends: &[Vec<T>]) -> Vec<Vec<T>> {
        tally("alltoall", sends.iter().map(|s| payload_bytes(s)).sum());
        let n = self.size();
        assert_eq!(sends.len(), n, "alltoall needs one buffer per rank");
        let rank = self.rank();
        let mut recvs: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        recvs[rank] = sends[rank].clone();
        for step in 1..n {
            let to = (rank + step) % n;
            let from = (rank + n - step) % n;
            self.send_raw(
                to,
                TAG_ALLTOALL | step as u32,
                self.encode_pooled(&sends[to]),
            );
            let raw = self.recv_raw(from, TAG_ALLTOALL | step as u32);
            recvs[from] = decode(&raw);
            self.recycle(raw);
        }
        recvs
    }
}

// ---------------------------------------------------------------------
// Variable-size and prefix collectives.
// ---------------------------------------------------------------------

const TAG_ALLGATHERV: u32 = 0xC800_0000;
const TAG_SCATTER: u32 = 0xC900_0000;
const TAG_SCAN: u32 = 0xCA00_0000;

impl Comm {
    /// Allgatherv: every rank contributes a slice of *any* length; the
    /// result holds each rank's contribution separately, in rank order.
    /// Ring-based (the robust MPICH2 choice for irregular sizes).
    pub fn allgatherv<T: Datum>(&self, mine: &[T]) -> Vec<Vec<T>> {
        tally("allgatherv", payload_bytes(mine));
        let n = self.size();
        let rank = self.rank();
        let mut have: Vec<Option<bytes::Bytes>> = vec![None; n];
        have[rank] = Some(self.encode_pooled(mine));
        if n > 1 {
            let next = (rank + 1) % n;
            let prev = (rank + n - 1) % n;
            let mut cursor = rank;
            for step in 0..(n - 1) as u32 {
                // Refcount-bump forward, no copy.
                let payload = have[cursor].clone().expect("held block");
                self.send_raw(next, TAG_ALLGATHERV | step, payload);
                let recv = self.recv_raw(prev, TAG_ALLGATHERV | step);
                cursor = (cursor + n - 1) % n;
                have[cursor] = Some(recv);
            }
        }
        have.into_iter()
            .map(|b| decode(&b.expect("ring complete")))
            .collect()
    }

    /// Scatter: the root splits `data` into `size` equal chunks; rank i
    /// receives chunk i. Non-roots pass `None`.
    ///
    /// # Panics
    /// Panics if the root's data length is not divisible by the
    /// communicator size, or if a non-root passes data.
    pub fn scatter<T: Datum>(&self, root: usize, data: Option<&[T]>) -> Vec<T> {
        tally("scatter", data.map(payload_bytes).unwrap_or(0));
        let n = self.size();
        if self.rank() == root {
            let data = data.expect("root provides data");
            assert!(
                data.len().is_multiple_of(n),
                "scatter data ({}) not divisible by {n}",
                data.len()
            );
            let chunk = data.len() / n;
            for dst in 0..n {
                if dst != root {
                    self.send_raw(
                        dst,
                        TAG_SCATTER,
                        encode(&data[dst * chunk..(dst + 1) * chunk]),
                    );
                }
            }
            data[root * chunk..(root + 1) * chunk].to_vec()
        } else {
            assert!(data.is_none(), "only the root provides data");
            decode(&self.recv_raw(root, TAG_SCATTER))
        }
    }

    /// Inclusive prefix scan: rank i receives `op` folded over the
    /// contributions of ranks 0..=i, element-wise. Linear chain
    /// (latency-optimal variants exist; this is the reference algorithm).
    pub fn scan<T: Datum, F>(&self, mine: &[T], op: F) -> Vec<T>
    where
        F: Fn(T, T) -> T,
    {
        tally("scan", payload_bytes(mine));
        let rank = self.rank();
        let mut acc = mine.to_vec();
        if rank > 0 {
            let b = self.recv_raw(rank - 1, TAG_SCAN);
            let prev = decode::<T>(&b);
            self.recycle(b);
            assert_eq!(prev.len(), acc.len(), "scan length mismatch");
            for (a, p) in acc.iter_mut().zip(prev) {
                *a = op(p, *a);
            }
        }
        if rank + 1 < self.size() {
            self.send_raw(rank + 1, TAG_SCAN, self.encode_pooled(&acc));
        }
        acc
    }
}

#[cfg(test)]
mod v_tests {
    use crate::runtime::World;

    #[test]
    fn allgatherv_handles_ragged_sizes() {
        let r = World::run(5, |c| {
            let mine: Vec<u64> = (0..c.rank() as u64 + 1).collect();
            c.allgatherv(&mine)
        });
        for out in r.outputs {
            assert_eq!(out.len(), 5);
            for (rank, chunk) in out.iter().enumerate() {
                assert_eq!(chunk, &(0..rank as u64 + 1).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn allgatherv_with_empty_contributions() {
        let r = World::run(3, |c| {
            let mine: Vec<f64> = if c.rank() == 1 {
                vec![]
            } else {
                vec![c.rank() as f64]
            };
            c.allgatherv(&mine)
        });
        assert_eq!(r.outputs[0], vec![vec![0.0], vec![], vec![2.0]]);
    }

    #[test]
    fn scatter_distributes_chunks() {
        let r = World::run(4, |c| {
            let data: Option<Vec<u32>> = (c.rank() == 2).then(|| (0..8).collect());
            c.scatter(2, data.as_deref())
        });
        for (rank, out) in r.outputs.iter().enumerate() {
            assert_eq!(out, &vec![2 * rank as u32, 2 * rank as u32 + 1]);
        }
    }

    #[test]
    fn scan_computes_inclusive_prefix() {
        let r = World::run(5, |c| c.scan(&[c.rank() as u64 + 1], |a, b| a + b));
        let prefix: Vec<u64> = r.outputs.iter().map(|v| v[0]).collect();
        assert_eq!(prefix, vec![1, 3, 6, 10, 15]);
    }

    #[test]
    fn scan_with_non_commutative_op_respects_rank_order() {
        // op = keep-left composed in rank order: result at rank i is
        // rank 0's value.
        let r = World::run(4, |c| c.scan(&[c.rank() as u64 + 7], |a, _b| a));
        for out in r.outputs {
            assert_eq!(out, vec![7]);
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn scatter_rejects_ragged_data() {
        // Short watchdog: the non-root ranks block on the never-sent
        // chunks while the root's panic propagates.
        let cfg = crate::runtime::WorldConfig {
            recv_timeout: std::time::Duration::from_millis(100),
            ..Default::default()
        };
        World::run_with(3, cfg, |c| {
            let data: Option<Vec<u32>> = (c.rank() == 0).then(|| (0..7).collect());
            c.scatter(0, data.as_deref());
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::{World, WorldConfig};

    fn expected_allgather(n: usize) -> Vec<u64> {
        (0..n as u64).flat_map(|r| [r * 10, r * 10 + 1]).collect()
    }

    fn run_allgather(n: usize) {
        let r = World::run(n, move |c| {
            let me = c.rank() as u64 * 10;
            c.allgather(&[me, me + 1])
        });
        for out in r.outputs {
            assert_eq!(out, expected_allgather(n));
        }
    }

    #[test]
    fn allgather_power_of_two() {
        run_allgather(8);
    }

    #[test]
    fn allgather_non_power_of_two() {
        run_allgather(6);
        run_allgather(17); // the paper's ranks-per-node count
    }

    #[test]
    fn allgather_single_rank() {
        run_allgather(1);
    }

    #[test]
    fn allgather_ring_matches() {
        let r = World::run(5, |c| {
            let me = c.rank() as u64 * 10;
            c.allgather_ring(&[me, me + 1])
        });
        for out in r.outputs {
            assert_eq!(out, expected_allgather(5));
        }
    }

    #[test]
    fn recursive_doubling_traffic_uses_pow2_distances() {
        let r = World::run(8, |c| {
            c.allgather(&[c.rank() as u64]);
        });
        let m = r.trace.byte_matrix();
        for (s, d, _) in m.entries() {
            let dist = s.abs_diff(d);
            assert!(
                dist.is_power_of_two(),
                "unexpected edge {s}->{d} (distance {dist})"
            );
        }
    }

    #[test]
    fn bruck_traffic_uses_pow2_distances_mod_n() {
        let r = World::run(6, |c| {
            c.allgather(&[c.rank() as u64]);
        });
        let m = r.trace.byte_matrix();
        for (s, d, _) in m.entries() {
            let fwd = (d + 6 - s) % 6;
            let back = (s + 6 - d) % 6;
            assert!(
                fwd.is_power_of_two() || back.is_power_of_two(),
                "unexpected edge {s}->{d}"
            );
        }
    }

    #[test]
    fn allreduce_sum_all_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 12] {
            let r = World::run(n, |c| c.allreduce_sum(&[c.rank() as f64, 1.0]));
            let expect = vec![(0..n).sum::<usize>() as f64, n as f64];
            for (rank, out) in r.outputs.iter().enumerate() {
                assert_eq!(out, &expect, "n={n} rank={rank}");
            }
        }
    }

    #[test]
    fn allreduce_max() {
        let r = World::run(5, |c| {
            c.allreduce_max(&[-(c.rank() as f64), c.rank() as f64])
        });
        for out in r.outputs {
            assert_eq!(out, vec![0.0, 4.0]);
        }
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..5 {
            let r = World::run(5, move |c| {
                let mut v = if c.rank() == root {
                    vec![3.5f64, 4.5]
                } else {
                    Vec::new()
                };
                c.bcast(root, &mut v);
                v
            });
            for out in r.outputs {
                assert_eq!(out, vec![3.5, 4.5]);
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let r = World::run(4, |c| c.gather(2, &[c.rank() as u32]));
        for (rank, out) in r.outputs.iter().enumerate() {
            if rank == 2 {
                assert_eq!(out.as_deref(), Some(&[0u32, 1, 2, 3][..]));
            } else {
                assert!(out.is_none());
            }
        }
    }

    #[test]
    fn reduce_applies_op_at_root() {
        let r = World::run(4, |c| c.reduce(0, &[c.rank() as u64 + 1], |a, b| a * b));
        assert_eq!(r.outputs[0].as_deref(), Some(&[24u64][..]));
    }

    #[test]
    fn alltoall_transposes() {
        let n = 4;
        let r = World::run(n, move |c| {
            let sends: Vec<Vec<u64>> = (0..n).map(|d| vec![(c.rank() * 100 + d) as u64]).collect();
            c.alltoall(&sends)
        });
        for (rank, out) in r.outputs.iter().enumerate() {
            for (src, v) in out.iter().enumerate() {
                assert_eq!(v, &vec![(src * 100 + rank) as u64]);
            }
        }
    }

    #[test]
    fn barrier_completes_at_odd_sizes() {
        let cfg = WorldConfig {
            recv_timeout: std::time::Duration::from_secs(10),
            ..Default::default()
        };
        for n in [2usize, 3, 9] {
            World::run_with(n, cfg.clone(), |c| {
                for _ in 0..5 {
                    c.barrier();
                }
            });
        }
    }
}

#[cfg(test)]
mod subcomm_tests {
    use crate::runtime::World;

    /// Collectives must work identically inside split communicators —
    /// FTI runs its allgathers on the application communicator, not the
    /// world.
    #[test]
    fn allreduce_within_split_groups() {
        let r = World::run(12, |c| {
            let color = (c.rank() % 3) as u32;
            let sub = c.split(Some(color), 0).expect("member");
            sub.allreduce_sum(&[c.rank() as f64])[0]
        });
        for (rank, &sum) in r.outputs.iter().enumerate() {
            let color = rank % 3;
            let expect: usize = (0..12).filter(|r| r % 3 == color).sum();
            assert_eq!(sum, expect as f64, "rank {rank}");
        }
    }

    #[test]
    fn allgather_within_split_groups() {
        let r = World::run(10, |c| {
            // Two groups of 5 (Bruck path inside the sub-communicator).
            let sub = c.split(Some((c.rank() / 5) as u32), 0).expect("member");
            c.barrier();
            sub.allgather(&[c.rank() as u64])
        });
        assert_eq!(r.outputs[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(r.outputs[7], vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn concurrent_collectives_in_sibling_comms_do_not_interfere() {
        let r = World::run(8, |c| {
            let sub = c.split(Some((c.rank() % 2) as u32), 0).expect("member");
            // Both halves run different collective sequences at once.
            if c.rank() % 2 == 0 {
                let g = sub.allgather(&[c.rank() as u64]);
                let s = sub.allreduce_sum(&[1.0])[0];
                (g, s)
            } else {
                let s = sub.allreduce_sum(&[2.0])[0];
                let g = sub.allgather(&[c.rank() as u64]);
                (g, s)
            }
        });
        assert_eq!(r.outputs[0].0, vec![0, 2, 4, 6]);
        assert_eq!(r.outputs[0].1, 4.0);
        assert_eq!(r.outputs[1].0, vec![1, 3, 5, 7]);
        assert_eq!(r.outputs[1].1, 8.0);
    }
}
