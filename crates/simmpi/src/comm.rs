//! Communicator handle: point-to-point operations and `split`.
//!
//! A `Comm` is owned by exactly one rank thread. Destination and source
//! arguments are ranks *within this communicator*; tracing always resolves
//! them to world ranks so the global matrix stays meaningful after a
//! `split` (FTI replaces the world communicator with an
//! application-only one at init — §V — and the paper's heat map still
//! shows world ranks).

use std::cell::Cell;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use bytes::Bytes;

use crate::datatype::{decode, decode_into, encode_into, Datum};
use crate::runtime::Shared;
use crate::trace::MessageEvent;

/// Highest tag value usable by applications; larger tags are reserved for
/// collective-internal traffic.
pub const MAX_USER_TAG: u32 = 0x0FFF_FFFF;

/// Rank membership of a communicator.
enum Group {
    /// The world communicator: comm rank == world rank.
    World,
    /// A sub-communicator: `members[comm_rank] = world_rank`.
    Sub(Arc<Vec<u32>>),
}

/// A communicator bound to the calling rank.
pub struct Comm {
    shared: Arc<Shared>,
    /// Communicator context id (world = 0).
    ctx: u64,
    /// This rank's position within the communicator.
    rank: usize,
    group: Group,
    /// Per-(rank, comm) counter making successive `split` contexts unique.
    split_seq: Cell<u64>,
}

impl Comm {
    pub(crate) fn world(shared: Arc<Shared>, world_rank: usize) -> Self {
        Comm {
            shared,
            ctx: 0,
            rank: world_rank,
            group: Group::World,
            split_seq: Cell::new(0),
        }
    }

    /// This rank within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        match &self.group {
            Group::World => self.shared.n,
            Group::Sub(m) => m.len(),
        }
    }

    /// World rank of a communicator rank.
    #[inline]
    pub fn world_rank_of(&self, comm_rank: usize) -> usize {
        match &self.group {
            Group::World => comm_rank,
            Group::Sub(m) => m[comm_rank] as usize,
        }
    }

    /// This rank's world rank.
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.world_rank_of(self.rank)
    }

    /// Set the application *phase* stamped on subsequently traced messages
    /// (e.g. solver iteration or checkpoint epoch). Used by the
    /// message-logging replay analysis to reason about rollback points.
    pub fn set_phase(&self, phase: u64) {
        self.shared.phases[self.world_rank()].store(phase, Ordering::Relaxed);
    }

    /// Current phase of this rank.
    pub fn phase(&self) -> u64 {
        self.shared.phases[self.world_rank()].load(Ordering::Relaxed)
    }

    /// Pause/resume trace recording globally (affects all ranks).
    pub fn set_tracing(&self, on: bool) {
        self.shared.trace.set_enabled(on);
    }

    // ----- point to point ------------------------------------------------

    /// Buffered (non-blocking semantics) send of raw bytes. The bytes
    /// are copied once into a pooled buffer; no further copies happen on
    /// the way to the receiver.
    ///
    /// # Panics
    /// Panics on an out-of-range destination or a reserved tag.
    pub fn send_bytes(&self, dst: usize, tag: u32, bytes: &[u8]) {
        assert!(tag <= MAX_USER_TAG, "tag {tag:#x} is reserved");
        let mut buf = self.shared.pool.checkout(bytes.len());
        buf.buf().extend_from_slice(bytes);
        self.send_raw(dst, tag, buf.freeze());
    }

    /// Zero-copy send of an already-refcounted payload: the mailbox gets
    /// the `Bytes` by reference count, no bytes move. Clone the payload
    /// first to fan it out to several destinations.
    pub fn send_shared(&self, dst: usize, tag: u32, payload: Bytes) {
        assert!(tag <= MAX_USER_TAG, "tag {tag:#x} is reserved");
        self.send_raw(dst, tag, payload);
    }

    /// Blocking receive of raw bytes from `src` with `tag`. The returned
    /// [`Bytes`] is the sender's buffer, not a copy; hand it back via
    /// [`Comm::recycle`] when done to keep the pool warm.
    pub fn recv_bytes(&self, src: usize, tag: u32) -> Bytes {
        assert!(tag <= MAX_USER_TAG, "tag {tag:#x} is reserved");
        self.recv_raw(src, tag)
    }

    /// Typed send: encodes `data` into a pooled buffer and ships it.
    pub fn send_slice<T: Datum>(&self, dst: usize, tag: u32, data: &[T]) {
        self.send_from(dst, tag, data);
    }

    /// Typed send from caller-owned storage (alias of [`Comm::send_slice`]
    /// with the scratch-API name): encodes into a pooled buffer, so the
    /// caller's slice is never retained and steady-state sends do not
    /// allocate.
    pub fn send_from<T: Datum>(&self, dst: usize, tag: u32, data: &[T]) {
        assert!(tag <= MAX_USER_TAG, "tag {tag:#x} is reserved");
        self.send_raw(dst, tag, self.encode_pooled(data));
    }

    /// Scratch-free send: checks out a pooled buffer with `size_hint`
    /// bytes reserved and lets `fill` serialise the payload straight into
    /// it. Producers that can write their own wire bytes (e.g. strided
    /// stencil edges) skip the intermediate staging copy entirely.
    pub fn send_with(
        &self,
        dst: usize,
        tag: u32,
        size_hint: usize,
        fill: impl FnOnce(&mut Vec<u8>),
    ) {
        assert!(tag <= MAX_USER_TAG, "tag {tag:#x} is reserved");
        let mut buf = self.shared.pool.checkout(size_hint);
        fill(buf.buf());
        self.send_raw(dst, tag, buf.freeze());
    }

    /// Typed receive.
    pub fn recv_vec<T: Datum>(&self, src: usize, tag: u32) -> Vec<T> {
        assert!(tag <= MAX_USER_TAG, "tag {tag:#x} is reserved");
        let raw = self.recv_raw(src, tag);
        let out = decode(&raw);
        self.shared.pool.recycle(raw);
        out
    }

    /// Typed receive into caller-owned scratch: `out` is cleared and
    /// refilled, so a loop reusing the same vector performs no heap
    /// allocation once its capacity has converged. The transport buffer
    /// is recycled into the pool.
    pub fn recv_into<T: Datum>(&self, src: usize, tag: u32, out: &mut Vec<T>) {
        assert!(tag <= MAX_USER_TAG, "tag {tag:#x} is reserved");
        let raw = self.recv_raw(src, tag);
        decode_into(&raw, out);
        self.shared.pool.recycle(raw);
    }

    /// Copy raw bytes into a pooled buffer (for collective-internal
    /// payloads, so control messages stay allocation-free too).
    pub(crate) fn pooled_from(&self, bytes: &[u8]) -> Bytes {
        let mut buf = self.shared.pool.checkout(bytes.len());
        buf.buf().extend_from_slice(bytes);
        buf.freeze()
    }

    /// Encode into a pooled buffer (the matching typed receive recycles
    /// it on the other side).
    pub(crate) fn encode_pooled<T: Datum>(&self, data: &[T]) -> Bytes {
        let mut buf = self.shared.pool.checkout(data.len() * T::WIDTH);
        encode_into(data, buf.buf());
        buf.freeze()
    }

    /// Hand a spent payload back to the world's pool. Payloads still
    /// referenced elsewhere are dropped instead — recycling is always
    /// safe, never required.
    pub fn recycle(&self, payload: Bytes) {
        self.shared.pool.recycle(payload);
    }

    /// Combined send+receive (safe under buffered sends; provided for
    /// halo-exchange ergonomics).
    pub fn sendrecv<T: Datum>(
        &self,
        dst: usize,
        send_tag: u32,
        data: &[T],
        src: usize,
        recv_tag: u32,
    ) -> Vec<T> {
        self.send_slice(dst, send_tag, data);
        self.recv_vec(src, recv_tag)
    }

    pub(crate) fn send_raw(&self, dst: usize, tag: u32, payload: impl Into<Bytes>) {
        let payload = payload.into();
        let size = self.size();
        assert!(dst < size, "dst {dst} out of range (size {size})");
        let dst_world = self.world_rank_of(dst);
        let src_world = self.world_rank();
        if let Some(replay) = self.shared.replay.as_deref() {
            if !replay.live[dst_world] {
                // Replay mode: the dead destination already consumed this
                // message in the pre-failure world — suppress the
                // duplicate (and keep it out of the trace; it is not new
                // traffic). Send determinism guarantees the payload is
                // bit-identical to the one originally delivered.
                replay
                    .suppressed_sends
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return;
            }
        }
        self.shared.trace.record(MessageEvent {
            src: src_world as u32,
            dst: dst_world as u32,
            bytes: payload.len() as u64,
            tag,
            phase: self.shared.phases[src_world].load(Ordering::Relaxed),
        });
        self.shared
            .deliver(dst_world, (self.ctx, self.rank as u32, tag), payload);
    }

    pub(crate) fn recv_raw(&self, src: usize, tag: u32) -> Bytes {
        let size = self.size();
        assert!(src < size, "src {src} out of range (size {size})");
        if let Some(replay) = self.shared.replay.as_deref() {
            let src_world = self.world_rank_of(src);
            if !replay.live[src_world] {
                // Replay mode: the sender is dead — serve its logged
                // payload from the feed in original send order.
                return replay.serve(self.world_rank(), src_world as u32, tag);
            }
        }
        self.shared
            .blocking_recv(self.world_rank(), (self.ctx, src as u32, tag))
    }

    // ----- communicator management ---------------------------------------

    /// `MPI_Comm_split`: collective over this communicator. Ranks passing
    /// the same `color` end up in the same new communicator, ordered by
    /// `(key, old rank)`. Returns `None` for ranks passing `color: None`.
    pub fn split(&self, color: Option<u32>, key: i64) -> Option<Comm> {
        const NO_COLOR: u64 = u64::MAX;
        // Gather (color, key, world_rank) from everyone, via allgather on
        // this communicator. Encoded as 3×u64 with key biased to unsigned.
        let mine = [
            color.map(|c| c as u64).unwrap_or(NO_COLOR),
            (key as i128 - i64::MIN as i128) as u64,
            self.world_rank() as u64,
        ];
        let all = self.allgather(&mine);
        let seq = self.split_seq.get();
        self.split_seq.set(seq + 1);
        let my_color = color?;
        let mut members: Vec<(u64, u64, usize)> = all
            .chunks_exact(3)
            .enumerate()
            .filter(|(_, c)| c[0] == my_color as u64)
            .map(|(comm_rank, c)| (c[1], comm_rank as u64, c[2] as usize))
            .collect();
        members.sort_unstable();
        let world_ranks: Vec<u32> = members.iter().map(|&(_, _, w)| w as u32).collect();
        let my_world = self.world_rank() as u32;
        let new_rank = world_ranks
            .iter()
            .position(|&w| w == my_world)
            .expect("caller is in its own color group");
        // Context id must be identical on all members and distinct from
        // every other communicator: mix parent ctx, per-parent sequence
        // number and color through an FNV-style avalanche.
        let mut ctx = 0xcbf2_9ce4_8422_2325u64;
        for v in [self.ctx, seq, my_color as u64, 0x9e37_79b9] {
            ctx ^= v;
            ctx = ctx.wrapping_mul(0x100_0000_01b3);
        }
        Some(Comm {
            shared: Arc::clone(&self.shared),
            ctx: ctx | 1, // never collide with the world ctx 0
            rank: new_rank,
            group: Group::Sub(Arc::new(world_ranks)),
            split_seq: Cell::new(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::World;

    #[test]
    fn sendrecv_exchanges_between_pair() {
        let r = World::run(2, |c| {
            let other = 1 - c.rank();
            let got = c.sendrecv(other, 1, &[c.rank() as f64], other, 1);
            got[0]
        });
        assert_eq!(r.outputs, vec![1.0, 0.0]);
    }

    #[test]
    fn split_by_parity_forms_two_comms() {
        let r = World::run(6, |c| {
            let sub = c.split(Some((c.rank() % 2) as u32), 0).unwrap();
            // Ring exchange inside the sub-communicator.
            let next = (sub.rank() + 1) % sub.size();
            let prev = (sub.rank() + sub.size() - 1) % sub.size();
            sub.send_slice(next, 2, &[sub.world_rank() as u64]);
            let got = sub.recv_vec::<u64>(prev, 2)[0];
            (sub.size(), sub.rank(), got)
        });
        for (wr, &(size, rank, got)) in r.outputs.iter().enumerate() {
            assert_eq!(size, 3);
            assert_eq!(rank, wr / 2);
            // Predecessor in my parity class.
            let expect = if wr >= 2 { wr - 2 } else { wr + 4 };
            assert_eq!(got as usize, expect, "world rank {wr}");
        }
    }

    #[test]
    fn split_with_none_color_returns_none() {
        let r = World::run(4, |c| {
            let sub = c.split((c.rank() != 0).then_some(7), 0);
            match sub {
                None => {
                    assert_eq!(c.rank(), 0);
                    0
                }
                Some(s) => s.size(),
            }
        });
        assert_eq!(r.outputs, vec![0, 3, 3, 3]);
    }

    #[test]
    fn split_key_reorders_ranks() {
        let r = World::run(4, |c| {
            // Reverse order via descending key.
            let sub = c.split(Some(0), -(c.rank() as i64)).unwrap();
            sub.rank()
        });
        assert_eq!(r.outputs, vec![3, 2, 1, 0]);
    }

    #[test]
    fn nested_splits_do_not_cross_talk() {
        let r = World::run(4, |c| {
            let half = c.split(Some((c.rank() / 2) as u32), 0).unwrap();
            let pair = half.split(Some(0), 0).unwrap();
            let other = 1 - pair.rank();
            pair.send_slice(other, 1, &[c.rank() as u64]);
            pair.recv_vec::<u64>(other, 1)[0]
        });
        assert_eq!(r.outputs, vec![1, 0, 3, 2]);
    }

    #[test]
    fn phase_is_stamped_on_events() {
        let r = World::run_with(
            2,
            crate::runtime::WorldConfig {
                trace_events: true,
                ..Default::default()
            },
            |c| {
                if c.rank() == 0 {
                    c.set_phase(41);
                    c.send_bytes(1, 1, &[0]);
                    c.set_phase(42);
                    c.send_bytes(1, 1, &[0]);
                } else {
                    c.recv_bytes(0, 1);
                    c.recv_bytes(0, 1);
                }
            },
        );
        let ev = r.trace.take_events();
        assert_eq!(ev[0].iter().map(|e| e.phase).collect::<Vec<_>>(), [41, 42]);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_tags_rejected() {
        World::run(1, |c| c.send_bytes(0, 0xF000_0000, &[]));
    }
}
