//! Plain-old-data element types for typed messages.
//!
//! Messages travel as byte buffers; [`Datum`] provides the fixed-width
//! little-endian (de)serialisation for the element types HPC codes
//! actually ship. Encoding stays explicit per element rather than a
//! `transmute` of the slice — safe and endian-stable — but is shaped so
//! the compiler collapses it to a bulk copy: a paper-scale traced run
//! pushes gigabytes through these two loops.

/// A fixed-width scalar that can be packed into / unpacked from bytes.
pub trait Datum: Copy + Send + 'static {
    /// Encoded width in bytes.
    const WIDTH: usize;
    /// Write the little-endian encoding of `self` into exactly `WIDTH` bytes.
    fn pack(self, dst: &mut [u8]);
    /// Decode from exactly `WIDTH` bytes.
    fn unpack(bytes: &[u8]) -> Self;
}

macro_rules! impl_datum {
    ($($t:ty),*) => {$(
        impl Datum for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            #[inline]
            fn pack(self, dst: &mut [u8]) {
                dst.copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn unpack(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("datum width"))
            }
        }
    )*};
}

impl_datum!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

/// Encode a slice of datums into a fresh byte buffer.
pub fn encode<T: Datum>(xs: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * T::WIDTH);
    encode_into(xs, &mut out);
    out
}

/// Encode a slice of datums, appending to an existing buffer — lets the
/// send path reuse pooled payload buffers instead of allocating.
pub fn encode_into<T: Datum>(xs: &[T], out: &mut Vec<u8>) {
    // Resize first and pack into fixed-width windows: no per-element
    // capacity check, and the constant-width `copy_from_slice` lowers to
    // a plain store, so the f64 hot path vectorises to a bulk copy.
    let start = out.len();
    out.resize(start + xs.len() * T::WIDTH, 0);
    for (dst, &x) in out[start..].chunks_exact_mut(T::WIDTH).zip(xs) {
        x.pack(dst);
    }
}

/// Encode a slice of datums into an exactly-sized destination window —
/// the flat-buffer collectives place each rank's block at a fixed offset
/// of one preallocated buffer.
///
/// # Panics
/// Panics if `dst.len() != xs.len() * T::WIDTH`.
pub fn encode_to_slice<T: Datum>(xs: &[T], dst: &mut [u8]) {
    assert_eq!(dst.len(), xs.len() * T::WIDTH, "destination window size");
    for (dst, &x) in dst.chunks_exact_mut(T::WIDTH).zip(xs) {
        x.pack(dst);
    }
}

/// Decode a byte buffer produced by [`encode`].
///
/// # Panics
/// Panics if the buffer length is not a multiple of the datum width.
pub fn decode<T: Datum>(bytes: &[u8]) -> Vec<T> {
    let mut out = Vec::with_capacity(bytes.len() / T::WIDTH);
    decode_into(bytes, &mut out);
    out
}

/// Decode into caller-owned scratch: `out` is cleared and refilled, so a
/// receive loop reusing one vector stops allocating once its capacity has
/// converged.
///
/// # Panics
/// Panics if the buffer length is not a multiple of the datum width.
pub fn decode_into<T: Datum>(bytes: &[u8], out: &mut Vec<T>) {
    assert!(
        bytes.len().is_multiple_of(T::WIDTH),
        "buffer length {} not a multiple of datum width {}",
        bytes.len(),
        T::WIDTH
    );
    out.clear();
    out.extend(bytes.chunks_exact(T::WIDTH).map(T::unpack));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let xs = [1.5f64, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        assert_eq!(decode::<f64>(&encode(&xs)), xs);
    }

    #[test]
    fn u32_roundtrip() {
        let xs = [0u32, 1, u32::MAX, 0xdead_beef];
        assert_eq!(decode::<u32>(&encode(&xs)), xs);
    }

    #[test]
    fn i8_roundtrip() {
        let xs = [-128i8, 0, 127];
        assert_eq!(decode::<i8>(&encode(&xs)), xs);
    }

    #[test]
    fn encoded_width() {
        assert_eq!(encode(&[1.0f64; 7]).len(), 56);
        assert_eq!(encode(&[1u16; 3]).len(), 6);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn decode_rejects_ragged_buffer() {
        decode::<u32>(&[0u8; 5]);
    }

    #[test]
    fn empty_roundtrip() {
        let xs: [f32; 0] = [];
        assert!(decode::<f32>(&encode(&xs)).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn f64_roundtrip_prop(xs in proptest::collection::vec(any::<f64>(), 0..64)) {
            let back = decode::<f64>(&encode(&xs));
            prop_assert_eq!(back.len(), xs.len());
            for (a, b) in back.iter().zip(&xs) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn u64_roundtrip_prop(xs in proptest::collection::vec(any::<u64>(), 0..64)) {
            prop_assert_eq!(decode::<u64>(&encode(&xs)), xs);
        }

        #[test]
        fn i16_roundtrip_prop(xs in proptest::collection::vec(any::<i16>(), 0..64)) {
            prop_assert_eq!(decode::<i16>(&encode(&xs)), xs);
        }
    }
}
