//! Env-override precedence for long-running processes.
//!
//! The `HCFT_SIMMPI_{WORKERS,STEAL,YIELD_BUDGET,SHARDS,YIELD_SPINS}`
//! lookups are `OnceLock`-cached: the first resolution snapshots the
//! environment for the life of the process. For a one-shot CLI that is
//! invisible; for an always-on service it means the environment seen at
//! the *first* request silently pins every later one. The contract is
//! therefore: explicit `WorldConfig` / `TracedJobConfig` values always
//! win over the cached env lookups, and only the env *defaults* are
//! pinned. This test locks in both halves.
//!
//! Everything lives in ONE `#[test]` so the env mutations cannot race
//! another test thread in this process (integration tests get their own
//! process, so other binaries are unaffected).

use hcft_simmpi::{Engine, WorldConfig};

#[test]
fn explicit_config_beats_cached_env_lookups() {
    // Phase 1: set the environment BEFORE any resolution has happened in
    // this process, then resolve a default config — the env must apply.
    std::env::set_var("HCFT_SIMMPI_WORKERS", "3");
    std::env::set_var("HCFT_SIMMPI_SHARDS", "5");
    std::env::set_var("HCFT_SIMMPI_STEAL", "1");
    std::env::set_var("HCFT_SIMMPI_YIELD_BUDGET", "7");
    std::env::set_var("HCFT_SIMMPI_YIELD_SPINS", "9");
    std::env::set_var("HCFT_SIMMPI_ENGINE", "threads");

    let defaults = WorldConfig::default()
        .resolve(1024)
        .expect("default config resolves");
    assert_eq!(defaults.workers, 3, "env workers apply to default config");
    assert_eq!(defaults.mailbox_shards, 5, "env shards apply");
    assert!(defaults.steal, "env steal applies");
    assert_eq!(defaults.yield_budget, 7, "env yield budget applies");
    assert_eq!(defaults.yield_spins, 9, "env yield spins apply");
    assert_eq!(defaults.engine, Engine::Threads, "env engine applies");

    // Phase 2: mutate the environment after the first resolution. The
    // OnceLock snapshot must hold — a long-running process sees ONE
    // environment, not a time-varying one.
    std::env::set_var("HCFT_SIMMPI_WORKERS", "11");
    std::env::set_var("HCFT_SIMMPI_SHARDS", "13");
    std::env::set_var("HCFT_SIMMPI_STEAL", "0");
    std::env::set_var("HCFT_SIMMPI_YIELD_BUDGET", "17");
    std::env::set_var("HCFT_SIMMPI_YIELD_SPINS", "19");
    std::env::set_var("HCFT_SIMMPI_ENGINE", "tasks");

    let pinned = WorldConfig::default()
        .resolve(1024)
        .expect("default config resolves");
    assert_eq!(
        pinned, defaults,
        "cached env lookups are a process-lifetime snapshot"
    );

    // Phase 3: explicit config values always win over the cached env —
    // this is what lets an always-on service honour per-request
    // settings. Every overridable knob is exercised.
    let explicit = WorldConfig {
        workers: 2,
        mailbox_shards: 4,
        steal: Some(false),
        yield_budget: Some(1),
        yield_spins: Some(0),
        engine: Engine::Threads,
        stack_size: 256 * 1024,
        ..WorldConfig::default()
    };
    let resolved = explicit.resolve(1024).expect("explicit config resolves");
    assert_eq!(resolved.workers, 2, "explicit workers beat cached env");
    assert_eq!(
        resolved.mailbox_shards, 4,
        "explicit shards beat cached env"
    );
    assert!(
        !resolved.steal,
        "explicit steal=false beats cached env STEAL=1"
    );
    assert_eq!(resolved.yield_budget, 1, "explicit budget beats cached env");
    assert_eq!(resolved.yield_spins, 0, "explicit spins beat cached env");
    assert_eq!(resolved.engine, Engine::Threads, "explicit engine wins");
    assert_eq!(resolved.stack_size, 256 * 1024, "explicit stack wins");

    // The workers/shards caps still apply on top of explicit values.
    let capped = explicit.resolve(2).expect("tiny world resolves");
    assert_eq!(capped.workers, 2, "workers capped at world size");
    assert_eq!(capped.mailbox_shards, 2, "shards capped at world size");

    // Phase 4: the resolved settings drive a real world — a 4-rank
    // thread-engine ring with the explicit (env-contradicting) knobs
    // must run and produce rank-ordered outputs.
    let ring = WorldConfig {
        engine: Engine::Threads,
        mailbox_shards: 4,
        yield_spins: Some(0),
        ..WorldConfig::default()
    };
    let r = hcft_simmpi::World::run_with(4, ring, |c| {
        let next = (c.rank() + 1) % c.size();
        let prev = (c.rank() + c.size() - 1) % c.size();
        c.send_slice(next, 1, &[c.rank() as u64]);
        c.recv_vec::<u64>(prev, 1)[0]
    });
    assert_eq!(r.outputs, vec![3, 0, 1, 2]);
}
