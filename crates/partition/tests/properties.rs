//! Cross-engine equivalence and safety properties.
//!
//! The scalable engines earn their keep only if they change nothing but
//! the clock: the heap CNM and the incremental corner-heap seeding must
//! reproduce their retained quadratic references *bit-for-bit* (the
//! Table II CSVs are downstream of every choice they make), and
//! refinement must never trade away the two invariants the paper's
//! clustering rests on — part weights inside [`SizeBounds`] and a
//! never-increasing edge cut.

use hcft_graph::WeightedGraph;
use hcft_partition::multilevel::grow_initial;
use hcft_partition::reference::grow_initial_scan;
use hcft_partition::refine::refine;
use hcft_partition::{
    check_partition, modularity_clusters, modularity_clusters_reference, MultilevelConfig,
    MultilevelPartitioner, SizeBounds,
};
use proptest::prelude::*;

/// A random sparse weighted graph: `n` vertices, a scattering of random
/// edges (duplicates accumulate, as in the communication matrices).
fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (4usize..48).prop_flat_map(|n| {
        proptest::collection::vec((0usize..n, 0usize..n, 1u64..1_000_000), 0..160).prop_map(
            move |edges| {
                let mut g = WeightedGraph::new(n);
                for (u, v, w) in edges {
                    if u != v {
                        g.add_edge(u, v, w);
                    }
                }
                g
            },
        )
    })
}

/// A random complete partition of `n` vertices into `k` non-empty parts.
fn arb_partition(n: usize, k: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..k, n).prop_map(move |mut part| {
        // Guarantee every part is non-empty (n >= k by construction).
        for (p, slot) in part.iter_mut().enumerate().take(k) {
            *slot = p;
        }
        part
    })
}

fn part_weights(g: &WeightedGraph, part: &[usize], k: usize) -> Vec<u64> {
    let mut w = vec![0u64; k];
    for (u, &p) in part.iter().enumerate() {
        w[p] += g.vertex_weight(u);
    }
    w
}

proptest! {
    /// Heap CNM ≡ quadratic reference on arbitrary graphs and bounds.
    #[test]
    fn heap_cnm_matches_reference(g in arb_graph(), min in 1u64..4, extra in 0u64..16) {
        let bounds = SizeBounds::new(min, min + 1 + extra);
        prop_assert_eq!(
            modularity_clusters(&g, bounds),
            modularity_clusters_reference(&g, bounds)
        );
    }

    /// Incremental corner-heap seeding ≡ per-seed scan reference.
    #[test]
    fn incremental_seeding_matches_scan(g in arb_graph(), k in 1usize..5, seed in proptest::prelude::any::<u64>()) {
        let k = k.min(g.n());
        prop_assert_eq!(grow_initial(&g, k, seed), grow_initial_scan(&g, k, seed));
    }

    /// Refinement never violates the bounds it is given and never
    /// increases the cut, from any feasible starting partition. The
    /// bounds are derived from the start partition's own weight spread,
    /// so they are always satisfiable and often tight.
    #[test]
    fn refinement_preserves_bounds_and_cut(
        (g, part) in arb_graph().prop_flat_map(|g| {
            let n = g.n();
            (Just(g), arb_partition(n, 2 + n % 3))
        }),
        passes in 1usize..5,
    ) {
        let k = part.iter().copied().max().expect("non-empty") + 1;
        let mut weights = part_weights(&g, &part, k);
        let bounds = SizeBounds::new(
            *weights.iter().min().expect("k >= 1").max(&1),
            *weights.iter().max().expect("k >= 1"),
        );
        let cut_before = g.cut_weight(&part);
        let mut refined = part.clone();
        refine(&g, &mut refined, &mut weights, bounds, passes);
        let cut_after = g.cut_weight(&refined);
        prop_assert!(cut_after <= cut_before, "cut grew {cut_before} -> {cut_after}");
        let fresh = part_weights(&g, &refined, k);
        prop_assert_eq!(&fresh, &weights, "tracked weights drifted");
        for (p, &w) in fresh.iter().enumerate() {
            prop_assert!(
                w >= bounds.min_weight && w <= bounds.max_weight,
                "part {} weight {} outside [{}, {}]",
                p, w, bounds.min_weight, bounds.max_weight
            );
        }
    }

    /// Both end-to-end engines emit complete partitions; the multilevel
    /// engine (which takes explicit bounds) also respects them.
    #[test]
    fn engines_emit_valid_partitions(g in arb_graph(), seed in proptest::prelude::any::<u64>()) {
        let n = g.n() as u64;
        // Modularity: caps only (min 1 never forces folding).
        let part = modularity_clusters(&g, SizeBounds::new(1, (n / 2).max(1)));
        check_partition(&g, &part, None).expect("modularity partition");
        // Multilevel: k = 2 with the loosest feasible bounds.
        let bounds = SizeBounds::new(1, n.max(1));
        let cfg = MultilevelConfig { seed, ..MultilevelConfig::new(2, bounds) };
        let part = MultilevelPartitioner::new(cfg).partition(&g);
        check_partition(&g, &part, Some(bounds)).expect("multilevel partition");
    }
}

/// The ISSUE pins equivalence up to 512 vertices; proptest shrinks stay
/// small, so cover the top of that range deterministically: 64 cliques
/// of 8 in a weak ring.
#[test]
fn heap_cnm_matches_reference_at_512_nodes() {
    let (cliques, size) = (64usize, 8usize);
    let mut g = WeightedGraph::new(cliques * size);
    for q in 0..cliques {
        for i in 0..size {
            for j in (i + 1)..size {
                g.add_edge(q * size + i, q * size + j, 50 + ((q + i * j) % 7) as u64);
            }
        }
        let next = ((q + 1) % cliques) * size;
        g.add_edge(q * size + size - 1, next, 1 + (q % 3) as u64);
    }
    for bounds in [
        SizeBounds::new(1, 8),
        SizeBounds::new(4, 16),
        SizeBounds::new(2, 512),
    ] {
        assert_eq!(
            modularity_clusters(&g, bounds),
            modularity_clusters_reference(&g, bounds),
            "engines diverged at 512 nodes with {bounds:?}"
        );
    }
}

/// Same ceiling for the seeding pair, on a 512-node grid-ish graph.
#[test]
fn incremental_seeding_matches_scan_at_512_nodes() {
    let (x, y) = (32usize, 16usize);
    let mut g = WeightedGraph::new(x * y);
    for j in 0..y {
        for i in 0..x {
            let u = j * x + i;
            if i + 1 < x {
                g.add_edge(u, u + 1, 10 + ((i + j) % 5) as u64);
            }
            if j + 1 < y {
                g.add_edge(u, u + x, 10 + ((i * j) % 5) as u64);
            }
        }
    }
    for k in [1usize, 2, 7, 16, 64] {
        assert_eq!(
            grow_initial(&g, k, 0x5eed),
            grow_initial_scan(&g, k, 0x5eed),
            "seeding diverged at 512 nodes with k={k}"
        );
    }
}
