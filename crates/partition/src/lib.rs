//! Graph partitioning for failure-containment clustering.
//!
//! The paper's L1 clustering applies "the partitioning algorithm and cost
//! function presented in \[24\]" (Ropars et al., Euro-Par'11) to the
//! node-based communication graph: minimise logged (cut) bytes subject to
//! cluster-size constraints, balancing against the cost of restarting a
//! cluster. This crate provides two engines and the cost function:
//!
//! * [`multilevel`] — a METIS-style multilevel k-way partitioner
//!   (heavy-edge-matching coarsening → greedy region growing →
//!   Fiduccia–Mattheyses boundary refinement at every uncoarsening step);
//! * [`modularity`] — Clauset–Newman–Moore greedy agglomeration with
//!   size caps, which discovers the number of clusters by itself (closer
//!   in spirit to the community-detection view of §IV-A);
//! * [`cost`] — the logging-vs-restart objective used to pick between
//!   candidate partitions.

pub mod coarsen;
pub mod cost;
pub mod gain;
pub mod mapping;
pub mod modularity;
pub mod multilevel;
pub mod reference;
pub mod refine;

pub use cost::{partition_cost, CostWeights};
pub use mapping::{mapping_cost, topology_aware_map};
pub use modularity::{modularity_clusters, modularity_clusters_reference};
pub use multilevel::{MultilevelConfig, MultilevelPartitioner};

use hcft_graph::WeightedGraph;

/// Size constraints on partitions, in units of vertex weight (for the
/// node graph: nodes, matching the paper's "minimum of 4 nodes per L1
/// cluster").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeBounds {
    /// Minimum total vertex weight per part.
    pub min_weight: u64,
    /// Maximum total vertex weight per part.
    pub max_weight: u64,
}

impl SizeBounds {
    /// Bounds `[min, max]`.
    ///
    /// # Panics
    /// Panics if `min > max` or `min == 0`.
    pub fn new(min_weight: u64, max_weight: u64) -> Self {
        assert!(min_weight > 0 && min_weight <= max_weight, "bad bounds");
        SizeBounds {
            min_weight,
            max_weight,
        }
    }
}

/// Validate that `part_of` is a complete assignment into non-empty parts
/// respecting `bounds` over `g`'s vertex weights. Returns part weights.
pub fn check_partition(
    g: &WeightedGraph,
    part_of: &[usize],
    bounds: Option<SizeBounds>,
) -> Result<Vec<u64>, String> {
    if part_of.len() != g.n() {
        return Err(format!(
            "assignment covers {} of {} vertices",
            part_of.len(),
            g.n()
        ));
    }
    let k = part_of.iter().copied().max().map_or(0, |m| m + 1);
    let mut weights = vec![0u64; k];
    for (u, &p) in part_of.iter().enumerate() {
        weights[p] += g.vertex_weight(u);
    }
    if weights.contains(&0) {
        return Err("empty part".to_string());
    }
    if let Some(b) = bounds {
        for (p, &w) in weights.iter().enumerate() {
            if w < b.min_weight || w > b.max_weight {
                return Err(format!(
                    "part {p} weight {w} outside [{}, {}]",
                    b.min_weight, b.max_weight
                ));
            }
        }
    }
    Ok(weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_partition_accepts_valid() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(2, 3, 1);
        let w = check_partition(&g, &[0, 0, 1, 1], Some(SizeBounds::new(2, 2))).unwrap();
        assert_eq!(w, vec![2, 2]);
    }

    #[test]
    fn check_partition_rejects_undersized() {
        let g = WeightedGraph::new(3);
        let r = check_partition(&g, &[0, 0, 1], Some(SizeBounds::new(2, 3)));
        assert!(r.is_err());
    }

    #[test]
    fn check_partition_rejects_wrong_length() {
        let g = WeightedGraph::new(3);
        assert!(check_partition(&g, &[0, 0], None).is_err());
    }

    #[test]
    #[should_panic(expected = "bad bounds")]
    fn bounds_validate() {
        SizeBounds::new(5, 3);
    }
}
