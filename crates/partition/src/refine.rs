//! Boundary refinement: gain-bucket moves plus Kernighan–Lin pair swaps.
//!
//! Two phases alternate until neither improves the cut:
//!
//! * **Move phase** — Fiduccia–Mattheyses-style single-vertex moves,
//!   driven best-first from integer [`crate::gain::GainBuckets`]
//!   over the boundary. Only strictly-positive-gain moves that keep the
//!   [`SizeBounds`] invariant are applied, so each phase monotonically
//!   improves the cut and termination is guaranteed. Moves blocked by the
//!   bounds are parked and retried after every applied move (weights
//!   shift, so a blocked move can become legal).
//! * **Swap phase** — pairwise exchanges of equal-weight boundary
//!   vertices between adjacent parts. Swaps keep part weights unchanged,
//!   so they work even under exactly tight bounds where single moves are
//!   impossible. Instead of probing every boundary pair (the old
//!   quadratic pass, hard-capped at 512 vertices), candidates are ranked
//!   per adjacent part pair by their KL `D` values (external minus
//!   internal connectivity) and only the top few per weight class are
//!   combined — O(boundary · deg) per sweep, no size cap.

use hcft_graph::{CsrGraph, WeightedGraph};

use std::collections::{BTreeMap, BTreeSet};

use crate::gain::GainBuckets;
use crate::SizeBounds;

/// Candidates per weight class and side combined exactly in the swap
/// phase. Non-adjacent pairs compose from the per-side maxima, so a
/// handful covers everything but adversarial all-adjacent tops.
const SWAP_TOP_CANDIDATES: usize = 4;

/// Best single move for `u`: the adjacent part with the largest
/// connectivity (first-seen in neighbour order on ties — the historical
/// tie-break) and the cut gain of moving there. `None` when `u` has no
/// neighbour outside its own part. `scratch` avoids a per-call
/// allocation; any contents are cleared.
fn best_move(
    csr: &CsrGraph,
    part_of: &[usize],
    u: usize,
    scratch: &mut Vec<(usize, u64)>,
) -> Option<(usize, i128)> {
    let home = part_of[u];
    let mut link_home = 0u64;
    scratch.clear();
    let (nbrs, wgts) = csr.neighbors(u);
    for (&v, &w) in nbrs.iter().zip(wgts) {
        let p = part_of[v as usize];
        if p == home {
            link_home += w;
        } else {
            match scratch.iter_mut().find(|(q, _)| *q == p) {
                Some((_, lw)) => *lw += w,
                None => scratch.push((p, w)),
            }
        }
    }
    let mut best: Option<(usize, u64)> = None;
    for &(p, lw) in scratch.iter() {
        if best.is_none_or(|(_, bw)| lw > bw) {
            best = Some((p, lw));
        }
    }
    let (target, link_target) = best?;
    Some((target, link_target as i128 - link_home as i128))
}

/// One gain-bucket move phase. Returns the total gain achieved
/// (reduction of the cut weight).
pub fn fm_move_phase(
    csr: &CsrGraph,
    part_of: &mut [usize],
    part_weight: &mut [u64],
    bounds: SizeBounds,
) -> u64 {
    let n = csr.n();
    let mut buckets = GainBuckets::new(n);
    let mut scratch: Vec<(usize, u64)> = Vec::new();
    for u in 0..n {
        if let Some((_, gain)) = best_move(csr, part_of, u, &mut scratch) {
            if gain > 0 {
                buckets.insert(u, gain);
            }
        }
    }
    let mut parked: Vec<u32> = Vec::new();
    let mut total_gain = 0u64;
    let mut applied = 0u64;
    while let Some((u, cached)) = buckets.pop_best() {
        let Some((target, gain)) = best_move(csr, part_of, u, &mut scratch) else {
            continue;
        };
        if gain <= 0 {
            continue;
        }
        if gain != cached {
            // Stale entry: requeue at the accurate gain and re-rank.
            buckets.insert(u, gain);
            continue;
        }
        let wu = csr.vertex_weight(u);
        let home = part_of[u];
        // Respect both bounds: the source must not fall below min, the
        // target must not exceed max.
        if part_weight[home] < bounds.min_weight + wu
            || part_weight[target] + wu > bounds.max_weight
        {
            parked.push(u as u32);
            continue;
        }
        part_of[u] = target;
        part_weight[home] -= wu;
        part_weight[target] += wu;
        total_gain += gain as u64;
        applied += 1;
        // Gains changed only for u and its neighbours; requeue them.
        buckets.remove(u);
        match best_move(csr, part_of, u, &mut scratch) {
            Some((_, g)) if g > 0 => buckets.insert(u, g),
            _ => {}
        }
        let (nbrs, _) = csr.neighbors(u);
        for &v in nbrs {
            let v = v as usize;
            match best_move(csr, part_of, v, &mut scratch) {
                Some((_, g)) if g > 0 => buckets.insert(v, g),
                _ => buckets.remove(v),
            }
        }
        // The move shifted two part weights; parked vertices may fit now.
        for v in std::mem::take(&mut parked) {
            let v = v as usize;
            if let Some((_, g)) = best_move(csr, part_of, v, &mut scratch) {
                if g > 0 {
                    buckets.insert(v, g);
                }
            }
        }
    }
    let reg = hcft_telemetry::Registry::global();
    reg.counter("partition.fm.bucket_moves")
        .add(buckets.moves());
    reg.counter("partition.fm.moves").add(applied);
    total_gain
}

/// KL `D` values of one side of a part pair: for each boundary vertex of
/// `own`, `D = link(·, other) − link(·, own)`, grouped by vertex weight
/// (swaps must preserve part weights) and truncated to the top
/// candidates per class, ranked by `D` descending then vertex id.
fn swap_side(
    csr: &CsrGraph,
    part_of: &[usize],
    list: &[u32],
    own: usize,
    other: usize,
) -> BTreeMap<u64, Vec<(i128, u32)>> {
    let mut classes: BTreeMap<u64, Vec<(i128, u32)>> = BTreeMap::new();
    for &u in list {
        let u = u as usize;
        if part_of[u] != own {
            continue; // moved away by an earlier swap this sweep
        }
        let (nbrs, wgts) = csr.neighbors(u);
        let (mut to_own, mut to_other) = (0u64, 0u64);
        for (&v, &w) in nbrs.iter().zip(wgts) {
            let p = part_of[v as usize];
            if p == own {
                to_own += w;
            } else if p == other {
                to_other += w;
            }
        }
        classes
            .entry(csr.vertex_weight(u))
            .or_default()
            .push((to_other as i128 - to_own as i128, u as u32));
    }
    for cands in classes.values_mut() {
        cands.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        cands.truncate(SWAP_TOP_CANDIDATES);
    }
    classes
}

/// Best positive swap between parts `p` and `q`, or `None`. The exact
/// gain `D_u + D_v − 2·w(u, v)` is evaluated for every top-candidate
/// combination of matching weight class; the first maximum in class /
/// rank order wins ties (deterministic).
fn best_swap(
    csr: &CsrGraph,
    part_of: &[usize],
    p: usize,
    q: usize,
    boundary_of: &[Vec<u32>],
) -> Option<(usize, usize, u64)> {
    let side_p = swap_side(csr, part_of, &boundary_of[p], p, q);
    if side_p.is_empty() {
        return None;
    }
    let side_q = swap_side(csr, part_of, &boundary_of[q], q, p);
    let mut best: Option<(i128, usize, usize)> = None;
    for (w, cands_p) in &side_p {
        let Some(cands_q) = side_q.get(w) else {
            continue;
        };
        for &(du, u) in cands_p {
            for &(dv, v) in cands_q {
                let gain = du + dv - 2 * csr.edge_weight(u as usize, v as usize) as i128;
                if gain > 0 && best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, u as usize, v as usize));
                }
            }
        }
    }
    best.map(|(g, u, v)| (u, v, g as u64))
}

/// One swap phase: sweep every adjacent part pair, applying the best
/// positive equal-weight swap per pair, until a full sweep applies
/// nothing. Part weights are unchanged by construction. Returns the
/// total gain.
pub fn kl_swap_phase(csr: &CsrGraph, part_of: &mut [usize], k: usize) -> u64 {
    let n = csr.n();
    let mut total_gain = 0u64;
    let mut swaps = 0u64;
    loop {
        // Boundary vertices per part and the adjacent part pairs, from
        // the current assignment.
        let mut pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut boundary_of: Vec<Vec<u32>> = vec![Vec::new(); k];
        for u in 0..n {
            let pu = part_of[u];
            let (nbrs, _) = csr.neighbors(u);
            let mut cross = false;
            for &v in nbrs {
                let pv = part_of[v as usize];
                if pv != pu {
                    cross = true;
                    pairs.insert((pu.min(pv), pu.max(pv)));
                }
            }
            if cross {
                boundary_of[pu].push(u as u32);
            }
        }
        let mut applied = false;
        for &(p, q) in &pairs {
            if let Some((u, v, gain)) = best_swap(csr, part_of, p, q, &boundary_of) {
                part_of[u] = q;
                part_of[v] = p;
                total_gain += gain;
                swaps += 1;
                applied = true;
            }
        }
        if !applied {
            break;
        }
    }
    hcft_telemetry::Registry::global()
        .counter("partition.fm.swaps")
        .add(swaps);
    total_gain
}

/// Run refinement rounds (move phase then swap phase) until a round
/// yields no gain, at most `max_passes` rounds.
pub fn refine(
    g: &WeightedGraph,
    part_of: &mut [usize],
    part_weight: &mut [u64],
    bounds: SizeBounds,
    max_passes: usize,
) {
    let csr = CsrGraph::from_graph(g);
    refine_csr(&csr, part_of, part_weight, bounds, max_passes);
}

/// [`refine`] over a pre-built CSR view (the multilevel driver reuses
/// the one coarsening produced).
pub fn refine_csr(
    csr: &CsrGraph,
    part_of: &mut [usize],
    part_weight: &mut [u64],
    bounds: SizeBounds,
    max_passes: usize,
) {
    let k = part_weight.len();
    for _ in 0..max_passes {
        let mut gain = fm_move_phase(csr, part_of, part_weight, bounds);
        gain += kl_swap_phase(csr, part_of, k);
        if gain == 0 {
            break;
        }
    }
}

fn part_weights_for(g: &WeightedGraph, part: &[usize], k: usize) -> Vec<u64> {
    let mut w = vec![0u64; k];
    for (u, &p) in part.iter().enumerate() {
        w[p] += g.vertex_weight(u);
    }
    w
}

/// Move (or swap) vertices between parts until all weight bounds hold. Every
/// applied change strictly reduces the total bound violation ("excess"),
/// which guarantees termination — naive over→under shuttling can
/// oscillate forever once coarsening produces mixed vertex weights under
/// exactly tight bounds. Gives up (leaving the best assignment found)
/// when no excess-reducing change exists.
///
/// A change only touches two part weights, so its effect on the total
/// excess is computed in O(1) from those two terms, and a move can
/// reduce the excess only by shrinking an over-max source or filling an
/// under-min destination — candidate enumeration skips every other
/// `(vertex, destination)` pair. Both shortcuts are exact (the skipped
/// pairs provably cannot reduce the excess, and iteration order is
/// unchanged), so the selected repair sequence is identical to the
/// original recompute-everything scan — just not quadratic per
/// candidate.
pub fn repair_bounds(g: &WeightedGraph, part: &mut [usize], k: usize, b: SizeBounds) {
    // Excess contribution of one part weight.
    let ex = |w: u64| -> u64 { w.saturating_sub(b.max_weight) + b.min_weight.saturating_sub(w) };
    let affinity = |u: usize, p: usize, part: &[usize]| -> i128 {
        g.neighbors(u)
            .iter()
            .filter(|&&(v, _)| part[v as usize] == p)
            .map(|&(_, w)| w as i128)
            .sum()
    };
    let mut weights = part_weights_for(g, part, k);
    let mut e: u64 = weights.iter().map(|&w| ex(w)).sum();
    while e > 0 {
        // Best single move: largest excess reduction, cut affinity as
        // the tie-break.
        let mut best_move: Option<(usize, usize, u64, i128)> = None;
        for u in 0..g.n() {
            let src = part[u];
            let w = g.vertex_weight(u);
            // Losing weight only reduces ex(src) when src is over-max;
            // gaining only reduces ex(dst) when dst is under-min. If
            // neither channel exists the move cannot reduce the excess.
            let src_over = weights[src] > b.max_weight;
            for dst in 0..k {
                if dst == src || (!src_over && weights[dst] >= b.min_weight) {
                    continue;
                }
                let ne = e - ex(weights[src]) - ex(weights[dst])
                    + ex(weights[src] - w)
                    + ex(weights[dst] + w);
                if ne >= e {
                    continue;
                }
                let aff = affinity(u, dst, part) - affinity(u, src, part);
                if best_move.is_none_or(|(_, _, be, ba)| ne < be || (ne == be && aff > ba)) {
                    best_move = Some((u, dst, ne, aff));
                }
            }
        }
        if let Some((u, dst, ne, _)) = best_move {
            let src = part[u];
            let w = g.vertex_weight(u);
            part[u] = dst;
            weights[src] -= w;
            weights[dst] += w;
            e = ne;
            continue;
        }
        // No single move helps (e.g. only weight-2 vertices with an odd
        // imbalance): try a pairwise swap that reduces the excess.
        let mut best_swap: Option<(usize, usize, u64)> = None;
        for u in 0..g.n() {
            for v in (u + 1)..g.n() {
                let (pu, pv) = (part[u], part[v]);
                if pu == pv {
                    continue;
                }
                let (wu, wv) = (g.vertex_weight(u), g.vertex_weight(v));
                if wu == wv {
                    continue; // no weight change
                }
                let ne = e - ex(weights[pu]) - ex(weights[pv])
                    + ex(weights[pu] - wu + wv)
                    + ex(weights[pv] - wv + wu);
                if ne < e && best_swap.is_none_or(|(_, _, be)| ne < be) {
                    best_swap = Some((u, v, ne));
                }
            }
        }
        match best_swap {
            Some((u, v, ne)) => {
                let (pu, pv) = (part[u], part[v]);
                let (wu, wv) = (g.vertex_weight(u), g.vertex_weight(v));
                weights[pu] = weights[pu] - wu + wv;
                weights[pv] = weights[pv] - wv + wu;
                part.swap(u, v);
                e = ne;
            }
            None => return, // stuck: bounds unreachable from here
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two dense squares joined by one edge, with a deliberately bad
    /// initial split.
    fn squares() -> WeightedGraph {
        let mut g = WeightedGraph::new(8);
        for base in [0, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    g.add_edge(base + i, base + j, 10);
                }
            }
        }
        g.add_edge(3, 4, 1);
        g
    }

    #[test]
    fn refinement_fixes_a_swapped_pair() {
        let g = squares();
        // Swap vertices 0 and 4 relative to the natural split.
        let mut part = vec![1, 0, 0, 0, 0, 1, 1, 1];
        let mut pw = vec![4u64, 4];
        let before = g.cut_weight(&part);
        // Loose bounds let the move phase fix it with two single moves.
        refine(&g, &mut part, &mut pw, SizeBounds::new(3, 5), 8);
        let after = g.cut_weight(&part);
        assert!(after < before, "cut {before} -> {after}");
        assert_eq!(after, 1, "optimal split has cut 1");
        assert_eq!(pw, vec![4, 4]);
    }

    #[test]
    fn swap_phase_fixes_a_swapped_pair_under_tight_bounds() {
        let g = squares();
        let mut part = vec![1, 0, 0, 0, 0, 1, 1, 1];
        let mut pw = vec![4u64, 4];
        // Exactly tight bounds: single moves are impossible, only the
        // swap phase can untangle the pair.
        refine(&g, &mut part, &mut pw, SizeBounds::new(4, 4), 8);
        assert_eq!(g.cut_weight(&part), 1, "optimal split has cut 1");
        assert_eq!(pw, vec![4, 4]);
    }

    #[test]
    fn bounds_block_degenerate_moves() {
        let g = squares();
        let mut part = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let mut pw = vec![4u64, 4];
        // Already optimal; tight bounds must keep it intact.
        refine(&g, &mut part, &mut pw, SizeBounds::new(4, 4), 4);
        assert_eq!(part, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn gain_is_reported() {
        let g = squares();
        let csr = CsrGraph::from_graph(&g);
        let mut part = vec![1, 0, 0, 0, 0, 1, 1, 1];
        let mut pw = vec![4u64, 4];
        let gain = fm_move_phase(&csr, &mut part, &mut pw, SizeBounds::new(3, 5));
        assert!(gain > 0);
    }

    #[test]
    fn swap_gain_is_reported() {
        let g = squares();
        let csr = CsrGraph::from_graph(&g);
        let mut part = vec![1, 0, 0, 0, 0, 1, 1, 1];
        let gain = kl_swap_phase(&csr, &mut part, 2);
        assert!(gain > 0);
        assert_eq!(g.cut_weight(&part), 1);
    }
}
