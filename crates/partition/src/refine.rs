//! Fiduccia–Mattheyses-style boundary refinement.
//!
//! Greedy passes move boundary vertices to the neighbouring part with the
//! largest cut-weight gain, subject to the size bounds. Moves with zero or
//! negative gain are rejected, so each pass monotonically improves the cut
//! and termination is guaranteed.

use hcft_graph::{CsrGraph, WeightedGraph};

use crate::SizeBounds;

/// One refinement pass. Returns the total gain achieved (reduction of the
/// cut weight).
pub fn refine_pass(
    g: &WeightedGraph,
    part_of: &mut [usize],
    part_weight: &mut [u64],
    bounds: SizeBounds,
) -> u64 {
    let mut total_gain = 0u64;
    for u in 0..g.n() {
        let home = part_of[u];
        // Connectivity of u to each adjacent part.
        let mut link_home = 0u64;
        let mut best: Option<(usize, u64)> = None;
        let mut links: Vec<(usize, u64)> = Vec::new();
        for &(v, w) in g.neighbors(u) {
            let p = part_of[v as usize];
            if p == home {
                link_home += w;
            } else {
                match links.iter_mut().find(|(q, _)| *q == p) {
                    Some((_, lw)) => *lw += w,
                    None => links.push((p, w)),
                }
            }
        }
        for (p, lw) in links {
            if best.is_none_or(|(_, bw)| lw > bw) {
                best = Some((p, lw));
            }
        }
        let Some((target, link_target)) = best else {
            continue;
        };
        if link_target <= link_home {
            continue; // no positive gain
        }
        let wu = g.vertex_weight(u);
        // Respect both bounds: the source must not fall below min, the
        // target must not exceed max.
        if part_weight[home] < bounds.min_weight + wu
            || part_weight[target] + wu > bounds.max_weight
        {
            continue;
        }
        part_of[u] = target;
        part_weight[home] -= wu;
        part_weight[target] += wu;
        total_gain += link_target - link_home;
    }
    total_gain
}

/// One pairwise-swap pass (Kernighan–Lin style): exchange equal-weight
/// boundary vertices of adjacent parts when the swap reduces the cut.
/// Swaps keep part weights unchanged, so they work even under exactly
/// tight bounds where single moves are impossible. O(boundary²) — only
/// used on graphs small enough for that to be cheap (node graphs).
pub fn swap_pass(g: &CsrGraph, part_of: &mut [usize]) -> u64 {
    let boundary: Vec<usize> = (0..g.n())
        .filter(|&u| {
            g.neighbors(u)
                .0
                .iter()
                .any(|&v| part_of[v as usize] != part_of[u])
        })
        .collect();
    let link = |u: usize, p: usize, part_of: &[usize]| -> u64 {
        let (nbrs, wgts) = g.neighbors(u);
        nbrs.iter()
            .zip(wgts)
            .filter(|&(&v, _)| part_of[v as usize] == p)
            .map(|(_, &w)| w)
            .sum()
    };
    let mut total_gain = 0u64;
    for i in 0..boundary.len() {
        for j in (i + 1)..boundary.len() {
            let (u, v) = (boundary[i], boundary[j]);
            let (pu, pv) = (part_of[u], part_of[v]);
            if pu == pv || g.vertex_weight(u) != g.vertex_weight(v) {
                continue;
            }
            let gain_u = link(u, pv, part_of) as i128 - link(u, pu, part_of) as i128;
            let gain_v = link(v, pu, part_of) as i128 - link(v, pv, part_of) as i128;
            // Binary-search edge lookup: this O(boundary²) loop hits it
            // on every candidate pair.
            let gain = gain_u + gain_v - 2 * g.edge_weight(u, v) as i128;
            if gain > 0 {
                part_of[u] = pv;
                part_of[v] = pu;
                total_gain += gain as u64;
            }
        }
    }
    total_gain
}

/// Largest graph on which the quadratic swap pass is attempted.
const SWAP_PASS_LIMIT: usize = 512;

/// Run refinement passes until a pass yields no gain (at most
/// `max_passes`). Falls back to pairwise swaps when single moves dry up,
/// which matters under exactly tight bounds.
pub fn refine(
    g: &WeightedGraph,
    part_of: &mut [usize],
    part_weight: &mut [u64],
    bounds: SizeBounds,
    max_passes: usize,
) {
    // The swap pass probes pairwise edge weights; build the sorted-CSR
    // view once for the whole refinement and binary-search it.
    let csr = (g.n() <= SWAP_PASS_LIMIT).then(|| CsrGraph::from_graph(g));
    for _ in 0..max_passes {
        let mut gain = refine_pass(g, part_of, part_weight, bounds);
        if let Some(csr) = &csr {
            gain += swap_pass(csr, part_of);
        }
        if gain == 0 {
            break;
        }
    }
}

fn part_weights_for(g: &WeightedGraph, part: &[usize], k: usize) -> Vec<u64> {
    let mut w = vec![0u64; k];
    for (u, &p) in part.iter().enumerate() {
        w[p] += g.vertex_weight(u);
    }
    w
}

/// Move (or swap) vertices between parts until all weight bounds hold. Every
/// applied change strictly reduces the total bound violation ("excess"),
/// which guarantees termination — naive over→under shuttling can
/// oscillate forever once coarsening produces mixed vertex weights under
/// exactly tight bounds. Gives up (leaving the best assignment found)
/// when no excess-reducing change exists.
pub fn repair_bounds(g: &WeightedGraph, part: &mut [usize], k: usize, b: SizeBounds) {
    let excess = |w: &[u64]| -> u64 {
        w.iter()
            .map(|&x| x.saturating_sub(b.max_weight) + b.min_weight.saturating_sub(x))
            .sum()
    };
    let affinity = |u: usize, p: usize, part: &[usize]| -> i128 {
        g.neighbors(u)
            .iter()
            .filter(|&&(v, _)| part[v as usize] == p)
            .map(|&(_, w)| w as i128)
            .sum()
    };
    let mut weights = part_weights_for(g, part, k);
    let mut e = excess(&weights);
    while e > 0 {
        // Best single move: largest excess reduction, cut affinity as
        // the tie-break.
        let mut best_move: Option<(usize, usize, u64, i128)> = None;
        for u in 0..g.n() {
            let src = part[u];
            let w = g.vertex_weight(u);
            for dst in 0..k {
                if dst == src {
                    continue;
                }
                let mut nw = weights.clone();
                nw[src] -= w;
                nw[dst] += w;
                let ne = excess(&nw);
                if ne >= e {
                    continue;
                }
                let aff = affinity(u, dst, part) - affinity(u, src, part);
                if best_move.is_none_or(|(_, _, be, ba)| ne < be || (ne == be && aff > ba)) {
                    best_move = Some((u, dst, ne, aff));
                }
            }
        }
        if let Some((u, dst, ne, _)) = best_move {
            let src = part[u];
            let w = g.vertex_weight(u);
            part[u] = dst;
            weights[src] -= w;
            weights[dst] += w;
            e = ne;
            continue;
        }
        // No single move helps (e.g. only weight-2 vertices with an odd
        // imbalance): try a pairwise swap that reduces the excess.
        let mut best_swap: Option<(usize, usize, u64)> = None;
        for u in 0..g.n() {
            for v in (u + 1)..g.n() {
                let (pu, pv) = (part[u], part[v]);
                if pu == pv {
                    continue;
                }
                let (wu, wv) = (g.vertex_weight(u), g.vertex_weight(v));
                if wu == wv {
                    continue; // no weight change
                }
                let mut nw = weights.clone();
                nw[pu] = nw[pu] - wu + wv;
                nw[pv] = nw[pv] - wv + wu;
                let ne = excess(&nw);
                if ne < e && best_swap.is_none_or(|(_, _, be)| ne < be) {
                    best_swap = Some((u, v, ne));
                }
            }
        }
        match best_swap {
            Some((u, v, ne)) => {
                let (pu, pv) = (part[u], part[v]);
                let (wu, wv) = (g.vertex_weight(u), g.vertex_weight(v));
                weights[pu] = weights[pu] - wu + wv;
                weights[pv] = weights[pv] - wv + wu;
                part.swap(u, v);
                e = ne;
            }
            None => return, // stuck: bounds unreachable from here
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two dense squares joined by one edge, with a deliberately bad
    /// initial split.
    fn squares() -> WeightedGraph {
        let mut g = WeightedGraph::new(8);
        for base in [0, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    g.add_edge(base + i, base + j, 10);
                }
            }
        }
        g.add_edge(3, 4, 1);
        g
    }

    #[test]
    fn refinement_fixes_a_swapped_pair() {
        let g = squares();
        // Swap vertices 0 and 4 relative to the natural split.
        let mut part = vec![1, 0, 0, 0, 0, 1, 1, 1];
        let mut pw = vec![4u64, 4];
        let before = g.cut_weight(&part);
        // Bounds must leave slack for single-vertex moves: with exactly
        // tight bounds a pairwise swap can never be expressed as two legal
        // single moves.
        refine(&g, &mut part, &mut pw, SizeBounds::new(3, 5), 8);
        let after = g.cut_weight(&part);
        assert!(after < before, "cut {before} -> {after}");
        assert_eq!(after, 1, "optimal split has cut 1");
        assert_eq!(pw, vec![4, 4]);
    }

    #[test]
    fn bounds_block_degenerate_moves() {
        let g = squares();
        let mut part = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let mut pw = vec![4u64, 4];
        // Already optimal; tight bounds must keep it intact.
        refine(&g, &mut part, &mut pw, SizeBounds::new(4, 4), 4);
        assert_eq!(part, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn gain_is_reported() {
        let g = squares();
        let mut part = vec![1, 0, 0, 0, 0, 1, 1, 1];
        let mut pw = vec![4u64, 4];
        let gain = refine_pass(&g, &mut part, &mut pw, SizeBounds::new(3, 5));
        assert!(gain > 0);
    }
}
