//! Clauset–Newman–Moore greedy modularity agglomeration with size caps.
//!
//! Starts from singleton communities and repeatedly merges the pair with
//! the largest modularity gain ΔQ, skipping merges that would exceed the
//! weight cap. Once no positive-ΔQ merge remains, communities below the
//! minimum weight are folded into their most-connected neighbour (the
//! paper needs *every* L1 cluster to hold ≥ 4 nodes so that erasure
//! groups can be distributed inside it).
//!
//! Complexity is O(n² · merges) in this straightforward implementation —
//! ample for node graphs (the paper's largest is 64–128 nodes).

use hcft_graph::WeightedGraph;

use crate::SizeBounds;

/// Agglomerate `g` into communities within `bounds` (by vertex weight).
/// Returns the part assignment.
pub fn modularity_clusters(g: &WeightedGraph, bounds: SizeBounds) -> Vec<usize> {
    let n = g.n();
    assert!(n > 0);
    let two_w: f64 = 2.0 * g.total_edge_weight() as f64;
    // Community state: `comm[u]` = current community of vertex u;
    // communities tracked via representative ids.
    let mut comm: Vec<usize> = (0..n).collect();
    let mut weight: Vec<u64> = (0..n).map(|u| g.vertex_weight(u)).collect();
    // deg[c] = total weighted degree of community c (for ΔQ).
    let mut deg: Vec<f64> = (0..n).map(|u| g.degree(u) as f64).collect();
    // links[c][d] = weight between communities c and d.
    let mut links: Vec<std::collections::HashMap<usize, f64>> = (0..n)
        .map(|u| {
            let mut m = std::collections::HashMap::new();
            for &(v, w) in g.neighbors(u) {
                *m.entry(v as usize).or_insert(0.0) += w as f64;
            }
            m
        })
        .collect();
    let mut alive: Vec<bool> = vec![true; n];

    let delta_q = |e_cd: f64, deg_c: f64, deg_d: f64| -> f64 {
        if two_w == 0.0 {
            return 0.0;
        }
        e_cd / two_w - (deg_c * deg_d) / (two_w * two_w / 2.0)
    };

    loop {
        // Find the best feasible merge.
        let mut best: Option<(f64, usize, usize)> = None;
        for c in 0..n {
            if !alive[c] {
                continue;
            }
            for (&d, &e_cd) in &links[c] {
                if d <= c || !alive[d] {
                    continue;
                }
                if weight[c] + weight[d] > bounds.max_weight {
                    continue;
                }
                let dq = delta_q(e_cd, deg[c], deg[d]);
                if best.is_none_or(|(bq, _, _)| dq > bq) {
                    best = Some((dq, c, d));
                }
            }
        }
        match best {
            Some((dq, c, d)) if dq > 0.0 => merge(
                c,
                d,
                &mut comm,
                &mut weight,
                &mut deg,
                &mut links,
                &mut alive,
            ),
            _ => break,
        }
    }

    // Enforce the minimum weight: fold undersized communities into their
    // most-connected merge-able neighbour (or, failing that, the smallest
    // community that fits).
    while let Some(c) = (0..n).find(|&c| alive[c] && weight[c] < bounds.min_weight) {
        let neighbour = links[c]
            .iter()
            .filter(|&(&d, _)| alive[d] && d != c && weight[c] + weight[d] <= bounds.max_weight)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite weights"))
            .map(|(&d, _)| d);
        let target = neighbour.or_else(|| {
            (0..n)
                .filter(|&d| alive[d] && d != c && weight[c] + weight[d] <= bounds.max_weight)
                .min_by_key(|&d| weight[d])
        });
        match target {
            Some(d) => {
                let (a, b) = if c < d { (c, d) } else { (d, c) };
                merge(
                    a,
                    b,
                    &mut comm,
                    &mut weight,
                    &mut deg,
                    &mut links,
                    &mut alive,
                );
            }
            None => break, // nothing can absorb it without breaking the cap
        }
    }

    // Compact to 0..k.
    let mut remap = vec![usize::MAX; n];
    let mut next = 0;
    let mut out = vec![0usize; n];
    for u in 0..n {
        let c = comm[u];
        if remap[c] == usize::MAX {
            remap[c] = next;
            next += 1;
        }
        out[u] = remap[c];
    }
    // Agglomeration alone cannot always hit exact size bounds (folding a
    // 3-node community into a 4-node one would burst a tight cap); a
    // final excess-reducing repair pass moves/swaps individual vertices
    // until the bounds hold (or no improving change exists).
    crate::refine::repair_bounds(g, &mut out, next, bounds);
    // If undersized communities remain, the community *count* is wrong
    // (e.g. CNM left four 3-node parts where three 4-node parts fit):
    // dissolve the smallest undersized part, spreading its vertices by
    // affinity over parts with spare capacity, and repair again.
    let mut k = next;
    loop {
        let mut pw = vec![0u64; k];
        for (u, &p) in out.iter().enumerate() {
            pw[p] += g.vertex_weight(u);
        }
        let Some(victim) = (0..k)
            .filter(|&p| pw[p] < bounds.min_weight)
            .min_by_key(|&p| pw[p])
        else {
            break;
        };
        let members: Vec<usize> = (0..n).filter(|&u| out[u] == victim).collect();
        let mut placed_all = true;
        for u in members {
            let w = g.vertex_weight(u);
            let target = (0..k)
                .filter(|&p| p != victim && pw[p] + w <= bounds.max_weight)
                .max_by_key(|&p| {
                    let aff: u64 = g
                        .neighbors(u)
                        .iter()
                        .filter(|&&(v, _)| out[v as usize] == p)
                        .map(|&(_, ew)| ew)
                        .sum();
                    // Prefer undersized receivers, then affinity.
                    (u64::from(pw[p] < bounds.min_weight), aff)
                });
            match target {
                Some(p) => {
                    out[u] = p;
                    pw[p] += w;
                    pw[victim] -= w;
                }
                None => {
                    placed_all = false;
                    break;
                }
            }
        }
        if !placed_all {
            break; // bounds unreachable; leave the best effort
        }
        // Compact out the dissolved (now empty) part id.
        for x in out.iter_mut() {
            if *x > victim {
                *x -= 1;
            }
        }
        k -= 1;
        crate::refine::repair_bounds(g, &mut out, k, bounds);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn merge(
    c: usize,
    d: usize,
    comm: &mut [usize],
    weight: &mut [u64],
    deg: &mut [f64],
    links: &mut [std::collections::HashMap<usize, f64>],
    alive: &mut [bool],
) {
    // Absorb d into c.
    for x in comm.iter_mut() {
        if *x == d {
            *x = c;
        }
    }
    weight[c] += weight[d];
    deg[c] += deg[d];
    alive[d] = false;
    // Fold d's links into c's; drop the now-internal c↔d edge.
    let d_links = std::mem::take(&mut links[d]);
    for (e, w) in d_links {
        links[e].remove(&d);
        if e == c {
            continue;
        }
        *links[c].entry(e).or_insert(0.0) += w;
    }
    links[c].remove(&d);
    links[c].remove(&c);
    // Restore symmetry: every neighbour's view of c matches c's view.
    let entries: Vec<(usize, f64)> = links[c].iter().map(|(&e, &w)| (e, w)).collect();
    for (e, w) in entries {
        links[e].insert(c, w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique_chain(c: usize, s: usize) -> WeightedGraph {
        let mut g = WeightedGraph::new(c * s);
        for q in 0..c {
            for i in 0..s {
                for j in (i + 1)..s {
                    g.add_edge(q * s + i, q * s + j, 50);
                }
            }
            if q + 1 < c {
                g.add_edge(q * s + s - 1, (q + 1) * s, 1);
            }
        }
        g
    }

    #[test]
    fn recovers_planted_communities() {
        let g = clique_chain(4, 5);
        let part = modularity_clusters(&g, SizeBounds::new(1, 5));
        // Each clique must be one community.
        for q in 0..4 {
            let p0 = part[q * 5];
            for i in 1..5 {
                assert_eq!(part[q * 5 + i], p0, "clique {q} split");
            }
        }
        // And distinct cliques distinct communities (cap enforces it).
        assert_ne!(part[0], part[5]);
    }

    #[test]
    fn max_cap_prevents_oversized_merges() {
        let g = clique_chain(2, 4);
        let part = modularity_clusters(&g, SizeBounds::new(1, 4));
        let k = part.iter().copied().max().expect("nonempty") + 1;
        assert_eq!(k, 2);
    }

    #[test]
    fn min_bound_folds_small_communities() {
        // A path of 8: modularity alone may stop early; min weight 4
        // forces ≥4-vertex clusters.
        let mut g = WeightedGraph::new(8);
        for i in 0..7 {
            g.add_edge(i, i + 1, 10);
        }
        let part = modularity_clusters(&g, SizeBounds::new(4, 8));
        let mut sizes = std::collections::HashMap::new();
        for &p in &part {
            *sizes.entry(p).or_insert(0usize) += 1;
        }
        for (&p, &s) in &sizes {
            assert!(s >= 4, "community {p} has size {s} < 4");
        }
    }

    #[test]
    fn respects_vertex_weights() {
        let mut g = clique_chain(2, 3);
        for u in 0..6 {
            g.set_vertex_weight(u, 4);
        }
        // Weight cap 12 = 3 vertices.
        let part = modularity_clusters(&g, SizeBounds::new(4, 12));
        let k = part.iter().copied().max().expect("nonempty") + 1;
        assert_eq!(k, 2);
    }

    #[test]
    fn edgeless_graph_survives() {
        let g = WeightedGraph::new(4);
        // No edges → no merges possible beyond the min-fold fallback,
        // which also finds no links; everything stays singleton if min=1.
        let part = modularity_clusters(&g, SizeBounds::new(1, 4));
        assert_eq!(part, vec![0, 1, 2, 3]);
    }
}

#[cfg(test)]
mod repair_regression {
    use super::*;
    use crate::check_partition;

    /// Regression (found by the partition bench): on a 64-node ladder
    /// with exact bounds (4, 4), plain CNM + min-folding strands a
    /// 3-node community; the repair pass must fix it.
    #[test]
    fn ladder_with_exact_bounds_yields_valid_partition() {
        let mut g = WeightedGraph::new(64);
        for n in 0..63 {
            g.add_edge(n, n + 1, 10_000);
        }
        for n in 0..62 {
            g.add_edge(n, n + 2, 500);
        }
        let bounds = SizeBounds::new(4, 4);
        let part = modularity_clusters(&g, bounds);
        check_partition(&g, &part, Some(bounds)).expect("valid 16x4 partition");
    }
}
