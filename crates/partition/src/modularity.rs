//! Clauset–Newman–Moore greedy modularity agglomeration with size caps.
//!
//! Starts from singleton communities and repeatedly merges the pair with
//! the largest modularity gain ΔQ, skipping merges that would exceed the
//! weight cap. Once no positive-ΔQ merge remains, communities below the
//! minimum weight are folded into their most-connected neighbour (the
//! paper needs *every* L1 cluster to hold ≥ 4 nodes so that erasure
//! groups can be distributed inside it).
//!
//! Merge selection runs over a lazy-deletion max-heap of candidate pairs
//! (ΔQ descending, lowest community pair on ties): each merge bumps the
//! surviving community's stamp, invalidating every heap entry that
//! referenced its old adjacency, and pushes fresh candidates for the
//! merged row only. Amortised cost is O(m log n) over the whole
//! agglomeration — the straight O(n² · merges) rescan this replaced is
//! retained as [`modularity_clusters_reference`] and the two engines
//! produce identical partitions (property-tested, and enforced as a
//! benchmark gate by `bench_partition`).
//!
//! Community adjacency is kept as sorted `(community, weight)` rows
//! seeded from the graph's [`CsrGraph`] form and merged by merge-join.
//! Besides dropping per-edge hashing, the sorted rows make ΔQ
//! tie-breaking canonical (lowest community pair wins); the previous
//! `HashMap` rows iterated in randomized order, so ties could resolve
//! differently between runs of the same input.

use std::collections::{BTreeSet, BinaryHeap};

use hcft_graph::{CsrGraph, WeightedGraph};

use crate::SizeBounds;

/// Sorted community adjacency row: `(neighbour community, edge weight)`,
/// ascending by community id, no duplicates.
type LinkRow = Vec<(u32, f64)>;

/// Mutable agglomeration state shared by both merge-selection engines.
struct CnmState {
    n: usize,
    /// 2·(total edge weight), the ΔQ normaliser.
    two_w: f64,
    /// `comm[u]` = current community (representative id) of vertex u.
    comm: Vec<usize>,
    /// Total vertex weight per community.
    weight: Vec<u64>,
    /// Total weighted degree per community (for ΔQ).
    deg: Vec<f64>,
    /// Sorted `(d, weight)` rows between communities.
    links: Vec<LinkRow>,
    alive: Vec<bool>,
}

impl CnmState {
    fn new(g: &WeightedGraph) -> Self {
        let n = g.n();
        assert!(n > 0);
        let csr = CsrGraph::from_graph(g);
        let two_w: f64 = 2.0 * csr.total_edge_weight() as f64;
        let links: Vec<LinkRow> = (0..n)
            .map(|u| {
                let (nbrs, wgts) = csr.neighbors(u);
                nbrs.iter()
                    .zip(wgts)
                    .map(|(&v, &w)| (v, w as f64))
                    .collect()
            })
            .collect();
        CnmState {
            n,
            two_w,
            comm: (0..n).collect(),
            weight: (0..n).map(|u| csr.vertex_weight(u)).collect(),
            deg: (0..n).map(|u| csr.degree(u) as f64).collect(),
            links,
            alive: vec![true; n],
        }
    }

    fn delta_q(&self, e_cd: f64, deg_c: f64, deg_d: f64) -> f64 {
        if self.two_w == 0.0 {
            return 0.0;
        }
        e_cd / self.two_w - (deg_c * deg_d) / (self.two_w * self.two_w / 2.0)
    }

    /// Absorb `d` into `c` (requires `c < d` for canonical representatives
    /// during agglomeration; the fold phase also honours this).
    fn merge(&mut self, c: usize, d: usize) {
        for x in self.comm.iter_mut() {
            if *x == d {
                *x = c;
            }
        }
        self.weight[c] += self.weight[d];
        self.deg[c] += self.deg[d];
        self.alive[d] = false;
        // Drop every back-reference to d, then fold d's row into c's via a
        // merge-join of the two sorted rows (the internal c↔d edge and any
        // self entry vanish in the join).
        let d_links = std::mem::take(&mut self.links[d]);
        for &(e, _) in &d_links {
            remove_link(&mut self.links[e as usize], d as u32);
        }
        remove_link(&mut self.links[c], d as u32);
        let c_links = std::mem::take(&mut self.links[c]);
        let merged = merge_rows(&c_links, &d_links, c as u32, d as u32);
        // Restore symmetry: every neighbour's view of c matches c's view.
        for &(e, w) in &merged {
            set_link(&mut self.links[e as usize], c as u32, w);
        }
        self.links[c] = merged;
    }
}

/// Agglomerate `g` into communities within `bounds` (by vertex weight),
/// selecting merges through the lazy-deletion candidate heap. Returns
/// the part assignment.
pub fn modularity_clusters(g: &WeightedGraph, bounds: SizeBounds) -> Vec<usize> {
    let mut st = CnmState::new(g);
    agglomerate_heap(&mut st, bounds);
    fold_undersized(&mut st, bounds);
    finish(g, &st, bounds)
}

/// The retained quadratic reference: rescans every candidate pair per
/// merge, exactly as the original O(n² · merges) implementation did.
/// Produces partitions identical to [`modularity_clusters`]; kept for
/// the equivalence proptests and the `bench_partition` speedup gate.
pub fn modularity_clusters_reference(g: &WeightedGraph, bounds: SizeBounds) -> Vec<usize> {
    let mut st = CnmState::new(g);
    agglomerate_scan(&mut st, bounds);
    fold_undersized(&mut st, bounds);
    finish(g, &st, bounds)
}

/// A candidate merge in the lazy-deletion heap. Ordered by ΔQ descending
/// with the *lowest* `(c, d)` pair winning ties — the same selection the
/// reference scan makes by visiting pairs in ascending order and keeping
/// strictly-better candidates only.
struct Cand {
    dq: f64,
    c: u32,
    d: u32,
    stamp_c: u32,
    stamp_d: u32,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // ΔQ values are finite by construction (ratios of finite sums).
        self.dq
            .partial_cmp(&other.dq)
            .expect("finite ΔQ")
            .then_with(|| (other.c, other.d).cmp(&(self.c, self.d)))
    }
}

/// Heap-based merge selection: O(m log n) amortised. Stamps invalidate
/// candidates lazily — a popped entry is applied only when both
/// endpoints are alive and their stamps still match, which also pins the
/// weights (and therefore the cap feasibility) checked at push time.
/// Pairs over the weight cap are never pushed: community weights only
/// grow, so an infeasible pair can never become feasible again.
fn agglomerate_heap(st: &mut CnmState, bounds: SizeBounds) {
    let n = st.n;
    let mut stamp = vec![0u32; n];
    let mut heap: BinaryHeap<Cand> = BinaryHeap::new();
    let mut pushes = 0u64;
    let mut pops = 0u64;
    let mut stale = 0u64;
    for c in 0..n {
        for &(d, e_cd) in &st.links[c] {
            let d = d as usize;
            if d <= c || st.weight[c] + st.weight[d] > bounds.max_weight {
                continue;
            }
            let dq = st.delta_q(e_cd, st.deg[c], st.deg[d]);
            if dq > 0.0 {
                heap.push(Cand {
                    dq,
                    c: c as u32,
                    d: d as u32,
                    stamp_c: 0,
                    stamp_d: 0,
                });
                pushes += 1;
            }
        }
    }
    while let Some(cand) = heap.pop() {
        pops += 1;
        let (c, d) = (cand.c as usize, cand.d as usize);
        if !st.alive[c] || !st.alive[d] || stamp[c] != cand.stamp_c || stamp[d] != cand.stamp_d {
            stale += 1;
            continue;
        }
        st.merge(c, d);
        stamp[c] = stamp[c].wrapping_add(1);
        stamp[d] = stamp[d].wrapping_add(1);
        // Only pairs touching c changed; push fresh candidates for the
        // merged row. Everything else in the heap stays valid.
        for &(e, e_ce) in &st.links[c] {
            let e = e as usize;
            if st.weight[c] + st.weight[e] > bounds.max_weight {
                continue;
            }
            let dq = st.delta_q(e_ce, st.deg[c], st.deg[e]);
            if dq > 0.0 {
                let (a, b) = if c < e { (c, e) } else { (e, c) };
                heap.push(Cand {
                    dq,
                    c: a as u32,
                    d: b as u32,
                    stamp_c: stamp[a],
                    stamp_d: stamp[b],
                });
                pushes += 1;
            }
        }
    }
    let reg = hcft_telemetry::Registry::global();
    reg.counter("partition.cnm.heap_pushes").add(pushes);
    reg.counter("partition.cnm.heap_pops").add(pops);
    reg.counter("partition.cnm.heap_stale_pops").add(stale);
}

/// Reference merge selection: full rescan of every feasible pair per
/// merge (O(n² · merges) flavour — really O(L · merges) for L total link
/// entries). Ties resolve to the first pair encountered in ascending
/// `(c, d)` order, matching the heap's tie-break exactly.
fn agglomerate_scan(st: &mut CnmState, bounds: SizeBounds) {
    let n = st.n;
    loop {
        let mut best: Option<(f64, usize, usize)> = None;
        for c in 0..n {
            if !st.alive[c] {
                continue;
            }
            for &(d, e_cd) in &st.links[c] {
                let d = d as usize;
                if d <= c || !st.alive[d] {
                    continue;
                }
                if st.weight[c] + st.weight[d] > bounds.max_weight {
                    continue;
                }
                let dq = st.delta_q(e_cd, st.deg[c], st.deg[d]);
                if best.is_none_or(|(bq, _, _)| dq > bq) {
                    best = Some((dq, c, d));
                }
            }
        }
        match best {
            Some((dq, c, d)) if dq > 0.0 => st.merge(c, d),
            _ => break,
        }
    }
}

/// Enforce the minimum weight: fold undersized communities into their
/// most-connected merge-able neighbour (or, failing that, the smallest
/// community that fits). Candidates are drained lowest-id first through
/// an ordered set — identical order to the original restart-from-zero
/// scan (merging never shrinks a community, so the only community that
/// can need re-folding is the merge result itself), without the O(n)
/// rescan per fold.
fn fold_undersized(st: &mut CnmState, bounds: SizeBounds) {
    let n = st.n;
    let mut under: BTreeSet<usize> = (0..n)
        .filter(|&c| st.alive[c] && st.weight[c] < bounds.min_weight)
        .collect();
    while let Some(&c) = under.iter().next() {
        under.remove(&c);
        if !st.alive[c] || st.weight[c] >= bounds.min_weight {
            continue;
        }
        let neighbour = st.links[c]
            .iter()
            .filter(|&&(d, _)| {
                let d = d as usize;
                st.alive[d] && d != c && st.weight[c] + st.weight[d] <= bounds.max_weight
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weights"))
            .map(|&(d, _)| d as usize);
        let target = neighbour.or_else(|| {
            (0..n)
                .filter(|&d| {
                    st.alive[d] && d != c && st.weight[c] + st.weight[d] <= bounds.max_weight
                })
                .min_by_key(|&d| st.weight[d])
        });
        match target {
            Some(d) => {
                let (a, b) = if c < d { (c, d) } else { (d, c) };
                st.merge(a, b);
                if st.weight[a] < bounds.min_weight {
                    under.insert(a);
                }
            }
            None => break, // nothing can absorb it without breaking the cap
        }
    }
}

/// Compact community ids to `0..k` and run the bound-repair passes.
fn finish(g: &WeightedGraph, st: &CnmState, bounds: SizeBounds) -> Vec<usize> {
    let n = st.n;
    let mut remap = vec![usize::MAX; n];
    let mut next = 0;
    let mut out = vec![0usize; n];
    for (u, slot) in out.iter_mut().enumerate() {
        let c = st.comm[u];
        if remap[c] == usize::MAX {
            remap[c] = next;
            next += 1;
        }
        *slot = remap[c];
    }
    // Agglomeration alone cannot always hit exact size bounds (folding a
    // 3-node community into a 4-node one would burst a tight cap); a
    // final excess-reducing repair pass moves/swaps individual vertices
    // until the bounds hold (or no improving change exists).
    crate::refine::repair_bounds(g, &mut out, next, bounds);
    // If undersized communities remain, the community *count* is wrong
    // (e.g. CNM left four 3-node parts where three 4-node parts fit):
    // dissolve the smallest undersized part, spreading its vertices by
    // affinity over parts with spare capacity, and repair again.
    let mut k = next;
    loop {
        let mut pw = vec![0u64; k];
        for (u, &p) in out.iter().enumerate() {
            pw[p] += g.vertex_weight(u);
        }
        let Some(victim) = (0..k)
            .filter(|&p| pw[p] < bounds.min_weight)
            .min_by_key(|&p| pw[p])
        else {
            break;
        };
        let members: Vec<usize> = (0..n).filter(|&u| out[u] == victim).collect();
        let mut placed_all = true;
        for u in members {
            let w = g.vertex_weight(u);
            let target = (0..k)
                .filter(|&p| p != victim && pw[p] + w <= bounds.max_weight)
                .max_by_key(|&p| {
                    let aff: u64 = g
                        .neighbors(u)
                        .iter()
                        .filter(|&&(v, _)| out[v as usize] == p)
                        .map(|&(_, ew)| ew)
                        .sum();
                    // Prefer undersized receivers, then affinity.
                    (u64::from(pw[p] < bounds.min_weight), aff)
                });
            match target {
                Some(p) => {
                    out[u] = p;
                    pw[p] += w;
                    pw[victim] -= w;
                }
                None => {
                    placed_all = false;
                    break;
                }
            }
        }
        if !placed_all {
            break; // bounds unreachable; leave the best effort
        }
        // Compact out the dissolved (now empty) part id.
        for x in out.iter_mut() {
            if *x > victim {
                *x -= 1;
            }
        }
        k -= 1;
        crate::refine::repair_bounds(g, &mut out, k, bounds);
    }
    out
}

/// Remove `key` from a sorted row, if present.
fn remove_link(row: &mut LinkRow, key: u32) {
    if let Ok(i) = row.binary_search_by_key(&key, |&(v, _)| v) {
        row.remove(i);
    }
}

/// Insert or overwrite `key` in a sorted row.
fn set_link(row: &mut LinkRow, key: u32, w: f64) {
    match row.binary_search_by_key(&key, |&(v, _)| v) {
        Ok(i) => row[i].1 = w,
        Err(i) => row.insert(i, (key, w)),
    }
}

/// Merge-join two sorted rows, summing weights on equal keys and
/// dropping `skip_a`/`skip_b` (the merging communities themselves).
fn merge_rows(a: &[(u32, f64)], b: &[(u32, f64)], skip_a: u32, skip_b: u32) -> LinkRow {
    let mut out = LinkRow::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let (key, w) = match (a.get(i), b.get(j)) {
            (Some(&(ka, wa)), Some(&(kb, wb))) if ka == kb => {
                i += 1;
                j += 1;
                (ka, wa + wb)
            }
            (Some(&(ka, wa)), Some(&(kb, _))) if ka < kb => {
                i += 1;
                (ka, wa)
            }
            (Some(_), Some(&(kb, wb))) => {
                j += 1;
                (kb, wb)
            }
            (Some(&(ka, wa)), None) => {
                i += 1;
                (ka, wa)
            }
            (None, Some(&(kb, wb))) => {
                j += 1;
                (kb, wb)
            }
            (None, None) => unreachable!("loop condition"),
        };
        if key != skip_a && key != skip_b {
            out.push((key, w));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique_chain(c: usize, s: usize) -> WeightedGraph {
        let mut g = WeightedGraph::new(c * s);
        for q in 0..c {
            for i in 0..s {
                for j in (i + 1)..s {
                    g.add_edge(q * s + i, q * s + j, 50);
                }
            }
            if q + 1 < c {
                g.add_edge(q * s + s - 1, (q + 1) * s, 1);
            }
        }
        g
    }

    #[test]
    fn recovers_planted_communities() {
        let g = clique_chain(4, 5);
        let part = modularity_clusters(&g, SizeBounds::new(1, 5));
        // Each clique must be one community.
        for q in 0..4 {
            let p0 = part[q * 5];
            for i in 1..5 {
                assert_eq!(part[q * 5 + i], p0, "clique {q} split");
            }
        }
        // And distinct cliques distinct communities (cap enforces it).
        assert_ne!(part[0], part[5]);
    }

    #[test]
    fn max_cap_prevents_oversized_merges() {
        let g = clique_chain(2, 4);
        let part = modularity_clusters(&g, SizeBounds::new(1, 4));
        let k = part.iter().copied().max().expect("nonempty") + 1;
        assert_eq!(k, 2);
    }

    #[test]
    fn min_bound_folds_small_communities() {
        // A path of 8: modularity alone may stop early; min weight 4
        // forces ≥4-vertex clusters.
        let mut g = WeightedGraph::new(8);
        for i in 0..7 {
            g.add_edge(i, i + 1, 10);
        }
        let part = modularity_clusters(&g, SizeBounds::new(4, 8));
        let mut sizes = std::collections::HashMap::new();
        for &p in &part {
            *sizes.entry(p).or_insert(0usize) += 1;
        }
        for (&p, &s) in &sizes {
            assert!(s >= 4, "community {p} has size {s} < 4");
        }
    }

    #[test]
    fn respects_vertex_weights() {
        let mut g = clique_chain(2, 3);
        for u in 0..6 {
            g.set_vertex_weight(u, 4);
        }
        // Weight cap 12 = 3 vertices.
        let part = modularity_clusters(&g, SizeBounds::new(4, 12));
        let k = part.iter().copied().max().expect("nonempty") + 1;
        assert_eq!(k, 2);
    }

    #[test]
    fn edgeless_graph_survives() {
        let g = WeightedGraph::new(4);
        // No edges → no merges possible beyond the min-fold fallback,
        // which also finds no links; everything stays singleton if min=1.
        let part = modularity_clusters(&g, SizeBounds::new(1, 4));
        assert_eq!(part, vec![0, 1, 2, 3]);
    }

    #[test]
    fn heap_and_reference_agree_on_planted_communities() {
        for (c, s) in [(4usize, 5usize), (2, 4), (6, 3)] {
            let g = clique_chain(c, s);
            let s = s as u64;
            for bounds in [SizeBounds::new(1, s), SizeBounds::new(2, 2 * s)] {
                assert_eq!(
                    modularity_clusters(&g, bounds),
                    modularity_clusters_reference(&g, bounds),
                    "engines diverged on clique_chain({c}, {s}) {bounds:?}"
                );
            }
        }
    }
}

#[cfg(test)]
mod repair_regression {
    use super::*;
    use crate::check_partition;

    /// Regression (found by the partition bench): on a 64-node ladder
    /// with exact bounds (4, 4), plain CNM + min-folding strands a
    /// 3-node community; the repair pass must fix it.
    #[test]
    fn ladder_with_exact_bounds_yields_valid_partition() {
        let mut g = WeightedGraph::new(64);
        for n in 0..63 {
            g.add_edge(n, n + 1, 10_000);
        }
        for n in 0..62 {
            g.add_edge(n, n + 2, 500);
        }
        let bounds = SizeBounds::new(4, 4);
        let part = modularity_clusters(&g, bounds);
        check_partition(&g, &part, Some(bounds)).expect("valid 16x4 partition");
    }
}
