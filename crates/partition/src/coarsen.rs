//! Heavy-edge-matching coarsening.
//!
//! Each coarsening level contracts a maximal matching that prefers heavy
//! edges, halving (roughly) the vertex count while preserving the cut
//! structure: a good partition of the coarse graph projects to a good
//! partition of the fine graph.

use hcft_graph::{CsrGraph, WeightedGraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// One level of coarsening: the coarse graph plus the fine→coarse map.
pub struct CoarseLevel {
    /// The contracted graph.
    pub graph: WeightedGraph,
    /// `map[fine_vertex] = coarse_vertex`.
    pub map: Vec<usize>,
}

/// Contract a heavy-edge maximal matching of `g`. Visit order is shuffled
/// with `seed` to avoid pathological orderings; ties break on heavier
/// edges. Returns `None` when no edge can be matched (no coarsening
/// progress possible).
///
/// The edge-rating phase — finding every vertex's heaviest neighbour —
/// is embarrassingly parallel and runs under rayon; the greedy matching
/// itself stays sequential in shuffled order and consults the
/// precomputed rating first, falling back to an exact scan only when the
/// rated neighbour was already taken. The fallback preserves the exact
/// matching the fully sequential scan produced (same
/// `(weight, Reverse(v))` key), so coarse graphs are bit-identical
/// regardless of thread count — the same fixed-order determinism
/// discipline as the sweep engine.
pub fn coarsen_once(g: &WeightedGraph, seed: u64) -> Option<CoarseLevel> {
    let n = g.n();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    // Parallel rating: heaviest neighbour of each vertex, ignoring
    // matching state.
    let rated: Vec<Option<u32>> = (0..n)
        .into_par_iter()
        .map(|u| {
            g.neighbors(u)
                .iter()
                .filter(|&&(v, _)| v as usize != u)
                .max_by_key(|&&(v, w)| (w, std::cmp::Reverse(v)))
                .map(|&(v, _)| v)
        })
        .collect();
    let mut mate = vec![usize::MAX; n];
    let mut matched_any = false;
    let mut fallbacks = 0u64;
    for &u in &order {
        if mate[u] != usize::MAX {
            continue;
        }
        // Heaviest unmatched neighbour: if the rated (unconditional)
        // maximum is still unmatched it is also the unmatched maximum;
        // otherwise rescan exactly.
        let best = match rated[u] {
            Some(v) if mate[v as usize] == usize::MAX => Some(v),
            Some(_) => {
                fallbacks += 1;
                g.neighbors(u)
                    .iter()
                    .filter(|&&(v, _)| mate[v as usize] == usize::MAX && v as usize != u)
                    .max_by_key(|&&(v, w)| (w, std::cmp::Reverse(v)))
                    .map(|&(v, _)| v)
            }
            None => None,
        };
        if let Some(v) = best {
            mate[u] = v as usize;
            mate[v as usize] = u;
            matched_any = true;
        }
    }
    hcft_telemetry::Registry::global()
        .counter("partition.coarsen.match_fallbacks")
        .add(fallbacks);
    if !matched_any {
        return None;
    }
    // Assign coarse ids: matched pairs share one, singletons keep one.
    let mut map = vec![usize::MAX; n];
    let mut next = 0usize;
    for u in 0..n {
        if map[u] != usize::MAX {
            continue;
        }
        map[u] = next;
        if mate[u] != usize::MAX {
            map[mate[u]] = next;
        }
        next += 1;
    }
    // Build the coarse graph: collect the surviving edges as coarse-id
    // triples and let the CSR constructor aggregate the duplicates in one
    // sort, instead of probing the adjacency list per inserted edge.
    let mut cw = vec![0u64; next];
    for u in 0..n {
        cw[map[u]] += g.vertex_weight(u);
    }
    let mut edges: Vec<(u32, u32, u64)> = Vec::with_capacity(g.edge_count());
    for u in 0..n {
        for &(v, w) in g.neighbors(u) {
            let v = v as usize;
            if u < v && map[u] != map[v] {
                edges.push((map[u] as u32, map[v] as u32, w));
            }
        }
    }
    let coarse = CsrGraph::from_edges(next, cw, &edges).to_weighted_graph();
    Some(CoarseLevel { graph: coarse, map })
}

/// Coarsen until at most `target_n` vertices remain or progress stalls.
/// Returns the level stack, finest first.
pub fn coarsen_to(g: &WeightedGraph, target_n: usize, seed: u64) -> Vec<CoarseLevel> {
    let mut levels = Vec::new();
    let mut current = g.clone();
    let mut round = 0u64;
    while current.n() > target_n {
        match coarsen_once(&current, seed.wrapping_add(round)) {
            Some(level) => {
                // Stop if contraction stalls (e.g. matching shrinks by <10%).
                let shrank = level.graph.n() < current.n();
                current = level.graph.clone();
                levels.push(level);
                if !shrank {
                    break;
                }
            }
            None => break,
        }
        round += 1;
    }
    hcft_telemetry::Registry::global()
        .gauge("partition.coarsen.levels")
        .set(levels.len() as f64);
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> WeightedGraph {
        let mut g = WeightedGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, 10);
        }
        g
    }

    #[test]
    fn coarsen_once_halves_a_path() {
        let g = path(8);
        let level = coarsen_once(&g, 1).expect("progress");
        assert!(level.graph.n() < 8);
        assert!(level.graph.n() >= 4);
        // Total vertex weight is conserved.
        assert_eq!(level.graph.total_vertex_weight(), 8);
    }

    #[test]
    fn edgeless_graph_cannot_coarsen() {
        let g = WeightedGraph::new(4);
        assert!(coarsen_once(&g, 0).is_none());
    }

    #[test]
    fn map_is_consistent_with_coarse_graph() {
        let g = path(10);
        let level = coarsen_once(&g, 7).expect("progress");
        for u in 0..10 {
            assert!(level.map[u] < level.graph.n());
        }
        // Every coarse vertex weight equals the number of fine vertices
        // mapped to it (unit weights).
        let mut counts = vec![0u64; level.graph.n()];
        for &c in &level.map {
            counts[c] += 1;
        }
        for (c, &count) in counts.iter().enumerate() {
            assert_eq!(level.graph.vertex_weight(c), count);
        }
    }

    #[test]
    fn coarsen_to_reaches_target() {
        let g = path(64);
        let levels = coarsen_to(&g, 8, 42);
        assert!(!levels.is_empty());
        assert!(levels.last().expect("levels").graph.n() <= 16);
        // Weight conserved through the whole stack.
        assert_eq!(
            levels.last().expect("levels").graph.total_vertex_weight(),
            64
        );
    }

    #[test]
    fn heavy_edges_matched_first() {
        // Star with one heavy spoke: the heavy edge must be contracted.
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 100);
        g.add_edge(0, 2, 1);
        g.add_edge(0, 3, 1);
        let level = coarsen_once(&g, 7).expect("progress");
        assert_eq!(level.map[0], level.map[1], "heavy edge not contracted");
    }
}
