//! Topology-aware mapping of the application's node graph onto physical
//! nodes.
//!
//! Implements the positioning strategy the paper assumes as background
//! (§II-C2, refs \[4\]\[26\]): place heavily-communicating virtual nodes on
//! physically close machine nodes, minimising `Σ weight(u,v) ·
//! hops(map(u), map(v))`. Greedy affinity-ordered construction plus
//! pairwise swap refinement — the standard recipe of topology-mapping
//! tools (e.g. LibTopoMap-style).

use hcft_graph::WeightedGraph;
use hcft_topology::network::NetworkTopology;
use hcft_topology::NodeId;

/// Weighted-hop cost of a mapping (`mapping[v]` = physical node of
/// virtual node `v`).
pub fn mapping_cost(g: &WeightedGraph, topo: &NetworkTopology, mapping: &[NodeId]) -> u64 {
    assert_eq!(mapping.len(), g.n());
    let mut cost = 0u64;
    for u in 0..g.n() {
        for &(v, w) in g.neighbors(u) {
            let v = v as usize;
            if u < v {
                cost += w * topo.hops(mapping[u], mapping[v]) as u64;
            }
        }
    }
    cost
}

/// The identity mapping (virtual node i on physical node i) — what block
/// placement of consecutive ranks gives you.
pub fn identity_mapping(n: usize) -> Vec<NodeId> {
    (0..n).map(NodeId::from).collect()
}

/// Greedy topology-aware mapping onto `physical` candidate nodes
/// (must be ≥ the graph's vertex count; extra nodes stay unused).
///
/// Virtual nodes are placed in order of connectivity to the already
/// placed set; each goes to the free physical node minimising its added
/// hop cost. A pairwise swap pass then polishes the result.
///
/// # Panics
/// Panics if fewer physical nodes than virtual nodes are supplied.
pub fn topology_aware_map(
    g: &WeightedGraph,
    topo: &NetworkTopology,
    physical: &[NodeId],
) -> Vec<NodeId> {
    let n = g.n();
    assert!(physical.len() >= n, "not enough physical nodes");
    let mut mapping: Vec<Option<NodeId>> = vec![None; n];
    let mut free: Vec<NodeId> = physical.to_vec();
    // Placement order: start from the heaviest vertex, then repeatedly
    // take the unplaced vertex with the strongest ties to placed ones.
    let mut placed: Vec<usize> = Vec::with_capacity(n);
    let first = (0..n).max_by_key(|&u| g.degree(u)).expect("non-empty");
    let mut order = vec![first];
    let mut in_order = vec![false; n];
    in_order[first] = true;
    while order.len() < n {
        let next = (0..n)
            .filter(|&u| !in_order[u])
            .max_by_key(|&u| {
                let affinity: u64 = g
                    .neighbors(u)
                    .iter()
                    .filter(|&&(v, _)| in_order[v as usize])
                    .map(|&(_, w)| w)
                    .sum();
                (affinity, std::cmp::Reverse(u))
            })
            .expect("unplaced vertex exists");
        in_order[next] = true;
        order.push(next);
    }
    for &u in &order {
        // Cost of placing u at candidate p: hops to already placed
        // neighbours, weighted.
        let best_idx = (0..free.len())
            .min_by_key(|&i| {
                let p = free[i];
                let cost: u64 = g
                    .neighbors(u)
                    .iter()
                    .filter_map(|&(v, w)| mapping[v as usize].map(|q| w * topo.hops(p, q) as u64))
                    .sum();
                (cost, p)
            })
            .expect("free node available");
        mapping[u] = Some(free.swap_remove(best_idx));
        placed.push(u);
    }
    let mut result: Vec<NodeId> = mapping.into_iter().map(|m| m.expect("placed")).collect();
    swap_refine(g, topo, &mut result, 4);
    result
}

/// Pairwise swap refinement: exchange two virtual nodes' physical
/// positions whenever it lowers the weighted-hop cost.
fn swap_refine(
    g: &WeightedGraph,
    topo: &NetworkTopology,
    mapping: &mut [NodeId],
    max_passes: usize,
) {
    let n = g.n();
    let vertex_cost = |u: usize, pos: NodeId, mapping: &[NodeId], skip: usize| -> u64 {
        g.neighbors(u)
            .iter()
            .filter(|&&(v, _)| v as usize != skip)
            .map(|&(v, w)| w * topo.hops(pos, mapping[v as usize]) as u64)
            .sum()
    };
    for _ in 0..max_passes {
        let mut improved = false;
        for a in 0..n {
            for b in (a + 1)..n {
                let before =
                    vertex_cost(a, mapping[a], mapping, b) + vertex_cost(b, mapping[b], mapping, a);
                let after =
                    vertex_cost(a, mapping[b], mapping, b) + vertex_cost(b, mapping[a], mapping, a);
                if after < before {
                    mapping.swap(a, b);
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_graph(n: usize, w: u64) -> WeightedGraph {
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            g.add_edge(u, (u + 1) % n, w);
        }
        g
    }

    #[test]
    fn identity_cost_on_matched_ring_and_torus_is_minimal() {
        // Ring of 8 on an 8×1×1 torus: identity puts every edge at 1 hop.
        let g = ring_graph(8, 10);
        let t = NetworkTopology::Torus3D { dims: (8, 1, 1) };
        let id = identity_mapping(8);
        assert_eq!(mapping_cost(&g, &t, &id), 8 * 10);
    }

    #[test]
    fn mapper_matches_identity_quality_on_ring() {
        let g = ring_graph(8, 10);
        let t = NetworkTopology::Torus3D { dims: (8, 1, 1) };
        let physical: Vec<NodeId> = (0..8).map(NodeId::from).collect();
        let m = topology_aware_map(&g, &t, &physical);
        // Optimal ring embedding costs 8 edges × 1 hop.
        assert_eq!(mapping_cost(&g, &t, &m), 80, "mapping {m:?}");
    }

    #[test]
    fn mapper_beats_scrambled_placement() {
        // 4×4 grid graph on a 4×4×1 torus.
        let mut g = WeightedGraph::new(16);
        for y in 0..4 {
            for x in 0..4 {
                let u = y * 4 + x;
                if x + 1 < 4 {
                    g.add_edge(u, u + 1, 5);
                }
                if y + 1 < 4 {
                    g.add_edge(u, u + 4, 5);
                }
            }
        }
        let t = NetworkTopology::Torus3D { dims: (4, 4, 1) };
        let physical: Vec<NodeId> = (0..16).map(NodeId::from).collect();
        let optimised = topology_aware_map(&g, &t, &physical);
        // A deliberately bad bit-reversal-ish scramble.
        let scrambled: Vec<NodeId> = (0..16).map(|v| NodeId::from((v * 7 + 3) % 16)).collect();
        let good = mapping_cost(&g, &t, &optimised);
        let bad = mapping_cost(&g, &t, &scrambled);
        assert!(good < bad, "optimised {good} vs scrambled {bad}");
        // And within 1.5× of the ideal 24 edges × weight 5 × 1 hop = 120.
        assert!(good <= 180, "good = {good}");
    }

    #[test]
    fn fat_tree_mapper_packs_communicators_under_one_switch() {
        // Two cliques of 4 with a weak bridge; fat tree with 4-node
        // switches: each clique should land under one switch (2 hops).
        let mut g = WeightedGraph::new(8);
        for base in [0, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    g.add_edge(base + i, base + j, 100);
                }
            }
        }
        g.add_edge(3, 4, 1);
        let t = NetworkTopology::FatTree {
            nodes_per_switch: 4,
            switches_per_pod: 2,
        };
        let physical: Vec<NodeId> = (0..8).map(NodeId::from).collect();
        let m = topology_aware_map(&g, &t, &physical);
        for base in [0usize, 4] {
            let switches: std::collections::HashSet<usize> =
                (base..base + 4).map(|v| m[v].idx() / 4).collect();
            assert_eq!(switches.len(), 1, "clique {base} split across switches");
        }
    }

    #[test]
    fn mapper_uses_only_offered_nodes() {
        let g = ring_graph(4, 1);
        let t = NetworkTopology::tsubame2_like();
        let physical: Vec<NodeId> = [10u32, 11, 20, 21].iter().map(|&n| NodeId(n)).collect();
        let m = topology_aware_map(&g, &t, &physical);
        let used: std::collections::HashSet<NodeId> = m.iter().copied().collect();
        assert_eq!(used.len(), 4);
        for p in &m {
            assert!(physical.contains(p));
        }
    }

    #[test]
    #[should_panic(expected = "not enough physical nodes")]
    fn too_few_nodes_panics() {
        let g = ring_graph(4, 1);
        let t = NetworkTopology::tsubame2_like();
        topology_aware_map(&g, &t, &[NodeId(0)]);
    }
}
