//! Retained quadratic reference implementations.
//!
//! The scalable engines ([`modularity_clusters`](crate::modularity_clusters)'s
//! lazy-deletion heap, [`multilevel`](crate::multilevel)'s incremental
//! corner heap) are proven against these originals: the property tests
//! assert bit-identical output on small graphs and `bench_partition`
//! gates the speedup at scale. They are deliberately kept verbatim — a
//! slow-but-obvious oracle is only useful while it stays obvious.
//!
//! The CNM reference lives next to the heap engine as
//! [`modularity_clusters_reference`](crate::modularity_clusters_reference)
//! (both share the agglomeration state); this module holds the seeding
//! scan.

use hcft_graph::WeightedGraph;

/// The original greedy region growing: seed each part at the unassigned
/// vertex with the fewest unassigned neighbours, found by a full `O(n)`
/// scan per seed (quadratic in the number of parts × vertices). BFS
/// growth and straggler attachment are identical to
/// [`grow_initial`](crate::multilevel::grow_initial), which replaces the
/// per-seed scan with a lazy min-heap and must select the exact same
/// seeds.
pub fn grow_initial_scan(g: &WeightedGraph, k: usize, seed: u64) -> Vec<usize> {
    let n = g.n();
    let total = g.total_vertex_weight();
    let target = total.div_ceil(k as u64);
    let mut part = vec![usize::MAX; n];
    let _ = seed; // determinism: seeding is structural, not random
    for p in 0..k {
        // Seed at a "corner": the unassigned vertex with the fewest
        // unassigned neighbours. Growing from corners produces compact
        // runs/blocks on paths and grids instead of fragmenting them.
        let seed_v = {
            let best = (0..n).filter(|&u| part[u] == usize::MAX).min_by_key(|&u| {
                let free_nbrs = g
                    .neighbors(u)
                    .iter()
                    .filter(|&&(v, _)| part[v as usize] == usize::MAX)
                    .count();
                (free_nbrs, u)
            });
            match best {
                Some(u) => u,
                None => break,
            }
        };
        let mut weight = 0u64;
        let mut frontier = vec![seed_v];
        while let Some(u) = frontier.pop() {
            if part[u] != usize::MAX {
                continue;
            }
            part[u] = p;
            weight += g.vertex_weight(u);
            if weight >= target && p + 1 < k {
                break;
            }
            // Push neighbours, heaviest edge last so it pops first.
            let mut nbrs: Vec<(u64, usize)> = g
                .neighbors(u)
                .iter()
                .filter(|&&(v, _)| part[v as usize] == usize::MAX)
                .map(|&(v, w)| (w, v as usize))
                .collect();
            nbrs.sort_unstable();
            frontier.extend(nbrs.into_iter().map(|(_, v)| v));
        }
    }
    // Any stragglers: attach to the most connected part, else the lightest.
    let mut weights = vec![0u64; k];
    for u in 0..n {
        if part[u] != usize::MAX {
            weights[part[u]] += g.vertex_weight(u);
        }
    }
    for u in 0..n {
        if part[u] != usize::MAX {
            continue;
        }
        let mut links = vec![0u64; k];
        for &(v, w) in g.neighbors(u) {
            if part[v as usize] != usize::MAX {
                links[part[v as usize]] += w;
            }
        }
        let best = (0..k)
            .max_by_key(|&p| (links[p], std::cmp::Reverse(weights[p])))
            .expect("k > 0");
        part[u] = best;
        weights[best] += g.vertex_weight(u);
    }
    part
}
