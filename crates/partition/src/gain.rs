//! Integer gain buckets for boundary refinement.
//!
//! The classic Fiduccia–Mattheyses bucket array assumes gains bounded by
//! the maximum vertex degree; this repo's edge weights are byte counts
//! (up to ~10⁹ per edge in the traces), so the buckets are keyed by the
//! exact integer gain in an ordered map instead — `pop_best` is the
//! highest gain with the lowest vertex id, every operation is
//! O(log #distinct gains), and iteration order never depends on hash
//! state, keeping refinement bit-deterministic.

use std::collections::{BTreeMap, BTreeSet};

/// Ordered gain → vertex buckets with O(log) insert/remove/pop.
pub struct GainBuckets {
    buckets: BTreeMap<i128, BTreeSet<u32>>,
    /// Current gain per vertex (`None` = not enqueued).
    cur: Vec<Option<i128>>,
    /// Number of bucket insert/update/remove operations (telemetry).
    moves: u64,
}

impl GainBuckets {
    /// Empty structure for `n` vertices.
    pub fn new(n: usize) -> Self {
        GainBuckets {
            buckets: BTreeMap::new(),
            cur: vec![None; n],
            moves: 0,
        }
    }

    /// Insert `u` with `gain`, replacing any previous entry.
    pub fn insert(&mut self, u: usize, gain: i128) {
        self.remove(u);
        self.buckets.entry(gain).or_default().insert(u as u32);
        self.cur[u] = Some(gain);
        self.moves += 1;
    }

    /// Remove `u` if enqueued.
    pub fn remove(&mut self, u: usize) {
        if let Some(g) = self.cur[u].take() {
            let empty = {
                let set = self.buckets.get_mut(&g).expect("bucket for cached gain");
                set.remove(&(u as u32));
                set.is_empty()
            };
            if empty {
                self.buckets.remove(&g);
            }
            self.moves += 1;
        }
    }

    /// Pop the entry with the highest gain (lowest vertex id on ties).
    pub fn pop_best(&mut self) -> Option<(usize, i128)> {
        let (&gain, set) = self.buckets.iter_mut().next_back()?;
        let u = *set.iter().next().expect("non-empty bucket") as usize;
        set.remove(&(u as u32));
        if set.is_empty() {
            self.buckets.remove(&gain);
        }
        self.cur[u] = None;
        self.moves += 1;
        Some((u, gain))
    }

    /// Total bucket operations performed (for `partition.fm.bucket_moves`).
    pub fn moves(&self) -> u64 {
        self.moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_orders_by_gain_then_vertex() {
        let mut b = GainBuckets::new(8);
        b.insert(3, 10);
        b.insert(5, 10);
        b.insert(1, 4);
        assert_eq!(b.pop_best(), Some((3, 10)));
        assert_eq!(b.pop_best(), Some((5, 10)));
        assert_eq!(b.pop_best(), Some((1, 4)));
        assert_eq!(b.pop_best(), None);
    }

    #[test]
    fn insert_replaces_previous_gain() {
        let mut b = GainBuckets::new(4);
        b.insert(2, 7);
        b.insert(2, -3);
        assert_eq!(b.pop_best(), Some((2, -3)));
        assert_eq!(b.pop_best(), None);
    }

    #[test]
    fn remove_clears_entry() {
        let mut b = GainBuckets::new(4);
        b.insert(0, 1);
        b.remove(0);
        assert_eq!(b.pop_best(), None);
        // Removing a non-enqueued vertex is a no-op.
        b.remove(3);
    }
}
