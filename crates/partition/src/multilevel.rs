//! The multilevel k-way partitioner.
//!
//! Classic METIS recipe: coarsen with heavy-edge matching until the graph
//! is small, partition the coarse graph by greedy region growing, then
//! project back level by level, refining the boundary at each step.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hcft_graph::WeightedGraph;

use crate::coarsen::coarsen_to;
use crate::refine::refine;
use crate::SizeBounds;

/// Configuration for [`MultilevelPartitioner`].
#[derive(Clone, Debug)]
pub struct MultilevelConfig {
    /// Number of parts.
    pub k: usize,
    /// Allowed part-weight range.
    pub bounds: SizeBounds,
    /// RNG seed (the partitioner is deterministic given the seed).
    pub seed: u64,
    /// Refinement passes per uncoarsening level.
    pub refine_passes: usize,
    /// Stop coarsening at roughly this many vertices (default `8·k`).
    pub coarsen_target: Option<usize>,
}

impl MultilevelConfig {
    /// Sensible defaults for `k` parts with the given bounds.
    pub fn new(k: usize, bounds: SizeBounds) -> Self {
        MultilevelConfig {
            k,
            bounds,
            seed: 0x5eed,
            refine_passes: 6,
            coarsen_target: None,
        }
    }
}

/// Multilevel k-way partitioner.
pub struct MultilevelPartitioner {
    cfg: MultilevelConfig,
}

impl MultilevelPartitioner {
    /// Create a partitioner with the given configuration.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(cfg: MultilevelConfig) -> Self {
        assert!(cfg.k > 0, "k must be positive");
        MultilevelPartitioner { cfg }
    }

    /// Partition `g` into `k` parts within the weight bounds. The bounds
    /// must be feasible (`k·min ≤ total ≤ k·max`).
    ///
    /// # Panics
    /// Panics if the bounds are infeasible for the graph's total weight.
    pub fn partition(&self, g: &WeightedGraph) -> Vec<usize> {
        let total = g.total_vertex_weight();
        let k = self.cfg.k;
        let b = self.cfg.bounds;
        assert!(
            k as u64 * b.min_weight <= total && total <= k as u64 * b.max_weight,
            "infeasible bounds: k={k}, total={total}, bounds=[{}, {}]",
            b.min_weight,
            b.max_weight
        );
        let target = self.cfg.coarsen_target.unwrap_or((8 * k).max(32));
        let levels = coarsen_to(g, target, self.cfg.seed);
        let coarsest = levels.last().map_or(g, |l| &l.graph);
        let mut part = grow_initial(coarsest, k, self.cfg.seed);
        crate::refine::repair_bounds(coarsest, &mut part, k, b);
        let mut weights = part_weights(coarsest, &part, k);
        refine(coarsest, &mut part, &mut weights, b, self.cfg.refine_passes);
        // Project back through the levels, refining at each step.
        for li in (0..levels.len()).rev() {
            let fine_graph = if li == 0 { g } else { &levels[li - 1].graph };
            let map = &levels[li].map;
            let mut fine_part = vec![0usize; fine_graph.n()];
            for u in 0..fine_graph.n() {
                fine_part[u] = part[map[u]];
            }
            part = fine_part;
            let mut weights = part_weights(fine_graph, &part, k);
            refine(
                fine_graph,
                &mut part,
                &mut weights,
                b,
                self.cfg.refine_passes,
            );
        }
        part
    }
}

fn part_weights(g: &WeightedGraph, part: &[usize], k: usize) -> Vec<u64> {
    let mut w = vec![0u64; k];
    for (u, &p) in part.iter().enumerate() {
        w[p] += g.vertex_weight(u);
    }
    w
}

/// Greedy region growing: seed each part at an unassigned vertex and BFS
/// until the part reaches the average target weight.
///
/// Each part is seeded at a "corner" — the unassigned vertex with the
/// fewest unassigned neighbours (lowest id on ties). Growing from
/// corners produces compact runs/blocks on paths and grids instead of
/// fragmenting them. Corners come from a lazy min-heap of
/// `(free_degree, vertex)` entries: every assignment decrements its
/// unassigned neighbours' free degrees and pushes fresh entries, and
/// stale entries are discarded at pop time. Free degrees only ever
/// decrease, so the first valid pop is exactly the minimum the old
/// per-seed `O(n)` scan ([`grow_initial_scan`]) found — total seeding
/// cost drops from `O(k·n)` to `O((n + m) log n)`.
///
/// [`grow_initial_scan`]: crate::reference::grow_initial_scan
pub fn grow_initial(g: &WeightedGraph, k: usize, seed: u64) -> Vec<usize> {
    let n = g.n();
    let total = g.total_vertex_weight();
    let target = total.div_ceil(k as u64);
    let mut part = vec![usize::MAX; n];
    let _ = seed; // determinism: seeding is structural, not random
    let mut free_deg: Vec<usize> = (0..n).map(|u| g.neighbors(u).len()).collect();
    let mut corners: BinaryHeap<Reverse<(usize, usize)>> =
        (0..n).map(|u| Reverse((free_deg[u], u))).collect();
    let mut heap_pops = 0u64;
    // Assign `u` to part `p` and maintain the corner heap: neighbours
    // lose one free neighbour each and re-enter at their new key.
    let assign = |u: usize,
                  p: usize,
                  part: &mut [usize],
                  free_deg: &mut [usize],
                  corners: &mut BinaryHeap<Reverse<(usize, usize)>>| {
        part[u] = p;
        for &(v, _) in g.neighbors(u) {
            let v = v as usize;
            if part[v] == usize::MAX {
                free_deg[v] -= 1;
                corners.push(Reverse((free_deg[v], v)));
            }
        }
    };
    for p in 0..k {
        let seed_v = loop {
            match corners.pop() {
                Some(Reverse((fd, u))) => {
                    heap_pops += 1;
                    // Valid = still unassigned and the key is current
                    // (free degrees only decrease, so the first valid
                    // entry is the true minimum).
                    if part[u] == usize::MAX && free_deg[u] == fd {
                        break Some(u);
                    }
                }
                None => break None,
            }
        };
        let Some(seed_v) = seed_v else { break };
        let mut weight = 0u64;
        let mut frontier = vec![seed_v];
        while let Some(u) = frontier.pop() {
            if part[u] != usize::MAX {
                continue;
            }
            assign(u, p, &mut part, &mut free_deg, &mut corners);
            weight += g.vertex_weight(u);
            if weight >= target && p + 1 < k {
                break;
            }
            // Push neighbours, heaviest edge last so it pops first.
            let mut nbrs: Vec<(u64, usize)> = g
                .neighbors(u)
                .iter()
                .filter(|&&(v, _)| part[v as usize] == usize::MAX)
                .map(|&(v, w)| (w, v as usize))
                .collect();
            nbrs.sort_unstable();
            frontier.extend(nbrs.into_iter().map(|(_, v)| v));
        }
    }
    hcft_telemetry::Registry::global()
        .counter("partition.seed.heap_pops")
        .add(heap_pops);
    // Any stragglers: attach to the most connected part, else the lightest.
    let mut weights = vec![0u64; k];
    for u in 0..n {
        if part[u] != usize::MAX {
            weights[part[u]] += g.vertex_weight(u);
        }
    }
    for u in 0..n {
        if part[u] != usize::MAX {
            continue;
        }
        let mut links = vec![0u64; k];
        for &(v, w) in g.neighbors(u) {
            if part[v as usize] != usize::MAX {
                links[part[v as usize]] += w;
            }
        }
        let best = (0..k)
            .max_by_key(|&p| (links[p], std::cmp::Reverse(weights[p])))
            .expect("k > 0");
        part[u] = best;
        weights[best] += g.vertex_weight(u);
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_partition;

    /// A ring of `c` dense cliques of size `s`, weakly chained.
    fn clique_ring(c: usize, s: usize) -> WeightedGraph {
        let mut g = WeightedGraph::new(c * s);
        for q in 0..c {
            for i in 0..s {
                for j in (i + 1)..s {
                    g.add_edge(q * s + i, q * s + j, 100);
                }
            }
            let next = ((q + 1) % c) * s;
            g.add_edge(q * s + s - 1, next, 1);
        }
        g
    }

    #[test]
    fn finds_the_natural_clique_partition() {
        let g = clique_ring(4, 8);
        let cfg = MultilevelConfig::new(4, SizeBounds::new(8, 8));
        let part = MultilevelPartitioner::new(cfg).partition(&g);
        check_partition(&g, &part, Some(SizeBounds::new(8, 8))).expect("valid");
        // Optimal cut severs only the 4 weak chain links.
        assert_eq!(g.cut_weight(&part), 4);
    }

    #[test]
    fn respects_weight_bounds_on_a_path() {
        let mut g = WeightedGraph::new(16);
        for i in 0..15 {
            g.add_edge(i, i + 1, 10);
        }
        let bounds = SizeBounds::new(4, 4);
        let cfg = MultilevelConfig::new(4, bounds);
        let part = MultilevelPartitioner::new(cfg).partition(&g);
        check_partition(&g, &part, Some(bounds)).expect("valid");
        // Optimal path split into 4 runs: cut = 3 edges × 10.
        assert!(g.cut_weight(&part) <= 40, "cut {}", g.cut_weight(&part));
    }

    #[test]
    fn weighted_vertices_respected() {
        // 8 vertices of weight 2 → 16 total; bounds in weight units.
        let mut g = WeightedGraph::new(8);
        for i in 0..7 {
            g.add_edge(i, i + 1, 5);
        }
        for u in 0..8 {
            g.set_vertex_weight(u, 2);
        }
        let bounds = SizeBounds::new(4, 4);
        let part = MultilevelPartitioner::new(MultilevelConfig::new(4, bounds)).partition(&g);
        let w = check_partition(&g, &part, Some(bounds)).expect("valid");
        assert_eq!(w, vec![4, 4, 4, 4]);
    }

    #[test]
    fn single_part_is_trivial() {
        let g = clique_ring(2, 4);
        let bounds = SizeBounds::new(8, 8);
        let part = MultilevelPartitioner::new(MultilevelConfig::new(1, bounds)).partition(&g);
        assert!(part.iter().all(|&p| p == 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = clique_ring(4, 4);
        let cfg = MultilevelConfig::new(4, SizeBounds::new(2, 6));
        let a = MultilevelPartitioner::new(cfg.clone()).partition(&g);
        let b = MultilevelPartitioner::new(cfg).partition(&g);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_bounds_panic() {
        let g = clique_ring(2, 4);
        let cfg = MultilevelConfig::new(4, SizeBounds::new(4, 4)); // needs 16, have 8
        MultilevelPartitioner::new(cfg).partition(&g);
    }

    #[test]
    fn large_random_graph_is_covered() {
        use rand::rngs::StdRng;
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200;
        let mut g = WeightedGraph::new(n);
        for _ in 0..600 {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            if u != v {
                g.add_edge(u, v, rng.random_range(1..20));
            }
        }
        let bounds = SizeBounds::new(10, 40);
        let part = MultilevelPartitioner::new(MultilevelConfig::new(10, bounds)).partition(&g);
        check_partition(&g, &part, Some(bounds)).expect("valid partition");
    }
}

#[cfg(test)]
mod rebalance_regression {
    use super::*;
    use crate::check_partition;

    /// Regression: coarsening a dense graph produces mixed vertex weights
    /// (matched pairs = 2, singletons = 1); under exactly tight bounds
    /// the old over/under shuttling oscillated forever. The partitioner
    /// must terminate and (here, where exact bounds are reachable via a
    /// 2↔1 swap) satisfy them.
    #[test]
    fn mixed_weights_with_tight_bounds_terminate() {
        // 9 vertices: seven of weight 2, two of weight 1 → total 16.
        let mut g = WeightedGraph::new(9);
        for u in 0..8 {
            g.add_edge(u, u + 1, 10 + u as u64);
        }
        for u in 0..7 {
            g.set_vertex_weight(u, 2);
        }
        let bounds = SizeBounds::new(8, 8);
        let cfg = MultilevelConfig {
            coarsen_target: Some(4), // force coarsening (mixed weights)
            ..MultilevelConfig::new(2, bounds)
        };
        let part = MultilevelPartitioner::new(cfg).partition(&g);
        check_partition(&g, &part, Some(bounds)).expect("exact bounds reachable");
    }

    /// A dense, heavily-weighted node graph like the paper trace's, with
    /// k·min == total and coarsening enabled — the exact shape that hung
    /// the `repro ablation` L1=16 variant.
    #[test]
    fn dense_heavy_graph_with_exact_bounds_terminates() {
        let mut g = WeightedGraph::new(64);
        for u in 0..63 {
            g.add_edge(u, u + 1, 1_000_000_000);
        }
        for u in 0..64 {
            for d in [2usize, 4, 8, 16, 32] {
                if u + d < 64 {
                    g.add_edge(u, u + d, 1_000_000 + (u as u64));
                }
            }
        }
        let bounds = SizeBounds::new(16, 16);
        let cfg = MultilevelConfig {
            coarsen_target: Some(32),
            ..MultilevelConfig::new(4, bounds)
        };
        let part = MultilevelPartitioner::new(cfg).partition(&g);
        check_partition(&g, &part, Some(bounds)).expect("valid 4x16 partition");
    }
}
