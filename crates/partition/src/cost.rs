//! The clustering cost function of Ropars et al. \[24\].
//!
//! A candidate partition of the node graph is scored on the two axes the
//! hybrid protocol trades off:
//!
//! * **logging fraction** — cut weight / total weight: the share of
//!   communicated bytes that crosses cluster boundaries and must be
//!   logged;
//! * **expected restart fraction** — the expected share of the system
//!   rolled back by one uniformly-random node failure, i.e.
//!   Σ_p (w_p / W)², since a failure lands in part p with probability
//!   w_p/W and rolls back w_p/W of the system.
//!
//! The scalarised objective `λ·logging + (1−λ)·restart` is what the L1
//! partition search minimises; λ defaults to 0.5 as in \[24\]'s balanced
//! setting.

use hcft_graph::WeightedGraph;

/// Weights of the scalarised objective.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostWeights {
    /// Weight on the logging fraction (0..=1); restart gets `1 − lambda`.
    pub lambda: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights { lambda: 0.5 }
    }
}

/// The two raw components plus the scalarised cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionCost {
    /// Fraction of edge weight crossing parts (bytes to log).
    pub logging_fraction: f64,
    /// Expected fraction of vertex weight restarted per failure.
    pub restart_fraction: f64,
    /// `λ·logging + (1−λ)·restart`.
    pub scalar: f64,
}

/// Score a partition of `g`.
pub fn partition_cost(g: &WeightedGraph, part_of: &[usize], w: CostWeights) -> PartitionCost {
    assert_eq!(part_of.len(), g.n());
    let total_edge = g.total_edge_weight();
    let logging_fraction = if total_edge == 0 {
        0.0
    } else {
        g.cut_weight(part_of) as f64 / total_edge as f64
    };
    let total_vertex = g.total_vertex_weight() as f64;
    let k = part_of.iter().copied().max().map_or(0, |m| m + 1);
    let mut pw = vec![0u64; k];
    for (u, &p) in part_of.iter().enumerate() {
        pw[p] += g.vertex_weight(u);
    }
    let restart_fraction = pw
        .iter()
        .map(|&w| {
            let f = w as f64 / total_vertex;
            f * f
        })
        .sum();
    PartitionCost {
        logging_fraction,
        restart_fraction,
        scalar: w.lambda * logging_fraction + (1.0 - w.lambda) * restart_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> WeightedGraph {
        let mut g = WeightedGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, 10);
        }
        g
    }

    #[test]
    fn single_cluster_logs_nothing_restarts_everything() {
        let g = path(8);
        let c = partition_cost(&g, &[0; 8], CostWeights::default());
        assert_eq!(c.logging_fraction, 0.0);
        assert_eq!(c.restart_fraction, 1.0);
        assert_eq!(c.scalar, 0.5);
    }

    #[test]
    fn singletons_log_everything_restart_little() {
        let g = path(8);
        let part: Vec<usize> = (0..8).collect();
        let c = partition_cost(&g, &part, CostWeights::default());
        assert_eq!(c.logging_fraction, 1.0);
        assert!((c.restart_fraction - 8.0 * (1.0f64 / 8.0).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn middle_ground_beats_both_extremes() {
        let g = path(16);
        let quarters: Vec<usize> = (0..16).map(|u| u / 4).collect();
        let all = partition_cost(&g, &[0; 16], CostWeights::default()).scalar;
        let single: Vec<usize> = (0..16).collect();
        let singles = partition_cost(&g, &single, CostWeights::default()).scalar;
        let mid = partition_cost(&g, &quarters, CostWeights::default()).scalar;
        assert!(mid < all, "{mid} vs all={all}");
        assert!(mid < singles, "{mid} vs singles={singles}");
    }

    #[test]
    fn lambda_shifts_the_tradeoff() {
        let g = path(16);
        let quarters: Vec<usize> = (0..16).map(|u| u / 4).collect();
        let log_heavy = partition_cost(&g, &quarters, CostWeights { lambda: 1.0 });
        let restart_heavy = partition_cost(&g, &quarters, CostWeights { lambda: 0.0 });
        assert_eq!(log_heavy.scalar, log_heavy.logging_fraction);
        assert_eq!(restart_heavy.scalar, restart_heavy.restart_fraction);
    }

    #[test]
    fn weighted_vertices_affect_restart() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, 1);
        g.set_vertex_weight(0, 3);
        g.set_vertex_weight(1, 1);
        let c = partition_cost(&g, &[0, 1], CostWeights::default());
        assert!((c.restart_fraction - (0.75f64 * 0.75 + 0.25 * 0.25)).abs() < 1e-12);
    }
}
