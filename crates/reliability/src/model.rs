//! P(catastrophic failure) for a clustering + placement.
//!
//! An encoding cluster of size `s` protected by FTI-style Reed–Solomon
//! tolerates up to `t = ⌈s/2⌉` missing members (see
//! `hcft_erasure::ReedSolomon::fti_for_group`). A failure event that takes
//! down a set `F` of nodes destroys, in each cluster, the members placed
//! on `F`; the event is catastrophic iff some cluster loses more than `t`
//! members.
//!
//! Computation per event cardinality `j`:
//! * `j = 1` and `j = 2` — exact enumeration;
//! * `j ≥ 3` — exact per-cluster probability via a knapsack DP over the
//!   cluster's occupied nodes combined with hypergeometric weights, then
//!   a union bound across clusters (tight for the small probabilities
//!   where it is used; replaced by Monte Carlo when the bound is loose).

use hcft_graph::Clustering;
use hcft_topology::Placement;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::combinatorics::choose;
use crate::events::EventDistribution;

/// FTI's Reed–Solomon tolerance for an encoding cluster of `s` members:
/// half the cluster (rounded up) may vanish.
pub fn fti_tolerance(s: usize) -> usize {
    s.div_ceil(2)
}

/// Per-cluster placement digest: which nodes hold how many members.
struct ClusterNodes {
    /// (node, member count), nodes distinct.
    counts: Vec<(usize, u32)>,
    /// Erasure tolerance of this cluster.
    tolerance: u32,
}

/// Reliability model for one machine size and event distribution.
pub struct ReliabilityModel {
    nodes: usize,
    dist: EventDistribution,
}

impl ReliabilityModel {
    /// A model over `nodes` physical nodes.
    pub fn new(nodes: usize, dist: EventDistribution) -> Self {
        assert!(nodes > 0);
        ReliabilityModel { nodes, dist }
    }

    /// Number of nodes modelled.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    fn digest(
        &self,
        clustering: &Clustering,
        placement: &Placement,
        tolerance: &dyn Fn(usize) -> usize,
    ) -> Vec<ClusterNodes> {
        let mut seen = std::collections::HashSet::new();
        clustering
            .iter()
            .filter_map(|(_, members)| {
                let mut counts: Vec<(usize, u32)> = Vec::new();
                for &r in members {
                    let n = placement.node_of(r).idx();
                    match counts.iter_mut().find(|(node, _)| *node == n) {
                        Some((_, c)) => *c += 1,
                        None => counts.push((n, 1)),
                    }
                }
                counts.sort_unstable();
                let tol = tolerance(members.len()) as u32;
                // Clusters with identical placement signatures live and die
                // together (e.g. the per-slot L2 clusters of one node
                // group); keeping one representative keeps the j≥3 union
                // bound tight instead of over-counting perfectly
                // correlated clusters.
                seen.insert((counts.clone(), tol)).then_some(ClusterNodes {
                    counts,
                    tolerance: tol,
                })
            })
            .collect()
    }

    /// Probability that a uniformly random `j`-node failure event is
    /// catastrophic for this clustering.
    pub fn q_given_j(
        &self,
        j: usize,
        clustering: &Clustering,
        placement: &Placement,
        tolerance: &dyn Fn(usize) -> usize,
    ) -> f64 {
        let digests = self.digest(clustering, placement, tolerance);
        self.q_from_digests(j, &digests)
    }

    fn q_from_digests(&self, j: usize, digests: &[ClusterNodes]) -> f64 {
        let n = self.nodes;
        if j == 0 || j > n {
            return 0.0;
        }
        match j {
            1 => {
                let bad = self.singly_bad_nodes(digests);
                bad.iter().filter(|&&b| b).count() as f64 / n as f64
            }
            2 => {
                let bad = self.singly_bad_nodes(digests);
                let b = bad.iter().filter(|&&x| x).count();
                // Pairs touching a singly-bad node are bad outright.
                let pairs_with_bad = choose(n, 2) - choose(n - b, 2);
                // Plus pairs of individually-safe nodes that jointly
                // overwhelm some cluster.
                let mut joint: std::collections::HashSet<(usize, usize)> =
                    std::collections::HashSet::new();
                for d in digests {
                    for a in 0..d.counts.len() {
                        for c in (a + 1)..d.counts.len() {
                            let (na, ca) = d.counts[a];
                            let (nc, cc) = d.counts[c];
                            if bad[na] || bad[nc] {
                                continue;
                            }
                            if ca + cc > d.tolerance {
                                joint.insert((na.min(nc), na.max(nc)));
                            }
                        }
                    }
                }
                (pairs_with_bad + joint.len() as f64) / choose(n, 2)
            }
            _ => {
                // Split off the nodes whose loss is *alone* catastrophic:
                // any j-subset touching one of them is catastrophic, a
                // hypergeometric term we can compute exactly. The rest of
                // the probability comes from clusters that need multiple
                // correlated losses, where the per-cluster union bound is
                // tight (and Monte Carlo covers the loose remainder).
                let bad = self.singly_bad_nodes(digests);
                let b = bad.iter().filter(|&&x| x).count();
                let p_hit_bad = 1.0 - choose(n - b, j) / choose(n, j);
                let residual: Vec<&ClusterNodes> = digests
                    .iter()
                    .filter(|d| d.counts.iter().all(|&(node, _)| !bad[node]))
                    .collect();
                let union: f64 = residual.iter().map(|d| self.q_cluster_exact(j, d)).sum();
                if union <= 0.1 {
                    (p_hit_bad + (1.0 - p_hit_bad) * union).min(1.0)
                } else if b == 0 {
                    // Large multi-node-driven probability: sample.
                    self.monte_carlo_q(j, digests, 16_000, 0x9e3779b97f4a7c15)
                        .min(1.0)
                } else {
                    // Mixed case: sample only the residual structure.
                    let residual_owned: Vec<ClusterNodes> = residual
                        .iter()
                        .map(|d| ClusterNodes {
                            counts: d.counts.clone(),
                            tolerance: d.tolerance,
                        })
                        .collect();
                    let q_rest = self
                        .monte_carlo_q(j, &residual_owned, 16_000, 0x9e3779b97f4a7c15)
                        .min(1.0);
                    (p_hit_bad + (1.0 - p_hit_bad) * q_rest).min(1.0)
                }
            }
        }
    }

    /// `bad[n]` = does losing node `n` alone kill some cluster?
    fn singly_bad_nodes(&self, digests: &[ClusterNodes]) -> Vec<bool> {
        let mut bad = vec![false; self.nodes];
        for d in digests {
            for &(node, cnt) in &d.counts {
                if cnt > d.tolerance {
                    bad[node] = true;
                }
            }
        }
        bad
    }

    /// Exact P(cluster dies | j uniformly-random node failures):
    /// Σ_r D_r · C(N−m, j−r) / C(N, j) with D_r counted by knapsack DP.
    fn q_cluster_exact(&self, j: usize, d: &ClusterNodes) -> f64 {
        let m = d.counts.len();
        let t = d.tolerance as usize;
        // ways[r][s] = number of r-subsets of the occupied nodes whose
        // member sum is s (sums capped at t+1: "already dead").
        let cap = t + 1;
        let mut ways = vec![vec![0.0f64; cap + 1]; m + 1];
        ways[0][0] = 1.0;
        for &(_, cnt) in &d.counts {
            let cnt = cnt as usize;
            for r in (0..m).rev() {
                for s in 0..=cap {
                    let w = ways[r][s];
                    if w == 0.0 {
                        continue;
                    }
                    let ns = (s + cnt).min(cap);
                    ways[r + 1][ns] += w;
                }
            }
        }
        let n = self.nodes;
        let mut q = 0.0;
        let denom = choose(n, j);
        for (r, row) in ways.iter().enumerate() {
            let dead = row[cap]; // sum > t
            if dead > 0.0 && r <= j {
                q += dead * choose(n - m, j - r) / denom;
            }
        }
        q
    }

    /// Monte-Carlo estimate of q(j) (parallel, deterministic per seed).
    fn monte_carlo_q(&self, j: usize, digests: &[ClusterNodes], samples: usize, seed: u64) -> f64 {
        let n = self.nodes;
        let chunks = 8usize;
        let per = samples / chunks;
        let hits: usize = (0..chunks)
            .into_par_iter()
            .map(|c| {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(c as u64));
                let mut local = 0usize;
                for _ in 0..per {
                    let failed = sample(&mut rng, n, j);
                    let mut failed_mask = vec![false; n];
                    for f in failed.iter() {
                        failed_mask[f] = true;
                    }
                    let dead = digests.iter().any(|d| {
                        let lost: u32 = d
                            .counts
                            .iter()
                            .filter(|&&(node, _)| failed_mask[node])
                            .map(|&(_, c)| c)
                            .sum();
                        lost > d.tolerance
                    });
                    if dead {
                        local += 1;
                    }
                }
                local
            })
            .sum();
        hits as f64 / (per * chunks) as f64
    }

    /// Public Monte-Carlo estimator (for cross-validating the analytic
    /// path in tests and benches).
    pub fn q_given_j_monte_carlo(
        &self,
        j: usize,
        clustering: &Clustering,
        placement: &Placement,
        tolerance: &dyn Fn(usize) -> usize,
        samples: usize,
        seed: u64,
    ) -> f64 {
        let digests = self.digest(clustering, placement, tolerance);
        self.monte_carlo_q(j, &digests, samples, seed)
    }

    /// Probability that a random failure event (drawn from the event
    /// distribution) is catastrophic — the paper's reliability metric
    /// (Fig. 4a, Table II last column).
    pub fn p_catastrophic(
        &self,
        clustering: &Clustering,
        placement: &Placement,
        tolerance: &dyn Fn(usize) -> usize,
    ) -> f64 {
        let digests = self.digest(clustering, placement, tolerance);
        self.dist
            .p_nodes
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let j = i + 1;
                if p == 0.0 {
                    0.0
                } else {
                    p * self.q_from_digests(j, &digests)
                }
            })
            .sum()
    }
}

/// Convenience: P(catastrophic) with the FTI half-cluster tolerance and
/// the FTI-calibrated event distribution.
pub fn p_catastrophic_fti(nodes: usize, clustering: &Clustering, placement: &Placement) -> f64 {
    ReliabilityModel::new(nodes, EventDistribution::fti_calibrated()).p_catastrophic(
        clustering,
        placement,
        &fti_tolerance,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcft_graph::Clustering;
    use hcft_topology::Placement;

    /// Distributed clustering over a block placement: cluster (g, slot)
    /// takes the slot-th rank of each node in node-group g.
    fn distributed(nodes: usize, ppn: usize, size: usize) -> Clustering {
        let groups = nodes / size;
        let assignment: Vec<usize> = (0..nodes * ppn)
            .map(|r| {
                let node = r / ppn;
                let slot = r % ppn;
                let g = node / size;
                g * ppn + slot
            })
            .collect();
        let _ = groups;
        Clustering::from_assignment(&assignment)
    }

    #[test]
    fn same_node_cluster_dies_on_any_node_failure() {
        // 8 nodes × 8 ppn, clusters of 8 consecutive = whole nodes.
        let p = Placement::block(8, 8);
        let c = Clustering::consecutive(64, 8);
        let m = ReliabilityModel::new(8, EventDistribution::single_node_only());
        let q = m.q_given_j(1, &c, &p, &fti_tolerance);
        assert_eq!(q, 1.0);
        assert_eq!(m.p_catastrophic(&c, &p, &fti_tolerance), 1.0);
    }

    #[test]
    fn two_node_cluster_survives_one_node() {
        // Clusters of 16 consecutive over nodes of 8: span 2 nodes, lose
        // 8 of 16, tolerance 8 → survive.
        let p = Placement::block(8, 8);
        let c = Clustering::consecutive(64, 16);
        let m = ReliabilityModel::new(8, EventDistribution::single_node_only());
        assert_eq!(m.q_given_j(1, &c, &p, &fti_tolerance), 0.0);
        // But any same-cluster pair dies: bad pairs = 4 of C(8,2)=28.
        let q2 = m.q_given_j(2, &c, &p, &fti_tolerance);
        assert!((q2 - 4.0 / 28.0).abs() < 1e-12);
    }

    #[test]
    fn fully_distributed_cluster_needs_majority_loss() {
        // 16 nodes × 4 ppn, distributed clusters of 4 (one rank per node
        // in groups of 4 nodes): tolerance 2, dies only if ≥3 of its 4
        // nodes fail.
        let p = Placement::block(16, 4);
        let c = distributed(16, 4, 4);
        let m = ReliabilityModel::new(16, EventDistribution::single_node_only());
        assert_eq!(m.q_given_j(1, &c, &p, &fti_tolerance), 0.0);
        assert_eq!(m.q_given_j(2, &c, &p, &fti_tolerance), 0.0);
        let q3 = m.q_given_j(3, &c, &p, &fti_tolerance);
        // Bad triples: per node-group C(4,3)=4, 4 groups → 16 of C(16,3)=560.
        // (After signature dedup the union bound is exact here: the four
        // slot clusters of a node group share one signature, and distinct
        // groups cannot both lose 3 nodes within a 3-node event.)
        assert!((q3 - 16.0 / 560.0).abs() < 1e-9, "q3 = {q3}");
    }

    #[test]
    fn analytic_matches_monte_carlo() {
        let p = Placement::block(16, 4);
        let c = distributed(16, 4, 4);
        let m = ReliabilityModel::new(16, EventDistribution::single_node_only());
        for j in [3usize, 4, 5] {
            let analytic = m.q_given_j(j, &c, &p, &fti_tolerance);
            let mc = m.q_given_j_monte_carlo(j, &c, &p, &fti_tolerance, 200_000, 42);
            assert!(
                (analytic - mc).abs() < 0.01 + 0.2 * analytic,
                "j={j}: analytic {analytic} vs MC {mc}"
            );
        }
    }

    #[test]
    fn paper_ordering_of_clusterings() {
        // 64 nodes × 16 ppn (the paper's §V layout, Table II).
        let nodes = 64;
        let ppn = 16;
        let p = Placement::block(nodes, ppn);
        let m = ReliabilityModel::new(nodes, EventDistribution::fti_calibrated());
        // Size-guided: 8 consecutive (half a node) — dies on any node loss.
        let size_guided = Clustering::consecutive(1024, 8);
        // Naïve: 32 consecutive (2 nodes).
        let naive = Clustering::consecutive(1024, 32);
        // Distributed 16: slot clusters over groups of 16 nodes.
        let dist16 = distributed(nodes, ppn, 16);
        // Hierarchical L2: clusters of 4, one rank per node in groups of 4.
        let hier = distributed(nodes, ppn, 4);
        let p_sg = m.p_catastrophic(&size_guided, &p, &fti_tolerance);
        let p_nv = m.p_catastrophic(&naive, &p, &fti_tolerance);
        let p_hi = m.p_catastrophic(&hier, &p, &fti_tolerance);
        let p_ds = m.p_catastrophic(&dist16, &p, &fti_tolerance);
        // Table II: 0.95 / ~1e-4 / ~1e-6 / ~1e-15.
        assert!((p_sg - 0.95).abs() < 1e-9, "size-guided {p_sg}");
        assert!(p_nv > 1e-5 && p_nv < 1e-3, "naive {p_nv}");
        assert!(p_hi > 1e-7 && p_hi < 1e-5, "hierarchical {p_hi}");
        assert!(p_ds < 1e-12, "distributed {p_ds}");
        assert!(p_ds < p_hi && p_hi < p_nv && p_nv < p_sg);
    }

    #[test]
    fn q_is_monotone_in_j() {
        let p = Placement::block(16, 4);
        let c = distributed(16, 4, 4);
        let m = ReliabilityModel::new(16, EventDistribution::single_node_only());
        let mut prev = 0.0;
        for j in 1..=8 {
            let q = m.q_given_j(j, &c, &p, &fti_tolerance);
            assert!(q + 1e-12 >= prev, "q({j}) = {q} < q({}) = {prev}", j - 1);
            prev = q;
        }
    }
}
