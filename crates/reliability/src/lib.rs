//! Failure and reliability models.
//!
//! Implements the "catastrophic failure model" the paper takes from FTI
//! \[3\] and uses for Fig. 4a and Table II's probability column: a failure
//! event is *catastrophic* when some erasure-coding cluster loses more
//! members than its parity can rebuild, so the checkpoint data is gone and
//! the application must fall back to an old PFS checkpoint (or die).
//!
//! * [`events`] — the distribution of failure event classes (transient /
//!   1-node / correlated j-node), calibrated to the FTI observation that
//!   "most failures … affect only … one single node or a small set of
//!   nodes";
//! * [`combinatorics`] — exact hypergeometric machinery;
//! * [`model`] — P(catastrophic) per clustering: exact enumeration for
//!   1- and 2-node events, per-cluster knapsack DP + union bound for
//!   deeper correlated events, cross-validated by Monte Carlo;
//! * [`arrivals`] — failure arrival processes (exponential and Weibull)
//!   for end-to-end failure injection.

pub mod arrivals;
pub mod combinatorics;
pub mod efficiency;
pub mod events;
pub mod model;

pub use arrivals::FailureArrivals;
pub use efficiency::EfficiencyModel;
pub use events::{ClassSampler, EventDistribution};
pub use model::ReliabilityModel;
