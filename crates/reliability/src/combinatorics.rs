//! Exact small-scale combinatorics used by the reliability model.

/// Binomial coefficient C(n, k) as f64 (exact for the magnitudes the
/// model needs; returns 0.0 when `k > n`).
pub fn choose(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Hypergeometric probability that a uniformly random `j`-subset of `n`
/// items contains a *fixed* `r`-subset entirely: C(n−r, j−r) / C(n, j).
pub fn p_subset_covered(n: usize, j: usize, r: usize) -> f64 {
    if r > j || j > n {
        return 0.0;
    }
    choose(n - r, j - r) / choose(n, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_basics() {
        assert_eq!(choose(5, 0), 1.0);
        assert_eq!(choose(5, 5), 1.0);
        assert_eq!(choose(5, 2), 10.0);
        assert_eq!(choose(64, 1), 64.0);
        assert_eq!(choose(3, 4), 0.0);
        assert!((choose(64, 2) - 2016.0).abs() < 1e-9);
    }

    #[test]
    fn choose_is_symmetric() {
        for n in 0..20 {
            for k in 0..=n {
                assert!((choose(n, k) - choose(n, n - k)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn pascal_recurrence_holds() {
        for n in 1..30 {
            for k in 1..n {
                let lhs = choose(n, k);
                let rhs = choose(n - 1, k - 1) + choose(n - 1, k);
                assert!((lhs - rhs).abs() < 1e-6 * lhs.max(1.0));
            }
        }
    }

    #[test]
    fn subset_cover_probability() {
        // Pick 2 of 4; P a fixed single item is included = 1/2.
        assert!((p_subset_covered(4, 2, 1) - 0.5).abs() < 1e-12);
        // P a fixed pair is the chosen pair = 1/C(4,2) = 1/6.
        assert!((p_subset_covered(4, 2, 2) - 1.0 / 6.0).abs() < 1e-12);
        // Impossible cases.
        assert_eq!(p_subset_covered(4, 1, 2), 0.0);
        assert_eq!(p_subset_covered(4, 5, 1), 0.0);
    }
}
