//! Failure arrival processes.
//!
//! For end-to-end failure injection the experiment driver needs *when*
//! failures strike, not only what they hit. Exponential arrivals model
//! the memoryless steady state (constant hazard, the usual MTBF
//! abstraction); Weibull with shape < 1 models the infant-mortality-heavy
//! behaviour observed on real HPC systems.

use rand::Rng;

/// A renewal process of failure arrivals.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FailureArrivals {
    /// Exponential inter-arrival times with the given mean (MTBF), hours.
    Exponential {
        /// Mean time between failures.
        mtbf: f64,
    },
    /// Weibull inter-arrival times: scale λ and shape k.
    Weibull {
        /// Scale parameter (hours).
        scale: f64,
        /// Shape parameter (k < 1: decreasing hazard).
        shape: f64,
    },
}

impl FailureArrivals {
    /// Exponential process with the given MTBF (hours).
    pub fn exponential(mtbf: f64) -> Self {
        assert!(mtbf > 0.0);
        FailureArrivals::Exponential { mtbf }
    }

    /// Weibull process. The mean inter-arrival is `scale·Γ(1 + 1/shape)`.
    pub fn weibull(scale: f64, shape: f64) -> Self {
        assert!(scale > 0.0 && shape > 0.0);
        FailureArrivals::Weibull { scale, shape }
    }

    /// Draw one inter-arrival time (hours) by inverse-CDF sampling.
    pub fn sample_interval<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // U in (0, 1]: avoid ln(0).
        let u: f64 = 1.0 - rng.random::<f64>();
        match *self {
            FailureArrivals::Exponential { mtbf } => -mtbf * u.ln(),
            FailureArrivals::Weibull { scale, shape } => scale * (-u.ln()).powf(1.0 / shape),
        }
    }

    /// All failure times within `[0, duration)` hours.
    pub fn sample_times<R: Rng + ?Sized>(&self, duration: f64, rng: &mut R) -> Vec<f64> {
        let mut out = Vec::new();
        self.sample_times_into(duration, rng, &mut out);
        out
    }

    /// [`FailureArrivals::sample_times`] into a caller-owned buffer.
    ///
    /// Clears `out` and refills it, keeping its capacity — the batched
    /// Monte-Carlo campaign kernel calls this once per trial and must not
    /// touch the allocator in steady state. Consumes the RNG identically
    /// to [`FailureArrivals::sample_times`], so the two are
    /// interchangeable mid-stream.
    pub fn sample_times_into<R: Rng + ?Sized>(
        &self,
        duration: f64,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        let mut t = 0.0;
        loop {
            t += self.sample_interval(rng);
            if t >= duration {
                return;
            }
            out.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_matches_mtbf() {
        let mut rng = StdRng::seed_from_u64(1);
        let proc_ = FailureArrivals::exponential(10.0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| proc_.sample_interval(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let w = FailureArrivals::weibull(5.0, 1.0);
        let e = FailureArrivals::exponential(5.0);
        for _ in 0..100 {
            let x = w.sample_interval(&mut a);
            let y = e.sample_interval(&mut b);
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_times_are_increasing_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let times = FailureArrivals::exponential(1.0).sample_times(50.0, &mut rng);
        assert!(!times.is_empty());
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert!(times.iter().all(|&t| t < 50.0));
        // Expect roughly 50 events.
        assert!(times.len() > 25 && times.len() < 90, "{}", times.len());
    }

    #[test]
    fn sample_times_into_matches_sample_times() {
        let proc_ = FailureArrivals::weibull(2.0, 0.7);
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let mut buf = vec![99.0; 4]; // stale content must be cleared
        for _ in 0..10 {
            let owned = proc_.sample_times(30.0, &mut a);
            proc_.sample_times_into(30.0, &mut b, &mut buf);
            assert_eq!(owned, buf);
        }
    }

    #[test]
    fn lower_mtbf_means_more_failures() {
        let mut rng = StdRng::seed_from_u64(9);
        let many = FailureArrivals::exponential(1.0)
            .sample_times(100.0, &mut rng)
            .len();
        let few = FailureArrivals::exponential(10.0)
            .sample_times(100.0, &mut rng)
            .len();
        assert!(many > few);
    }
}
