//! Application efficiency under checkpoint/restart — the first-order
//! Young/Daly analysis, extended with failure containment.
//!
//! The paper's introduction argues that (i) checkpoint time must shrink
//! (hence multi-level checkpointing) and (ii) restarting everything
//! wastes resources (hence containment). This model quantifies both: for
//! checkpoint cost δ, system MTBF M, recovery latency R and restarted
//! fraction f, the first-order waste of a checkpoint interval τ is
//!
//! ```text
//! W(τ) = δ/τ  +  f · (τ/2 + R) / M
//! ```
//!
//! (checkpoint overhead + expected redone work, scaled by how much of the
//! machine actually rolls back). Minimising gives the containment-aware
//! optimal interval `τ* = √(2δM/f)` — failure containment (f < 1) both
//! lengthens the optimal interval and raises peak efficiency, which is
//! exactly the resource argument of §I.

/// First-order checkpoint/restart efficiency model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EfficiencyModel {
    /// System mean time between failures, seconds.
    pub mtbf_s: f64,
    /// Cost of one coordinated checkpoint, seconds.
    pub checkpoint_s: f64,
    /// Recovery latency (rebuild + restart), seconds.
    pub recovery_s: f64,
    /// Fraction of the machine's work redone per failure (1.0 without
    /// containment; the L1 cluster fraction with it).
    pub restart_fraction: f64,
    /// Probability that a failure defeats the erasure level entirely
    /// (the paper's P(catastrophic)); such failures pay
    /// `catastrophic_penalty_s` machine-wide.
    pub p_catastrophic: f64,
    /// Machine-seconds lost to one catastrophic failure (fall back to an
    /// old PFS checkpoint and redo the gap).
    pub catastrophic_penalty_s: f64,
}

impl EfficiencyModel {
    /// Build a model; arguments must be positive (`restart_fraction` in
    /// (0, 1]).
    ///
    /// # Panics
    /// Panics on non-positive or out-of-range arguments.
    pub fn new(mtbf_s: f64, checkpoint_s: f64, recovery_s: f64, restart_fraction: f64) -> Self {
        assert!(mtbf_s > 0.0 && checkpoint_s > 0.0 && recovery_s >= 0.0);
        assert!(
            restart_fraction > 0.0 && restart_fraction <= 1.0,
            "restart fraction in (0, 1]"
        );
        EfficiencyModel {
            mtbf_s,
            checkpoint_s,
            recovery_s,
            restart_fraction,
            p_catastrophic: 0.0,
            catastrophic_penalty_s: 0.0,
        }
    }

    /// Account for catastrophic failures: with probability `p` a failure
    /// defeats the erasure protection and costs `penalty_s` machine-wide.
    ///
    /// # Panics
    /// Panics unless `p ∈ [0, 1]` and `penalty_s ≥ 0`.
    pub fn with_catastrophe(mut self, p: f64, penalty_s: f64) -> Self {
        assert!((0.0..=1.0).contains(&p) && penalty_s >= 0.0);
        self.p_catastrophic = p;
        self.catastrophic_penalty_s = penalty_s;
        self
    }

    /// First-order waste fraction at checkpoint interval `tau_s`:
    /// checkpoint overhead + contained redo work + catastrophic
    /// fallbacks.
    pub fn waste(&self, tau_s: f64) -> f64 {
        assert!(tau_s > 0.0);
        self.checkpoint_s / tau_s
            + self.restart_fraction * (tau_s / 2.0 + self.recovery_s) / self.mtbf_s
            + self.p_catastrophic * self.catastrophic_penalty_s / self.mtbf_s
    }

    /// Efficiency (1 − waste, floored at 0) at interval `tau_s`.
    pub fn efficiency(&self, tau_s: f64) -> f64 {
        (1.0 - self.waste(tau_s)).max(0.0)
    }

    /// The waste-minimising checkpoint interval `τ* = √(2δM/f)`.
    pub fn optimal_interval(&self) -> f64 {
        (2.0 * self.checkpoint_s * self.mtbf_s / self.restart_fraction).sqrt()
    }

    /// Efficiency at the optimal interval.
    pub fn peak_efficiency(&self) -> f64 {
        self.efficiency(self.optimal_interval())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> EfficiencyModel {
        EfficiencyModel::new(3600.0, 60.0, 120.0, 1.0)
    }

    #[test]
    fn optimum_matches_daly_first_order() {
        let m = base();
        let tau = m.optimal_interval();
        assert!((tau - (2.0f64 * 60.0 * 3600.0).sqrt()).abs() < 1e-9);
        // τ* is a minimum of the waste curve.
        assert!(m.waste(tau) < m.waste(tau * 0.5));
        assert!(m.waste(tau) < m.waste(tau * 2.0));
    }

    #[test]
    fn containment_raises_peak_efficiency() {
        let full = base();
        let contained = EfficiencyModel::new(3600.0, 60.0, 120.0, 0.0625);
        assert!(contained.peak_efficiency() > full.peak_efficiency());
        // And lengthens the optimal interval by 1/√f = 4×.
        assert!((contained.optimal_interval() / full.optimal_interval() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn faster_checkpoints_raise_efficiency() {
        let slow = EfficiencyModel::new(3600.0, 204.0, 60.0, 1.0); // naive-32 encode
        let fast = EfficiencyModel::new(3600.0, 26.0, 60.0, 1.0); // hierarchical L2=4
        assert!(fast.peak_efficiency() > slow.peak_efficiency());
    }

    #[test]
    fn waste_grows_at_extremes() {
        let m = base();
        // Checkpointing constantly or never both approach total waste.
        assert!(m.efficiency(1.0) < 0.1);
        assert!(m.waste(1e7) > m.waste(m.optimal_interval()));
    }

    #[test]
    fn efficiency_is_clamped() {
        let hopeless = EfficiencyModel::new(10.0, 60.0, 60.0, 1.0);
        assert_eq!(hopeless.efficiency(10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "restart fraction")]
    fn rejects_zero_restart_fraction() {
        EfficiencyModel::new(1.0, 1.0, 1.0, 0.0);
    }
}

#[cfg(test)]
mod catastrophe_tests {
    use super::*;

    #[test]
    fn catastrophe_term_shifts_the_verdict() {
        // The paper's size-guided vs hierarchical efficiency story: the
        // size-guided clustering has *better* containment numbers but is
        // catastrophic on ~every node failure, so once the PFS-fallback
        // penalty is billed it loses.
        let size_guided = EfficiencyModel::new(4.0 * 3600.0, 51.0, 51.0, 0.0156)
            .with_catastrophe(0.95, 2.0 * 3600.0);
        let hierarchical = EfficiencyModel::new(4.0 * 3600.0, 26.0, 26.0, 0.0625)
            .with_catastrophe(1e-6, 2.0 * 3600.0);
        assert!(hierarchical.peak_efficiency() > size_guided.peak_efficiency());
        // Without the catastrophe term the comparison flips.
        let sg_naive = EfficiencyModel::new(4.0 * 3600.0, 51.0, 51.0, 0.0156);
        let hi_naive = EfficiencyModel::new(4.0 * 3600.0, 26.0, 26.0, 0.0625);
        assert!(sg_naive.peak_efficiency() > hi_naive.peak_efficiency());
    }

    #[test]
    fn catastrophe_term_is_interval_independent() {
        let m = EfficiencyModel::new(3600.0, 60.0, 60.0, 0.25).with_catastrophe(0.5, 600.0);
        let base = EfficiencyModel::new(3600.0, 60.0, 60.0, 0.25);
        for tau in [100.0, 1000.0, 10000.0] {
            let delta = m.waste(tau) - base.waste(tau);
            assert!((delta - 0.5 * 600.0 / 3600.0).abs() < 1e-12);
        }
        // So the optimal interval is unchanged.
        assert!((m.optimal_interval() - base.optimal_interval()).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_probability() {
        let _ = EfficiencyModel::new(1.0, 1.0, 0.0, 1.0).with_catastrophe(1.5, 1.0);
    }
}
