//! The failure-event class distribution.
//!
//! FTI's failure analysis (and the broader literature the paper cites)
//! observes that most failures touch a single node; simultaneous
//! multi-node failures happen — shared power supplies, chassis, switches —
//! but with fast-decaying probability in the number of nodes involved.
//! Soft errors (transient, recoverable from the node-local checkpoint
//! alone) make up the remainder.
//!
//! [`EventDistribution::fti_calibrated`] encodes a distribution consistent
//! with the paper's Table II: with FTI's Reed–Solomon tolerating half of
//! each encoding cluster,
//! * same-node clusters of 8 → P(cat) ≈ 0.95 (any node event kills them);
//! * naïve 32-process clusters spanning 2 nodes → ≈ 1e-4;
//! * hierarchical L2 clusters of 4 distributed over 4 nodes → ≈ 1e-6;
//! * distributed clusters of 16 over 16 nodes → ≈ 1e-15.

/// Distribution over failure-event classes. An event is either transient
/// (no node loses its storage) or the simultaneous loss of `j ≥ 1` nodes
/// chosen uniformly at random.
#[derive(Clone, Debug, PartialEq)]
pub struct EventDistribution {
    /// Probability that a failure event is transient.
    pub p_transient: f64,
    /// `p_nodes[j-1]` = probability that a failure event takes down
    /// exactly `j` simultaneous nodes.
    pub p_nodes: Vec<f64>,
}

impl EventDistribution {
    /// Calibrated to FTI's observations (see module docs): 5 % transient,
    /// single-node dominant, correlated j-node events decaying by ~12.5×
    /// per extra node beyond the PSU-pair class.
    pub fn fti_calibrated() -> Self {
        let p_transient = 0.05;
        // Pair failures (shared PSU etc.): ~0.66 % of all events; deeper
        // correlations decay geometrically.
        let p2 = 6.3e-3;
        let decay: f64 = 0.08;
        let max_j = 12;
        let mut p_nodes = vec![0.0; max_j];
        for j in 2..=max_j {
            p_nodes[j - 1] = p2 * decay.powi(j as i32 - 2);
        }
        let tail: f64 = p_nodes.iter().sum();
        p_nodes[0] = 1.0 - p_transient - tail;
        EventDistribution {
            p_transient,
            p_nodes,
        }
    }

    /// Every failure event takes down exactly one node — the simplest
    /// model, useful for isolating the placement effect (Fig. 4a uses a
    /// variant of this view).
    pub fn single_node_only() -> Self {
        EventDistribution {
            p_transient: 0.0,
            p_nodes: vec![1.0],
        }
    }

    /// A custom distribution.
    ///
    /// # Panics
    /// Panics unless the probabilities are non-negative and sum to 1
    /// (within 1e-9).
    pub fn new(p_transient: f64, p_nodes: Vec<f64>) -> Self {
        assert!(p_transient >= 0.0 && p_nodes.iter().all(|&p| p >= 0.0));
        let total: f64 = p_transient + p_nodes.iter().sum::<f64>();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "event probabilities sum to {total}, not 1"
        );
        EventDistribution {
            p_transient,
            p_nodes,
        }
    }

    /// Largest simultaneous-failure cardinality with non-zero probability.
    pub fn max_nodes(&self) -> usize {
        self.p_nodes
            .iter()
            .rposition(|&p| p > 0.0)
            .map_or(0, |i| i + 1)
    }

    /// Probability that an event involves node loss at all.
    pub fn p_node_loss(&self) -> f64 {
        self.p_nodes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_distribution_is_normalised() {
        let d = EventDistribution::fti_calibrated();
        let total = d.p_transient + d.p_nodes.iter().sum::<f64>();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((d.p_node_loss() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn single_node_dominates() {
        let d = EventDistribution::fti_calibrated();
        assert!(d.p_nodes[0] > 0.9);
        // Monotone decay beyond j=1.
        for j in 2..d.p_nodes.len() {
            assert!(d.p_nodes[j] <= d.p_nodes[j - 1]);
        }
    }

    #[test]
    fn max_nodes_reports_support() {
        assert_eq!(EventDistribution::single_node_only().max_nodes(), 1);
        assert_eq!(EventDistribution::fti_calibrated().max_nodes(), 12);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn new_rejects_unnormalised() {
        EventDistribution::new(0.5, vec![0.6]);
    }
}
