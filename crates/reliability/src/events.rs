//! The failure-event class distribution.
//!
//! FTI's failure analysis (and the broader literature the paper cites)
//! observes that most failures touch a single node; simultaneous
//! multi-node failures happen — shared power supplies, chassis, switches —
//! but with fast-decaying probability in the number of nodes involved.
//! Soft errors (transient, recoverable from the node-local checkpoint
//! alone) make up the remainder.
//!
//! [`EventDistribution::fti_calibrated`] encodes a distribution consistent
//! with the paper's Table II: with FTI's Reed–Solomon tolerating half of
//! each encoding cluster,
//! * same-node clusters of 8 → P(cat) ≈ 0.95 (any node event kills them);
//! * naïve 32-process clusters spanning 2 nodes → ≈ 1e-4;
//! * hierarchical L2 clusters of 4 distributed over 4 nodes → ≈ 1e-6;
//! * distributed clusters of 16 over 16 nodes → ≈ 1e-15.

use hcft_telemetry::HcftError;

/// Distribution over failure-event classes. An event is either transient
/// (no node loses its storage) or the simultaneous loss of `j ≥ 1` nodes
/// chosen uniformly at random.
#[derive(Clone, Debug, PartialEq)]
pub struct EventDistribution {
    /// Probability that a failure event is transient.
    pub p_transient: f64,
    /// `p_nodes[j-1]` = probability that a failure event takes down
    /// exactly `j` simultaneous nodes.
    pub p_nodes: Vec<f64>,
}

impl EventDistribution {
    /// Calibrated to FTI's observations (see module docs): 5 % transient,
    /// single-node dominant, correlated j-node events decaying by ~12.5×
    /// per extra node beyond the PSU-pair class.
    pub fn fti_calibrated() -> Self {
        let p_transient = 0.05;
        // Pair failures (shared PSU etc.): ~0.66 % of all events; deeper
        // correlations decay geometrically.
        let p2 = 6.3e-3;
        let decay: f64 = 0.08;
        let max_j = 12;
        let mut p_nodes = vec![0.0; max_j];
        for j in 2..=max_j {
            p_nodes[j - 1] = p2 * decay.powi(j as i32 - 2);
        }
        let tail: f64 = p_nodes.iter().sum();
        p_nodes[0] = 1.0 - p_transient - tail;
        EventDistribution {
            p_transient,
            p_nodes,
        }
    }

    /// Every failure event takes down exactly one node — the simplest
    /// model, useful for isolating the placement effect (Fig. 4a uses a
    /// variant of this view).
    pub fn single_node_only() -> Self {
        EventDistribution {
            p_transient: 0.0,
            p_nodes: vec![1.0],
        }
    }

    /// A custom distribution. Returns [`HcftError::Config`] unless every
    /// probability is a finite non-negative number and they sum to 1
    /// (within 1e-9).
    pub fn new(p_transient: f64, p_nodes: Vec<f64>) -> Result<Self, HcftError> {
        if !p_transient.is_finite()
            || p_transient < 0.0
            || p_nodes.iter().any(|&p| !p.is_finite() || p < 0.0)
        {
            return Err(HcftError::Config(
                "event probabilities must be finite and non-negative".to_string(),
            ));
        }
        let total: f64 = p_transient + p_nodes.iter().sum::<f64>();
        if (total - 1.0).abs() >= 1e-9 {
            return Err(HcftError::Config(format!(
                "event probabilities sum to {total}, not 1"
            )));
        }
        Ok(EventDistribution {
            p_transient,
            p_nodes,
        })
    }

    /// Precompute the cumulative table + guide LUT used to draw event
    /// classes in the Monte-Carlo hot loop.
    pub fn sampler(&self) -> ClassSampler {
        ClassSampler::new(self)
    }

    /// Largest simultaneous-failure cardinality with non-zero probability.
    pub fn max_nodes(&self) -> usize {
        self.p_nodes
            .iter()
            .rposition(|&p| p > 0.0)
            .map_or(0, |i| i + 1)
    }

    /// Probability that an event involves node loss at all.
    pub fn p_node_loss(&self) -> f64 {
        self.p_nodes.iter().sum()
    }
}

/// Precomputed event-class sampler: one uniform draw in `[0, 1)` maps to
/// `None` (transient) or `Some(j)` (simultaneous loss of `j` nodes).
///
/// The class is located on a cumulative-probability table; a 256-bucket
/// guide LUT skips the prefix of boundaries that cannot match the draw,
/// so the expected scan length is ~1 regardless of how many correlated
/// classes the distribution carries. [`ClassSampler::draw`] (LUT) and
/// [`ClassSampler::draw_scan`] (plain linear scan, retained as the
/// reference) compare the draw against the *same* boundaries and are
/// therefore bit-identical — the campaign proptests rely on that.
///
/// A draw past the last boundary (possible only through floating-point
/// rounding in the cumulative sums) clamps to the last class with
/// non-zero probability instead of silently re-labelling the event.
#[derive(Clone, Debug)]
pub struct ClassSampler {
    /// `bounds[0]` = P(transient); `bounds[k]` = P(transient) +
    /// p_nodes[0] + … + p_nodes[k-1]. A draw `u` belongs to the first
    /// `k` with `u < bounds[k]`.
    bounds: Vec<f64>,
    /// `lut[b]` = first boundary index worth testing for draws in
    /// `[b/256, (b+1)/256)`: every earlier boundary is ≤ the bucket's
    /// lower edge, so `u < bounds[k]` is false for it.
    lut: [u32; 256],
    /// Largest class with non-zero probability (0 = transient only).
    last: usize,
}

impl ClassSampler {
    fn new(events: &EventDistribution) -> Self {
        let mut bounds = Vec::with_capacity(events.p_nodes.len() + 1);
        let mut acc = events.p_transient;
        bounds.push(acc);
        for &p in &events.p_nodes {
            acc += p;
            bounds.push(acc);
        }
        let mut lut = [0u32; 256];
        for (b, slot) in lut.iter_mut().enumerate() {
            let lo = b as f64 / 256.0;
            *slot = bounds.iter().position(|&x| x > lo).unwrap_or(bounds.len()) as u32;
        }
        ClassSampler {
            bounds,
            lut,
            last: events.max_nodes(),
        }
    }

    /// Map a uniform draw `u ∈ [0, 1)` to an event class (LUT-guided).
    #[inline]
    pub fn draw(&self, u: f64) -> Option<usize> {
        let bucket = ((u * 256.0) as usize).min(255);
        let mut k = self.lut[bucket] as usize;
        while k < self.bounds.len() {
            if u < self.bounds[k] {
                return if k == 0 { None } else { Some(k) };
            }
            k += 1;
        }
        // FP rounding pushed u past the final cumulative sum.
        if self.last == 0 {
            None
        } else {
            Some(self.last)
        }
    }

    /// Plain linear scan over the same boundaries — the scalar reference
    /// the campaign's `run_trial_reference` uses. Bit-identical to
    /// [`ClassSampler::draw`] for every `u`.
    #[inline]
    pub fn draw_scan(&self, u: f64) -> Option<usize> {
        for (k, &b) in self.bounds.iter().enumerate() {
            if u < b {
                return if k == 0 { None } else { Some(k) };
            }
        }
        if self.last == 0 {
            None
        } else {
            Some(self.last)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_distribution_is_normalised() {
        let d = EventDistribution::fti_calibrated();
        let total = d.p_transient + d.p_nodes.iter().sum::<f64>();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((d.p_node_loss() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn single_node_dominates() {
        let d = EventDistribution::fti_calibrated();
        assert!(d.p_nodes[0] > 0.9);
        // Monotone decay beyond j=1.
        for j in 2..d.p_nodes.len() {
            assert!(d.p_nodes[j] <= d.p_nodes[j - 1]);
        }
    }

    #[test]
    fn max_nodes_reports_support() {
        assert_eq!(EventDistribution::single_node_only().max_nodes(), 1);
        assert_eq!(EventDistribution::fti_calibrated().max_nodes(), 12);
    }

    #[test]
    fn new_rejects_unnormalised() {
        let err = EventDistribution::new(0.5, vec![0.6]).unwrap_err();
        assert!(matches!(err, HcftError::Config(_)), "{err:?}");
        let err = EventDistribution::new(-0.1, vec![1.1]).unwrap_err();
        assert!(matches!(err, HcftError::Config(_)), "{err:?}");
        let err = EventDistribution::new(f64::NAN, vec![1.0]).unwrap_err();
        assert!(matches!(err, HcftError::Config(_)), "{err:?}");
        let ok = EventDistribution::new(0.25, vec![0.5, 0.25]).unwrap();
        assert_eq!(ok.max_nodes(), 2);
    }

    #[test]
    fn sampler_covers_the_distribution() {
        let d = EventDistribution::fti_calibrated();
        let s = d.sampler();
        // Boundary cases: 0 is transient (p_transient > 0), a draw in the
        // single-node bulk is Some(1), a draw just under 1 lands in the
        // support, and the clamp path returns the last class.
        assert_eq!(s.draw(0.0), None);
        assert_eq!(s.draw(0.5), Some(1));
        let tail = s.draw(1.0 - 1e-12).expect("support");
        assert!(tail >= 1 && tail <= d.max_nodes());
        assert_eq!(s.draw(1.0), Some(d.max_nodes()));
    }

    #[test]
    fn sampler_lut_matches_scan_exactly() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let dists = [
            EventDistribution::fti_calibrated(),
            EventDistribution::single_node_only(),
            EventDistribution::new(1.0, vec![]).unwrap(),
            EventDistribution::new(0.3, vec![0.0, 0.7]).unwrap(),
        ];
        let mut rng = StdRng::seed_from_u64(0xC1A55);
        for d in &dists {
            let s = d.sampler();
            for _ in 0..20_000 {
                let u: f64 = rng.random();
                assert_eq!(s.draw(u), s.draw_scan(u), "u={u}");
            }
        }
    }

    #[test]
    fn sampler_matches_subtractive_frequencies() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let d = EventDistribution::fti_calibrated();
        let s = d.sampler();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut transient = 0usize;
        let mut single = 0usize;
        for _ in 0..n {
            match s.draw(rng.random()) {
                None => transient += 1,
                Some(1) => single += 1,
                Some(_) => {}
            }
        }
        assert!((transient as f64 / n as f64 - d.p_transient).abs() < 0.01);
        assert!((single as f64 / n as f64 - d.p_nodes[0]).abs() < 0.01);
    }
}
