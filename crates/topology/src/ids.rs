//! Strongly-typed identifiers for ranks and nodes.
//!
//! Keeping these as newtypes over `u32` (rather than bare `usize`) prevents
//! the classic bug of indexing a node table with a rank, while staying
//! 4 bytes so that large id vectors stay cache-friendly.

use std::fmt;

/// An MPI-style process rank, global to the job.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rank(pub u32);

/// A physical compute node identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl Rank {
    /// The rank as a usable index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// The node id as a usable index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for Rank {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize);
        Rank(v as u32)
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize);
        NodeId(v as u32)
    }
}

impl fmt::Debug for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_roundtrip() {
        let r = Rank::from(17usize);
        assert_eq!(r.idx(), 17);
        assert_eq!(format!("{r}"), "17");
        assert_eq!(format!("{r:?}"), "r17");
    }

    #[test]
    fn node_roundtrip() {
        let n = NodeId::from(3usize);
        assert_eq!(n.idx(), 3);
        assert_eq!(format!("{n}"), "3");
        assert_eq!(format!("{n:?}"), "n3");
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(Rank(2) < Rank(10));
        assert!(NodeId(0) < NodeId(1));
    }
}
