//! Rank-to-node placement.
//!
//! The paper stresses (§II-C2, §III-B) that users place consecutive ranks on
//! the same node to maximise intra-node communication ("topology-aware
//! positioning"), and that this interacts badly with distributed erasure
//! clusters. [`Placement`] is the single source of truth for which rank
//! lives where; every model downstream (logging overhead, restart cost,
//! reliability) consumes it.

use crate::ids::{NodeId, Rank};

/// How ranks are laid out on nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Consecutive ranks share a node (the paper's default: maximises
    /// intra-node communication for stencils).
    Block,
    /// Rank `r` goes to node `r % nodes` (cyclic). Included as the
    /// anti-pattern the paper warns about for stencil codes.
    RoundRobin,
}

/// An immutable mapping from rank to physical node, with the reverse index
/// precomputed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    node_of: Vec<NodeId>,
    ranks_on: Vec<Vec<Rank>>,
}

impl Placement {
    /// Build a placement of `nprocs` ranks over `nodes` nodes using the
    /// given strategy with `per_node` ranks per node (Block) or cyclic
    /// assignment (RoundRobin).
    ///
    /// # Panics
    /// Panics if `nprocs` does not fit (`nprocs > nodes * per_node` for
    /// Block) or if any argument is zero.
    pub fn new(strategy: PlacementStrategy, nprocs: usize, nodes: usize, per_node: usize) -> Self {
        assert!(nprocs > 0 && nodes > 0 && per_node > 0, "empty placement");
        assert!(
            nprocs <= nodes * per_node,
            "{nprocs} ranks do not fit on {nodes} nodes x {per_node}"
        );
        let node_of: Vec<NodeId> = (0..nprocs)
            .map(|r| match strategy {
                PlacementStrategy::Block => NodeId::from(r / per_node),
                PlacementStrategy::RoundRobin => NodeId::from(r % nodes),
            })
            .collect();
        Self::from_assignment(node_of, nodes)
    }

    /// Block placement covering exactly `nodes * per_node` ranks — the
    /// paper's standard layout.
    pub fn block(nodes: usize, per_node: usize) -> Self {
        Self::new(PlacementStrategy::Block, nodes * per_node, nodes, per_node)
    }

    /// Build from an explicit rank→node assignment.
    ///
    /// # Panics
    /// Panics if any node id is out of range.
    pub fn from_assignment(node_of: Vec<NodeId>, nodes: usize) -> Self {
        let mut ranks_on = vec![Vec::new(); nodes];
        for (r, n) in node_of.iter().enumerate() {
            assert!(n.idx() < nodes, "node {n} out of range ({nodes} nodes)");
            ranks_on[n.idx()].push(Rank::from(r));
        }
        Placement { node_of, ranks_on }
    }

    /// Number of ranks.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.node_of.len()
    }

    /// Number of nodes (including any left empty).
    #[inline]
    pub fn nodes(&self) -> usize {
        self.ranks_on.len()
    }

    /// The node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: Rank) -> NodeId {
        self.node_of[rank.idx()]
    }

    /// Ranks hosted by `node`, in ascending order.
    #[inline]
    pub fn ranks_on(&self, node: NodeId) -> &[Rank] {
        &self.ranks_on[node.idx()]
    }

    /// The local index of `rank` within its node (0-based).
    pub fn local_index(&self, rank: Rank) -> usize {
        self.ranks_on(self.node_of(rank))
            .iter()
            .position(|&r| r == rank)
            .expect("rank present on its own node")
    }

    /// Iterator over `(rank, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Rank, NodeId)> + '_ {
        self.node_of
            .iter()
            .enumerate()
            .map(|(r, &n)| (Rank::from(r), n))
    }

    /// True if the ranks of `set` all live on pairwise-distinct nodes —
    /// the property erasure-code clusters need (§II-C1).
    pub fn fully_distributed(&self, set: &[Rank]) -> bool {
        let mut seen = vec![false; self.nodes()];
        for &r in set {
            let n = self.node_of(r).idx();
            if seen[n] {
                return false;
            }
            seen[n] = true;
        }
        true
    }

    /// The set of distinct nodes hosting `set`, ascending.
    pub fn nodes_of(&self, set: &[Rank]) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = set.iter().map(|&r| self.node_of(r)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Restrict this placement to a subset of ranks, renumbering them
    /// `0..subset.len()` in the given order. Used to project a job-wide
    /// placement onto the application communicator (excluding encoder
    /// ranks).
    pub fn project(&self, subset: &[Rank]) -> Placement {
        let node_of: Vec<NodeId> = subset.iter().map(|&r| self.node_of(r)).collect();
        Self::from_assignment(node_of, self.nodes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_places_consecutive_ranks_together() {
        let p = Placement::block(4, 4);
        assert_eq!(p.nprocs(), 16);
        assert_eq!(p.node_of(Rank(0)), NodeId(0));
        assert_eq!(p.node_of(Rank(3)), NodeId(0));
        assert_eq!(p.node_of(Rank(4)), NodeId(1));
        assert_eq!(p.ranks_on(NodeId(1)), &[Rank(4), Rank(5), Rank(6), Rank(7)]);
    }

    #[test]
    fn round_robin_cycles() {
        let p = Placement::new(PlacementStrategy::RoundRobin, 8, 4, 2);
        assert_eq!(p.node_of(Rank(0)), NodeId(0));
        assert_eq!(p.node_of(Rank(4)), NodeId(0));
        assert_eq!(p.node_of(Rank(5)), NodeId(1));
        assert_eq!(p.ranks_on(NodeId(0)), &[Rank(0), Rank(4)]);
    }

    #[test]
    fn local_index_counts_within_node() {
        let p = Placement::block(2, 3);
        assert_eq!(p.local_index(Rank(0)), 0);
        assert_eq!(p.local_index(Rank(2)), 2);
        assert_eq!(p.local_index(Rank(4)), 1);
    }

    #[test]
    fn fully_distributed_detects_colocation() {
        let p = Placement::block(4, 4);
        assert!(p.fully_distributed(&[Rank(0), Rank(4), Rank(8), Rank(12)]));
        assert!(!p.fully_distributed(&[Rank(0), Rank(1)]));
        assert!(p.fully_distributed(&[]));
    }

    #[test]
    fn nodes_of_dedups_and_sorts() {
        let p = Placement::block(4, 4);
        assert_eq!(
            p.nodes_of(&[Rank(5), Rank(4), Rank(0), Rank(12)]),
            vec![NodeId(0), NodeId(1), NodeId(3)]
        );
    }

    #[test]
    fn project_preserves_node_assignment() {
        let p = Placement::block(2, 4);
        let sub = p.project(&[Rank(1), Rank(5), Rank(6)]);
        assert_eq!(sub.nprocs(), 3);
        assert_eq!(sub.node_of(Rank(0)), NodeId(0));
        assert_eq!(sub.node_of(Rank(1)), NodeId(1));
        assert_eq!(sub.node_of(Rank(2)), NodeId(1));
        assert_eq!(sub.ranks_on(NodeId(1)), &[Rank(1), Rank(2)]);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn overfull_placement_panics() {
        Placement::new(PlacementStrategy::Block, 9, 2, 4);
    }
}
