//! FTI-style job layout: application ranks plus one dedicated encoding
//! rank per node.
//!
//! §V of the paper: on TSUBAME2 the application uses 16 ranks/node; FTI
//! adds one encoding process per node, so 17 ranks/node are launched and
//! global ranks 0, 17, 34, 51, … are encoder processes (the first rank of
//! each node). [`JobLayout`] captures this numbering and the translation
//! between *global* ranks (what the runtime and trace see) and
//! *application* ranks (what the solver and the clustering strategies see).

use crate::ids::{NodeId, Rank};
use crate::placement::Placement;

/// The role of a global rank in an FTI-style job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Runs the application (tsunami solver).
    Application,
    /// Dedicated FTI encoding process (one per node).
    Encoder,
}

/// Layout of a job with `app_per_node` application ranks and one encoder
/// rank per node, block-placed like the paper's runs.
#[derive(Clone, Debug)]
pub struct JobLayout {
    nodes: usize,
    app_per_node: usize,
    /// True when each node additionally hosts one encoder as global-rank
    /// offset 0 within the node.
    with_encoders: bool,
}

impl JobLayout {
    /// Layout with encoders: `nodes × (app_per_node + 1)` global ranks;
    /// within each node, local rank 0 is the encoder (so global encoder
    /// ranks are `0, app_per_node+1, 2(app_per_node+1), …` — 0, 17, 34, 51
    /// for the paper's 16-app-ranks case).
    pub fn with_encoders(nodes: usize, app_per_node: usize) -> Self {
        assert!(nodes > 0 && app_per_node > 0);
        JobLayout {
            nodes,
            app_per_node,
            with_encoders: true,
        }
    }

    /// Layout without encoder ranks (plain application job).
    pub fn app_only(nodes: usize, app_per_node: usize) -> Self {
        assert!(nodes > 0 && app_per_node > 0);
        JobLayout {
            nodes,
            app_per_node,
            with_encoders: false,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Application ranks per node.
    pub fn app_per_node(&self) -> usize {
        self.app_per_node
    }

    /// Global ranks per node (application + encoder if present).
    pub fn ranks_per_node(&self) -> usize {
        self.app_per_node + usize::from(self.with_encoders)
    }

    /// Total global ranks in the job.
    pub fn total_ranks(&self) -> usize {
        self.nodes * self.ranks_per_node()
    }

    /// Total application ranks.
    pub fn app_ranks(&self) -> usize {
        self.nodes * self.app_per_node
    }

    /// Role of a global rank.
    pub fn role(&self, global: Rank) -> Role {
        if self.with_encoders && global.idx().is_multiple_of(self.ranks_per_node()) {
            Role::Encoder
        } else {
            Role::Application
        }
    }

    /// Node hosting a global rank.
    pub fn node_of(&self, global: Rank) -> NodeId {
        NodeId::from(global.idx() / self.ranks_per_node())
    }

    /// All encoder global ranks, ascending (empty if no encoders).
    pub fn encoder_ranks(&self) -> Vec<Rank> {
        if !self.with_encoders {
            return Vec::new();
        }
        (0..self.nodes)
            .map(|n| Rank::from(n * self.ranks_per_node()))
            .collect()
    }

    /// All application global ranks, ascending.
    pub fn application_ranks(&self) -> Vec<Rank> {
        (0..self.total_ranks())
            .map(Rank::from)
            .filter(|&r| self.role(r) == Role::Application)
            .collect()
    }

    /// Translate an application index (0-based, dense) to its global rank.
    pub fn app_to_global(&self, app: usize) -> Rank {
        assert!(app < self.app_ranks(), "app rank {app} out of range");
        if !self.with_encoders {
            return Rank::from(app);
        }
        let node = app / self.app_per_node;
        let local = app % self.app_per_node;
        Rank::from(node * self.ranks_per_node() + 1 + local)
    }

    /// Translate a global rank to its application index, or `None` for an
    /// encoder rank.
    pub fn global_to_app(&self, global: Rank) -> Option<usize> {
        if !self.with_encoders {
            return (global.idx() < self.app_ranks()).then(|| global.idx());
        }
        let rpn = self.ranks_per_node();
        let node = global.idx() / rpn;
        let local = global.idx() % rpn;
        if local == 0 {
            None
        } else {
            Some(node * self.app_per_node + (local - 1))
        }
    }

    /// Placement of all *global* ranks (block: node r / ranks_per_node).
    pub fn global_placement(&self) -> Placement {
        Placement::block(self.nodes, self.ranks_per_node())
    }

    /// Placement of *application* ranks only, renumbered densely — this is
    /// what the clustering strategies operate on.
    pub fn app_placement(&self) -> Placement {
        let assign = (0..self.app_ranks())
            .map(|a| self.node_of(self.app_to_global(a)))
            .collect();
        Placement::from_assignment(assign, self.nodes)
    }

    /// The paper's §V configuration: 64 nodes × 16 application ranks + 1
    /// encoder per node = 1088 global ranks, 1024 application ranks.
    pub fn paper_1024() -> Self {
        Self::with_encoders(64, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_counts() {
        let l = JobLayout::paper_1024();
        assert_eq!(l.total_ranks(), 1088);
        assert_eq!(l.app_ranks(), 1024);
        assert_eq!(l.ranks_per_node(), 17);
    }

    #[test]
    fn encoder_ranks_match_paper_figure_5b() {
        let l = JobLayout::paper_1024();
        let enc = l.encoder_ranks();
        // Fig. 5b: encoding processes at global ranks 0, 17, 34, 51.
        assert_eq!(&enc[..4], &[Rank(0), Rank(17), Rank(34), Rank(51)]);
        assert_eq!(enc.len(), 64);
        for r in &enc {
            assert_eq!(l.role(*r), Role::Encoder);
        }
    }

    #[test]
    fn app_global_translation_roundtrips() {
        let l = JobLayout::with_encoders(3, 4);
        for a in 0..l.app_ranks() {
            let g = l.app_to_global(a);
            assert_eq!(l.role(g), Role::Application);
            assert_eq!(l.global_to_app(g), Some(a));
        }
        assert_eq!(l.global_to_app(Rank(0)), None);
        assert_eq!(l.global_to_app(Rank(5)), None);
    }

    #[test]
    fn app_only_layout_is_identity() {
        let l = JobLayout::app_only(2, 4);
        assert_eq!(l.total_ranks(), 8);
        assert_eq!(l.app_to_global(5), Rank(5));
        assert_eq!(l.global_to_app(Rank(5)), Some(5));
        assert!(l.encoder_ranks().is_empty());
        assert_eq!(l.role(Rank(0)), Role::Application);
    }

    #[test]
    fn app_placement_keeps_node_identity() {
        let l = JobLayout::with_encoders(4, 4);
        let p = l.app_placement();
        assert_eq!(p.nprocs(), 16);
        // App ranks 0..4 on node 0, 4..8 on node 1, etc.
        assert_eq!(p.node_of(Rank(0)), NodeId(0));
        assert_eq!(p.node_of(Rank(3)), NodeId(0));
        assert_eq!(p.node_of(Rank(4)), NodeId(1));
    }

    #[test]
    fn global_placement_has_one_extra_rank_per_node() {
        let l = JobLayout::with_encoders(2, 3);
        let p = l.global_placement();
        assert_eq!(p.nprocs(), 8);
        assert_eq!(p.ranks_on(NodeId(0)).len(), 4);
    }
}
