//! Machine topology model for `hcft`.
//!
//! The paper evaluates on TSUBAME2 (Table I). Every metric it reports is a
//! function of the *logical* topology — which MPI rank lives on which
//! physical node, which nodes share failure domains (power supplies), and
//! the bandwidths of the storage devices used by the multi-level
//! checkpointer. This crate models exactly that: [`MachineSpec`] describes
//! the hardware, [`Placement`] maps ranks to nodes, and [`JobLayout`]
//! describes an FTI-style job in which every node dedicates one rank to
//! checkpoint encoding.

pub mod ids;
pub mod layout;
pub mod machine;
pub mod network;
pub mod placement;
pub mod synthetic;

pub use ids::{NodeId, Rank};
pub use layout::{JobLayout, Role};
pub use machine::{MachineSpec, NetworkSpec, StorageSpec};
pub use network::NetworkTopology;
pub use placement::{Placement, PlacementStrategy};
pub use synthetic::SyntheticGraph;
