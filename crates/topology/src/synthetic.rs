//! Synthetic large-machine communication graphs.
//!
//! The paper's traces top out at 128 nodes; scaling experiments for the
//! clustering engine need communication graphs shaped like real HPC
//! workloads at 4k–131k nodes. These generators model the dominant
//! patterns on the two dominant interconnects of the era:
//!
//! * [`torus2d`] / [`torus3d`] — nearest-neighbour halo exchange on a
//!   wrap-around grid (stencil codes on Blue Gene / Cray class machines);
//! * [`fat_tree`] — dense collectives inside each leaf switch with
//!   progressively lighter inter-switch and inter-pod traffic (TSUBAME2's
//!   class of network, matching [`NetworkTopology::FatTree`]'s hop
//!   hierarchy).
//!
//! Edge weights are bytes with a deterministic ±12.5% jitter (splitmix64
//! keyed by the seed and endpoint pair) so partitions are not degenerate
//! ties, yet every call with the same arguments yields the same graph on
//! every platform — no global RNG, no dependency on `rand`.
//!
//! The generators return plain edge triples rather than a graph type:
//! `hcft-graph` already depends on this crate, so the dependency points
//! the only direction it can.
//!
//! [`NetworkTopology::FatTree`]: crate::NetworkTopology::FatTree

/// Base bytes exchanged over one halo-exchange link (1 MiB).
const HALO_BYTES: u64 = 1 << 20;

/// A generated communication graph: `nodes` vertices and undirected
/// weighted edges with `u < v`, each pair listed once.
#[derive(Clone, Debug)]
pub struct SyntheticGraph {
    /// Vertex count.
    pub nodes: usize,
    /// Undirected edges `(u, v, bytes)` with `u < v`, deduplicated.
    pub edges: Vec<(u32, u32, u64)>,
}

impl SyntheticGraph {
    /// Total bytes over all edges.
    pub fn total_bytes(&self) -> u64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }
}

/// splitmix64: the standard 64-bit finalizer-style mixer — deterministic,
/// stateless, good avalanche.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `base` jittered by ±12.5%, keyed deterministically on the seed and
/// the (unordered) endpoint pair.
fn jitter(base: u64, seed: u64, u: u32, v: u32) -> u64 {
    let h = mix(seed ^ mix(((u as u64) << 32) | v as u64));
    let span = base / 4; // jitter range: [base - span/2, base + span/2]
    base - span / 2 + h % (span + 1)
}

/// Edge accumulator keeping the `u < v`, one-entry-per-pair invariant.
struct EdgeSink {
    seed: u64,
    edges: Vec<(u32, u32, u64)>,
}

impl EdgeSink {
    fn push(&mut self, a: usize, b: usize, base: u64) {
        debug_assert_ne!(a, b, "self edge");
        let (u, v) = (a.min(b) as u32, a.max(b) as u32);
        self.edges.push((u, v, jitter(base, self.seed, u, v)));
    }

    /// Sort and merge duplicates (wrap-around links on extent-2 rings
    /// generate the same pair twice).
    fn finish(mut self, nodes: usize) -> SyntheticGraph {
        self.edges.sort_unstable();
        self.edges.dedup_by(|next, kept| {
            if next.0 == kept.0 && next.1 == kept.1 {
                kept.2 += next.2;
                true
            } else {
                false
            }
        });
        SyntheticGraph {
            nodes,
            edges: self.edges,
        }
    }
}

/// 2-D torus halo exchange: `x·y` nodes, each talking to its four
/// wrap-around grid neighbours. Node ids are row-major (`x` fastest).
pub fn torus2d(x: usize, y: usize, seed: u64) -> SyntheticGraph {
    assert!(x >= 2 && y >= 2, "torus extent must be >= 2");
    let mut sink = EdgeSink {
        seed,
        edges: Vec::with_capacity(2 * x * y),
    };
    for j in 0..y {
        for i in 0..x {
            let u = j * x + i;
            sink.push(u, j * x + (i + 1) % x, HALO_BYTES);
            sink.push(u, ((j + 1) % y) * x + i, HALO_BYTES);
        }
    }
    sink.finish(x * y)
}

/// 3-D torus halo exchange: `x·y·z` nodes, six wrap-around neighbours
/// each. Node ids are row-major (`x` fastest), matching
/// [`NetworkTopology::Torus3D`](crate::NetworkTopology::Torus3D).
pub fn torus3d(x: usize, y: usize, z: usize, seed: u64) -> SyntheticGraph {
    assert!(x >= 2 && y >= 2 && z >= 2, "torus extent must be >= 2");
    let mut sink = EdgeSink {
        seed,
        edges: Vec::with_capacity(3 * x * y * z),
    };
    for k in 0..z {
        for j in 0..y {
            for i in 0..x {
                let u = (k * y + j) * x + i;
                sink.push(u, (k * y + j) * x + (i + 1) % x, HALO_BYTES);
                sink.push(u, (k * y + (j + 1) % y) * x + i, HALO_BYTES);
                sink.push(u, (((k + 1) % z) * y + j) * x + i, HALO_BYTES);
            }
        }
    }
    sink.finish(x * y * z)
}

/// Fat-tree collective traffic over
/// `nodes_per_switch · switches_per_pod · pods` nodes: a dense clique
/// inside every leaf switch (heavy — 2-hop paths), a ring of switch
/// leaders inside every pod (8× lighter — 4-hop), and a ring of pod
/// leaders across the core (64× lighter — 6-hop). The three weight
/// tiers mirror [`NetworkTopology::FatTree`]'s hop classes, giving the
/// graph the strong leaf-level community structure a partitioner should
/// recover.
///
/// [`NetworkTopology::FatTree`]: crate::NetworkTopology::FatTree
pub fn fat_tree(
    nodes_per_switch: usize,
    switches_per_pod: usize,
    pods: usize,
    seed: u64,
) -> SyntheticGraph {
    assert!(
        nodes_per_switch >= 2 && switches_per_pod >= 1 && pods >= 1,
        "degenerate fat tree"
    );
    let switches = switches_per_pod * pods;
    let nodes = nodes_per_switch * switches;
    let mut sink = EdgeSink {
        seed,
        edges: Vec::with_capacity(switches * nodes_per_switch * nodes_per_switch / 2),
    };
    for s in 0..switches {
        let base = s * nodes_per_switch;
        for i in 0..nodes_per_switch {
            for j in (i + 1)..nodes_per_switch {
                sink.push(base + i, base + j, HALO_BYTES);
            }
        }
    }
    // Switch leaders (node 0 of each switch) ring within the pod.
    if switches_per_pod >= 2 {
        for p in 0..pods {
            for s in 0..switches_per_pod {
                let a = (p * switches_per_pod + s) * nodes_per_switch;
                let b = (p * switches_per_pod + (s + 1) % switches_per_pod) * nodes_per_switch;
                if a != b {
                    sink.push(a, b, HALO_BYTES / 8);
                }
            }
        }
    }
    // Pod leaders (node 0 of each pod) ring across the core.
    if pods >= 2 {
        for p in 0..pods {
            let a = p * switches_per_pod * nodes_per_switch;
            let b = ((p + 1) % pods) * switches_per_pod * nodes_per_switch;
            if a != b {
                sink.push(a, b, HALO_BYTES / 64);
            }
        }
    }
    sink.finish(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn check_invariants(g: &SyntheticGraph) {
        let mut seen = BTreeSet::new();
        for &(u, v, w) in &g.edges {
            assert!(u < v, "unordered edge ({u}, {v})");
            assert!((v as usize) < g.nodes, "endpoint beyond graph");
            assert!(seen.insert((u, v)), "duplicate edge ({u}, {v})");
            assert!(w > 0, "zero-weight edge");
        }
    }

    #[test]
    fn torus2d_shape() {
        let g = torus2d(8, 4, 1);
        assert_eq!(g.nodes, 32);
        // Every node has 4 neighbours → 2·n edges (extents > 2, no merges).
        assert_eq!(g.edges.len(), 64);
        check_invariants(&g);
    }

    #[test]
    fn torus3d_shape() {
        let g = torus3d(4, 4, 4, 7);
        assert_eq!(g.nodes, 64);
        assert_eq!(g.edges.len(), 3 * 64);
        check_invariants(&g);
    }

    #[test]
    fn extent_two_rings_merge_wraparound() {
        // On an extent-2 ring, +1 and wrap hit the same neighbour; the
        // duplicate must merge, not repeat.
        let g = torus2d(2, 2, 3);
        assert_eq!(g.nodes, 4);
        assert_eq!(g.edges.len(), 4); // square, not multigraph
        check_invariants(&g);
    }

    #[test]
    fn fat_tree_shape_and_tiers() {
        let (nps, spp, pods) = (4, 3, 2);
        let g = fat_tree(nps, spp, pods, 5);
        assert_eq!(g.nodes, 24);
        check_invariants(&g);
        // 6 cliques of C(4,2)=6, 2 pod rings of 3, 1 core pair.
        assert_eq!(g.edges.len(), 6 * 6 + 2 * 3 + 1);
        // Intra-switch traffic strictly dominates inter-switch.
        let intra_min = g
            .edges
            .iter()
            .filter(|&&(u, v, _)| u as usize / nps == v as usize / nps)
            .map(|&(_, _, w)| w)
            .min()
            .expect("intra edges");
        let inter_max = g
            .edges
            .iter()
            .filter(|&&(u, v, _)| u as usize / nps != v as usize / nps)
            .map(|&(_, _, w)| w)
            .max()
            .expect("inter edges");
        assert!(intra_min > inter_max, "{intra_min} <= {inter_max}");
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = torus3d(4, 2, 2, 42);
        let b = torus3d(4, 2, 2, 42);
        assert_eq!(a.edges, b.edges);
        let c = torus3d(4, 2, 2, 43);
        assert_ne!(a.edges, c.edges, "seed must change the jitter");
        // Topology is seed-independent; only the weights move.
        let strip = |g: &SyntheticGraph| -> Vec<(u32, u32)> {
            g.edges.iter().map(|&(u, v, _)| (u, v)).collect()
        };
        assert_eq!(strip(&a), strip(&c));
    }

    #[test]
    fn jitter_stays_in_band() {
        let g = torus2d(16, 16, 9);
        for &(_, _, w) in &g.edges {
            let lo = HALO_BYTES - HALO_BYTES / 8;
            let hi = HALO_BYTES + HALO_BYTES / 8;
            assert!(w >= lo && w <= hi, "weight {w} outside [{lo}, {hi}]");
        }
    }
}
