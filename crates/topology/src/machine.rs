//! Hardware description of the target machine.
//!
//! [`MachineSpec::tsubame2`] encodes Table I of the paper. The spec carries
//! exactly the quantities the fault-tolerance models consume: node count,
//! cores, memory, local-storage write bandwidth (SSD RAID0), network rails
//! and the shared parallel-file-system bandwidth. Failure domains (nodes
//! sharing a power supply) are modelled as fixed-size groups of consecutive
//! nodes, which is how blade chassis are wired in practice.

use crate::ids::NodeId;

/// A storage device or tier available to the checkpointing system.
#[derive(Clone, Debug, PartialEq)]
pub struct StorageSpec {
    /// Human-readable device name (e.g. "SSD RAID0", "Lustre").
    pub name: String,
    /// Capacity per node in GiB (`None` for shared/global storage).
    pub capacity_gib: Option<f64>,
    /// Sustained write bandwidth in MiB/s. For shared storage this is the
    /// *aggregate* bandwidth divided among all writers.
    pub write_mib_s: f64,
    /// Whether the device is node-local (lost when the node fails).
    pub node_local: bool,
}

/// Interconnect description.
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkSpec {
    /// Name, e.g. "QDR InfiniBand".
    pub name: String,
    /// Number of independent rails.
    pub rails: u32,
    /// Per-rail bandwidth in GiB/s.
    pub rail_gib_s: f64,
}

impl NetworkSpec {
    /// Total injection bandwidth per node in GiB/s.
    pub fn total_gib_s(&self) -> f64 {
        self.rails as f64 * self.rail_gib_s
    }
}

/// Full machine description.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineSpec {
    /// Machine name.
    pub name: String,
    /// Number of compute nodes.
    pub nodes: u32,
    /// Physical cores per node.
    pub cores_per_node: u32,
    /// Hardware threads per core (TSUBAME2 uses hyperthreading: 2).
    pub threads_per_core: u32,
    /// Memory per node in GiB.
    pub mem_gib_per_node: f64,
    /// GPUs per node (unused by the FT models, kept for Table I fidelity).
    pub gpus_per_node: u32,
    /// Node-local storage (checkpoint level 1).
    pub local_storage: StorageSpec,
    /// Shared parallel file system (checkpoint level 3).
    pub pfs: StorageSpec,
    /// Interconnect.
    pub network: NetworkSpec,
    /// Number of consecutive nodes sharing one power supply (a correlated
    /// failure domain). TSUBAME2 blades pair nodes per PSU.
    pub nodes_per_psu: u32,
}

impl MachineSpec {
    /// TSUBAME2 as described in Table I of the paper.
    pub fn tsubame2() -> Self {
        MachineSpec {
            name: "TSUBAME2".to_string(),
            nodes: 1408,
            cores_per_node: 12,
            threads_per_core: 2,
            mem_gib_per_node: 55.8,
            gpus_per_node: 3,
            local_storage: StorageSpec {
                name: "SSD 60GB x 2 (RAID0)".to_string(),
                capacity_gib: Some(120.0),
                write_mib_s: 360.0,
                node_local: true,
            },
            pfs: StorageSpec {
                name: "Lustre (5x DDN DFA10000)".to_string(),
                capacity_gib: None,
                write_mib_s: 10.0 * 1024.0,
                node_local: false,
            },
            network: NetworkSpec {
                name: "Dual rail QDR InfiniBand".to_string(),
                rails: 2,
                rail_gib_s: 4.0,
            },
            nodes_per_psu: 2,
        }
    }

    /// A small synthetic machine, handy for tests: `nodes` nodes with
    /// `cores` cores each, SSD-class local storage and a modest PFS.
    pub fn synthetic(nodes: u32, cores: u32) -> Self {
        MachineSpec {
            name: format!("synthetic-{nodes}x{cores}"),
            nodes,
            cores_per_node: cores,
            threads_per_core: 1,
            mem_gib_per_node: 32.0,
            gpus_per_node: 0,
            local_storage: StorageSpec {
                name: "local SSD".to_string(),
                capacity_gib: Some(100.0),
                write_mib_s: 400.0,
                node_local: true,
            },
            pfs: StorageSpec {
                name: "PFS".to_string(),
                capacity_gib: None,
                write_mib_s: 4096.0,
                node_local: false,
            },
            network: NetworkSpec {
                name: "generic".to_string(),
                rails: 1,
                rail_gib_s: 4.0,
            },
            nodes_per_psu: 2,
        }
    }

    /// Maximum processes launchable per node (cores × hw threads).
    pub fn max_procs_per_node(&self) -> u32 {
        self.cores_per_node * self.threads_per_core
    }

    /// The power-supply (correlated failure) group of a node. Nodes in the
    /// same group are assumed to fail together when the PSU fails.
    pub fn psu_group_of(&self, node: NodeId) -> u32 {
        node.0 / self.nodes_per_psu.max(1)
    }

    /// All nodes in the same PSU group as `node`, including itself.
    pub fn psu_peers(&self, node: NodeId) -> Vec<NodeId> {
        let g = self.psu_group_of(node);
        let lo = g * self.nodes_per_psu;
        let hi = ((g + 1) * self.nodes_per_psu).min(self.nodes);
        (lo..hi).map(NodeId).collect()
    }

    /// Render the spec as the paper's Table I (architecture summary).
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        let push = |s: &mut String, k: &str, v: String| {
            s.push_str(&format!("{k:<12} {v}\n"));
        };
        push(&mut s, "Machine", self.name.clone());
        push(&mut s, "Nodes", format!("{} compute nodes", self.nodes));
        push(
            &mut s,
            "CPU",
            format!(
                "{} cores/node ({} hw threads)",
                self.cores_per_node,
                self.max_procs_per_node()
            ),
        );
        push(
            &mut s,
            "Mem",
            format!(
                "{:.1} GiB/node (total {:.2} TiB)",
                self.mem_gib_per_node,
                self.mem_gib_per_node * self.nodes as f64 / 1024.0
            ),
        );
        push(&mut s, "GPU", format!("{} GPUs/node", self.gpus_per_node));
        push(
            &mut s,
            "Local",
            format!(
                "{} — {:.0} MiB/s write{}",
                self.local_storage.name,
                self.local_storage.write_mib_s,
                self.local_storage
                    .capacity_gib
                    .map(|c| format!(", {c:.0} GiB"))
                    .unwrap_or_default()
            ),
        );
        push(
            &mut s,
            "Network",
            format!(
                "{} ({} x {:.0} GiB/s)",
                self.network.name, self.network.rails, self.network.rail_gib_s
            ),
        );
        push(
            &mut s,
            "PFS",
            format!(
                "{} — {:.1} GiB/s aggregate write",
                self.pfs.name,
                self.pfs.write_mib_s / 1024.0
            ),
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsubame2_matches_table1() {
        let m = MachineSpec::tsubame2();
        assert_eq!(m.nodes, 1408);
        assert_eq!(m.cores_per_node, 12);
        assert_eq!(m.max_procs_per_node(), 24);
        assert_eq!(m.gpus_per_node, 3);
        assert_eq!(m.local_storage.write_mib_s, 360.0);
        assert!((m.pfs.write_mib_s - 10240.0).abs() < 1e-9);
        assert_eq!(m.network.total_gib_s(), 8.0);
    }

    #[test]
    fn psu_groups_pair_consecutive_nodes() {
        let m = MachineSpec::synthetic(6, 8);
        assert_eq!(m.psu_group_of(NodeId(0)), m.psu_group_of(NodeId(1)));
        assert_ne!(m.psu_group_of(NodeId(1)), m.psu_group_of(NodeId(2)));
        assert_eq!(m.psu_peers(NodeId(3)), vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn psu_group_clamps_at_machine_end() {
        let mut m = MachineSpec::synthetic(5, 4);
        m.nodes_per_psu = 2;
        // Last group only has one node.
        assert_eq!(m.psu_peers(NodeId(4)), vec![NodeId(4)]);
    }

    #[test]
    fn render_table_mentions_key_fields() {
        let t = MachineSpec::tsubame2().render_table();
        assert!(t.contains("TSUBAME2"));
        assert!(t.contains("1408"));
        assert!(t.contains("360"));
    }
}
