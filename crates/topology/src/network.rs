//! Interconnect topology models: hop distances between nodes.
//!
//! §II-C2 of the paper: "processes communicating frequently together
//! should be located as physical neighbors in the machine" (Bhatelé et
//! al. \[4\], Solomonik et al. \[26\]). These models provide the distance
//! function that a topology-aware mapper optimises against — a three-level
//! fat tree (TSUBAME2's class of network) and a 3-D torus (the other
//! dominant HPC topology of the era, e.g. Blue Gene / Cray).

use crate::ids::NodeId;

/// A network topology with a node-to-node hop metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkTopology {
    /// Three-level fat tree: nodes under leaf switches, leaves under
    /// pods, pods under the core.
    FatTree {
        /// Nodes attached to one leaf switch.
        nodes_per_switch: usize,
        /// Leaf switches in one pod.
        switches_per_pod: usize,
    },
    /// 3-D torus with wrap-around links; node ids map to coordinates
    /// row-major (x fastest).
    Torus3D {
        /// Extent in each dimension.
        dims: (usize, usize, usize),
    },
}

impl NetworkTopology {
    /// A fat tree shaped like TSUBAME2's QDR InfiniBand fabric
    /// (edge switches of ~16 nodes, pods of ~12 switches).
    pub fn tsubame2_like() -> Self {
        NetworkTopology::FatTree {
            nodes_per_switch: 16,
            switches_per_pod: 12,
        }
    }

    /// Number of nodes a torus supports (`None` = unbounded fat tree).
    pub fn capacity(&self) -> Option<usize> {
        match self {
            NetworkTopology::FatTree { .. } => None,
            NetworkTopology::Torus3D { dims } => Some(dims.0 * dims.1 * dims.2),
        }
    }

    /// Switch hops between two nodes (0 for the same node).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return 0;
        }
        match *self {
            NetworkTopology::FatTree {
                nodes_per_switch,
                switches_per_pod,
            } => {
                let (sa, sb) = (a.idx() / nodes_per_switch, b.idx() / nodes_per_switch);
                if sa == sb {
                    return 2; // up to the leaf, down again
                }
                let (pa, pb) = (sa / switches_per_pod, sb / switches_per_pod);
                if pa == pb {
                    4
                } else {
                    6
                }
            }
            NetworkTopology::Torus3D { dims } => {
                let coord = |n: usize| (n % dims.0, (n / dims.0) % dims.1, n / (dims.0 * dims.1));
                let ring = |x: usize, y: usize, extent: usize| {
                    let d = x.abs_diff(y);
                    d.min(extent - d) as u32
                };
                let (ax, ay, az) = coord(a.idx());
                let (bx, by, bz) = coord(b.idx());
                debug_assert!(az < dims.2 && bz < dims.2, "node beyond torus");
                ring(ax, bx, dims.0) + ring(ay, by, dims.1) + ring(az, bz, dims.2)
            }
        }
    }

    /// The largest possible hop count in this topology (diameter). For
    /// the fat tree this is the constant core traversal.
    pub fn diameter(&self) -> u32 {
        match *self {
            NetworkTopology::FatTree { .. } => 6,
            NetworkTopology::Torus3D { dims } => (dims.0 / 2 + dims.1 / 2 + dims.2 / 2) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_hop_classes() {
        let t = NetworkTopology::FatTree {
            nodes_per_switch: 4,
            switches_per_pod: 2,
        };
        assert_eq!(t.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(t.hops(NodeId(0), NodeId(3)), 2); // same leaf
        assert_eq!(t.hops(NodeId(0), NodeId(4)), 4); // same pod
        assert_eq!(t.hops(NodeId(0), NodeId(8)), 6); // across pods
        assert_eq!(t.diameter(), 6);
        assert_eq!(t.capacity(), None);
    }

    #[test]
    fn torus_wraps_around() {
        let t = NetworkTopology::Torus3D { dims: (4, 4, 2) };
        assert_eq!(t.capacity(), Some(32));
        // (0,0,0) to (3,0,0): wrap distance 1, not 3.
        assert_eq!(t.hops(NodeId(0), NodeId(3)), 1);
        // (0,0,0) to (2,0,0): distance 2 either way.
        assert_eq!(t.hops(NodeId(0), NodeId(2)), 2);
        // (0,0,0) to (1,1,1): 1+1+1.
        let n = 1 + 4 + 16;
        assert_eq!(t.hops(NodeId(0), NodeId(n as u32)), 3);
        assert_eq!(t.diameter(), 2 + 2 + 1);
    }

    #[test]
    fn hops_are_symmetric() {
        let topos = [
            NetworkTopology::tsubame2_like(),
            NetworkTopology::Torus3D { dims: (3, 3, 3) },
        ];
        for t in &topos {
            let n = t.capacity().unwrap_or(27);
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(
                        t.hops(NodeId::from(a), NodeId::from(b)),
                        t.hops(NodeId::from(b), NodeId::from(a))
                    );
                }
            }
        }
    }

    #[test]
    fn triangle_inequality_on_torus() {
        let t = NetworkTopology::Torus3D { dims: (4, 2, 2) };
        for a in 0..16 {
            for b in 0..16 {
                for c in 0..16 {
                    let (a, b, c) = (NodeId::from(a), NodeId::from(b), NodeId::from(c));
                    assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
                }
            }
        }
    }
}
