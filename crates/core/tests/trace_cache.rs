//! The trace-cache contract behind the always-on evaluation service:
//!
//! * the [`TracedJobConfig`] content hash is **stable** — pinned values
//!   here must never drift for an unchanged config (bump the canonical
//!   `hcft-trace-v1` version instead when the traced protocol changes);
//! * distinct configurations (notably the scaled-down test shapes vs the
//!   paper shape) never collide on a key;
//! * runtime knobs (shards, workers, engine, steal, preemption) do NOT
//!   enter the key — the scheduler-determinism suite proves they cannot
//!   change a traced byte, so they must share a cache entry;
//! * the canonical wire form round-trips through the validating parser;
//! * a concurrent stampede of identical requests runs the trace exactly
//!   once (single-flight) and every caller shares the same result.

use std::sync::Arc;
use std::thread;

use hcft_core::trace_cache::TraceCache;
use hcft_core::TracedJobConfig;
use hcft_simmpi::Engine;

#[test]
fn content_hash_is_pinned() {
    // These values are the on-the-wire cache identity; a drift here
    // silently invalidates every persisted key and breaks warm-restart
    // byte-identity. Never update them for an unchanged config — bump
    // the canonical version string instead.
    let small = TracedJobConfig::small(2, 2);
    assert_eq!(
        small.to_canonical(),
        "hcft-trace-v1;nodes=2;ppn=2;enc=1;it=50;ck=25;gx=16;gy=512;px=2;py=2;eg=2;ev=0"
    );
    assert_eq!(
        small.content_hash().to_string(),
        "cb7a3047da27bb79333e6e680db5296e"
    );

    let paper = TracedJobConfig::paper_1024();
    assert_eq!(
        paper.to_canonical(),
        "hcft-trace-v1;nodes=64;ppn=16;enc=1;it=100;ck=25;gx=1024;gy=4096;px=512;py=2;eg=4;ev=0"
    );
    assert_eq!(
        paper.content_hash().to_string(),
        "fb9cd4a57eeecd5f6b0799686b539310"
    );
}

#[test]
fn keys_do_not_collide_across_config_family() {
    // One config per trace-affecting knob change, spanning the shapes
    // the service actually sees (small smoke shapes through the paper
    // machine). Every pair must hash apart.
    let family: Vec<TracedJobConfig> = vec![
        TracedJobConfig::small(2, 2),
        TracedJobConfig::small(4, 2),
        TracedJobConfig::small(8, 4),
        TracedJobConfig::paper_1024(),
        TracedJobConfig::builder(2, 2)
            .iterations(51)
            .build()
            .unwrap(),
        TracedJobConfig::builder(2, 2)
            .checkpoint_every(10)
            .build()
            .unwrap(),
        TracedJobConfig::builder(2, 2)
            .grid(32, 512)
            .build()
            .unwrap(),
        TracedJobConfig::builder(2, 2)
            .process_grid(1, 4)
            .build()
            .unwrap(),
        TracedJobConfig::builder(2, 2)
            .with_encoders(false)
            .build()
            .unwrap(),
        TracedJobConfig::builder(2, 2)
            .encoder_group_nodes(1)
            .build()
            .unwrap(),
        TracedJobConfig::builder(2, 2)
            .record_events(true)
            .build()
            .unwrap(),
        // A would-be ambiguity if fields were concatenated instead of
        // delimited: 2 nodes × 12 ppn vs 21 nodes × 2 ppn.
        TracedJobConfig::small(2, 12),
        TracedJobConfig::small(21, 2),
    ];
    for (i, a) in family.iter().enumerate() {
        for (j, b) in family.iter().enumerate().skip(i + 1) {
            assert_ne!(
                a.content_hash(),
                b.content_hash(),
                "configs {i} and {j} collide:\n  {}\n  {}",
                a.to_canonical(),
                b.to_canonical()
            );
            assert_ne!(a.to_canonical(), b.to_canonical());
        }
    }
}

#[test]
fn runtime_knobs_do_not_change_the_key() {
    // Shards/workers/engine/steal/preemption cannot change a traced byte
    // (proved by the scheduler-determinism suite), so they are excluded
    // from the key: all these configs share one cache entry.
    let base = TracedJobConfig::small(4, 2);
    let variants = [
        TracedJobConfig::builder(4, 2)
            .mailbox_shards(8)
            .build()
            .unwrap(),
        TracedJobConfig::builder(4, 2).workers(3).build().unwrap(),
        TracedJobConfig::builder(4, 2)
            .engine(Engine::Threads)
            .build()
            .unwrap(),
        TracedJobConfig::builder(4, 2).steal(true).build().unwrap(),
        TracedJobConfig::builder(4, 2)
            .yield_budget(5)
            .build()
            .unwrap(),
    ];
    for v in &variants {
        assert_eq!(base.content_hash(), v.content_hash());
    }
    // And an explicit process grid equal to the resolved default is the
    // same trace, hence the same key.
    let explicit = TracedJobConfig::builder(4, 2)
        .process_grid(4, 2)
        .build()
        .unwrap();
    assert_eq!(base.content_hash(), explicit.content_hash());
}

#[test]
fn canonical_form_round_trips() {
    let configs = [
        TracedJobConfig::small(2, 2),
        TracedJobConfig::paper_1024(),
        TracedJobConfig::builder(4, 2)
            .iterations(12)
            .checkpoint_every(3)
            .grid(64, 1024)
            .process_grid(2, 4)
            .encoder_group_nodes(2)
            .record_events(true)
            .build()
            .unwrap(),
    ];
    for cfg in &configs {
        let parsed = TracedJobConfig::from_canonical(&cfg.to_canonical()).unwrap();
        assert_eq!(parsed.to_canonical(), cfg.to_canonical());
        assert_eq!(parsed.content_hash(), cfg.content_hash());
        assert_eq!(parsed.nodes, cfg.nodes);
        assert_eq!(parsed.app_per_node, cfg.app_per_node);
        assert_eq!(parsed.iterations, cfg.iterations);
        assert_eq!(parsed.checkpoint_every, cfg.checkpoint_every);
        assert_eq!(parsed.grid, cfg.grid);
        assert_eq!(parsed.process_grid(), cfg.process_grid());
        assert_eq!(parsed.encoder_group_nodes, cfg.encoder_group_nodes);
        assert_eq!(parsed.record_events, cfg.record_events);
        assert_eq!(parsed.with_encoders, cfg.with_encoders);
    }
}

#[test]
fn malformed_canonical_is_rejected() {
    for bad in [
        "",
        "hcft-trace-v0;nodes=2;ppn=2;enc=1;it=50;ck=25;gx=16;gy=512;px=2;py=2;eg=2;ev=0",
        "hcft-trace-v1;nodes=2;ppn=2",
        "hcft-trace-v1;ppn=2;nodes=2;enc=1;it=50;ck=25;gx=16;gy=512;px=2;py=2;eg=2;ev=0",
        "hcft-trace-v1;nodes=two;ppn=2;enc=1;it=50;ck=25;gx=16;gy=512;px=2;py=2;eg=2;ev=0",
        // Parses but fails config validation: process grid of 9 ranks
        // for a 4-rank job.
        "hcft-trace-v1;nodes=2;ppn=2;enc=1;it=50;ck=25;gx=16;gy=512;px=3;py=3;eg=2;ev=0",
    ] {
        assert!(
            TracedJobConfig::from_canonical(bad).is_err(),
            "accepted malformed canonical {bad:?}"
        );
    }
}

#[test]
fn concurrent_identical_requests_trace_once() {
    // A stampede of identical requests must collapse onto one traced
    // run: exactly one miss, everyone else joins the in-flight entry and
    // shares the same Arc (hence byte-identical responses for free).
    let cache = Arc::new(TraceCache::new(4));
    let cfg = TracedJobConfig::small(2, 2);
    let n = 8;
    let barrier = Arc::new(std::sync::Barrier::new(n));
    let results: Vec<Arc<hcft_core::TraceResult>> = thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let cfg = cfg.clone();
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    cache.get_or_trace(&cfg)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let (hits, misses, _) = cache.stats();
    assert_eq!(misses, 1, "stampede must trace exactly once");
    assert_eq!(hits, n as u64 - 1, "every other caller joins the flight");
    for r in &results[1..] {
        assert!(
            Arc::ptr_eq(&results[0], r),
            "all callers share the single traced result"
        );
    }
    assert_eq!(cache.len(), 1);
}

#[test]
fn concurrent_distinct_requests_all_complete() {
    // Distinct keys trace concurrently (the computation happens outside
    // the cache lock) and each lands in its own entry.
    let cache = Arc::new(TraceCache::new(4));
    let configs: Vec<TracedJobConfig> = (0..3)
        .map(|i| {
            TracedJobConfig::builder(2, 2)
                .iterations(30 + i)
                .build()
                .unwrap()
        })
        .collect();
    thread::scope(|s| {
        for cfg in &configs {
            let cache = Arc::clone(&cache);
            s.spawn(move || cache.get_or_trace(cfg));
        }
    });
    let (hits, misses, evictions) = cache.stats();
    assert_eq!(misses, 3);
    assert_eq!(hits, 0);
    assert_eq!(evictions, 0);
    assert_eq!(cache.len(), 3);
    // Re-requests are hits and return the resident traces.
    for cfg in &configs {
        cache.get_or_trace(cfg);
    }
    assert_eq!(cache.stats().0, 3);
}
