//! The batched campaign kernel must match the retained scalar reference
//! **trial-for-trial, bit-for-bit** — same RNG consumption, same event
//! judgements, same waste arithmetic. Any divergence (a re-ordered
//! float add, a class-sampler edge case, a leaked scratch counter) shows
//! up here as an exact-compare failure on a concrete trial index.

use hcft_cluster::{distributed, naive, striped, SchemeIndex};
use hcft_core::campaign::{
    run_trial_reference, simulate_campaign_stats, CampaignConfig, CampaignKernel, StopRule,
};
use hcft_msglog::HybridProtocol;
use hcft_reliability::{EventDistribution, FailureArrivals};
use hcft_topology::Placement;
use proptest::prelude::*;

fn assert_kernel_matches_reference(
    scheme: &hcft_cluster::ClusteringScheme,
    placement: &Placement,
    cfg: &CampaignConfig,
    trials: u64,
) {
    let protocol = HybridProtocol::new(scheme.l1.clone());
    let sampler = cfg.events.sampler();
    let index = SchemeIndex::new(scheme, placement);
    let mut kernel = CampaignKernel::new(&index, &sampler, cfg, placement.nprocs());
    for trial in 0..trials {
        let fast = kernel.run_trial(trial);
        let slow = run_trial_reference(trial, scheme, &protocol, placement, cfg, &sampler);
        assert_eq!(fast, slow, "trial {trial} diverged ({})", scheme.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kernel_matches_reference_trial_for_trial(
        seed in any::<u64>(),
        mtbf_tenths in 5u32..200,
        duration_h in 24.0f64..400.0,
        nodes_q in 1usize..8,
        ppn in 1usize..6,
        dist_size in 2usize..9,
    ) {
        let nodes = nodes_q * 4; // striped needs nodes % 4 == 0
        let nprocs = nodes * ppn;
        let placement = Placement::block(nodes, ppn);
        let cfg = CampaignConfig {
            duration_h,
            arrivals: FailureArrivals::exponential(mtbf_tenths as f64 / 10.0),
            seed,
            ..Default::default()
        };
        let schemes = vec![
            naive(nprocs, dist_size.min(nprocs)),
            distributed(&placement, dist_size.min(nodes)),
            striped(&placement, 4, ppn.max(2).min(nprocs)),
        ];
        for scheme in &schemes {
            assert_kernel_matches_reference(scheme, &placement, &cfg, 8);
        }
    }

    #[test]
    fn kernel_matches_reference_under_weibull_and_custom_events(
        seed in any::<u64>(),
        shape_pct in 40u32..160,
        p_transient in 0.0f64..0.5,
    ) {
        let placement = Placement::block(16, 4);
        let p1 = (1.0 - p_transient) * 0.9;
        let p2 = 1.0 - p_transient - p1;
        let cfg = CampaignConfig {
            duration_h: 200.0,
            arrivals: FailureArrivals::weibull(3.0, shape_pct as f64 / 100.0),
            events: EventDistribution::new(p_transient, vec![p1, p2]).unwrap(),
            seed,
            ..Default::default()
        };
        let scheme = distributed(&placement, 8);
        assert_kernel_matches_reference(&scheme, &placement, &cfg, 16);
    }
}

#[test]
fn kernel_matches_reference_on_default_cell() {
    // The exact cell bench_campaign gates on.
    let placement = Placement::block(64, 16);
    let scheme = naive(1024, 32);
    let cfg = CampaignConfig::default();
    assert_kernel_matches_reference(&scheme, &placement, &cfg, 64);
}

#[test]
fn stats_totals_equal_summed_kernel_trials() {
    let placement = Placement::block(12, 4);
    let scheme = naive(48, 8);
    let cfg = CampaignConfig {
        duration_h: 96.0,
        ..Default::default()
    };
    let stats = simulate_campaign_stats(&scheme, &placement, &cfg, &StopRule::fixed(200));
    let sampler = cfg.events.sampler();
    let index = SchemeIndex::new(&scheme, &placement);
    let mut kernel = CampaignKernel::new(&index, &sampler, &cfg, placement.nprocs());
    let mut failures = 0u64;
    let mut catastrophic = 0u64;
    let mut transient = 0u64;
    for trial in 0..200 {
        let t = kernel.run_trial(trial);
        failures += t.failures;
        catastrophic += t.catastrophic;
        transient += t.transient;
    }
    assert_eq!(stats.total_failures, failures);
    assert_eq!(stats.total_catastrophic, catastrophic);
    assert_eq!(stats.total_transient, transient);
    assert_eq!(stats.trials, 200);
}
