//! The live cluster-loss replay engine.
//!
//! [`LockstepDrill`](crate::drill::LockstepDrill) proves the protocol in
//! a single-threaded, hand-scheduled world. This module is the real
//! thing: the workload runs as a live `simmpi` world (every rank a
//! scheduled task, real blocking receives), a [`FaultScenario`] kills an
//! entire L1 cluster mid-run, and recovery happens against the same
//! machinery a production run would use —
//!
//! 1. the failed nodes' on-disk checkpoints are destroyed and their
//!    ranks' in-memory state is lost;
//! 2. the restart set (the failed L1 cluster(s), per the hybrid
//!    protocol) is restored from the last *complete* multi-level
//!    checkpoint epoch, Reed–Solomon-rebuilding the lost shards;
//! 3. the restored ranks re-execute inside a *replay world*
//!    ([`hcft_simmpi::World::run_replay`]): survivors stay parked at the
//!    failure frontier while their logged cross-cluster sends are
//!    re-fed in deterministic per-channel FIFO order, and the restored
//!    ranks' own cross-boundary sends are suppressed as duplicates
//!    (and re-logged, rebuilding the crashed senders' logs);
//! 4. once the restart set catches up, the full world resumes.
//!
//! Send determinism makes the catch-up **bit-for-bit** identical to an
//! uninterrupted run — the engine's tests assert exactly that, for both
//! the 2-D tsunami and the 3-D heat workload.
//!
//! The fault model is richer than a single clean kill: scenarios can
//! inject *cascading failures* mid-recovery (the recovery enlarges the
//! failed set and starts over), *silent checkpoint corruption*
//! (detected only when [`ReplayWorkload::restore`] rejects the payload
//! via [`HcftError::Recovery`]; the shard is quarantined and rebuilt
//! from group parity), and *failure during encoding* (locals written,
//! parity never completes, recovery falls back to the previous epoch
//! with correspondingly longer log replay).

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bytes::Bytes;
use hcft_checkpoint::{CheckpointStore, Level, MultilevelCheckpointer};
use hcft_cluster::ClusteringScheme;
use hcft_msglog::{check_replay, HybridProtocol, MsgEvent, ReplayReport, SenderLog};
use hcft_simmpi::datatype::encode;
use hcft_simmpi::{Comm, Engine, ReplayFeed, ReplayPlan, World, WorldConfig};
use hcft_telemetry::{EventKind, HcftError, Registry};
use hcft_topology::{MachineSpec, NodeId, Placement, Rank};
use hcft_tsunami::heat3d::{face_tag, Face, Heat3dParams, Heat3dState};
use hcft_tsunami::solver::halo_tag;
use hcft_tsunami::{Dir, RankState, TsunamiParams};

use crate::scenario::{FaultScenario, Injection};

/// The communication surface a [`ReplayWorkload`] step sees: plain
/// sends and receives of `f64` planes. The engine supplies an
/// implementation that transparently retains cross-cluster sends in
/// sender logs, so workloads stay protocol-oblivious.
pub trait HaloLink {
    /// Send a halo plane to `dst` on `tag` (buffered, non-blocking).
    fn send_f64(&mut self, dst: usize, tag: u32, vals: &[f64]);
    /// Receive a halo plane from `src` on `tag` into `out` (cleared).
    fn recv_f64(&mut self, src: usize, tag: u32, out: &mut Vec<f64>);
}

/// A solver the replay engine can run, checkpoint, kill and replay.
///
/// Requirements: deterministic (same state + same received halos →
/// same next state, bit-for-bit), send-deterministic (re-execution
/// re-issues identical sends), and checkpointable via a byte-exact
/// save/restore pair. Both bundled stencils qualify.
pub trait ReplayWorkload: Send + Sync + 'static {
    /// One rank's solver state.
    type State: Send + 'static;

    /// Short name for telemetry and reports.
    fn name(&self) -> &'static str;
    /// Initialise rank `rank` of `nprocs`.
    fn init(&self, nprocs: usize, rank: usize) -> Self::State;
    /// Completed iterations of a state.
    fn iteration(&self, st: &Self::State) -> u64;
    /// Advance one iteration: exchange halos over `link`, update.
    fn step(&self, st: &mut Self::State, link: &mut dyn HaloLink);
    /// Serialise the full state (the checkpoint payload) into `out`.
    fn save_into(&self, st: &Self::State, out: &mut Vec<u8>);
    /// Restore a payload written by [`ReplayWorkload::save_into`].
    /// Corrupt bytes must be reported as [`HcftError::Recovery`].
    fn restore(&self, st: &mut Self::State, bytes: &[u8]) -> Result<(), HcftError>;
    /// Is `tag` one of this workload's halo-exchange wire tags?
    fn is_halo_tag(&self, tag: u32) -> bool;
}

/// The 2-D shallow-water solver as a replayable workload.
pub struct TsunamiWorkload {
    params: TsunamiParams,
}

impl TsunamiWorkload {
    /// Wrap a parameter set (see [`TsunamiParams::stable`]).
    pub fn new(params: TsunamiParams) -> Self {
        TsunamiWorkload { params }
    }
}

impl ReplayWorkload for TsunamiWorkload {
    type State = RankState;

    fn name(&self) -> &'static str {
        "tsunami"
    }

    fn init(&self, nprocs: usize, rank: usize) -> RankState {
        RankState::new(&self.params, nprocs, rank)
    }

    fn iteration(&self, st: &RankState) -> u64 {
        st.iteration()
    }

    fn step(&self, st: &mut RankState, link: &mut dyn HaloLink) {
        let mut buf = Vec::new();
        for dir in Dir::ALL {
            if let Some(nbr) = st.neighbor(dir) {
                st.edge_out_into(dir, &mut buf);
                link.send_f64(nbr, halo_tag(dir), &buf);
            }
        }
        for dir in Dir::ALL {
            if let Some(nbr) = st.neighbor(dir) {
                // The halo landing on our `dir` side travelled in
                // direction `dir.opposite()` from the neighbour.
                link.recv_f64(nbr, halo_tag(dir.opposite()), &mut buf);
                st.set_halo(dir, &buf);
            }
        }
        st.update(&self.params);
    }

    fn save_into(&self, st: &RankState, out: &mut Vec<u8>) {
        st.save_state_into(out);
    }

    fn restore(&self, st: &mut RankState, bytes: &[u8]) -> Result<(), HcftError> {
        st.restore_state(bytes)
    }

    fn is_halo_tag(&self, tag: u32) -> bool {
        Dir::ALL.into_iter().any(|d| halo_tag(d) == tag)
    }
}

/// The 3-D heat-diffusion solver as a replayable workload.
pub struct Heat3dWorkload {
    params: Heat3dParams,
}

impl Heat3dWorkload {
    /// Wrap a parameter set (see [`Heat3dParams::stable`]).
    pub fn new(params: Heat3dParams) -> Self {
        Heat3dWorkload { params }
    }
}

impl ReplayWorkload for Heat3dWorkload {
    type State = Heat3dState;

    fn name(&self) -> &'static str {
        "heat3d"
    }

    fn init(&self, nprocs: usize, rank: usize) -> Heat3dState {
        Heat3dState::new(&self.params, nprocs, rank)
    }

    fn iteration(&self, st: &Heat3dState) -> u64 {
        st.iteration()
    }

    fn step(&self, st: &mut Heat3dState, link: &mut dyn HaloLink) {
        let mut buf = Vec::new();
        for f in Face::ALL {
            if let Some(nbr) = st.neighbor(f) {
                st.face_out_into(f, &mut buf);
                link.send_f64(nbr, face_tag(f), &buf);
            }
        }
        for f in Face::ALL {
            if let Some(nbr) = st.neighbor(f) {
                link.recv_f64(nbr, face_tag(f.opposite()), &mut buf);
                st.set_halo(f, &buf);
            }
        }
        st.update();
    }

    fn save_into(&self, st: &Heat3dState, out: &mut Vec<u8>) {
        st.save_state_into(out);
    }

    fn restore(&self, st: &mut Heat3dState, bytes: &[u8]) -> Result<(), HcftError> {
        st.restore_state(bytes)
    }

    fn is_halo_tag(&self, tag: u32) -> bool {
        Face::ALL.into_iter().any(|f| face_tag(f) == tag)
    }
}

/// The engine's [`HaloLink`]: a communicator plus (optionally) the
/// hybrid-protocol sender logs. Logging happens *before* the send, so
/// during replay a restored rank's suppressed cross-boundary sends are
/// still re-logged — rebuilding the log its crashed node lost.
struct LoggedLink<'a> {
    comm: &'a Comm,
    logging: Option<(&'a HybridProtocol, &'a [Mutex<SenderLog>])>,
}

impl HaloLink for LoggedLink<'_> {
    fn send_f64(&mut self, dst: usize, tag: u32, vals: &[f64]) {
        if let Some((protocol, logs)) = self.logging {
            let me = self.comm.rank();
            if protocol.must_log(Rank::from(me), Rank::from(dst)) {
                logs[me].lock().expect("sender log").record(
                    dst as u32,
                    tag,
                    self.comm.phase(),
                    Bytes::from(encode(vals)),
                );
            }
        }
        self.comm.send_from(dst, tag, vals);
    }

    fn recv_f64(&mut self, src: usize, tag: u32, out: &mut Vec<f64>) {
        self.comm.recv_into(src, tag, out);
    }
}

/// Which checkpoint epochs completed, and at which phase. Only epochs
/// recorded here are recoverable; a failed encode leaves a gap.
struct CkptBook {
    next_epoch: u64,
    /// `(epoch, phase)` of complete checkpoints, oldest first. The last
    /// two are retained so an encoding failure always leaves a fallback.
    complete: Vec<(u64, u64)>,
    failed_encodes: u64,
}

/// Everything the ranks of a fault-tolerant world share: protocol,
/// sender logs, checkpoint machinery and its bookkeeping.
struct Fabric<W: ReplayWorkload> {
    workload: Arc<W>,
    protocol: HybridProtocol,
    level: Level,
    every: u64,
    logs: Vec<Mutex<SenderLog>>,
    /// Per-rank checkpoint payload staging, written by each rank before
    /// the checkpoint barrier, consumed by rank 0.
    slots: Mutex<Vec<Vec<u8>>>,
    ckpt: MultilevelCheckpointer,
    book: Mutex<CkptBook>,
    /// `Some((phase, victims))` — at that checkpoint, kill the victims
    /// after locals are written but before parity encoding finishes
    /// ([`Injection::FailDuringEncoding`]).
    sabotage: Mutex<Option<(u64, Vec<NodeId>)>>,
    telemetry: Arc<Registry>,
}

impl<W: ReplayWorkload> Fabric<W> {
    /// Advance `st` until `target` iterations. When `ckpt_from` is set,
    /// take a coordinated checkpoint at every cadence phase `>= it`;
    /// the check runs before the break so a cadence-aligned `target`
    /// still checkpoints. `log` retains cross-cluster sends.
    fn drive(
        &self,
        comm: &Comm,
        st: &mut W::State,
        target: u64,
        ckpt_from: Option<u64>,
        log: bool,
    ) {
        loop {
            let it = self.workload.iteration(st);
            if let Some(from) = ckpt_from {
                if self.every > 0 && it.is_multiple_of(self.every) && it >= from {
                    self.coordinated_checkpoint(comm, st, it);
                }
            }
            if it >= target {
                break;
            }
            comm.set_phase(it);
            let mut link = LoggedLink {
                comm,
                logging: log.then_some((&self.protocol, self.logs.as_slice())),
            };
            self.workload.step(st, &mut link);
        }
    }

    /// FTI-style coordinated checkpoint: every rank serialises into its
    /// slot, a barrier closes the epoch, rank 0 writes and protects it,
    /// a second barrier releases everyone, and — only if the epoch
    /// completed — each rank garbage-collects its pre-checkpoint log.
    fn coordinated_checkpoint(&self, comm: &Comm, st: &W::State, phase: u64) {
        {
            let mut slots = self.slots.lock().expect("checkpoint slots");
            self.workload.save_into(st, &mut slots[comm.rank()]);
        }
        comm.barrier();
        if comm.rank() == 0 {
            self.rank0_checkpoint(phase);
        }
        comm.barrier();
        let completed = {
            let book = self.book.lock().expect("checkpoint book");
            book.complete.last().is_some_and(|&(_, p)| p == phase)
        };
        if completed {
            // All clusters checkpointed together: pre-checkpoint log
            // entries can never be replayed again.
            self.logs[comm.rank()]
                .lock()
                .expect("sender log")
                .truncate_before(phase);
        }
    }

    /// Rank 0's half of the coordinated checkpoint. An encoding failure
    /// (including the injected one) is not fatal: the epoch is simply
    /// never marked complete, so recovery falls back to the previous
    /// one and the logs are not truncated.
    fn rank0_checkpoint(&self, phase: u64) {
        let epoch = {
            let mut book = self.book.lock().expect("checkpoint book");
            if book.complete.last().is_some_and(|&(_, p)| p == phase) {
                return; // already protected at this phase
            }
            let e = book.next_epoch;
            book.next_epoch += 1;
            e
        };
        let sabotage = {
            let s = self.sabotage.lock().expect("sabotage");
            match s.as_ref() {
                Some((ph, victims)) if *ph == phase => Some(victims.clone()),
                _ => None,
            }
        };
        let result = {
            let slots = self.slots.lock().expect("checkpoint slots");
            match sabotage {
                Some(victims) => self.checkpoint_failing_mid_encode(epoch, phase, &slots, &victims),
                None => self.ckpt.checkpoint(epoch, self.level, &slots),
            }
        };
        let mut book = self.book.lock().expect("checkpoint book");
        match result {
            Ok(()) => {
                book.complete.push((epoch, phase));
                if book.complete.len() > 2 {
                    book.complete.remove(0);
                }
                let _ = self.ckpt.store().prune_before(book.complete[0].0);
                self.telemetry.event(
                    EventKind::CheckpointComplete,
                    phase,
                    format!("epoch={epoch}"),
                );
            }
            Err(e) => {
                book.failed_encodes += 1;
                self.telemetry.event(
                    EventKind::CheckpointComplete,
                    phase,
                    format!("epoch={epoch} INCOMPLETE: {e}"),
                );
            }
        }
    }

    /// The injected failure-during-encoding: locals land, then the
    /// victims die (taking *all* their on-disk epochs with them, like a
    /// real node loss), then parity encoding runs — and fails for every
    /// group containing a victim, leaving the epoch incomplete.
    fn checkpoint_failing_mid_encode(
        &self,
        epoch: u64,
        phase: u64,
        slots: &[Vec<u8>],
        victims: &[NodeId],
    ) -> Result<(), HcftError> {
        self.ckpt.checkpoint(epoch, Level::Local, slots)?;
        for &v in victims {
            self.ckpt.store().fail_node(v).map_err(HcftError::Io)?;
            self.telemetry.event(
                EventKind::NodeFailure,
                phase,
                format!("node={v} (during encoding of epoch {epoch})"),
            );
        }
        self.ckpt.encode_epoch(epoch)
    }
}

/// Configuration of a [`ReplayEngine`].
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// Checkpoint cadence in iterations (must be positive).
    pub checkpoint_every: u64,
    /// Protection level of coordinated checkpoints.
    pub level: Level,
    /// Checkpoint store root. Use a fresh directory per engine run: the
    /// store is stateful across epochs.
    pub store_root: PathBuf,
    /// Worker threads for task-engine worlds (0 = auto).
    pub workers: usize,
    /// `simmpi` execution engine.
    pub engine: Engine,
    /// Receive-watchdog timeout.
    pub recv_timeout: Duration,
}

impl ReplayConfig {
    /// Defaults: encoded checkpoints every 5 iterations, auto engine.
    pub fn new(store_root: impl Into<PathBuf>) -> Self {
        let wc = WorldConfig::default();
        ReplayConfig {
            checkpoint_every: 5,
            level: Level::Encoded,
            store_root: store_root.into(),
            workers: 0,
            engine: wc.engine,
            recv_timeout: wc.recv_timeout,
        }
    }
}

/// What a scenario run did, in numbers — the unified report the
/// drill's pre-`FaultScenario` entry points (manual kill + `recover` +
/// ad-hoc counters) never produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Iteration at which the primary failure struck.
    pub scenario_phase: u64,
    /// All failed nodes, primary plus cascades, in failure order.
    pub failed_nodes: Vec<NodeId>,
    /// All ranks lost with those nodes (sorted).
    pub failed_ranks: Vec<Rank>,
    /// The final restart set (the failed L1 clusters' ranks).
    pub restart_set: Vec<Rank>,
    /// Recovery attempts (1 + number of cascades that struck).
    pub recovery_attempts: u64,
    /// Cascading failures that interrupted a recovery.
    pub cascades: u64,
    /// Corrupted-shard quarantines (each followed by a parity rebuild).
    pub corruption_retries: u64,
    /// Epoch recovered from.
    pub recovered_epoch: u64,
    /// Phase of that epoch's checkpoint (the rollback point).
    pub recovered_phase: u64,
    /// Did recovery fall back past the newest cadence point (because
    /// that epoch never completed)?
    pub used_fallback_epoch: bool,
    /// Logged messages re-fed to the restart set, all attempts.
    pub messages_replayed: u64,
    /// Payload bytes re-fed.
    pub bytes_replayed: u64,
    /// Restart-set sends suppressed as already-delivered duplicates.
    pub suppressed_duplicates: u64,
    /// Checkpoint payload bytes restored into restart ranks.
    pub bytes_restored: u64,
    /// Rank-iterations re-executed by the successful catch-up.
    pub catchup_steps: u64,
    /// Rank-iterations of catch-up discarded by cascades.
    pub wasted_catchup_steps: u64,
    /// The protocol feasibility analysis of the pre-failure traffic.
    pub report: ReplayReport,
    /// Per-rank serialised final state of the completed run.
    pub final_state: Vec<Vec<u8>>,
}

impl ReplayOutcome {
    /// Is the final state bit-for-bit identical to `reference` (the
    /// per-rank payloads of an uninterrupted run, e.g. from
    /// [`ReplayEngine::reference`])?
    pub fn matches(&self, reference: &[Vec<u8>]) -> bool {
        self.final_state == reference
    }
}

/// The engine: one workload, one placement + clustering scheme, one
/// checkpoint configuration; each [`ReplayEngine::run`] executes one
/// [`FaultScenario`] end to end.
pub struct ReplayEngine<W: ReplayWorkload> {
    workload: Arc<W>,
    placement: Placement,
    scheme: ClusteringScheme,
    machine: Option<MachineSpec>,
    cfg: ReplayConfig,
    telemetry: Arc<Registry>,
}

impl<W: ReplayWorkload> ReplayEngine<W> {
    /// Build an engine reporting to the process-global registry (so
    /// `repro --telemetry` includes the `replay.*` counters).
    pub fn new(
        workload: W,
        placement: Placement,
        scheme: ClusteringScheme,
        cfg: ReplayConfig,
    ) -> Self {
        Self::with_telemetry(workload, placement, scheme, cfg, Registry::global().clone())
    }

    /// Build an engine with a dedicated registry (scoped measurement).
    pub fn with_telemetry(
        workload: W,
        placement: Placement,
        scheme: ClusteringScheme,
        cfg: ReplayConfig,
        telemetry: Arc<Registry>,
    ) -> Self {
        assert_eq!(
            scheme.l1.nprocs(),
            placement.nprocs(),
            "scheme covers all ranks"
        );
        ReplayEngine {
            workload: Arc::new(workload),
            placement,
            scheme,
            machine: None,
            cfg,
            telemetry,
        }
    }

    /// Attach a machine model (needed to resolve PSU-correlated
    /// targets).
    pub fn with_machine(mut self, machine: MachineSpec) -> Self {
        self.machine = Some(machine);
        self
    }

    /// The registry this engine reports into.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    fn world_config(&self, trace_events: bool) -> WorldConfig {
        WorldConfig {
            trace_events,
            workers: self.cfg.workers,
            engine: self.cfg.engine,
            recv_timeout: self.cfg.recv_timeout,
            ..WorldConfig::default()
        }
    }

    /// Run the workload uninterrupted (no checkpoints, no logging, no
    /// failure) and return the per-rank final-state payloads — the
    /// ground truth a scenario outcome must [`ReplayOutcome::matches`].
    pub fn reference(&self, total_steps: u64) -> Vec<Vec<u8>> {
        let n = self.placement.nprocs();
        let w = Arc::clone(&self.workload);
        World::run_with(n, self.world_config(false), move |c| {
            let c: &Comm = c;
            let mut st = w.init(n, c.rank());
            let mut link = LoggedLink {
                comm: c,
                logging: None,
            };
            while w.iteration(&st) < total_steps {
                c.set_phase(w.iteration(&st));
                w.step(&mut st, &mut link);
            }
            let mut out = Vec::new();
            w.save_into(&st, &mut out);
            out
        })
        .outputs
    }

    /// Execute `scenario` against a `total_steps` run: run to the
    /// failure phase with live FT machinery, kill the targets, recover
    /// through checkpoint restore + log replay (riding out every
    /// injected complication), and finish the run.
    ///
    /// Errors: [`HcftError::Config`] for invalid scenarios,
    /// [`HcftError::Erasure`] when the (possibly cascaded) loss defeats
    /// the L2 redundancy — the paper's catastrophic failure — and
    /// [`HcftError::Recovery`] for unrecoverable protocol state (no
    /// complete epoch, corruption beyond the retry budget).
    pub fn run(
        &self,
        scenario: &FaultScenario,
        total_steps: u64,
    ) -> Result<ReplayOutcome, HcftError> {
        let n = self.placement.nprocs();
        let frontier = scenario.at_phase();
        let primary_nodes =
            scenario.failed_nodes(&self.placement, &self.scheme, self.machine.as_ref())?;
        let primary_ranks =
            scenario.failed_ranks(&self.placement, &self.scheme, self.machine.as_ref())?;
        self.validate(scenario, total_steps, &primary_nodes, &primary_ranks)?;

        let fab = Arc::new(Fabric {
            workload: Arc::clone(&self.workload),
            protocol: HybridProtocol::new(self.scheme.l1.clone()),
            level: self.cfg.level,
            every: self.cfg.checkpoint_every,
            logs: (0..n)
                .map(|_| Mutex::new(SenderLog::with_telemetry(&self.telemetry)))
                .collect(),
            slots: Mutex::new(vec![Vec::new(); n]),
            ckpt: MultilevelCheckpointer::with_telemetry(
                CheckpointStore::create(&self.cfg.store_root, self.placement.nodes())?,
                self.scheme.l2.clone(),
                self.placement.clone(),
                Arc::clone(&self.telemetry),
            ),
            book: Mutex::new(CkptBook {
                next_epoch: 1,
                complete: Vec::new(),
                failed_encodes: 0,
            }),
            sabotage: Mutex::new(
                scenario
                    .fails_during_encoding()
                    .then(|| (frontier, primary_nodes.clone())),
            ),
            telemetry: Arc::clone(&self.telemetry),
        });
        let states: Arc<Vec<Mutex<Option<W::State>>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());

        // ---- Segment A: run with live FT machinery to the failure. ----
        let trace_a = self.full_segment(&fab, &states, frontier, 0, true);

        // ---- The kill. ----
        for &node in &primary_nodes {
            fab.ckpt.store().fail_node(node).map_err(HcftError::Io)?;
            if !scenario.fails_during_encoding() {
                self.telemetry
                    .event(EventKind::NodeFailure, frontier, format!("node={node}"));
            }
        }
        for &r in &primary_ranks {
            *states[r.idx()].lock().expect("state") = None;
            // The crashed nodes' in-memory sender logs are gone too.
            *fab.logs[r.idx()].lock().expect("sender log") =
                SenderLog::with_telemetry(&self.telemetry);
        }
        self.telemetry.event(
            EventKind::DeadRanks,
            frontier,
            format!("count={} ranks={primary_ranks:?}", primary_ranks.len()),
        );

        // ---- Recovery, possibly over several cascaded attempts. ----
        let (epoch, ckpt_phase) = fab
            .book
            .lock()
            .expect("checkpoint book")
            .complete
            .last()
            .copied()
            .ok_or_else(|| {
                HcftError::Recovery("no complete checkpoint epoch to recover from".to_string())
            })?;
        for inj in scenario.injections() {
            if let Injection::CorruptCheckpoint { node } = inj {
                self.corrupt_node_shards(&fab, *node, epoch)?;
            }
        }
        let mut pending_cascades: VecDeque<(NodeId, u64)> = scenario
            .injections()
            .iter()
            .filter_map(|i| match i {
                Injection::CascadeAfter { node, after_steps } => Some((*node, *after_steps)),
                _ => None,
            })
            .collect();
        let mut failed_nodes = primary_nodes;
        let mut failed_ranks = primary_ranks;
        let (mut attempts, mut cascades_fired, mut corruption_retries) = (0u64, 0u64, 0u64);
        let (mut messages_replayed, mut bytes_replayed, mut suppressed) = (0u64, 0u64, 0u64);
        let (mut bytes_restored, mut wasted) = (0u64, 0u64);
        let restart_final: Vec<Rank>;
        loop {
            attempts += 1;
            let restart = fab.protocol.restart_set(&failed_ranks);
            let mut live = vec![false; n];
            for &r in &restart {
                live[r.idx()] = true;
            }

            // Restore the restart set, quarantining any shard whose
            // payload the workload rejects (silent corruption) and
            // rebuilding it from group parity.
            let mut quarantine_budget = self.placement.nodes() as u64 + 1;
            let payloads: Vec<Vec<u8>> = loop {
                let payloads = fab.ckpt.recover(epoch)?;
                let mut bad: Option<Rank> = None;
                for &r in &restart {
                    let mut st = self.workload.init(n, r.idx());
                    let ok = self.workload.restore(&mut st, &payloads[r.idx()]).is_ok()
                        && self.workload.iteration(&st) == ckpt_phase;
                    if !ok {
                        bad = Some(r);
                        break;
                    }
                }
                let Some(r) = bad else { break payloads };
                if quarantine_budget == 0 {
                    return Err(HcftError::Recovery(format!(
                        "checkpoint corruption persisted past the quarantine budget \
                         (epoch {epoch}, rank {})",
                        r.idx()
                    )));
                }
                quarantine_budget -= 1;
                corruption_retries += 1;
                // The whole node's storage is suspect: quarantine all
                // its shards so the parity rebuild never consumes a
                // corrupted-but-readable sibling.
                let node = self.placement.node_of(r);
                for &nr in self.placement.ranks_on(node) {
                    let _ = fab.ckpt.store().quarantine_local(node, nr.idx(), epoch);
                }
                self.telemetry.event(
                    EventKind::RebuildComplete,
                    frontier,
                    format!("quarantined node={node} epoch={epoch} (corrupt shard, rank {r:?})"),
                );
            };
            bytes_restored += restart
                .iter()
                .map(|r| payloads[r.idx()].len() as u64)
                .sum::<u64>();

            // Restart ranks re-execute from the checkpoint and re-log
            // their own cross-boundary sends; any entries they logged
            // after the rollback point (pre-failure or in a discarded
            // attempt) would otherwise duplicate.
            for &r in &restart {
                fab.logs[r.idx()]
                    .lock()
                    .expect("sender log")
                    .truncate_from(ckpt_phase);
            }

            // A pending cascade interrupts the catch-up early.
            let catchup_target = match pending_cascades.front() {
                Some(&(_, after)) if ckpt_phase + after < frontier => ckpt_phase + after,
                _ => frontier,
            };

            // Feed: the survivors' logged sends into the restart set,
            // per channel in send (= phase) order.
            let mut feed = ReplayFeed::new(n);
            for &dst in &restart {
                for (src, log) in fab.logs.iter().enumerate() {
                    if live[src] {
                        continue;
                    }
                    let log = log.lock().expect("sender log");
                    for e in log.replay_for(dst.idx() as u32, ckpt_phase) {
                        if e.phase < catchup_target {
                            feed.push(src as u32, dst.idx() as u32, e.tag, e.payload.clone());
                        }
                    }
                }
            }

            let w = Arc::clone(&self.workload);
            let fab2 = Arc::clone(&fab);
            let st2 = Arc::clone(&states);
            let pay = Arc::new(payloads);
            let pay2 = Arc::clone(&pay);
            let wr = World::run_replay(
                n,
                self.world_config(false),
                ReplayPlan { live, feed },
                move |c| {
                    let c: &Comm = c;
                    let r = c.rank();
                    let mut st = w.init(st2.len(), r);
                    w.restore(&mut st, &pay2[r])
                        .expect("payload validated before replay");
                    fab2.drive(c, &mut st, catchup_target, None, true);
                    *st2[r].lock().expect("state") = Some(st);
                },
            );
            if wr.leftover_messages > 0 {
                return Err(HcftError::Recovery(format!(
                    "{} logged messages were never consumed by the replay — feed and \
                     re-execution disagree",
                    wr.leftover_messages
                )));
            }
            messages_replayed += wr.fed_messages;
            bytes_replayed += wr.fed_bytes;
            suppressed += wr.suppressed_sends;

            if catchup_target < frontier {
                // The cascade strikes: the partial catch-up is wasted,
                // the failed set grows, recovery starts over.
                let (cnode, _) = pending_cascades.pop_front().expect("cascade pending");
                cascades_fired += 1;
                wasted += (catchup_target - ckpt_phase) * restart.len() as u64;
                fab.ckpt.store().fail_node(cnode).map_err(HcftError::Io)?;
                self.telemetry.event(
                    EventKind::NodeFailure,
                    catchup_target,
                    format!("node={cnode} (cascade during recovery)"),
                );
                if !failed_nodes.contains(&cnode) {
                    failed_nodes.push(cnode);
                }
                for &r in self.placement.ranks_on(cnode) {
                    if !failed_ranks.contains(&r) {
                        failed_ranks.push(r);
                    }
                    *states[r.idx()].lock().expect("state") = None;
                    *fab.logs[r.idx()].lock().expect("sender log") =
                        SenderLog::with_telemetry(&self.telemetry);
                }
                failed_ranks.sort_unstable_by_key(|r| r.idx());
                self.telemetry.event(
                    EventKind::DeadRanks,
                    catchup_target,
                    format!("count={} ranks={failed_ranks:?}", failed_ranks.len()),
                );
                continue;
            }
            self.telemetry.event(
                EventKind::ReplayComplete,
                frontier,
                format!(
                    "from={ckpt_phase} to={frontier} restarted={}",
                    restart.len()
                ),
            );
            restart_final = restart;
            break;
        }

        // Every rank must now stand at the frontier.
        for (r, slot) in states.iter().enumerate() {
            let guard = slot.lock().expect("state");
            let at = guard.as_ref().map(|st| self.workload.iteration(st));
            if at != Some(frontier) {
                return Err(HcftError::Recovery(format!(
                    "rank {r} is at {at:?} after recovery, expected iteration {frontier}"
                )));
            }
        }

        // ---- Segment C: the full world resumes to the end. ----
        self.full_segment(&fab, &states, total_steps, frontier + 1, false);

        let final_state: Vec<Vec<u8>> = states
            .iter()
            .map(|slot| {
                let guard = slot.lock().expect("state");
                let mut out = Vec::new();
                self.workload
                    .save_into(guard.as_ref().expect("alive after run"), &mut out);
                out
            })
            .collect();

        // Protocol feasibility analysis over the pre-failure traffic.
        let events: Vec<Vec<MsgEvent>> = trace_a
            .take_events()
            .into_iter()
            .map(|evs| {
                evs.into_iter()
                    .filter(|e| self.workload.is_halo_tag(e.tag))
                    .map(|e| MsgEvent {
                        src: e.src,
                        dst: e.dst,
                        bytes: e.bytes,
                        phase: e.phase,
                    })
                    .collect()
            })
            .collect();
        let report = check_replay(
            &self.scheme.l1,
            &events,
            &vec![ckpt_phase; self.scheme.l1.len()],
            &failed_ranks,
        );

        let catchup_steps = (frontier - ckpt_phase) * restart_final.len() as u64;
        let aligned = (frontier / self.cfg.checkpoint_every) * self.cfg.checkpoint_every;
        let t = &self.telemetry;
        t.counter("replay.messages_replayed").add(messages_replayed);
        t.counter("replay.bytes_replayed").add(bytes_replayed);
        t.counter("replay.bytes_restored").add(bytes_restored);
        t.counter("replay.catchup_steps").add(catchup_steps);
        t.counter("replay.wasted_catchup_steps").add(wasted);
        t.counter("replay.corruption_retries")
            .add(corruption_retries);
        t.counter("replay.cascades").add(cascades_fired);
        t.counter("replay.recovery_attempts").add(attempts);
        t.counter("replay.suppressed_duplicates").add(suppressed);
        t.event(
            EventKind::RecoveryComplete,
            frontier,
            format!(
                "workload={} restarted={} attempts={attempts}",
                self.workload.name(),
                restart_final.len()
            ),
        );

        Ok(ReplayOutcome {
            scenario_phase: frontier,
            failed_nodes,
            failed_ranks,
            restart_set: restart_final,
            recovery_attempts: attempts,
            cascades: cascades_fired,
            corruption_retries,
            recovered_epoch: epoch,
            recovered_phase: ckpt_phase,
            used_fallback_epoch: ckpt_phase < aligned,
            messages_replayed,
            bytes_replayed,
            suppressed_duplicates: suppressed,
            bytes_restored,
            catchup_steps,
            wasted_catchup_steps: wasted,
            report,
            final_state,
        })
    }

    /// Run a full-world segment: every rank takes (or initialises) its
    /// state, drives to `target` with checkpoints from `ckpt_from` and
    /// logging on, and parks the state again.
    fn full_segment(
        &self,
        fab: &Arc<Fabric<W>>,
        states: &Arc<Vec<Mutex<Option<W::State>>>>,
        target: u64,
        ckpt_from: u64,
        trace_events: bool,
    ) -> Arc<hcft_simmpi::TraceRecorder> {
        let n = self.placement.nprocs();
        let fab2 = Arc::clone(fab);
        let st2 = Arc::clone(states);
        World::run_with(n, self.world_config(trace_events), move |c| {
            let c: &Comm = c;
            let r = c.rank();
            let mut st = st2[r]
                .lock()
                .expect("state")
                .take()
                .unwrap_or_else(|| fab2.workload.init(st2.len(), r));
            fab2.drive(c, &mut st, target, Some(ckpt_from), true);
            *st2[r].lock().expect("state") = Some(st);
        })
        .trace
    }

    /// Scenario validation beyond target resolution: timing, injection
    /// preconditions, and the corruption/erasure interaction that would
    /// otherwise poison a Reed–Solomon rebuild.
    fn validate(
        &self,
        scenario: &FaultScenario,
        total_steps: u64,
        primary_nodes: &[NodeId],
        primary_ranks: &[Rank],
    ) -> Result<(), HcftError> {
        let cfg_err = |msg: String| Err(HcftError::Config(msg));
        if self.cfg.checkpoint_every == 0 {
            return cfg_err("checkpoint cadence must be positive".to_string());
        }
        let fp = scenario.at_phase();
        if fp == 0 || fp >= total_steps {
            return cfg_err(format!(
                "failure phase {fp} must fall strictly inside the run (0, {total_steps})"
            ));
        }
        let protocol = HybridProtocol::new(self.scheme.l1.clone());
        let restart = protocol.restart_set(primary_ranks);
        for inj in scenario.injections() {
            match inj {
                Injection::FailDuringEncoding => {
                    if !matches!(self.cfg.level, Level::Encoded) {
                        return cfg_err(
                            "failure-during-encoding needs Level::Encoded checkpoints".to_string(),
                        );
                    }
                    if !fp.is_multiple_of(self.cfg.checkpoint_every) {
                        return cfg_err(format!(
                            "failure-during-encoding needs the failure phase ({fp}) on the \
                             checkpoint cadence ({})",
                            self.cfg.checkpoint_every
                        ));
                    }
                }
                Injection::CascadeAfter { node, .. } => {
                    if node.idx() >= self.placement.nodes() {
                        return cfg_err(format!("cascade node {node} outside the placement"));
                    }
                    if primary_nodes.contains(node) {
                        return cfg_err(format!("cascade node {node} already fails primarily"));
                    }
                }
                Injection::CorruptCheckpoint { node } => {
                    if node.idx() >= self.placement.nodes() {
                        return cfg_err(format!("corrupt node {node} outside the placement"));
                    }
                    if primary_nodes.contains(node) {
                        return cfg_err(format!(
                            "corrupt node {node} dies with the primary failure — corrupt a \
                             surviving node of the restart set instead"
                        ));
                    }
                    let node_ranks = self.placement.ranks_on(*node);
                    if !node_ranks.iter().any(|r| restart.contains(r)) {
                        return cfg_err(format!(
                            "corrupt node {node} hosts no restart-set rank: recovery would \
                             never read the corrupted shards"
                        ));
                    }
                    for &r in node_ranks {
                        let g = self.scheme.l2.cluster_of(r);
                        if self
                            .scheme
                            .l2
                            .members(g)
                            .iter()
                            .any(|&m| primary_nodes.contains(&self.placement.node_of(m)))
                        {
                            return cfg_err(format!(
                                "corrupt node {node} shares an L2 erasure group with a failed \
                                 node: its corrupted-but-readable shards would poison the \
                                 Reed–Solomon rebuild of the lost ones"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Silently corrupt every local shard on `node` at `epoch`: shrink
    /// the frame's declared payload length so the shard still reads and
    /// unframes cleanly but restores to a truncated payload — only the
    /// workload's own validation can notice.
    fn corrupt_node_shards(
        &self,
        fab: &Fabric<W>,
        node: NodeId,
        epoch: u64,
    ) -> Result<(), HcftError> {
        let store = fab.ckpt.store();
        for &r in self.placement.ranks_on(node) {
            let mut bytes = store
                .read_local(node, r.idx(), epoch)
                .map_err(HcftError::Io)?;
            if bytes.len() < 8 {
                continue;
            }
            let len = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
            bytes[..8].copy_from_slice(&(len / 2).to_le_bytes());
            store
                .write_local(node, r.idx(), epoch, &bytes)
                .map_err(HcftError::Io)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FaultScenario;
    use hcft_cluster::naive;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new() -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let p = std::env::temp_dir().join(format!(
                "hcft-replay-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&p).expect("temp dir");
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// 8 nodes × 4 ranks, naive clusters of 8 ranks (= 2 nodes) at both
    /// levels: one lost node per L1 cluster is within RS tolerance.
    fn engine(dir: &TempDir) -> ReplayEngine<TsunamiWorkload> {
        let placement = Placement::block(8, 4);
        let scheme = naive(32, 8);
        ReplayEngine::with_telemetry(
            TsunamiWorkload::new(TsunamiParams::stable(32, 32)),
            placement,
            scheme,
            ReplayConfig::new(dir.0.clone()),
            Registry::new(),
        )
    }

    #[test]
    fn node_loss_replay_is_bit_identical() {
        let dir = TempDir::new();
        let eng = engine(&dir);
        let reference = eng.reference(13);
        let scenario = FaultScenario::node_loss(NodeId(2), 9);
        let out = eng.run(&scenario, 13).expect("recover");
        assert_eq!(out.recovered_phase, 5);
        assert_eq!(out.restart_set.len(), 8, "one L1 cluster restarts");
        assert_eq!(out.recovery_attempts, 1);
        assert!(out.messages_replayed > 0, "cross-cluster halos re-fed");
        assert!(out.report.feasible());
        assert!(
            out.matches(&reference),
            "replayed trajectory must be bit-identical"
        );
    }

    #[test]
    fn failure_on_checkpoint_phase_replays_nothing() {
        let dir = TempDir::new();
        let eng = engine(&dir);
        let reference = eng.reference(12);
        let out = eng
            .run(&FaultScenario::node_loss(NodeId(0), 10), 12)
            .expect("recover");
        assert_eq!(out.recovered_phase, 10);
        assert_eq!(out.messages_replayed, 0);
        assert_eq!(out.catchup_steps, 0);
        assert!(out.matches(&reference));
    }

    #[test]
    fn replay_telemetry_counters_are_emitted() {
        let dir = TempDir::new();
        let eng = engine(&dir);
        eng.run(&FaultScenario::node_loss(NodeId(2), 7), 9)
            .expect("recover");
        let snap = eng.telemetry().snapshot();
        for key in [
            "replay.messages_replayed",
            "replay.recovery_attempts",
            "replay.catchup_steps",
            "replay.bytes_restored",
        ] {
            assert!(
                snap.counters.iter().any(|(k, v)| k == key && *v > 0),
                "missing or zero counter {key}"
            );
        }
    }

    #[test]
    fn invalid_scenarios_are_config_errors() {
        let dir = TempDir::new();
        let eng = engine(&dir);
        for (scenario, total) in [
            (FaultScenario::node_loss(NodeId(0), 0), 10),  // phase 0
            (FaultScenario::node_loss(NodeId(0), 10), 10), // at the end
            // fail-during-encoding off the checkpoint cadence
            (
                FaultScenario::at(7)
                    .node(NodeId(0))
                    .fail_during_encoding()
                    .build(),
                12,
            ),
            // cascade node is already a primary target
            (
                FaultScenario::at(6)
                    .node(NodeId(0))
                    .cascade(NodeId(0), 1)
                    .build(),
                12,
            ),
            // corrupt node dies with the primary failure
            (
                FaultScenario::at(6)
                    .node(NodeId(0))
                    .corrupt_checkpoint(NodeId(0))
                    .build(),
                12,
            ),
            // corrupt node outside the restart set is never read
            (
                FaultScenario::at(6)
                    .node(NodeId(0))
                    .corrupt_checkpoint(NodeId(4))
                    .build(),
                12,
            ),
            // corrupt node shares the L2 group with the failed node
            (
                FaultScenario::at(6)
                    .node(NodeId(0))
                    .corrupt_checkpoint(NodeId(1))
                    .build(),
                12,
            ),
        ] {
            assert!(
                matches!(eng.run(&scenario, total), Err(HcftError::Config(_))),
                "expected Config error for {scenario:?}"
            );
        }
    }

    #[test]
    fn catastrophic_loss_reports_erasure() {
        let dir = TempDir::new();
        let eng = engine(&dir);
        // Both nodes of L1 cluster 0 = all 8 members of its L2 group:
        // beyond fti_tolerance(8) = 4 members.
        let scenario = FaultScenario::at(7).l1_cluster(0).build();
        assert!(matches!(
            eng.run(&scenario, 10),
            Err(HcftError::Erasure { .. })
        ));
    }
}
