//! The batched, allocation-free trial kernel.
//!
//! [`CampaignKernel`] runs one Monte-Carlo trial per call with zero
//! steady-state allocations: arrival times and sampled node indices live
//! in reusable scratch buffers, the partial Fisher–Yates pool is a
//! persistent identity permutation restored by undoing its own swaps,
//! and the catastrophe/restart judgements go through the counting
//! fast path ([`SchemeIndex`]) instead of materialising `Vec<NodeId>` /
//! `Vec<Rank>` per event.
//!
//! The kernel is *exactly* equivalent to
//! [`run_trial_reference`](super::run_trial_reference): it consumes the
//! per-trial RNG in the same order (all arrival times, then one uniform
//! per event for the class, then one `u64` per sampled node) and
//! evaluates the same floating-point expressions in the same order for
//! the waste ledger. `tests/campaign_kernel.rs` proptests the match
//! trial-for-trial.

use hcft_cluster::{SchemeIndex, SchemeScratch};
use hcft_reliability::ClassSampler;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use super::CampaignConfig;

/// Per-trial event counts and machine-time waste.
///
/// Event counts are integers — a trial sees whole failures — so they are
/// carried as `u64` and only converted to means at reporting time;
/// telemetry gets the exact totals.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrialTotals {
    /// Failure events in the trial.
    pub failures: u64,
    /// Events that defeated the L2 erasure level.
    pub catastrophic: u64,
    /// Transient events absorbed by the local checkpoint.
    pub transient: u64,
    /// Machine-seconds lost to recoveries (checkpoint overhead is billed
    /// separately as a steady fraction).
    pub waste_s: f64,
}

/// Reusable per-thread state for running trials of one campaign cell.
///
/// Build once per worker (cheap: a handful of `nodes`-sized buffers),
/// then call [`CampaignKernel::run_trial`] millions of times.
pub struct CampaignKernel<'a> {
    index: &'a SchemeIndex,
    sampler: &'a ClassSampler,
    cfg: &'a CampaignConfig,
    nodes: usize,
    nodes_f: f64,
    nprocs_f: f64,
    /// Arrival-time buffer reused across trials.
    times: Vec<f64>,
    /// Sampled node indices for the current event.
    failed: Vec<u32>,
    /// Persistent identity permutation for partial Fisher–Yates; always
    /// restored to identity after each event by undoing the swaps.
    pool: Vec<u32>,
    /// Swap targets of the current event, for the undo pass.
    swaps: Vec<u32>,
    scratch: SchemeScratch,
    /// Quotient bound under which [`fast_fmod`] is exact for
    /// `checkpoint_interval_s`; 0 disables the fast path.
    fmod_limit: f64,
}

/// Largest quotient for which `q * y` is exact: `2^53 / odd(y)`, where
/// `odd(y)` is `y`'s mantissa with trailing zeros stripped. 0 for
/// non-positive, non-finite or zero `y`.
fn exact_quotient_limit(y: f64) -> f64 {
    if !(y.is_finite() && y > 0.0) {
        return 0.0;
    }
    let bits = y.to_bits();
    let frac = bits & ((1u64 << 52) - 1);
    let mant = if (bits >> 52) & 0x7FF == 0 {
        frac
    } else {
        frac | (1 << 52)
    };
    if mant == 0 {
        return 0.0;
    }
    let odd = mant >> mant.trailing_zeros();
    9007199254740992.0 / odd as f64 // 2^53 / odd
}

/// `x % y` without the libm `fmod` call, **bit-identical** to `%` when
/// `x ≥ 0`, `y > 0` and `trunc(x / y) < limit` (see
/// [`exact_quotient_limit`]): under the limit `q·y` is an exact product,
/// the subtraction is exact by Sterbenz's lemma, and the ±1 quotient
/// rounding slip is repaired by one exact correction step. `fmod` costs
/// ~50 ns on glibc and sits on the per-event hot path; this is ~6 ns.
#[inline]
fn fast_fmod(x: f64, y: f64, limit: f64) -> f64 {
    let q = (x / y).trunc();
    if !(x >= 0.0 && q >= 0.0 && q < limit) {
        return x % y;
    }
    let mut r = x - q * y;
    if r < 0.0 {
        r += y;
    }
    if r >= y {
        r -= y;
    }
    r
}

impl<'a> CampaignKernel<'a> {
    /// A kernel for one (scheme, placement) cell.
    ///
    /// `index` must be built from the same scheme/placement the config
    /// targets; `sampler` from `cfg.events`.
    pub fn new(
        index: &'a SchemeIndex,
        sampler: &'a ClassSampler,
        cfg: &'a CampaignConfig,
        nprocs: usize,
    ) -> Self {
        let nodes = index.nodes();
        CampaignKernel {
            index,
            sampler,
            cfg,
            nodes,
            nodes_f: nodes as f64,
            nprocs_f: nprocs as f64,
            times: Vec::new(),
            failed: Vec::with_capacity(nodes),
            pool: (0..nodes as u32).collect(),
            swaps: Vec::with_capacity(nodes),
            scratch: index.scratch(),
            fmod_limit: exact_quotient_limit(cfg.checkpoint_interval_s),
        }
    }

    /// Run trial `trial`, seeded `cfg.seed + trial` exactly like the
    /// scalar reference.
    pub fn run_trial(&mut self, trial: u64) -> TrialTotals {
        let mut acc = TrialTotals::default();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(trial));
        // Take the buffer so iterating it doesn't hold a borrow of self;
        // the capacity travels with it and comes back below.
        let mut times = std::mem::take(&mut self.times);
        self.cfg
            .arrivals
            .sample_times_into(self.cfg.duration_h, &mut rng, &mut times);
        for &t_h in &times {
            acc.failures += 1;
            let u: f64 = rng.random();
            let Some(j) = self.sampler.draw(u) else {
                acc.transient += 1;
                acc.waste_s += self.cfg.recovery_latency_s / self.nodes_f;
                continue;
            };
            let j = j.min(self.nodes);
            self.sample_nodes(&mut rng, j);
            if self.index.defeated_by(&self.failed, &mut self.scratch) {
                acc.catastrophic += 1;
                acc.waste_s += self.cfg.catastrophic_penalty_s;
                continue;
            }
            let restart = self.index.restart_ranks(&self.failed, &mut self.scratch) as f64;
            let since_ckpt = fast_fmod(
                t_h * 3600.0,
                self.cfg.checkpoint_interval_s,
                self.fmod_limit,
            );
            acc.waste_s += (restart / self.nprocs_f) * (since_ckpt + self.cfg.recovery_latency_s);
        }
        self.times = times;
        acc
    }

    /// Sample `amount` distinct node indices into `self.failed`,
    /// consuming the RNG exactly like `rand::seq::index::sample` (partial
    /// Fisher–Yates over a dense pool) — but against the persistent
    /// identity pool, undoing the swaps afterwards instead of
    /// re-allocating `0..nodes` per event.
    #[inline]
    fn sample_nodes<R: RngCore + ?Sized>(&mut self, rng: &mut R, amount: usize) {
        debug_assert!(amount <= self.nodes);
        let length = self.nodes;
        if amount == 1 {
            // The dominant event class. The pool is the identity
            // permutation, so the one sampled index IS the drawn value —
            // no swap, no undo.
            let k = (rng.next_u64() % length.max(1) as u64) as u32;
            self.failed.clear();
            self.failed.push(k);
            return;
        }
        self.swaps.clear();
        for i in 0..amount {
            let j = i + (rng.next_u64() % (length - i).max(1) as u64) as usize;
            self.pool.swap(i, j);
            self.swaps.push(j as u32);
        }
        self.failed.clear();
        self.failed.extend_from_slice(&self.pool[..amount]);
        // Undo in reverse: the pool is the identity permutation again.
        for i in (0..amount).rev() {
            self.pool.swap(i, self.swaps[i] as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::index::sample;

    #[test]
    fn fast_fmod_is_bit_identical_to_fmod() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(0xF30D);
        // The hot-path divisors plus awkward ones (full mantissa, huge,
        // tiny, subnormal-adjacent); x spans the campaign's range and
        // values engineered to sit on or next to multiples of y.
        let ys = [
            600.0,
            30.0,
            7.3,
            601.7654321098765,
            1e-3,
            1.0 + f64::EPSILON,
            3600.0,
        ];
        for &y in &ys {
            let limit = exact_quotient_limit(y);
            for i in 0..20_000u64 {
                let x: f64 = match i % 4 {
                    0 => rng.random::<f64>() * 2_592_000.0,
                    1 => (i / 4) as f64 * y,
                    2 => (i / 4) as f64 * y + f64::EPSILON * i as f64,
                    _ => ((i / 4) as f64).mul_add(y, -(f64::EPSILON * i as f64)),
                };
                let want = x % y;
                let got = fast_fmod(x, y, limit);
                assert!(
                    got == want || (got.is_nan() && want.is_nan()),
                    "x={x:e} y={y:e}: fast {got:e} vs fmod {want:e}"
                );
            }
        }
        // Degenerate divisors must fall back, not misbehave.
        for y in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let limit = exact_quotient_limit(y);
            let got = fast_fmod(123.456, y, limit);
            let want = 123.456 % y;
            assert!(got == want || (got.is_nan() && want.is_nan()), "y={y}");
        }
    }

    #[test]
    fn sample_nodes_matches_rand_sample_and_restores_pool() {
        let index = {
            let p = hcft_topology::Placement::block(12, 2);
            let s = hcft_cluster::naive(24, 4);
            SchemeIndex::new(&s, &p)
        };
        let cfg = CampaignConfig::default();
        let sampler = cfg.events.sampler();
        let mut kernel = CampaignKernel::new(&index, &sampler, &cfg, 24);
        for seed in 0..50u64 {
            for amount in [0usize, 1, 3, 12] {
                let mut a = StdRng::seed_from_u64(seed);
                let mut b = StdRng::seed_from_u64(seed);
                let want: Vec<u32> = sample(&mut a, 12, amount)
                    .into_iter()
                    .map(|i| i as u32)
                    .collect();
                kernel.sample_nodes(&mut b, amount);
                assert_eq!(kernel.failed, want, "seed {seed} amount {amount}");
                assert!(
                    kernel.pool.iter().enumerate().all(|(i, &v)| v == i as u32),
                    "pool not restored to identity"
                );
            }
        }
    }
}
