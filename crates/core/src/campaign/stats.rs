//! Streaming statistics and the deterministic batched driver.
//!
//! Each campaign metric is accumulated in a [`Welford`] estimator
//! (numerically stable single-pass mean/variance), merged across worker
//! chunks with Chan's parallel update. Chunk boundaries are fixed
//! multiples of [`CHUNK`] and the merge happens sequentially in chunk
//! order, so the resulting statistics are **byte-identical at any rayon
//! thread count** — the same guarantee the rest of the pipeline gives.
//!
//! Early stopping ([`StopRule::target_ci`]) is evaluated only on batch
//! boundaries, against statistics whose value does not depend on
//! execution order; whether the stop triggers is therefore just as
//! deterministic as the trial data itself. A run with early stopping
//! that halts after `n` trials is byte-identical to a run with
//! `max_trials = n` and no target.

use hcft_cluster::{ClusteringScheme, SchemeIndex};
use hcft_topology::Placement;
use rayon::prelude::*;

use super::kernel::{CampaignKernel, TrialTotals};
use super::{CampaignConfig, CampaignOutcome};

/// Trials per worker chunk. Fixed so chunk (and therefore Welford merge)
/// boundaries never depend on thread count.
pub const CHUNK: u64 = 64;

/// Welford's streaming mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fold one observation in.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Chan's parallel merge. Call in a fixed order for deterministic
    /// results.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * (other.n as f64 / n as f64);
        let m2 = self.m2 + other.m2 + d * d * (self.n as f64 * other.n as f64 / n as f64);
        *self = Welford { n, mean, m2 };
    }

    /// Number of observations.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 with no observations).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 below two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Half-width of the 95 % normal confidence interval on the mean,
    /// `1.96·√(s²/n)`. Infinite below two observations so an early-stop
    /// check can never trigger on no evidence.
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            f64::INFINITY
        } else {
            1.96 * (self.variance() / self.n as f64).sqrt()
        }
    }
}

/// Target CI half-widths for early stopping.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CiTarget {
    /// Stop once the availability CI half-width is at most this.
    pub availability: f64,
    /// … and the per-campaign catastrophic-count CI half-width is at
    /// most this ([`f64::INFINITY`] to gate on availability alone).
    pub catastrophic: f64,
}

impl CiTarget {
    /// Gate on availability alone.
    pub fn availability(half_width: f64) -> Self {
        CiTarget {
            availability: half_width,
            catastrophic: f64::INFINITY,
        }
    }
}

/// When to stop sampling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StopRule {
    /// Hard cap on trials.
    pub max_trials: u64,
    /// Trials per batch; early stopping is only evaluated on batch
    /// boundaries, so results are reproducible by trial count alone.
    pub batch: u64,
    /// Never stop before this many trials even if the CI target is met.
    pub min_trials: u64,
    /// Optional CI target enabling early stopping.
    pub target_ci: Option<CiTarget>,
}

impl StopRule {
    /// Exactly `trials` trials, no early stopping.
    pub fn fixed(trials: u64) -> Self {
        StopRule {
            max_trials: trials,
            batch: trials.max(1),
            min_trials: trials,
            target_ci: None,
        }
    }

    /// Up to `max_trials`, checking `target` every `batch` trials after
    /// at least `min_trials`.
    pub fn until_ci(max_trials: u64, batch: u64, min_trials: u64, target: CiTarget) -> Self {
        StopRule {
            max_trials,
            batch: batch.max(1),
            min_trials,
            target_ci: Some(target),
        }
    }
}

/// Full campaign statistics: exact event totals plus streaming moments
/// (and hence 95 % CIs) for every reported metric.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CampaignStats {
    /// Trials actually run.
    pub trials: u64,
    /// Exact total failure events across all trials.
    pub total_failures: u64,
    /// Exact total catastrophic events.
    pub total_catastrophic: u64,
    /// Exact total transient events.
    pub total_transient: u64,
    /// Per-trial failure count moments.
    pub failures: Welford,
    /// Per-trial catastrophic count moments.
    pub catastrophic: Welford,
    /// Per-trial transient count moments.
    pub transient: Welford,
    /// Per-trial availability moments.
    pub availability: Welford,
    /// Whether a [`StopRule::target_ci`] ended the run before
    /// `max_trials`.
    pub early_stopped: bool,
}

impl CampaignStats {
    /// Fold one trial in. `availability` is the trial's availability
    /// fraction (see [`trial_availability`]).
    pub fn push(&mut self, t: &TrialTotals, availability: f64) {
        self.trials += 1;
        self.total_failures += t.failures;
        self.total_catastrophic += t.catastrophic;
        self.total_transient += t.transient;
        self.failures.push(t.failures as f64);
        self.catastrophic.push(t.catastrophic as f64);
        self.transient.push(t.transient as f64);
        self.availability.push(availability);
    }

    /// Merge another accumulator in (Chan update per metric). Call in a
    /// fixed chunk order for deterministic results.
    pub fn merge(&mut self, other: &CampaignStats) {
        self.trials += other.trials;
        self.total_failures += other.total_failures;
        self.total_catastrophic += other.total_catastrophic;
        self.total_transient += other.total_transient;
        self.failures.merge(&other.failures);
        self.catastrophic.merge(&other.catastrophic);
        self.transient.merge(&other.transient);
        self.availability.merge(&other.availability);
        self.early_stopped |= other.early_stopped;
    }

    /// Collapse to the mean-level [`CampaignOutcome`]. Counts come from
    /// the exact integer totals, availability from the per-trial mean.
    pub fn outcome(&self) -> CampaignOutcome {
        let trials = (self.trials as f64).max(1.0);
        CampaignOutcome {
            failures: self.total_failures as f64 / trials,
            catastrophic: self.total_catastrophic as f64 / trials,
            transient: self.total_transient as f64 / trials,
            availability: self.availability.mean(),
        }
    }
}

/// One trial's useful-work availability: steady checkpoint overhead plus
/// the trial's recovery waste, clamped at zero.
#[inline]
pub fn trial_availability(t: &TrialTotals, cfg: &CampaignConfig) -> f64 {
    let duration_s = cfg.duration_h * 3600.0;
    let ckpt_fraction = cfg.checkpoint_cost_s / cfg.checkpoint_interval_s;
    (1.0 - (ckpt_fraction + t.waste_s / duration_s)).max(0.0)
}

/// Run a campaign cell through the batched kernel under `stop`,
/// returning full statistics.
///
/// Trials fan out across rayon workers in fixed [`CHUNK`]-sized chunks;
/// each chunk owns a [`CampaignKernel`] (scratch buffers, no steady-state
/// allocation) and its partial statistics are merged in chunk order, so
/// the result is byte-identical at any thread count.
pub fn simulate_campaign_stats(
    scheme: &ClusteringScheme,
    placement: &Placement,
    cfg: &CampaignConfig,
    stop: &StopRule,
) -> CampaignStats {
    let index = SchemeIndex::new(scheme, placement);
    let sampler = cfg.events.sampler();
    let nprocs = placement.nprocs();
    let mut stats = CampaignStats::default();
    let mut done = 0u64;
    while done < stop.max_trials {
        let batch = stop.batch.max(1).min(stop.max_trials - done);
        let ranges: Vec<(u64, u64)> = (0..batch.div_ceil(CHUNK))
            .map(|k| {
                let lo = done + k * CHUNK;
                (lo, (lo + CHUNK).min(done + batch))
            })
            .collect();
        let parts: Vec<CampaignStats> = ranges
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut kernel = CampaignKernel::new(&index, &sampler, cfg, nprocs);
                let mut cs = CampaignStats::default();
                for trial in lo..hi {
                    let t = kernel.run_trial(trial);
                    cs.push(&t, trial_availability(&t, cfg));
                }
                cs
            })
            .collect();
        for p in &parts {
            stats.merge(p);
        }
        done += batch;
        if let Some(target) = &stop.target_ci {
            if done >= stop.min_trials
                && stats.availability.ci95() <= target.availability
                && stats.catastrophic.ci95() <= target.catastrophic
            {
                stats.early_stopped = true;
                break;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass_moments() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let mut w = Welford::default();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-10);
        assert!((w.variance() - var).abs() < 1e-8);
        assert!(w.ci95() > 0.0 && w.ci95().is_finite());
    }

    #[test]
    fn welford_merge_equals_sequential_push() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin()).collect();
        let mut whole = Welford::default();
        for &x in &xs {
            whole.push(x);
        }
        let mut merged = Welford::default();
        for chunk in xs.chunks(64) {
            let mut part = Welford::default();
            for &x in chunk {
                part.push(x);
            }
            merged.merge(&part);
        }
        assert_eq!(whole.n(), merged.n());
        assert!((whole.mean() - merged.mean()).abs() < 1e-12);
        assert!((whole.variance() - merged.variance()).abs() < 1e-10);
    }

    #[test]
    fn ci_is_infinite_until_two_observations() {
        let mut w = Welford::default();
        assert!(w.ci95().is_infinite());
        w.push(1.0);
        assert!(w.ci95().is_infinite());
        w.push(2.0);
        assert!(w.ci95().is_finite());
    }

    #[test]
    fn fixed_stop_rule_runs_exactly_n_trials() {
        let placement = Placement::block(8, 4);
        let scheme = hcft_cluster::naive(32, 8);
        let cfg = CampaignConfig {
            trials: 130, // not a multiple of CHUNK
            duration_h: 48.0,
            ..Default::default()
        };
        let stats = simulate_campaign_stats(&scheme, &placement, &cfg, &StopRule::fixed(130));
        assert_eq!(stats.trials, 130);
        assert!(!stats.early_stopped);
        assert_eq!(stats.availability.n(), 130);
    }

    #[test]
    fn early_stop_prefix_matches_fixed_run() {
        let placement = Placement::block(8, 4);
        let scheme = hcft_cluster::naive(32, 8);
        let cfg = CampaignConfig {
            duration_h: 72.0,
            ..Default::default()
        };
        // A generous target stops at the first eligible boundary.
        let rule = StopRule::until_ci(10_000, 64, 128, CiTarget::availability(1.0));
        let stopped = simulate_campaign_stats(&scheme, &placement, &cfg, &rule);
        assert!(stopped.early_stopped);
        assert_eq!(stopped.trials, 128);
        // Same trial count without early stopping: byte-identical stats
        // apart from the flag.
        let fixed = StopRule {
            max_trials: 128,
            batch: 64,
            min_trials: 128,
            target_ci: None,
        };
        let plain = simulate_campaign_stats(&scheme, &placement, &cfg, &fixed);
        assert_eq!(stopped.availability, plain.availability);
        assert_eq!(stopped.total_failures, plain.total_failures);
        assert_eq!(stopped.trials, plain.trials);
    }
}
