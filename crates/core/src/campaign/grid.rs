//! Parameter-grid sweeps: strategy × MTBF × cluster size × machine size.
//!
//! A [`CampaignGrid`] enumerates its cells in a fixed order (strategy,
//! then MTBF, then cluster size, then machine size) and runs each cell's
//! trials through [`simulate_campaign_stats`] — cells are sequential,
//! trials within a cell are parallel, so the grid inherits the engine's
//! any-thread-count determinism. Each cell gets its own seed derived by
//! SplitMix64 mixing of the base seed with the cell coordinates, keeping
//! cells statistically independent yet reproducible when the grid's axes
//! are extended.

use hcft_cluster::{distributed, naive, striped, ClusteringScheme};
use hcft_telemetry::HcftError;
use hcft_topology::Placement;

use super::stats::{simulate_campaign_stats, CampaignStats, StopRule};
use super::CampaignConfig;
use hcft_reliability::FailureArrivals;

/// Clustering strategies a grid can sweep. These are the parametric
/// families — the graph-partitioned `hierarchical` scheme needs a
/// communication graph and is compared separately (`repro campaign`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridStrategy {
    /// Consecutive-rank clusters of the given size (§III-A).
    Naive,
    /// Diagonal-striped clusters, one rank per node (§III-C).
    Distributed,
    /// Striped two-level scheme: L1 blocks of 4 nodes, distributed L2
    /// groups of the given size.
    Striped,
}

/// Nodes per L1 block for [`GridStrategy::Striped`].
const STRIPED_L1_NODES: usize = 4;

impl GridStrategy {
    /// Stable identifier used in CSV output.
    pub fn name(&self) -> &'static str {
        match self {
            GridStrategy::Naive => "naive",
            GridStrategy::Distributed => "distributed",
            GridStrategy::Striped => "striped",
        }
    }

    /// Build the scheme for one cell, validating the cell's geometry
    /// instead of panicking deep inside the constructors.
    pub fn build(
        &self,
        placement: &Placement,
        cluster_size: usize,
    ) -> Result<ClusteringScheme, HcftError> {
        let nodes = placement.nodes();
        let nprocs = placement.nprocs();
        match self {
            GridStrategy::Naive => {
                if cluster_size == 0 || cluster_size > nprocs {
                    return Err(HcftError::Config(format!(
                        "naive cluster size {cluster_size} vs {nprocs} ranks"
                    )));
                }
                Ok(naive(nprocs, cluster_size))
            }
            GridStrategy::Distributed => {
                if cluster_size < 2 || cluster_size > nodes {
                    return Err(HcftError::Config(format!(
                        "distributed cluster size {cluster_size} vs {nodes} nodes"
                    )));
                }
                Ok(distributed(placement, cluster_size))
            }
            GridStrategy::Striped => {
                if !nodes.is_multiple_of(STRIPED_L1_NODES) {
                    return Err(HcftError::Config(format!(
                        "striped needs nodes divisible by {STRIPED_L1_NODES}, got {nodes}"
                    )));
                }
                if cluster_size < 2 || !nprocs.is_multiple_of(cluster_size) {
                    return Err(HcftError::Config(format!(
                        "striped L2 size {cluster_size} vs {nprocs} ranks"
                    )));
                }
                Ok(striped(placement, STRIPED_L1_NODES, cluster_size))
            }
        }
    }
}

/// One grid cell's coordinates and statistics.
#[derive(Clone, Debug)]
pub struct GridCell {
    /// Strategy identifier ([`GridStrategy::name`]).
    pub strategy: &'static str,
    /// MTBF of the cell's exponential arrival process, hours.
    pub mtbf_h: f64,
    /// Erasure/cluster size parameter passed to the strategy.
    pub cluster_size: usize,
    /// Machine size in nodes.
    pub nodes: usize,
    /// Ranks per node.
    pub ppn: usize,
    /// Full statistics, including 95 % CIs and the early-stop flag.
    pub stats: CampaignStats,
}

/// A full sweep specification.
#[derive(Clone, Debug)]
pub struct CampaignGrid {
    /// Strategies to sweep.
    pub strategies: Vec<GridStrategy>,
    /// MTBF axis, hours.
    pub mtbfs_h: Vec<f64>,
    /// Cluster-size axis.
    pub cluster_sizes: Vec<usize>,
    /// Machine-size axis, nodes.
    pub machine_nodes: Vec<usize>,
    /// Ranks per node (uniform block placement).
    pub ppn: usize,
    /// Per-cell base configuration; `arrivals` and `seed` are overridden
    /// per cell.
    pub base: CampaignConfig,
    /// Trial budget / early-stop rule applied to every cell.
    pub stop: StopRule,
}

impl CampaignGrid {
    /// Number of cells the grid enumerates.
    pub fn cells(&self) -> usize {
        self.strategies.len()
            * self.mtbfs_h.len()
            * self.cluster_sizes.len()
            * self.machine_nodes.len()
    }

    /// Run every cell. Fails fast on the first invalid cell geometry —
    /// grids are meant to be fully valid, not silently sparse.
    pub fn run(&self) -> Result<Vec<GridCell>, HcftError> {
        let mut out = Vec::with_capacity(self.cells());
        let mut total_trials = 0u64;
        let mut early_stopped = 0u64;
        for (si, strategy) in self.strategies.iter().enumerate() {
            for (mi, &mtbf_h) in self.mtbfs_h.iter().enumerate() {
                for (ci, &cluster_size) in self.cluster_sizes.iter().enumerate() {
                    for (ni, &nodes) in self.machine_nodes.iter().enumerate() {
                        let placement = Placement::block(nodes, self.ppn);
                        let scheme = strategy.build(&placement, cluster_size)?;
                        let mut cfg = self.base.clone();
                        cfg.arrivals = FailureArrivals::exponential(mtbf_h);
                        cfg.trials = self.stop.max_trials as usize;
                        cfg.seed = cell_seed(self.base.seed, si, mi, ci, ni);
                        let stats = simulate_campaign_stats(&scheme, &placement, &cfg, &self.stop);
                        total_trials += stats.trials;
                        early_stopped += stats.early_stopped as u64;
                        out.push(GridCell {
                            strategy: strategy.name(),
                            mtbf_h,
                            cluster_size,
                            nodes,
                            ppn: self.ppn,
                            stats,
                        });
                    }
                }
            }
        }
        let reg = hcft_telemetry::Registry::global();
        reg.counter("campaign.grid.cells").add(out.len() as u64);
        reg.counter("campaign.grid.trials").add(total_trials);
        reg.counter("campaign.grid.early_stopped")
            .add(early_stopped);
        Ok(out)
    }
}

/// SplitMix64 finaliser.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mix cell coordinates into the base seed so neighbouring cells draw
/// unrelated trial streams.
fn cell_seed(base: u64, si: usize, mi: usize, ci: usize, ni: usize) -> u64 {
    let coord = ((si as u64) << 48) ^ ((mi as u64) << 32) ^ ((ci as u64) << 16) ^ ni as u64;
    splitmix(base ^ splitmix(coord))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::stats::CiTarget;

    fn tiny_grid() -> CampaignGrid {
        CampaignGrid {
            strategies: vec![GridStrategy::Naive, GridStrategy::Distributed],
            mtbfs_h: vec![4.0, 12.0],
            cluster_sizes: vec![4],
            machine_nodes: vec![8],
            ppn: 4,
            base: CampaignConfig {
                duration_h: 48.0,
                ..Default::default()
            },
            stop: StopRule::fixed(64),
        }
    }

    #[test]
    fn grid_enumerates_all_cells_in_order() {
        let grid = tiny_grid();
        let cells = grid.run().unwrap();
        assert_eq!(cells.len(), grid.cells());
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].strategy, "naive");
        assert_eq!(cells[0].mtbf_h, 4.0);
        assert_eq!(cells[1].mtbf_h, 12.0);
        assert_eq!(cells[2].strategy, "distributed");
        for c in &cells {
            assert_eq!(c.stats.trials, 64);
            assert!(c.stats.availability.mean() > 0.0);
        }
    }

    #[test]
    fn lower_mtbf_hurts_availability() {
        let cells = tiny_grid().run().unwrap();
        // naive @ mtbf 4h vs naive @ mtbf 12h
        assert!(cells[0].stats.availability.mean() < cells[1].stats.availability.mean());
        assert!(cells[0].stats.failures.mean() > cells[1].stats.failures.mean());
    }

    #[test]
    fn invalid_geometry_is_a_config_error() {
        let mut grid = tiny_grid();
        grid.strategies = vec![GridStrategy::Distributed];
        grid.cluster_sizes = vec![100]; // > nodes
        let err = grid.run().unwrap_err();
        assert!(matches!(err, HcftError::Config(_)), "{err:?}");
    }

    #[test]
    fn grid_is_reproducible_and_seed_sensitive() {
        let grid = tiny_grid();
        let a = grid.run().unwrap();
        let b = grid.run().unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.stats, y.stats);
        }
        let mut other = tiny_grid();
        other.base.seed ^= 1;
        let c = other.run().unwrap();
        assert!(a.iter().zip(&c).any(|(x, y)| x.stats != y.stats));
    }

    #[test]
    fn early_stopping_saves_trials_in_a_grid() {
        let mut grid = tiny_grid();
        grid.stop = StopRule::until_ci(512, 64, 64, CiTarget::availability(0.5));
        let cells = grid.run().unwrap();
        for c in &cells {
            assert!(c.stats.early_stopped, "{c:?}");
            assert!(c.stats.trials < 512);
        }
    }
}
