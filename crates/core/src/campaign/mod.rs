//! Operational campaign simulation: a month of failures, end to end.
//!
//! The paper evaluates its clusterings on per-failure metrics; this
//! module closes the loop by simulating an operating *campaign*: failure
//! events arrive by a stochastic process, each event hits concrete nodes,
//! the configured clustering decides who rolls back (or whether the
//! erasure level is defeated and the machine falls back to an old PFS
//! checkpoint), and the machine-time ledger accumulates checkpoint
//! overhead, redone work and recovery stalls. The output is the number
//! operators actually care about: **useful-work availability**.
//!
//! The module is built to sustain *millions* of trials per command:
//!
//! * [`kernel`] — the batched trial kernel: scratch-buffer reuse for
//!   arrival times and failed-node samples, a counting fast path for
//!   catastrophe/restart judgements ([`hcft_cluster::SchemeIndex`]) and a
//!   LUT-guided event-class sampler. Trial-for-trial identical to the
//!   retained scalar [`run_trial_reference`] — proptested in
//!   `tests/campaign_kernel.rs`.
//! * [`stats`] — streaming Welford mean/variance per metric with 95 %
//!   confidence intervals, order-preserving parallel folds (results are
//!   byte-identical at any thread count) and deterministic early
//!   stopping at a target CI width ([`StopRule`]).
//! * [`grid`] — [`CampaignGrid`], a parameter sweep over
//!   strategy × MTBF × cluster size × machine size producing one
//!   [`GridCell`] (with CIs) per combination.

pub mod grid;
pub mod kernel;
pub mod stats;

pub use grid::{CampaignGrid, GridCell, GridStrategy};
pub use kernel::{CampaignKernel, TrialTotals};
pub use stats::{
    simulate_campaign_stats, trial_availability, CampaignStats, CiTarget, StopRule, Welford,
};

use hcft_cluster::ClusteringScheme;
use hcft_msglog::HybridProtocol;
use hcft_reliability::{ClassSampler, EventDistribution, FailureArrivals};
use hcft_topology::{NodeId, Placement, Rank};

use crate::scenario::FaultScenario;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::Rng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Campaign length in hours.
    pub duration_h: f64,
    /// Failure arrival process.
    pub arrivals: FailureArrivals,
    /// Failure event class distribution.
    pub events: EventDistribution,
    /// Coordinated checkpoint interval, seconds.
    pub checkpoint_interval_s: f64,
    /// Cost of one coordinated (encoded) checkpoint, seconds.
    pub checkpoint_cost_s: f64,
    /// Latency of a contained recovery (rebuild + coordination), seconds.
    pub recovery_latency_s: f64,
    /// Machine-seconds lost to a catastrophic failure (PFS fallback and
    /// redo of the PFS-interval gap).
    pub catastrophic_penalty_s: f64,
    /// Monte-Carlo trials.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            duration_h: 30.0 * 24.0,
            arrivals: FailureArrivals::exponential(6.0),
            events: EventDistribution::fti_calibrated(),
            checkpoint_interval_s: 600.0,
            checkpoint_cost_s: 30.0,
            recovery_latency_s: 60.0,
            catastrophic_penalty_s: 2.0 * 3600.0,
            trials: 200,
            seed: 0xCA3A,
        }
    }
}

/// Averaged campaign outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CampaignOutcome {
    /// Mean failures per campaign.
    pub failures: f64,
    /// Mean catastrophic failures per campaign.
    pub catastrophic: f64,
    /// Mean transient (locally absorbed) failures per campaign.
    pub transient: f64,
    /// Fraction of machine-time spent on useful work.
    pub availability: f64,
}

/// Run the campaign for one clustering scheme through the batched
/// engine. Equivalent trial-for-trial to
/// [`simulate_campaign_reference`]; orders of magnitude faster.
pub fn simulate_campaign(
    scheme: &ClusteringScheme,
    placement: &Placement,
    cfg: &CampaignConfig,
) -> CampaignOutcome {
    let stats =
        simulate_campaign_stats(scheme, placement, cfg, &StopRule::fixed(cfg.trials as u64));
    // Event counts are integers; report them to telemetry exactly
    // instead of truncating a float total.
    let reg = hcft_telemetry::Registry::global();
    reg.counter("campaign.trials").add(stats.trials);
    reg.counter("campaign.failures").add(stats.total_failures);
    reg.counter("campaign.catastrophic")
        .add(stats.total_catastrophic);
    reg.counter("campaign.transient").add(stats.total_transient);
    stats.outcome()
}

/// The pre-engine scalar implementation, retained as the correctness
/// reference: per-event `Vec` materialisation, [`FaultScenario`]
/// construction and the O(nprocs) `defeated_by` scan. `bench_campaign`
/// measures the engine's speedup against this.
pub fn simulate_campaign_reference(
    scheme: &ClusteringScheme,
    placement: &Placement,
    cfg: &CampaignConfig,
) -> CampaignOutcome {
    let protocol = HybridProtocol::new(scheme.l1.clone());
    let sampler = cfg.events.sampler();
    let duration_s = cfg.duration_h * 3600.0;
    let ckpt_fraction = cfg.checkpoint_cost_s / cfg.checkpoint_interval_s;
    // Trials are independent and each reseeds its own RNG, so they fan
    // out across threads. Partials are collected in trial order and
    // folded sequentially below, which makes the totals bit-identical
    // regardless of thread count (floating-point addition order is
    // fixed by the fold, not by execution order).
    let partials: Vec<TrialTotals> = (0..cfg.trials)
        .into_par_iter()
        .map(|trial| run_trial_reference(trial as u64, scheme, &protocol, placement, cfg, &sampler))
        .collect();
    let mut tot_failures = 0u64;
    let mut tot_catastrophic = 0u64;
    let mut tot_transient = 0u64;
    let mut tot_waste_s = 0.0;
    for p in &partials {
        tot_failures += p.failures;
        tot_catastrophic += p.catastrophic;
        tot_transient += p.transient;
        tot_waste_s += p.waste_s;
    }
    let trials = cfg.trials as f64;
    let waste_fraction = ckpt_fraction + tot_waste_s / trials / duration_s;
    CampaignOutcome {
        failures: tot_failures as f64 / trials,
        catastrophic: tot_catastrophic as f64 / trials,
        transient: tot_transient as f64 / trials,
        availability: (1.0 - waste_fraction).max(0.0),
    }
}

/// One scalar Monte-Carlo trial, seeded by trial index so execution
/// order is irrelevant to the outcome.
///
/// This is the reference the batched [`CampaignKernel`] must match
/// trial-for-trial: same RNG consumption order (arrival times, then one
/// uniform per event class, then one `u64` per sampled node), same
/// floating-point expressions for the waste ledger.
pub fn run_trial_reference(
    trial: u64,
    scheme: &ClusteringScheme,
    protocol: &HybridProtocol,
    placement: &Placement,
    cfg: &CampaignConfig,
    sampler: &ClassSampler,
) -> TrialTotals {
    let nprocs = placement.nprocs() as f64;
    let nodes = placement.nodes();
    let mut acc = TrialTotals::default();
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(trial));
    let times = cfg.arrivals.sample_times(cfg.duration_h, &mut rng);
    for t_h in times {
        acc.failures += 1;
        let u: f64 = rng.random();
        let Some(j) = sampler.draw_scan(u) else {
            acc.transient += 1;
            // Absorbed by the local (L1) checkpoint: bill only the
            // restart latency of the affected node's ranks.
            acc.waste_s += cfg.recovery_latency_s / nodes as f64;
            continue;
        };
        let j = j.min(nodes);
        let failed_nodes: Vec<NodeId> = sample(&mut rng, nodes, j)
            .into_iter()
            .map(NodeId::from)
            .collect();
        // Each sampled event becomes a FaultScenario, so the campaign
        // judges catastrophes with exactly the rule every other
        // fault-injection surface uses (ClusteringScheme::defeated_by).
        let event = FaultScenario::nodes_loss(&failed_nodes, (t_h * 3600.0) as u64);
        if event
            .is_catastrophic(placement, scheme, None)
            .expect("sampled nodes are in range")
        {
            acc.catastrophic += 1;
            acc.waste_s += cfg.catastrophic_penalty_s;
            continue;
        }
        // Contained recovery: the affected L1 clusters redo the work
        // since their last checkpoint.
        let failed_ranks: Vec<Rank> = event
            .failed_ranks(placement, scheme, None)
            .expect("sampled nodes are in range");
        let restart = protocol.restart_set(&failed_ranks).len() as f64;
        let since_ckpt = (t_h * 3600.0) % cfg.checkpoint_interval_s;
        acc.waste_s += (restart / nprocs) * (since_ckpt + cfg.recovery_latency_s);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcft_cluster::{distributed, hierarchical, size_guided, HierarchicalConfig};
    use hcft_graph::{CommMatrix, WeightedGraph};

    fn setup() -> (Placement, WeightedGraph) {
        let placement = Placement::block(16, 4);
        let mut m = CommMatrix::new(16);
        for n in 0..15 {
            m.add(n, n + 1, 100);
            m.add(n + 1, n, 100);
        }
        (placement, WeightedGraph::from_comm_matrix(&m))
    }

    fn quick_cfg() -> CampaignConfig {
        CampaignConfig {
            trials: 50,
            duration_h: 24.0 * 7.0,
            arrivals: FailureArrivals::exponential(4.0),
            ..Default::default()
        }
    }

    #[test]
    fn hierarchical_beats_size_guided_on_availability() {
        let (placement, g) = setup();
        let cfg = quick_cfg();
        let hier = hierarchical(
            &placement,
            &g,
            &HierarchicalConfig {
                min_nodes_per_l1: 4,
                max_nodes_per_l1: 4,
                l2_group_nodes: 4,
                ..Default::default()
            },
        );
        let sg = size_guided(64, 4); // one node per cluster: dies often
        let out_hier = simulate_campaign(&hier, &placement, &cfg);
        let out_sg = simulate_campaign(&sg, &placement, &cfg);
        assert!(out_sg.catastrophic > 10.0 * out_hier.catastrophic.max(0.5));
        assert!(out_hier.availability > out_sg.availability);
        assert!(out_hier.availability > 0.8, "{out_hier:?}");
    }

    #[test]
    fn distributed_rarely_catastrophic_but_wastes_restart() {
        let (placement, g) = setup();
        let _ = g;
        let cfg = quick_cfg();
        let ds = distributed(&placement, 8);
        let out = simulate_campaign(&ds, &placement, &cfg);
        assert_eq!(out.catastrophic, 0.0, "{out:?}");
        // Everything restarts per failure, so availability suffers vs a
        // contained scheme with identical reliability.
        let hier = hierarchical(
            &placement,
            &setup().1,
            &HierarchicalConfig {
                min_nodes_per_l1: 4,
                max_nodes_per_l1: 4,
                l2_group_nodes: 4,
                ..Default::default()
            },
        );
        let out_hier = simulate_campaign(&hier, &placement, &cfg);
        assert!(out_hier.availability >= out.availability);
    }

    #[test]
    fn failure_counts_scale_with_duration() {
        let (placement, g) = setup();
        let hier = hierarchical(
            &placement,
            &g,
            &HierarchicalConfig {
                min_nodes_per_l1: 4,
                max_nodes_per_l1: 4,
                l2_group_nodes: 4,
                ..Default::default()
            },
        );
        let mut cfg = quick_cfg();
        cfg.duration_h = 24.0;
        let short = simulate_campaign(&hier, &placement, &cfg);
        cfg.duration_h = 96.0;
        let long = simulate_campaign(&hier, &placement, &cfg);
        assert!((long.failures / short.failures - 4.0).abs() < 0.8);
    }

    #[test]
    fn deterministic_given_seed() {
        let (placement, g) = setup();
        let hier = hierarchical(
            &placement,
            &g,
            &HierarchicalConfig {
                min_nodes_per_l1: 4,
                max_nodes_per_l1: 4,
                l2_group_nodes: 4,
                ..Default::default()
            },
        );
        let cfg = quick_cfg();
        let a = simulate_campaign(&hier, &placement, &cfg);
        let b = simulate_campaign(&hier, &placement, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn engine_and_reference_agree_on_counts() {
        let (placement, g) = setup();
        let hier = hierarchical(
            &placement,
            &g,
            &HierarchicalConfig {
                min_nodes_per_l1: 4,
                max_nodes_per_l1: 4,
                l2_group_nodes: 4,
                ..Default::default()
            },
        );
        let cfg = quick_cfg();
        let fast = simulate_campaign(&hier, &placement, &cfg);
        let slow = simulate_campaign_reference(&hier, &placement, &cfg);
        // Event counts are integral per trial, so the means match
        // exactly; availability aggregates differently (per-trial mean
        // vs mean-waste) but must agree closely.
        assert_eq!(fast.failures, slow.failures);
        assert_eq!(fast.catastrophic, slow.catastrophic);
        assert_eq!(fast.transient, slow.transient);
        assert!((fast.availability - slow.availability).abs() < 1e-9);
    }
}
