//! End-to-end failure drill: the paper's whole stack, executed.
//!
//! Runs the tsunami kernel for all ranks in lockstep (single process,
//! deterministic), with the combined FT machinery live:
//!
//! * halo edges crossing an L1 boundary are retained in sender logs
//!   (hybrid protocol);
//! * coordinated checkpoints are written through the multi-level
//!   checkpointer — local files plus Reed–Solomon parity per L2 cluster;
//! * a node failure deletes that node's on-disk checkpoints and kills
//!   its ranks' in-memory state;
//! * recovery restarts only the failed L1 cluster(s): lost shards are
//!   rebuilt from parity, the cluster rolls back to its checkpoint, and
//!   replays forward with cross-cluster halos served from the sender
//!   logs while survivors stay parked.
//!
//! Because the drill shares [`RankState`] with the message-passing
//! solver, the final field after recovery must equal an uninterrupted
//! run **bit-for-bit** — asserted in the tests.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use hcft_checkpoint::{CheckpointStore, Level, MultilevelCheckpointer};
use hcft_cluster::ClusteringScheme;
use hcft_msglog::{HybridProtocol, SenderLog};
use hcft_simmpi::datatype::{decode, encode};
use hcft_telemetry::{EventKind, HcftError, Registry};
use hcft_topology::{NodeId, Placement, Rank};
use hcft_tsunami::{Dir, RankState, TsunamiParams};

use crate::scenario::FaultScenario;

fn dir_tag(dir: Dir) -> u32 {
    match dir {
        Dir::West => 0,
        Dir::East => 1,
        Dir::North => 2,
        Dir::South => 3,
    }
}

/// Drill configuration.
#[derive(Clone, Debug)]
pub struct DrillConfig {
    /// Global solver grid.
    pub grid: (usize, usize),
    /// Checkpoint cadence in iterations.
    pub checkpoint_every: u64,
    /// Protection level of each coordinated checkpoint.
    pub level: Level,
    /// Where the checkpoint store lives.
    pub store_root: PathBuf,
}

/// The lockstep execution with live fault tolerance.
pub struct LockstepDrill {
    params: TsunamiParams,
    placement: Placement,
    scheme: ClusteringScheme,
    protocol: HybridProtocol,
    ckpt: MultilevelCheckpointer,
    /// Per-rank solver state; `None` while a rank is dead.
    states: Vec<Option<RankState>>,
    /// Per-rank sender logs (inter-L1-cluster halos only).
    logs: Vec<SenderLog>,
    /// Phase (iteration) the run has completed.
    phase: u64,
    /// Phase of the last coordinated checkpoint.
    ckpt_phase: u64,
    /// Epoch id of the last checkpoint.
    epoch: u64,
    /// Per-rank payload size of the last coordinated checkpoint.
    last_ckpt_bytes: Vec<u64>,
    /// Persistent per-rank serialisation buffers: after the first
    /// checkpoint sizes them, later rounds serialise without allocating.
    ckpt_scratch: Vec<Vec<u8>>,
    cfg: DrillConfig,
    telemetry: Arc<Registry>,
}

impl LockstepDrill {
    /// Build the drill over `placement` with the given clustering scheme,
    /// reporting telemetry to the process-global registry.
    pub fn new(
        placement: Placement,
        scheme: ClusteringScheme,
        cfg: DrillConfig,
    ) -> Result<Self, HcftError> {
        Self::with_telemetry(placement, scheme, cfg, Registry::global().clone())
    }

    /// Build the drill with a dedicated telemetry registry (scoped
    /// measurement: one drill, one journal, no cross-test noise).
    pub fn with_telemetry(
        placement: Placement,
        scheme: ClusteringScheme,
        cfg: DrillConfig,
        telemetry: Arc<Registry>,
    ) -> Result<Self, HcftError> {
        let n = placement.nprocs();
        assert_eq!(scheme.l1.nprocs(), n, "scheme covers all ranks");
        let params = TsunamiParams::stable(cfg.grid.0, cfg.grid.1);
        let states = (0..n)
            .map(|r| Some(RankState::new(&params, n, r)))
            .collect();
        let store = CheckpointStore::create(&cfg.store_root, placement.nodes())?;
        let ckpt = MultilevelCheckpointer::with_telemetry(
            store,
            scheme.l2.clone(),
            placement.clone(),
            telemetry.clone(),
        );
        let mut drill = LockstepDrill {
            protocol: HybridProtocol::new(scheme.l1.clone()),
            params,
            placement,
            scheme,
            ckpt,
            states,
            logs: (0..n)
                .map(|_| SenderLog::with_telemetry(&telemetry))
                .collect(),
            phase: 0,
            ckpt_phase: 0,
            epoch: 0,
            last_ckpt_bytes: vec![0; n],
            ckpt_scratch: vec![Vec::new(); n],
            cfg,
            telemetry,
        };
        // Like FTI, protect the initial state immediately: a failure
        // before the first periodic checkpoint must still be recoverable.
        drill.checkpoint()?;
        Ok(drill)
    }

    /// The registry this drill reports into.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// Completed iterations.
    pub fn phase(&self) -> u64 {
        self.phase
    }

    /// The clustering scheme in force.
    pub fn scheme(&self) -> &ClusteringScheme {
        &self.scheme
    }

    /// Total sender-log memory (bytes) — the logging overhead made
    /// concrete.
    pub fn log_memory_bytes(&self) -> u64 {
        self.logs.iter().map(SenderLog::memory_bytes).sum()
    }

    /// Advance one iteration for all (live) ranks, logging cross-cluster
    /// halos.
    ///
    /// # Panics
    /// Panics if any rank is dead (recover first).
    pub fn step(&mut self) {
        let t0 = Instant::now();
        let n = self.states.len();
        assert!(
            self.states.iter().all(Option::is_some),
            "cannot step with dead ranks; call recover() first"
        );
        // One outbound halo edge, addressed to a neighbour.
        type OutEdge = (Option<Vec<f64>>, Option<usize>);
        // Phase 1: collect all outgoing edges.
        let mut outgoing: Vec<[OutEdge; 4]> = Vec::with_capacity(n);
        for st in self.states.iter() {
            let st = st.as_ref().expect("alive");
            let mut edges: [OutEdge; 4] = [(None, None), (None, None), (None, None), (None, None)];
            for (k, dir) in Dir::ALL.into_iter().enumerate() {
                if let Some(nbr) = st.neighbor(dir) {
                    edges[k] = (Some(st.edge_out(dir)), Some(nbr));
                }
            }
            outgoing.push(edges);
        }
        // Phase 2: deliver halos, logging inter-cluster ones.
        for (r, edges) in outgoing.iter().enumerate() {
            for (k, dir) in Dir::ALL.into_iter().enumerate() {
                let (edge, nbr) = &edges[k];
                let (Some(edge), Some(nbr)) = (edge, nbr) else {
                    continue;
                };
                if self.protocol.must_log(Rank::from(r), Rank::from(*nbr)) {
                    self.logs[r].record(
                        *nbr as u32,
                        dir_tag(dir),
                        self.phase,
                        Bytes::from(encode(edge)),
                    );
                }
                self.states[*nbr]
                    .as_mut()
                    .expect("alive")
                    .set_halo(dir.opposite(), edge);
            }
        }
        // Phase 3: update everyone.
        for st in self.states.iter_mut() {
            st.as_mut().expect("alive").update(&self.params);
        }
        self.phase += 1;
        self.telemetry
            .histogram("drill.step_ns")
            .observe_duration(t0.elapsed());
        self.telemetry
            .counter("drill.log_memory_hwm")
            .max(self.log_memory_bytes());
    }

    /// Run until `target` iterations, checkpointing on the configured
    /// cadence.
    pub fn run_to(&mut self, target: u64) -> Result<(), HcftError> {
        while self.phase < target {
            self.step();
            if self.cfg.checkpoint_every > 0 && self.phase.is_multiple_of(self.cfg.checkpoint_every)
            {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    /// Take a coordinated multi-level (encoded) checkpoint now.
    pub fn checkpoint(&mut self) -> Result<(), HcftError> {
        let t0 = Instant::now();
        for (s, buf) in self.states.iter().zip(self.ckpt_scratch.iter_mut()) {
            s.as_ref().expect("alive").save_state_into(buf);
        }
        for (r, p) in self.ckpt_scratch.iter().enumerate() {
            self.last_ckpt_bytes[r] = p.len() as u64;
        }
        self.epoch += 1;
        self.ckpt
            .checkpoint(self.epoch, self.cfg.level, &self.ckpt_scratch)?;
        self.ckpt_phase = self.phase;
        self.ckpt.store().prune_before(self.epoch)?;
        // All clusters checkpoint together here, so pre-checkpoint log
        // entries can never be replayed again.
        for log in &mut self.logs {
            log.truncate_before(self.ckpt_phase);
        }
        self.telemetry
            .histogram("drill.checkpoint_ns")
            .observe_duration(t0.elapsed());
        self.telemetry.event(
            EventKind::CheckpointComplete,
            self.phase,
            format!("epoch={}", self.epoch),
        );
        Ok(())
    }

    /// Inject the primary failure of a [`FaultScenario`]: advance the
    /// drill to the scenario's phase (checkpointing on the configured
    /// cadence), then kill every node it resolves to. Returns the ranks
    /// now dead; follow with [`LockstepDrill::recover`].
    ///
    /// Mid-recovery injections (cascades, corrupted checkpoints,
    /// failure-during-encoding) need a live world and belong to
    /// [`crate::replay::ReplayEngine`]; scenarios carrying them are
    /// rejected here.
    pub fn inject(&mut self, scenario: &FaultScenario) -> Result<Vec<Rank>, HcftError> {
        if !scenario.injections().is_empty() {
            return Err(HcftError::Config(
                "the lockstep drill injects primary losses only; \
                 run scenarios with injections through the replay engine"
                    .to_string(),
            ));
        }
        if self.phase > scenario.at_phase() {
            return Err(HcftError::Config(format!(
                "drill is at phase {}, past the scenario's phase {}",
                self.phase,
                scenario.at_phase()
            )));
        }
        self.run_to(scenario.at_phase())?;
        let nodes = scenario.failed_nodes(&self.placement, &self.scheme, None)?;
        for &node in &nodes {
            self.kill_node(node)?;
        }
        Ok(self.dead_ranks())
    }

    /// Kill a node: its ranks lose their in-memory state and its on-disk
    /// checkpoint data is destroyed.
    fn kill_node(&mut self, node: NodeId) -> Result<(), HcftError> {
        let mut lost = 0u64;
        for &r in self.placement.ranks_on(node) {
            if self.states[r.idx()].take().is_some() {
                lost += self.last_ckpt_bytes[r.idx()];
            }
        }
        self.ckpt.store().fail_node(node)?;
        self.telemetry
            .counter("drill.lost_checkpoint_bytes")
            .add(lost);
        self.telemetry
            .event(EventKind::NodeFailure, self.phase, format!("node={node}"));
        let dead = self.dead_ranks();
        self.telemetry.event(
            EventKind::DeadRanks,
            self.phase,
            format!("count={} ranks={dead:?}", dead.len()),
        );
        Ok(())
    }

    /// Ranks currently dead.
    pub fn dead_ranks(&self) -> Vec<Rank> {
        (0..self.states.len())
            .filter(|&r| self.states[r].is_none())
            .map(Rank::from)
            .collect()
    }

    /// Recover from all current failures: rebuild checkpoints (RS), roll
    /// back the affected L1 clusters, replay to the current phase with
    /// logged halos. Returns the restarted ranks.
    pub fn recover(&mut self) -> Result<Vec<Rank>, HcftError> {
        let dead = self.dead_ranks();
        if dead.is_empty() {
            return Ok(Vec::new());
        }
        // 1. Rebuild the checkpoint data (this exercises Reed–Solomon).
        let t0 = Instant::now();
        let payloads = self.ckpt.recover(self.epoch)?;
        self.telemetry
            .histogram("drill.rebuild_ns")
            .observe_duration(t0.elapsed());
        self.telemetry.event(
            EventKind::RebuildComplete,
            self.phase,
            format!("epoch={}", self.epoch),
        );
        let t_replay = Instant::now();
        // 2. Roll back the affected L1 clusters.
        let restart = self.protocol.restart_set(&dead);
        let mut restarting = vec![false; self.states.len()];
        for &r in &restart {
            restarting[r.idx()] = true;
            let mut st = RankState::new(&self.params, self.states.len(), r.idx());
            st.restore_state(&payloads[r.idx()])?;
            debug_assert_eq!(st.iteration(), self.ckpt_phase);
            self.states[r.idx()] = Some(st);
        }
        // 3. Replay the cluster to the frontier phase.
        for ph in self.ckpt_phase..self.phase {
            // Collect restart-set edges of this phase.
            let mut outgoing: Vec<(usize, Dir, Vec<f64>, usize)> = Vec::new();
            for &r in &restart {
                let st = self.states[r.idx()].as_ref().expect("restored");
                for dir in Dir::ALL {
                    if let Some(nbr) = st.neighbor(dir) {
                        if restarting[nbr] {
                            outgoing.push((r.idx(), dir, st.edge_out(dir), nbr));
                        }
                        // Edges to survivors are duplicates of messages
                        // they already consumed — suppressed.
                    }
                }
            }
            // Deliver intra-restart edges.
            for (_, dir, edge, nbr) in &outgoing {
                self.states[*nbr]
                    .as_mut()
                    .expect("restored")
                    .set_halo(dir.opposite(), edge);
            }
            // Serve cross-boundary halos from the sender logs.
            for &r in &restart {
                let st = self.states[r.idx()].as_ref().expect("restored");
                let mut needed: Vec<(Dir, usize)> = Vec::new();
                for dir in Dir::ALL {
                    if let Some(nbr) = st.neighbor(dir) {
                        if !restarting[nbr] {
                            needed.push((dir, nbr));
                        }
                    }
                }
                for (dir, nbr) in needed {
                    // The halo we receive on side `dir` travelled in
                    // direction `dir.opposite()` from the neighbour.
                    let entry = self.logs[nbr]
                        .replay_for(r.idx() as u32, ph)
                        .find(|e| e.phase == ph && e.tag == dir_tag(dir.opposite()))
                        .unwrap_or_else(|| {
                            panic!(
                                "protocol violation: no logged halo {nbr}->{} at phase {ph}",
                                r.idx()
                            )
                        });
                    let vals = decode::<f64>(&entry.payload);
                    self.telemetry.counter("msglog.replay_served").inc();
                    self.states[r.idx()]
                        .as_mut()
                        .expect("restored")
                        .set_halo(dir, &vals);
                }
            }
            // Advance the restart set one phase; note replayed
            // cross-cluster sends are NOT re-logged (they are already in
            // the logs).
            for &r in &restart {
                self.states[r.idx()]
                    .as_mut()
                    .expect("restored")
                    .update(&self.params);
            }
        }
        self.telemetry
            .histogram("drill.replay_ns")
            .observe_duration(t_replay.elapsed());
        self.telemetry.event(
            EventKind::ReplayComplete,
            self.phase,
            format!("from={} to={}", self.ckpt_phase, self.phase),
        );
        self.telemetry.event(
            EventKind::RecoveryComplete,
            self.phase,
            format!("restarted={}", restart.len()),
        );
        Ok(restart)
    }

    /// Journal a post-recovery consistency check (bit-identical field,
    /// invariant re-established) as a [`EventKind::Verified`] event.
    pub fn mark_verified(&self, detail: &str) {
        self.telemetry
            .event(EventKind::Verified, self.phase, detail.to_string());
    }

    /// Assemble the global η field (all ranks must be alive).
    pub fn global_eta(&self) -> Vec<f64> {
        let (nx, ny) = (self.params.nx, self.params.ny);
        let mut global = vec![0.0f64; nx * ny];
        for st in self.states.iter() {
            let st = st.as_ref().expect("alive");
            let d = st.decomp();
            let local = st.local_eta();
            for j in 0..d.lny {
                for i in 0..d.lnx {
                    global[(d.y0 + j) * nx + d.x0 + i] = local[j * d.lnx + i];
                }
            }
        }
        global
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcft_cluster::{distributed, hierarchical, HierarchicalConfig};
    use hcft_graph::{CommMatrix, WeightedGraph};

    struct TempDir(PathBuf);
    impl TempDir {
        fn new() -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let p = std::env::temp_dir().join(format!(
                "hcft-drill-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&p).expect("temp dir");
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// 16 nodes × 4 ranks, hierarchical scheme (L1 = 4 nodes).
    fn hierarchical_drill(dir: &TempDir) -> LockstepDrill {
        let placement = Placement::block(16, 4);
        // Chain node graph as the partitioner input.
        let mut m = CommMatrix::new(16);
        for n in 0..15 {
            m.add(n, n + 1, 100);
            m.add(n + 1, n, 100);
        }
        let g = WeightedGraph::from_comm_matrix(&m);
        let cfg = HierarchicalConfig {
            min_nodes_per_l1: 4,
            max_nodes_per_l1: 4,
            l2_group_nodes: 4,
            ..Default::default()
        };
        let scheme = hierarchical(&placement, &g, &cfg);
        LockstepDrill::new(
            placement,
            scheme,
            DrillConfig {
                grid: (32, 32),
                checkpoint_every: 5,
                level: Level::Encoded,
                store_root: dir.0.clone(),
            },
        )
        .expect("drill")
    }

    fn reference_field(drill: &LockstepDrill, iters: u64) -> Vec<f64> {
        let p = TsunamiParams::stable(drill.cfg.grid.0, drill.cfg.grid.1);
        let mut seq = hcft_tsunami::sequential::SequentialSim::new(p);
        seq.run(iters);
        seq.eta
    }

    #[test]
    fn uninterrupted_drill_matches_sequential() {
        let dir = TempDir::new();
        let mut drill = hierarchical_drill(&dir);
        drill.run_to(12).expect("run");
        let reference = reference_field(&drill, 12);
        assert_eq!(drill.global_eta(), reference);
    }

    #[test]
    fn node_failure_recovery_is_bit_identical() {
        let dir = TempDir::new();
        let mut drill = hierarchical_drill(&dir);
        // Checkpoints at 5 and 10 on the way to phase 13.
        let dead = drill
            .inject(&FaultScenario::node_loss(NodeId(5), 13))
            .expect("kill");
        assert_eq!(dead.len(), 4);
        let restarted = drill.recover().expect("recover");
        // Hierarchical: exactly one L1 cluster (4 nodes × 4 ranks).
        assert_eq!(restarted.len(), 16);
        // The recovered global field matches the uninterrupted run.
        assert_eq!(drill.global_eta(), reference_field(&drill, 13));
        // And the run can continue normally.
        drill.run_to(20).expect("continue");
        assert_eq!(drill.global_eta(), reference_field(&drill, 20));
    }

    #[test]
    fn failure_right_after_checkpoint_replays_nothing() {
        let dir = TempDir::new();
        let mut drill = hierarchical_drill(&dir);
        // Checkpoint lands at exactly 10, the failure phase.
        drill
            .inject(&FaultScenario::node_loss(NodeId(0), 10))
            .expect("kill");
        drill.recover().expect("recover");
        assert_eq!(drill.global_eta(), reference_field(&drill, 10));
    }

    #[test]
    fn two_node_failure_same_l1_cluster_recovers() {
        let dir = TempDir::new();
        let mut drill = hierarchical_drill(&dir);
        // Nodes 4 and 5 are in the same L1 cluster (chain partition into
        // consecutive quads) and the same L2 groups — RS(4,4) tolerates
        // two lost nodes.
        drill
            .inject(&FaultScenario::at(8).nodes(&[NodeId(4), NodeId(5)]).build())
            .expect("kill");
        let restarted = drill.recover().expect("recover");
        assert_eq!(restarted.len(), 16, "one L1 cluster restarts");
        assert_eq!(drill.global_eta(), reference_field(&drill, 8));
    }

    #[test]
    fn distributed_scheme_restarts_everything() {
        let dir = TempDir::new();
        let placement = Placement::block(8, 2);
        let scheme = distributed(&placement, 4);
        let mut drill = LockstepDrill::new(
            placement,
            scheme,
            DrillConfig {
                grid: (16, 16),
                checkpoint_every: 4,
                level: Level::Encoded,
                store_root: dir.0.clone(),
            },
        )
        .expect("drill");
        drill
            .inject(&FaultScenario::node_loss(NodeId(3), 6))
            .expect("kill");
        let restarted = drill.recover().expect("recover");
        // Node 3's 2 ranks belong to 2 different distributed clusters of
        // 4, which together span 8 ranks of 16… the paper's restart
        // amplification, live.
        assert_eq!(restarted.len(), 8);
        assert_eq!(drill.global_eta(), reference_field(&drill, 6));
    }

    #[test]
    fn scenario_targeting_an_l1_cluster_kills_all_its_nodes() {
        // Needs L2 groups that stride across L1 clusters: with the
        // hierarchical scheme (L2 inside L1), a whole-cluster kill is
        // catastrophic by construction.
        let dir = TempDir::new();
        let placement = Placement::block(16, 4);
        let mut drill = LockstepDrill::new(
            placement,
            hcft_cluster::striped(&Placement::block(16, 4), 4, 8),
            DrillConfig {
                grid: (32, 32),
                checkpoint_every: 5,
                level: Level::Encoded,
                store_root: dir.0.clone(),
            },
        )
        .expect("drill");
        let dead = drill
            .inject(&FaultScenario::at(13).l1_cluster_of(Rank(20)).build())
            .expect("kill");
        assert_eq!(dead.len(), 16, "whole L1 cluster (4 nodes x 4 ranks)");
        let restarted = drill.recover().expect("recover");
        assert_eq!(restarted.len(), 16);
        assert_eq!(drill.global_eta(), reference_field(&drill, 13));
    }

    #[test]
    fn drill_rejects_scenarios_with_injections_or_past_phases() {
        let dir = TempDir::new();
        let mut drill = hierarchical_drill(&dir);
        let with_injection = FaultScenario::at(5)
            .node(NodeId(0))
            .cascade(NodeId(1), 2)
            .build();
        assert!(matches!(
            drill.inject(&with_injection),
            Err(HcftError::Config(_))
        ));
        drill.run_to(8).expect("run");
        let in_the_past = FaultScenario::node_loss(NodeId(0), 5);
        assert!(matches!(
            drill.inject(&in_the_past),
            Err(HcftError::Config(_))
        ));
    }

    #[test]
    fn scenario_node_loss_kills_and_recovers() {
        let dir = TempDir::new();
        let mut drill = hierarchical_drill(&dir);
        drill.run_to(7).expect("run");
        let dead = drill
            .inject(&FaultScenario::node_loss(NodeId(5), 7))
            .expect("kill");
        assert_eq!(dead.len(), 4);
        assert_eq!(drill.dead_ranks().len(), 4);
        drill.recover().expect("recover");
        assert_eq!(drill.global_eta(), reference_field(&drill, 7));
    }

    #[test]
    fn log_memory_grows_then_truncates_at_checkpoint() {
        let dir = TempDir::new();
        let mut drill = hierarchical_drill(&dir);
        drill.run_to(4).expect("run"); // no checkpoint yet (cadence 5)
        let before = drill.log_memory_bytes();
        assert!(before > 0, "cross-cluster halos must be logged");
        drill.run_to(5).expect("checkpoint");
        assert_eq!(drill.log_memory_bytes(), 0, "log GC after checkpoint");
    }
}
