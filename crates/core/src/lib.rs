//! `hcft-core` — the complete checkpoint-restart framework of the paper.
//!
//! Everything below this crate is a subsystem (runtime, workload, codes,
//! checkpointing, logging, partitioning, reliability); this crate wires
//! them into the two artefacts the evaluation needs:
//!
//! * [`experiment`] — the §V experiment: run the tsunami application with
//!   one FTI encoder rank per node under the traced runtime (FTI-style
//!   init allgather, application stencil, per-checkpoint app→encoder
//!   transfers and encoder↔encoder parity exchange), producing the
//!   communication matrices behind Fig. 5a/5b, plus the strategy
//!   evaluation behind Fig. 3/4 and Table II;
//! * [`drill`] — the end-to-end failure drill: a lockstep execution of
//!   the same solver kernel with hybrid logging + multi-level encoded
//!   checkpoints, where a node is actually killed (its on-disk
//!   checkpoints deleted), its L1 cluster rolls back, lost shards are
//!   Reed–Solomon-rebuilt, cross-cluster halos are replayed from sender
//!   logs — and the recovered global field is bit-identical to an
//!   uninterrupted run;
//! * [`replay`] — the live replay engine: kill an entire L1 cluster (or
//!   PSU group) of a *running* `simmpi` world, restore its ranks from
//!   L2-encoded checkpoints, and re-feed logged inter-cluster messages
//!   until the restored ranks catch up — with cascading failures,
//!   corrupted checkpoints and failures-during-encoding injectable via
//!   the unified [`scenario::FaultScenario`] API.

pub mod campaign;
pub mod drill;
pub mod experiment;
pub mod replay;
pub mod scenario;
pub mod trace_cache;

pub use campaign::{
    simulate_campaign, simulate_campaign_reference, simulate_campaign_stats, CampaignConfig,
    CampaignGrid, CampaignKernel, CampaignOutcome, CampaignStats, CiTarget, GridCell, GridStrategy,
    StopRule, TrialTotals, Welford,
};
pub use drill::{DrillConfig, LockstepDrill};
pub use experiment::{
    evaluate_family_sweep, run_traced_job, EvaluatedSchemes, FamilyScore, SchemeFamilySpec,
    TraceKey, TraceResult, TracedJobConfig, TracedJobConfigBuilder,
};
pub use hcft_telemetry::{Event, EventKind, HcftError, Registry, Snapshot};
pub use replay::{
    Heat3dWorkload, ReplayConfig, ReplayEngine, ReplayOutcome, ReplayWorkload, TsunamiWorkload,
};
pub use scenario::{FaultScenario, FaultScenarioBuilder, FaultTarget, Injection};
