//! The §V experiment driver.
//!
//! Reproduces the paper's instrumented execution: `nodes ×
//! (app_per_node + 1)` MPI ranks, where each node's rank 0 is an FTI
//! encoder process. The traced run contains, exactly as in Fig. 5b:
//!
//! * the init-time `MPI_Allgather` over *all* ranks (power-of-two /
//!   Bruck diagonals),
//! * the tsunami stencil's double diagonal between application
//!   neighbours,
//! * light horizontal rows where application ranks push checkpoint data
//!   to their node's encoder,
//! * isolated encoder↔encoder points from the ring-structured parity
//!   accumulation inside each encoding group of nodes.

use std::sync::Arc;

use hcft_cluster::{
    registry_with, ClusteringScheme, ClusteringStrategy, Distributed, Evaluator, FourDScore,
    Hierarchical, HierarchicalConfig, Naive, SizeGuided, StrategyContext, Striped,
};
use hcft_graph::{CommMatrix, WeightedGraph};
use hcft_simmpi::{Engine, World, WorldConfig};
use hcft_telemetry::HcftError;
use hcft_topology::{JobLayout, Role};
use hcft_tsunami::{TsunamiParams, TsunamiSim};
use rayon::prelude::*;

/// Tag for application→encoder checkpoint pushes (world communicator).
const TAG_CKPT_PUSH: u32 = 0x000C_0001;
/// Tag for encoder↔encoder parity ring steps (encoder communicator).
const TAG_PARITY: u32 = 0x000C_0002;

/// Configuration of a traced job.
#[derive(Clone, Debug)]
pub struct TracedJobConfig {
    /// Compute nodes.
    pub nodes: usize,
    /// Application ranks per node.
    pub app_per_node: usize,
    /// Dedicate one encoder rank per node (FTI layout)?
    pub with_encoders: bool,
    /// Solver iterations.
    pub iterations: u64,
    /// Checkpoint every this many iterations (0: never).
    pub checkpoint_every: u64,
    /// Global solver grid.
    pub grid: (usize, usize),
    /// Explicit process grid for the solver (px, py). `None` picks a
    /// near-square grid. The paper's measured logging-vs-size curve
    /// (25 % at 4, 12.9 % at 8, 3.5 % at 32 — ≈ 1/size) implies a
    /// quasi-1-D decomposition in rank space with east–west halos far
    /// heavier than north–south; `(512, 2)` reproduces it.
    pub process_grid: Option<(usize, usize)>,
    /// Encoding group width in nodes (paper: 4).
    pub encoder_group_nodes: usize,
    /// Also keep the ordered per-sender event log (needed for the
    /// log-memory timeline and determinism analyses; costs memory per
    /// message).
    pub record_events: bool,
    /// Mailbox shards per simulated rank (0 = runtime default). The
    /// pipeline bench pins this to compare the sharded runtime against
    /// the single-shard baseline within one process.
    pub mailbox_shards: usize,
    /// Worker threads for the simmpi task engine (0 = runtime default:
    /// `HCFT_SIMMPI_WORKERS`, else the core count). The scheduler smoke
    /// job pins this to exercise multi-worker interleavings.
    pub workers: usize,
    /// Execution engine for the rank bodies. [`Engine::Auto`] (the
    /// default) picks the task scheduler where supported; the
    /// determinism suite pins [`Engine::Threads`] to prove both engines
    /// trace identical bytes.
    pub engine: Engine,
    /// Work stealing between task-engine workers (`None` = runtime
    /// default: `HCFT_SIMMPI_STEAL`, else off). The determinism suite
    /// and `bench_pipeline`'s `sched_mixed` row pin both settings in one
    /// process, which an env knob alone cannot do.
    pub steal: Option<bool>,
    /// Cooperative preemption budget for the task engine (`None` =
    /// runtime default: `HCFT_SIMMPI_YIELD_BUDGET`, else 0 = never).
    pub yield_budget: Option<u32>,
}

impl TracedJobConfig {
    /// Start building a configuration for `nodes × app_per_node`
    /// application ranks. Unset knobs default to the scaled-down test
    /// shape (anisotropic quasi-1-D process grid, checkpoint every 25
    /// iterations); [`TracedJobConfigBuilder::build`] validates the
    /// combination instead of letting a bad grid panic mid-run.
    pub fn builder(nodes: usize, app_per_node: usize) -> TracedJobConfigBuilder {
        TracedJobConfigBuilder::new(nodes, app_per_node)
    }

    /// The paper's §V configuration: 64 nodes × 16 app ranks + encoders,
    /// 100 iterations, checkpoints every 25 iterations.
    pub fn paper_1024() -> Self {
        Self::builder(64, 16)
            .iterations(100)
            .grid(1024, 4096)
            .process_grid(512, 2)
            .encoder_group_nodes(4)
            .build()
            .expect("paper preset is valid")
    }

    /// A scaled-down configuration for tests: `nodes × app_per_node`
    /// ranks with the same anisotropic (quasi-1-D) decomposition shape as
    /// the paper run.
    pub fn small(nodes: usize, app_per_node: usize) -> Self {
        Self::builder(nodes, app_per_node)
            .build()
            .expect("small preset is valid")
    }

    /// The process grid the solver will use.
    pub fn process_grid(&self) -> (usize, usize) {
        self.process_grid
            .unwrap_or_else(|| hcft_tsunami::decomp::choose_grid(self.nodes * self.app_per_node))
    }

    /// Solver parameters implied by this configuration.
    pub fn tsunami_params(&self) -> TsunamiParams {
        let mut p = TsunamiParams::stable(self.grid.0, self.grid.1);
        p.process_grid = self.process_grid;
        p
    }

    /// The job layout implied by this configuration.
    pub fn layout(&self) -> JobLayout {
        if self.with_encoders {
            JobLayout::with_encoders(self.nodes, self.app_per_node)
        } else {
            JobLayout::app_only(self.nodes, self.app_per_node)
        }
    }

    /// The canonical wire form of the *trace-affecting* configuration —
    /// the serialization the cache key is derived from.
    ///
    /// Exactly the fields that change a single traced byte are included:
    /// machine shape, iteration/checkpoint cadence, solver and process
    /// grids, encoder grouping, event recording. Runtime knobs (mailbox
    /// shards, workers, engine, steal, yield budget) are deliberately
    /// **excluded**: the scheduler-determinism suite proves traces are
    /// byte-identical across all of them, so two configs differing only
    /// in runtime knobs share one cache entry. The `process_grid` is
    /// emitted in resolved form, so `None` and an explicit grid that
    /// happens to match resolve to the same key.
    ///
    /// The format is versioned (`hcft-trace-v1`); any change to the
    /// traced protocol that alters bytes for an unchanged config must
    /// bump it, invalidating every persisted key.
    pub fn to_canonical(&self) -> String {
        let (px, py) = self.process_grid();
        format!(
            "hcft-trace-v1;nodes={};ppn={};enc={};it={};ck={};gx={};gy={};\
             px={px};py={py};eg={};ev={}",
            self.nodes,
            self.app_per_node,
            u8::from(self.with_encoders),
            self.iterations,
            self.checkpoint_every,
            self.grid.0,
            self.grid.1,
            self.encoder_group_nodes,
            u8::from(self.record_events),
        )
    }

    /// Parse a [`Self::to_canonical`] string back into a validated
    /// configuration (runtime knobs at their defaults). Round-trips:
    /// `from_canonical(cfg.to_canonical())` equals `cfg` on every
    /// trace-affecting field.
    pub fn from_canonical(s: &str) -> Result<Self, HcftError> {
        let mut parts = s.split(';');
        if parts.next() != Some("hcft-trace-v1") {
            return Err(HcftError::Config(format!(
                "canonical trace config must start with hcft-trace-v1: {s:?}"
            )));
        }
        let mut get = |want: &str| -> Result<u64, HcftError> {
            let field = parts.next().ok_or_else(|| {
                HcftError::Config(format!(
                    "canonical trace config missing field {want}: {s:?}"
                ))
            })?;
            let (k, v) = field.split_once('=').ok_or_else(|| {
                HcftError::Config(format!("malformed canonical field {field:?} in {s:?}"))
            })?;
            if k != want {
                return Err(HcftError::Config(format!(
                    "canonical field order: expected {want}, got {k} in {s:?}"
                )));
            }
            v.trim().parse().map_err(|_| {
                HcftError::Config(format!("canonical field {want}={v:?} is not an integer"))
            })
        };
        let nodes = get("nodes")? as usize;
        let ppn = get("ppn")? as usize;
        let enc = get("enc")? != 0;
        let it = get("it")?;
        let ck = get("ck")?;
        let gx = get("gx")? as usize;
        let gy = get("gy")? as usize;
        let px = get("px")? as usize;
        let py = get("py")? as usize;
        let eg = get("eg")? as usize;
        let ev = get("ev")? != 0;
        TracedJobConfig::builder(nodes, ppn)
            .with_encoders(enc)
            .iterations(it)
            .checkpoint_every(ck)
            .grid(gx, gy)
            .process_grid(px, py)
            .encoder_group_nodes(eg)
            .record_events(ev)
            .build()
    }

    /// Stable 128-bit content hash of the trace-affecting configuration:
    /// FNV-1a over [`Self::to_canonical`] with two independent bases.
    /// This is the trace-cache key; it is pinned by a test, so it must
    /// never change for an unchanged config (bump the canonical version
    /// instead when the traced protocol changes).
    pub fn content_hash(&self) -> TraceKey {
        let canonical = self.to_canonical();
        let hi = fnv1a(0xcbf2_9ce4_8422_2325, canonical.as_bytes());
        let lo = fnv1a(0x6c62_272e_07bb_0142, canonical.as_bytes());
        TraceKey(((hi as u128) << 64) | lo as u128)
    }
}

/// FNV-1a over `bytes` from an explicit basis (the second basis makes
/// the 128-bit [`TraceKey`] out of two independent 64-bit streams).
fn fnv1a(basis: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(basis, |h, &b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3))
}

/// Trace-cache key: the stable content hash of a [`TracedJobConfig`]'s
/// trace-affecting fields (see [`TracedJobConfig::content_hash`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceKey(pub u128);

impl std::fmt::Display for TraceKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Validating builder for [`TracedJobConfig`].
#[derive(Clone, Debug)]
pub struct TracedJobConfigBuilder {
    cfg: TracedJobConfig,
    explicit_grid: bool,
}

impl TracedJobConfigBuilder {
    fn new(nodes: usize, app_per_node: usize) -> Self {
        let nprocs = nodes * app_per_node;
        let (px, py) = if nprocs >= 4 {
            (nprocs / 2, 2)
        } else {
            (nprocs.max(1), 1)
        };
        TracedJobConfigBuilder {
            cfg: TracedJobConfig {
                nodes,
                app_per_node,
                with_encoders: true,
                iterations: 50,
                checkpoint_every: 25,
                grid: ((2 * px).max(16), (256 * py).max(256)),
                process_grid: Some((px, py)),
                encoder_group_nodes: 4.min(nodes.max(1)),
                record_events: false,
                mailbox_shards: 0,
                workers: 0,
                engine: Engine::Auto,
                steal: None,
                yield_budget: None,
            },
            explicit_grid: false,
        }
    }

    /// Dedicate one encoder rank per node (FTI layout)?
    pub fn with_encoders(mut self, yes: bool) -> Self {
        self.cfg.with_encoders = yes;
        self
    }

    /// Solver iterations.
    pub fn iterations(mut self, n: u64) -> Self {
        self.cfg.iterations = n;
        self
    }

    /// Checkpoint cadence in iterations (0: never).
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.cfg.checkpoint_every = n;
        self
    }

    /// Global solver grid.
    pub fn grid(mut self, nx: usize, ny: usize) -> Self {
        self.cfg.grid = (nx, ny);
        self.explicit_grid = true;
        self
    }

    /// Explicit (px, py) process grid; must tile exactly
    /// `nodes × app_per_node` ranks.
    pub fn process_grid(mut self, px: usize, py: usize) -> Self {
        self.cfg.process_grid = Some((px, py));
        if !self.explicit_grid {
            self.cfg.grid = ((2 * px).max(16), (256 * py).max(256));
        }
        self
    }

    /// Let the runner pick a near-square process grid.
    pub fn auto_process_grid(mut self) -> Self {
        self.cfg.process_grid = None;
        self
    }

    /// Encoding group width in nodes (paper: 4).
    pub fn encoder_group_nodes(mut self, n: usize) -> Self {
        self.cfg.encoder_group_nodes = n;
        self
    }

    /// Keep the ordered per-sender event log.
    pub fn record_events(mut self, yes: bool) -> Self {
        self.cfg.record_events = yes;
        self
    }

    /// Pin the runtime's mailbox shard count (0 = runtime default).
    pub fn mailbox_shards(mut self, shards: usize) -> Self {
        self.cfg.mailbox_shards = shards;
        self
    }

    /// Pin the task-engine worker count (0 = runtime default).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Pin the execution engine (default [`Engine::Auto`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.cfg.engine = engine;
        self
    }

    /// Pin task-engine work stealing on or off (default: runtime env).
    pub fn steal(mut self, steal: bool) -> Self {
        self.cfg.steal = Some(steal);
        self
    }

    /// Pin the task-engine yield budget (default: runtime env).
    pub fn yield_budget(mut self, budget: u32) -> Self {
        self.cfg.yield_budget = Some(budget);
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<TracedJobConfig, HcftError> {
        let c = &self.cfg;
        if c.nodes == 0 || c.app_per_node == 0 {
            return Err(HcftError::Config(format!(
                "job needs at least one node and one rank per node \
                 (got {} nodes x {})",
                c.nodes, c.app_per_node
            )));
        }
        let nprocs = c.nodes * c.app_per_node;
        let (px, py) = c.process_grid();
        if px * py != nprocs {
            return Err(HcftError::Config(format!(
                "process grid {px}x{py} does not tile {nprocs} ranks"
            )));
        }
        if c.grid.0 < px || c.grid.1 < py {
            return Err(HcftError::Config(format!(
                "solver grid {}x{} smaller than process grid {px}x{py}",
                c.grid.0, c.grid.1
            )));
        }
        if c.encoder_group_nodes == 0 || c.encoder_group_nodes > c.nodes {
            return Err(HcftError::Config(format!(
                "encoder group of {} nodes needs 1..={} \
                 (one encoder slot per node)",
                c.encoder_group_nodes, c.nodes
            )));
        }
        Ok(self.cfg)
    }
}

/// Result of a traced run.
pub struct TraceResult {
    /// The job layout (global rank numbering).
    pub layout: JobLayout,
    /// The solver's process grid (px, py) in application-rank space.
    pub process_grid: (usize, usize),
    /// Full byte matrix over all global ranks (Fig. 5a).
    pub full: CommMatrix,
    /// Application-only byte matrix, densely renumbered — the input to
    /// every clustering strategy.
    pub app: CommMatrix,
    /// Ordered per-sender event streams in *application* rank space
    /// (empty unless `record_events` was set; app↔encoder traffic is
    /// dropped since the protocol analyses operate on the application
    /// communicator).
    pub app_events: Vec<Vec<hcft_msglog::MsgEvent>>,
}

impl TraceResult {
    /// Approximate resident size of this trace — the matrices plus the
    /// event streams. Drives the trace cache's `service.cache.bytes`
    /// accounting.
    pub fn approx_bytes(&self) -> u64 {
        let cell = std::mem::size_of::<u64>() as u64;
        let full = (self.full.n() as u64).pow(2) * cell;
        let app = (self.app.n() as u64).pow(2) * cell;
        let events: u64 = self
            .app_events
            .iter()
            .map(|s| (s.len() * std::mem::size_of::<hcft_msglog::MsgEvent>()) as u64)
            .sum();
        full + app + events
    }
}

/// The raw outcome of a traced world run: the layout plus the live
/// trace recorder, before any dense matrix is materialised. At
/// full-TSUBAME2 scale (23 936 ranks) each dense [`CommMatrix`] costs
/// ~4.6 GB, so the scale benches consume the recorder directly; the
/// figure pipeline goes through [`run_traced_job`], which projects the
/// matrices it needs.
pub struct TracedWorld {
    /// The job layout (global rank numbering).
    pub layout: JobLayout,
    /// The solver's process grid (px, py) in application-rank space.
    pub process_grid: (usize, usize),
    /// The shared trace recorder with every traced send.
    pub trace: Arc<hcft_simmpi::TraceRecorder>,
}

/// Run the instrumented job and return the raw trace recorder.
pub fn run_traced_world(cfg: &TracedJobConfig) -> TracedWorld {
    let layout = cfg.layout();
    let total = layout.total_ranks();
    let cfg = Arc::new(cfg.clone());
    let layout_for_ranks = layout.clone();
    let world_cfg = WorldConfig {
        recv_timeout: std::time::Duration::from_secs(300),
        trace_events: cfg.record_events,
        mailbox_shards: cfg.mailbox_shards,
        workers: cfg.workers,
        engine: cfg.engine,
        steal: cfg.steal,
        yield_budget: cfg.yield_budget,
        ..WorldConfig::default()
    };
    let cfg2 = Arc::clone(&cfg);
    let result = World::run_with(total, world_cfg, move |world| {
        let cfg = &*cfg2;
        let layout = &layout_for_ranks;
        let me = hcft_topology::Rank::from(world.rank());
        // FTI initialisation: allgather over every rank in the job.
        let _ = world.allgather(&[world.rank() as u64]);
        let role = layout.role(me);
        // FTI replaces the world communicator: split off the application.
        let color = match role {
            Role::Application => 0,
            Role::Encoder => 1,
        };
        let sub = world
            .split(Some(color), world.rank() as i64)
            .expect("every rank participates");
        match role {
            Role::Application => run_app_rank(world, &sub, layout, cfg),
            Role::Encoder => run_encoder_rank(world, &sub, layout, cfg),
        }
    });
    TracedWorld {
        layout,
        process_grid: cfg.process_grid(),
        trace: result.trace,
    }
}

/// Run the instrumented job and return its communication matrices.
pub fn run_traced_job(cfg: &TracedJobConfig) -> TraceResult {
    let TracedWorld {
        layout,
        process_grid,
        trace,
    } = run_traced_world(cfg);
    let full = trace.byte_matrix();
    let app_ranks = layout.application_ranks();
    let app = full.project(&app_ranks);
    // Translate the raw event streams (global ranks) into application
    // rank space, dropping traffic that touches encoder ranks.
    let app_events = if cfg.record_events {
        trace
            .take_events()
            .into_iter()
            .enumerate()
            .filter_map(|(src, stream)| {
                layout
                    .global_to_app(hcft_topology::Rank::from(src))
                    .map(|app_src| {
                        stream
                            .into_iter()
                            .filter_map(|e| {
                                let dst = layout.global_to_app(hcft_topology::Rank(e.dst))?;
                                Some(hcft_msglog::MsgEvent {
                                    src: app_src as u32,
                                    dst: dst as u32,
                                    bytes: e.bytes,
                                    phase: e.phase,
                                })
                            })
                            .collect::<Vec<_>>()
                    })
            })
            .collect()
    } else {
        Vec::new()
    };
    TraceResult {
        layout,
        process_grid,
        full,
        app,
        app_events,
    }
}

fn run_app_rank(
    world: &hcft_simmpi::Comm,
    app_comm: &hcft_simmpi::Comm,
    layout: &JobLayout,
    cfg: &TracedJobConfig,
) {
    let mut sim = TsunamiSim::new(app_comm, cfg.tsunami_params());
    let my_node = layout.node_of(hcft_topology::Rank::from(world.rank()));
    let encoder_world = my_node.idx() * layout.ranks_per_node();
    for it in 1..=cfg.iterations {
        sim.step();
        if cfg.with_encoders && cfg.checkpoint_every > 0 && it % cfg.checkpoint_every == 0 {
            // FTI writes the checkpoint itself to node-local storage; the
            // MPI traffic to the node's encoder process is only the
            // notification carrying the checkpoint geometry (the light
            // horizontal rows of Fig. 5b). `state_len` knows the payload
            // size without serialising anything.
            let mut note = [0u8; 16];
            note[..8].copy_from_slice(&(sim.state_len() as u64).to_le_bytes());
            note[8..].copy_from_slice(&it.to_le_bytes());
            world.send_bytes(encoder_world, TAG_CKPT_PUSH, &note);
        }
    }
}

fn run_encoder_rank(
    world: &hcft_simmpi::Comm,
    enc_comm: &hcft_simmpi::Comm,
    layout: &JobLayout,
    cfg: &TracedJobConfig,
) {
    if cfg.checkpoint_every == 0 {
        return;
    }
    let rounds = cfg.iterations / cfg.checkpoint_every;
    let my_node = enc_comm.rank(); // encoder i ↔ node i by split key order
    let group = cfg.encoder_group_nodes.max(1);
    let group_start = (my_node / group) * group;
    let group_end = (group_start + group).min(cfg.nodes);
    // World ranks of this node's application processes.
    let app_world: Vec<usize> = (0..cfg.app_per_node)
        .map(|l| my_node * layout.ranks_per_node() + 1 + l)
        .collect();
    for round in 0..rounds {
        // Collect the checkpoint notifications from this node's ranks;
        // the checkpoint payloads themselves went to local storage.
        let mut node_bytes = 0u64;
        for &a in &app_world {
            let note = world.recv_bytes(a, TAG_CKPT_PUSH);
            node_bytes += u64::from_le_bytes(note[..8].try_into().expect("note"));
            world.recycle(note);
        }
        // Distributed Reed–Solomon parity accumulation over one encoding
        // block per round: ring-pass around the group,
        // multiply-accumulating in GF(256). FTI encodes the (large)
        // checkpoint in bounded blocks, so the on-wire traffic is the
        // block size, not the checkpoint size — the isolated light
        // points of Fig. 5b.
        let peers: Vec<usize> = (group_start..group_end).collect();
        if peers.len() < 2 {
            continue;
        }
        let pos = my_node - group_start;
        let next = peers[(pos + 1) % peers.len()];
        let prev = peers[(pos + peers.len() - 1) % peers.len()];
        let block = (node_bytes as usize / 64).clamp(1024, 1 << 20);
        let mut parity: Vec<u8> = (0..block)
            .map(|b| ((my_node * 131 + b * 7 + round as usize) % 251) as u8)
            .collect();
        // Ring pass, zero-copy: the first step ships the local seed, every
        // later step forwards the buffer received on the previous one (a
        // refcount move, no copy), and the last received buffer goes back
        // to the runtime pool.
        let mut travelling = None;
        for step in 0..peers.len() - 1 {
            let tag = TAG_PARITY + step as u32;
            match travelling.take() {
                None => enc_comm.send_bytes(next, tag, &parity),
                Some(b) => enc_comm.send_shared(next, tag, b),
            }
            let got = enc_comm.recv_bytes(prev, tag);
            // One preemption point per erasure stripe: encoder ranks are
            // the fast half of mixed workloads, and yielding here keeps
            // them from starving co-located app ranks (and vice versa).
            hcft_simmpi::maybe_yield();
            // Accumulate with a non-trivial coefficient, as RS would.
            hcft_erasure::gf256::mul_acc(&mut parity, &got, (step + 2) as u8);
            travelling = Some(got);
        }
        if let Some(b) = travelling {
            enc_comm.recycle(b);
        }
        std::hint::black_box(&parity);
    }
}

/// The four §III/§IV schemes evaluated on one trace.
pub struct EvaluatedSchemes {
    /// The schemes in paper order (naïve, size-guided, distributed,
    /// hierarchical).
    pub schemes: Vec<ClusteringScheme>,
    /// Their Table-II rows, same order.
    pub scores: Vec<FourDScore>,
}

/// Build the four paper schemes for a trace and score them.
///
/// Sizes follow Table II: naïve 32, size-guided 8, distributed 16,
/// hierarchical (min 4 nodes per L1, L2 groups of 4 nodes).
pub fn evaluate_paper_schemes(trace: &TraceResult) -> EvaluatedSchemes {
    evaluate_schemes(trace, 32, 8, 16, &HierarchicalConfig::default())
}

/// Build and score the paper schemes with explicit sizes, iterating the
/// [`hcft_cluster::ClusteringStrategy`] registry.
pub fn evaluate_schemes(
    trace: &TraceResult,
    naive_size: usize,
    size_guided_size: usize,
    distributed_size: usize,
    hier_cfg: &HierarchicalConfig,
) -> EvaluatedSchemes {
    let placement = trace.layout.app_placement();
    let node_matrix = trace.app.aggregate_by_node(&placement);
    let node_graph = WeightedGraph::from_comm_matrix(&node_matrix);
    let ctx = StrategyContext {
        placement: &placement,
        node_graph: &node_graph,
    };
    let schemes: Vec<ClusteringScheme> = registry_with(
        naive_size,
        size_guided_size,
        distributed_size,
        hier_cfg.clone(),
    )
    .iter()
    .map(|s| {
        s.build(&ctx)
            .unwrap_or_else(|e| panic!("strategy {} rejected this trace: {e}", s.name()))
    })
    .collect();
    let evaluator = Evaluator::new(trace.app.clone(), placement);
    // The four-dimension scoring (p_catastrophic in particular) dominates
    // the sweep cost; schemes are independent, so score them in parallel.
    // The ordered collect keeps scores in paper order.
    let scores = schemes.par_iter().map(|s| evaluator.evaluate(s)).collect();
    EvaluatedSchemes { schemes, scores }
}

/// A grid of strategy-family configurations for one comparison request:
/// every entry expands to one [`ClusteringStrategy`] and one scored row.
/// Construction order is the evaluation (and response) order, so a spec
/// is deterministic by value, independent of thread count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchemeFamilySpec {
    /// §III-A naïve cluster sizes (ranks).
    pub naive_sizes: Vec<usize>,
    /// §III-B size-guided cluster sizes (ranks).
    pub size_guided_sizes: Vec<usize>,
    /// §III-C distributed stripe sizes (nodes).
    pub distributed_sizes: Vec<usize>,
    /// Striped (L1 node-block, L2 group-size-in-ranks) combinations.
    pub striped: Vec<(usize, usize)>,
    /// §IV-B hierarchical L1/L2 bound grids.
    pub hierarchical: Vec<HierarchicalConfig>,
}

impl SchemeFamilySpec {
    /// The Table II comparison: the four paper schemes at their classic
    /// sizes (clamped to the machine) plus one striped entrant where the
    /// layout divides evenly.
    pub fn table2(nodes: usize, ppn: usize) -> Self {
        let nprocs = nodes * ppn;
        // The paper's §IV-B sizing, clamped so the partitioner stays
        // valid on machines smaller than one default L1 cluster.
        let min_l1 = 4.min(nodes).max(1);
        let hier = HierarchicalConfig {
            min_nodes_per_l1: min_l1,
            max_nodes_per_l1: 8.min(nodes).max(min_l1),
            l2_group_nodes: 4.min(min_l1),
            ..HierarchicalConfig::default()
        };
        let mut spec = SchemeFamilySpec {
            naive_sizes: vec![32.min(nprocs)],
            size_guided_sizes: vec![8.min(nprocs)],
            distributed_sizes: if nodes >= 2 {
                vec![16.clamp(2, nodes)]
            } else {
                Vec::new()
            },
            striped: Vec::new(),
            hierarchical: vec![hier],
        };
        if nodes.is_multiple_of(4) && ppn >= 2 {
            spec.striped.push((4, ppn));
        }
        spec
    }

    /// The full family grid for a `nodes × ppn` machine: cluster-size
    /// sweeps per flat family, striped L1×L2 combinations and
    /// hierarchical L1-bound / L2-group grids — every combination valid
    /// for the layout, in a fixed deterministic order.
    pub fn for_layout(nodes: usize, ppn: usize) -> Self {
        let nprocs = nodes * ppn;
        let mut naive_sizes: Vec<usize> = [ppn, 2 * ppn, 4 * ppn]
            .into_iter()
            .filter(|&s| s >= 1 && s <= nprocs)
            .collect();
        naive_sizes.dedup();
        let mut size_guided_sizes: Vec<usize> = [ppn.div_ceil(2), ppn, 2 * ppn]
            .into_iter()
            .filter(|&s| s >= 1 && s <= nprocs)
            .collect();
        size_guided_sizes.dedup();
        let distributed_sizes: Vec<usize> = [4usize, 8, 16]
            .into_iter()
            .filter(|&s| s >= 2 && s <= nodes)
            .collect();
        let mut striped = Vec::new();
        for l1 in [2usize, 4] {
            if l1 > nodes || !nodes.is_multiple_of(l1) {
                continue;
            }
            for l2 in [ppn, 2 * ppn] {
                if l2 >= 2 && l2 <= nprocs && nprocs.is_multiple_of(l2) {
                    striped.push((l1, l2));
                }
            }
        }
        striped.dedup();
        let hierarchical: Vec<HierarchicalConfig> =
            [(4usize, 8usize, 4usize), (4, 8, 2), (4, 4, 4), (8, 16, 4)]
                .into_iter()
                .filter(|&(min, _, l2g)| nodes >= min && min >= l2g)
                .map(|(min, max, l2g)| HierarchicalConfig {
                    min_nodes_per_l1: min,
                    max_nodes_per_l1: max,
                    l2_group_nodes: l2g,
                    ..HierarchicalConfig::default()
                })
                .collect();
        SchemeFamilySpec {
            naive_sizes,
            size_guided_sizes,
            distributed_sizes,
            striped,
            hierarchical,
        }
    }

    /// Expand into `(family, strategy)` pairs in spec order.
    pub fn strategies(&self) -> Vec<(&'static str, Box<dyn ClusteringStrategy + Send + Sync>)> {
        let mut out: Vec<(&'static str, Box<dyn ClusteringStrategy + Send + Sync>)> = Vec::new();
        for &size in &self.naive_sizes {
            out.push(("naive", Box::new(Naive { size })));
        }
        for &size in &self.size_guided_sizes {
            out.push(("size-guided", Box::new(SizeGuided { size })));
        }
        for &size in &self.distributed_sizes {
            out.push(("distributed", Box::new(Distributed { size })));
        }
        for &(l1_nodes, l2_size) in &self.striped {
            out.push(("striped", Box::new(Striped { l1_nodes, l2_size })));
        }
        for cfg in &self.hierarchical {
            out.push(("hierarchical", Box::new(Hierarchical { cfg: cfg.clone() })));
        }
        out
    }

    /// Total strategy count of the expanded spec.
    pub fn len(&self) -> usize {
        self.naive_sizes.len()
            + self.size_guided_sizes.len()
            + self.distributed_sizes.len()
            + self.striped.len()
            + self.hierarchical.len()
    }

    /// Is the spec empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One scored row of a family sweep.
#[derive(Clone, Debug)]
pub struct FamilyScore {
    /// Strategy family the row came from (`naive`, `striped`, …).
    pub family: &'static str,
    /// The four-dimension score (carries the sized scheme name).
    pub score: FourDScore,
}

/// Score every strategy of `spec` on one trace, fanning the evaluation
/// over rayon with an order-preserving fold: the result order is the
/// spec's construction order and the rows are byte-identical at any
/// thread count. An invalid entry (a size the layout cannot host) fails
/// the whole sweep with the strategy's validation error — specs built
/// by [`SchemeFamilySpec::for_layout`] are valid by construction.
pub fn evaluate_family_sweep(
    trace: &TraceResult,
    spec: &SchemeFamilySpec,
) -> Result<Vec<FamilyScore>, HcftError> {
    let placement = trace.layout.app_placement();
    let node_matrix = trace.app.aggregate_by_node(&placement);
    let node_graph = WeightedGraph::from_comm_matrix(&node_matrix);
    let ctx = StrategyContext {
        placement: &placement,
        node_graph: &node_graph,
    };
    // Building is cheap and sequential (the hierarchical partitioner is
    // milliseconds at paper scale); scoring dominates and parallelises.
    let mut families = Vec::with_capacity(spec.len());
    let mut schemes = Vec::with_capacity(spec.len());
    for (family, strategy) in spec.strategies() {
        families.push(family);
        schemes.push(strategy.build(&ctx)?);
    }
    let evaluator = Evaluator::new(trace.app.clone(), placement);
    let scores: Vec<FourDScore> = schemes.par_iter().map(|s| evaluator.evaluate(s)).collect();
    Ok(families
        .into_iter()
        .zip(scores)
        .map(|(family, score)| FamilyScore { family, score })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> TraceResult {
        run_traced_job(&TracedJobConfig::small(8, 4))
    }

    #[test]
    fn traced_job_produces_expected_patterns() {
        let t = small_trace();
        assert_eq!(t.full.n(), 8 * 5);
        assert_eq!(t.app.n(), 32);
        // The app matrix is dominated by stencil neighbour traffic.
        assert!(t.app.total_bytes() > 0);
        // Encoder ranks received checkpoint pushes: global rank 0 is an
        // encoder; its node's app ranks are 1..=4.
        assert!(t.full.get(1, 0) > 0, "app 1 -> encoder 0 checkpoint push");
        // Encoders talked to each other (parity ring within group of 4:
        // encoder of node 0 and node 1 are ranks 0 and 5).
        assert!(t.full.get(0, 5) > 0, "encoder ring traffic");
    }

    #[test]
    fn app_matrix_has_stencil_diagonals() {
        let t = small_trace();
        let px = t.process_grid.0;
        let mut diag = 0u64;
        let mut other = 0u64;
        for (s, d, b) in t.app.entries() {
            let dist = s.abs_diff(d);
            if dist == 1 || dist == px {
                diag += b;
            } else {
                other += b;
            }
        }
        assert!(
            diag > other,
            "stencil diagonals must dominate: {diag} vs {other}"
        );
    }

    #[test]
    fn evaluation_reproduces_paper_shape() {
        let t = run_traced_job(&TracedJobConfig {
            nodes: 16,
            app_per_node: 4,
            with_encoders: true,
            iterations: 20,
            checkpoint_every: 10,
            grid: (32, 32),
            process_grid: None,
            encoder_group_nodes: 4,
            record_events: false,
            mailbox_shards: 0,
            workers: 0,
            engine: Engine::Auto,
            steal: None,
            yield_budget: None,
        });
        let hier_cfg = HierarchicalConfig {
            min_nodes_per_l1: 4,
            max_nodes_per_l1: 4,
            l2_group_nodes: 4,
            ..Default::default()
        };
        let ev = evaluate_schemes(&t, 8, 4, 16, &hier_cfg);
        let [nv, sg, ds, hi]: &[FourDScore; 4] =
            ev.scores.as_slice().try_into().expect("four schemes");
        // Paper shape (Table II orderings; absolutes differ at this toy
        // scale where the init allgather is a visible byte fraction):
        // hierarchical logs the least of all schemes.
        assert!(hi.logging_fraction < nv.logging_fraction);
        assert!(hi.logging_fraction < sg.logging_fraction);
        assert!(hi.logging_fraction < ds.logging_fraction);
        // Hierarchical reliability beats the consecutive schemes by
        // orders of magnitude; fully distributed is better still.
        assert!(hi.p_catastrophic < nv.p_catastrophic / 10.0);
        assert!(hi.p_catastrophic < sg.p_catastrophic / 1000.0);
        assert!(ds.p_catastrophic < hi.p_catastrophic);
        // Encoding time follows L2 size: hierarchical L2 = 4 ≪ naive 8.
        assert!(hi.encode_s_per_gb < nv.encode_s_per_gb);
        // Distributed restart cost explodes: diagonal clusters of 16 make
        // a single node failure roll back the whole machine.
        assert!(ds.restart_fraction > 0.9);
        assert!(ds.restart_fraction > 3.0 * hi.restart_fraction);
    }
}

#[cfg(test)]
mod builder_tests {
    use super::*;

    #[test]
    fn presets_round_trip_through_the_builder() {
        let p = TracedJobConfig::paper_1024();
        assert_eq!(p.nodes, 64);
        assert_eq!(p.process_grid, Some((512, 2)));
        assert_eq!(p.grid, (1024, 4096));
        let s = TracedJobConfig::small(8, 4);
        assert_eq!(s.process_grid, Some((16, 2)));
        assert_eq!(s.encoder_group_nodes, 4);
    }

    #[test]
    fn mismatched_process_grid_is_rejected() {
        let err = TracedJobConfig::builder(8, 4)
            .process_grid(7, 3)
            .build()
            .unwrap_err();
        assert!(matches!(err, HcftError::Config(_)), "{err}");
    }

    #[test]
    fn solver_grid_must_cover_the_process_grid() {
        let err = TracedJobConfig::builder(8, 4)
            .grid(8, 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, HcftError::Config(_)), "{err}");
    }

    #[test]
    fn encoder_group_must_fit_the_node_count() {
        let err = TracedJobConfig::builder(4, 2)
            .encoder_group_nodes(9)
            .build()
            .unwrap_err();
        assert!(matches!(err, HcftError::Config(_)), "{err}");
        assert!(TracedJobConfig::builder(4, 2)
            .encoder_group_nodes(4)
            .build()
            .is_ok());
    }

    #[test]
    fn zero_sized_jobs_are_rejected() {
        assert!(TracedJobConfig::builder(0, 4).build().is_err());
        assert!(TracedJobConfig::builder(4, 0).build().is_err());
    }
}

#[cfg(test)]
mod event_tests {
    use super::*;

    #[test]
    fn recorded_events_match_the_app_matrix() {
        let mut cfg = TracedJobConfig::small(8, 4);
        cfg.record_events = true;
        let t = run_traced_job(&cfg);
        assert_eq!(t.app_events.len(), t.app.n());
        // Rebuild the byte matrix from the event streams; it must equal
        // the app matrix exactly (events and matrix see the same sends).
        let mut rebuilt = hcft_graph::CommMatrix::new(t.app.n());
        for stream in &t.app_events {
            for ev in stream {
                rebuilt.add(ev.src as usize, ev.dst as usize, ev.bytes);
            }
        }
        assert_eq!(rebuilt, t.app);
        // Phases are monotone per sender (send order).
        for stream in &t.app_events {
            for w in stream.windows(2) {
                assert!(w[0].phase <= w[1].phase);
            }
        }
    }

    #[test]
    fn events_are_empty_unless_requested() {
        let t = run_traced_job(&TracedJobConfig::small(4, 2));
        assert!(t.app_events.is_empty());
    }
}
