//! The traced-matrix cache behind the always-on evaluation service.
//!
//! Tracing the communication matrix is by far the most expensive input
//! to a scheme comparison (~2.3 s at paper scale even on the M:N
//! scheduler, vs ~0.1 s for the whole scoring sweep), and it is a pure
//! function of the trace-affecting [`TracedJobConfig`] fields — the
//! scheduler-determinism suite proves the bytes identical across
//! engines, worker counts, stealing and preemption. So the service
//! caches [`TraceResult`]s behind `Arc`, keyed by the stable
//! [`TracedJobConfig::content_hash`]:
//!
//! * a **hit** returns the shared `Arc` without running
//!   [`run_traced_job`] at all;
//! * a **miss** runs the trace exactly once even under a concurrent
//!   stampede of identical requests (single-flight: the first caller
//!   computes, later callers park on the in-flight entry and share the
//!   result);
//! * entries are bounded by a strict **LRU** policy over completed
//!   entries — eviction order is a deterministic function of the access
//!   sequence, never of timing;
//! * `service.cache.{hits,misses,evictions}` counters, a
//!   `service.cache.bytes` gauge and a `service.cache.entries` gauge
//!   track behavior through the process-global telemetry registry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hcft_telemetry::{Counter, Registry};
use parking_lot::{Condvar, Mutex};

use crate::experiment::{run_traced_job, TraceKey, TraceResult, TracedJobConfig};

/// A single-flight slot: the first missing caller publishes the result
/// here; stampeding callers wait on the condvar.
struct Flight {
    done: Mutex<Option<Arc<TraceResult>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, result: Arc<TraceResult>) {
        *self.done.lock() = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Arc<TraceResult> {
        let mut done = self.done.lock();
        while done.is_none() {
            self.cv.wait(&mut done);
        }
        Arc::clone(done.as_ref().expect("published above"))
    }
}

enum Slot {
    /// Trace computed and resident.
    Ready(Arc<TraceResult>),
    /// Trace being computed by the first caller; join it, don't re-run.
    Building(Arc<Flight>),
}

struct Entry {
    key: TraceKey,
    slot: Slot,
    /// Logical access stamp for LRU (monotone per cache operation, so
    /// eviction order depends only on the access sequence).
    last_used: u64,
}

struct Inner {
    entries: Vec<Entry>,
    tick: u64,
}

/// LRU + single-flight cache of traced runs keyed by
/// [`TracedJobConfig::content_hash`]. Cheap to share: wrap in an `Arc`
/// (the service does) or hold per subsystem.
pub struct TraceCache {
    max_entries: usize,
    inner: Mutex<Inner>,
    // Per-instance counts (what `stats` reports) mirrored into the
    // process-global `service.cache.*` telemetry counters, which several
    // caches may share.
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    hits_telemetry: Arc<Counter>,
    misses_telemetry: Arc<Counter>,
    evictions_telemetry: Arc<Counter>,
}

impl TraceCache {
    /// A cache retaining at most `max_entries` completed traces
    /// (minimum 1). Telemetry lands in the process-global registry under
    /// `service.cache.*`.
    pub fn new(max_entries: usize) -> Self {
        let reg = Registry::global();
        TraceCache {
            max_entries: max_entries.max(1),
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            hits_telemetry: reg.counter("service.cache.hits"),
            misses_telemetry: reg.counter("service.cache.misses"),
            evictions_telemetry: reg.counter("service.cache.evictions"),
        }
    }

    fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.hits_telemetry.inc();
    }

    fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.misses_telemetry.inc();
    }

    fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        self.evictions_telemetry.inc();
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.max_entries
    }

    /// Completed entries currently resident.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .entries
            .iter()
            .filter(|e| matches!(e.slot, Slot::Ready(_)))
            .count()
    }

    /// Is the cache empty of completed entries?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident bytes across completed entries (what the
    /// `service.cache.bytes` gauge reports).
    pub fn resident_bytes(&self) -> u64 {
        self.inner
            .lock()
            .entries
            .iter()
            .filter_map(|e| match &e.slot {
                Slot::Ready(t) => Some(t.approx_bytes()),
                Slot::Building(_) => None,
            })
            .sum()
    }

    /// The trace for `cfg`: served from cache when resident, joined to
    /// an in-flight computation when one exists, computed (exactly once)
    /// otherwise. A hit — shared or resident — never calls
    /// [`run_traced_job`].
    pub fn get_or_trace(&self, cfg: &TracedJobConfig) -> Arc<TraceResult> {
        let key = cfg.content_hash();
        let flight;
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(e) = inner.entries.iter_mut().find(|e| e.key == key) {
                e.last_used = tick;
                match &e.slot {
                    Slot::Ready(t) => {
                        self.record_hit();
                        return Arc::clone(t);
                    }
                    Slot::Building(f) => {
                        // Single-flight join: someone is tracing this very
                        // config right now. Counted as a hit — the trace
                        // runs once either way.
                        self.record_hit();
                        let f = Arc::clone(f);
                        drop(inner);
                        return f.wait();
                    }
                }
            }
            self.record_miss();
            flight = Arc::new(Flight::new());
            inner.entries.push(Entry {
                key,
                slot: Slot::Building(Arc::clone(&flight)),
                last_used: tick,
            });
        }
        // Trace outside the lock: concurrent requests for *other* keys
        // proceed, identical ones join the flight above.
        let result = Arc::new(run_traced_job(cfg));
        {
            let mut inner = self.inner.lock();
            let e = inner
                .entries
                .iter_mut()
                .find(|e| e.key == key)
                .expect("building entry cannot be evicted");
            e.slot = Slot::Ready(Arc::clone(&result));
            self.evict_over_bound(&mut inner);
            self.publish_gauges(&inner);
        }
        flight.publish(Arc::clone(&result));
        result
    }

    /// Evict least-recently-used *completed* entries until the bound
    /// holds. In-flight entries are never evicted (their computation is
    /// the expensive thing the cache exists to share); they count
    /// against the bound once completed.
    fn evict_over_bound(&self, inner: &mut Inner) {
        loop {
            let ready = inner
                .entries
                .iter()
                .filter(|e| matches!(e.slot, Slot::Ready(_)))
                .count();
            if ready <= self.max_entries {
                return;
            }
            let victim = inner
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e.slot, Slot::Ready(_)))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("ready > bound >= 1");
            inner.entries.remove(victim);
            self.record_eviction();
        }
    }

    fn publish_gauges(&self, inner: &Inner) {
        let reg = Registry::global();
        let mut bytes = 0u64;
        let mut entries = 0u64;
        for e in &inner.entries {
            if let Slot::Ready(t) = &e.slot {
                bytes += t.approx_bytes();
                entries += 1;
            }
        }
        reg.gauge("service.cache.bytes").set(bytes as f64);
        reg.gauge("service.cache.entries").set(entries as f64);
    }

    /// Counter snapshot `(hits, misses, evictions)` for *this* cache
    /// instance. The `service.cache.*` telemetry counters carry the same
    /// increments but are process-global (shared across caches).
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_same_arc() {
        let cache = TraceCache::new(4);
        let cfg = TracedJobConfig::small(2, 2);
        let (h0, m0, _) = cache.stats();
        let a = cache.get_or_trace(&cfg);
        let b = cache.get_or_trace(&cfg);
        assert!(Arc::ptr_eq(&a, &b), "hit must share the traced result");
        let (h1, m1, _) = cache.stats();
        assert_eq!(m1 - m0, 1, "one miss");
        assert_eq!(h1 - h0, 1, "one hit");
        assert_eq!(cache.len(), 1);
        assert!(cache.resident_bytes() > 0);
    }

    #[test]
    fn lru_eviction_is_by_access_order() {
        let cache = TraceCache::new(2);
        // Same cheap machine shape, distinct keys via iteration count.
        let c1 = TracedJobConfig::small(2, 2);
        let c2 = TracedJobConfig::builder(2, 2)
            .iterations(7)
            .build()
            .expect("valid");
        let c3 = TracedJobConfig::builder(2, 2)
            .iterations(9)
            .build()
            .expect("valid");
        let t1 = cache.get_or_trace(&c1);
        let _t2 = cache.get_or_trace(&c2);
        // Touch c1 so c2 becomes the LRU victim.
        let t1b = cache.get_or_trace(&c1);
        assert!(Arc::ptr_eq(&t1, &t1b));
        let (_, _, ev0) = cache.stats();
        let _t3 = cache.get_or_trace(&c3);
        let (_, m_after_insert, ev1) = cache.stats();
        assert_eq!(ev1 - ev0, 1, "third entry evicts exactly one");
        assert_eq!(cache.len(), 2);
        // c1 must still be resident (recently used), c2 evicted.
        let t1c = cache.get_or_trace(&c1);
        assert!(Arc::ptr_eq(&t1, &t1c), "recently-used entry survived");
        let (_, m_after_c1, _) = cache.stats();
        assert_eq!(m_after_c1, m_after_insert, "c1 re-request was a hit");
        cache.get_or_trace(&c2);
        let (_, m_after_c2, _) = cache.stats();
        assert_eq!(m_after_c2, m_after_c1 + 1, "LRU victim c2 was re-traced");
    }
}
