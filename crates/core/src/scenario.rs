//! `FaultScenario` — one description of "what fails, when, and how it is
//! correlated", consumed by every fault-injection entry point.
//!
//! Before this type existed, each layer had its own ad-hoc surface: the
//! lockstep drill took a bare `NodeId`, the Monte-Carlo campaign sampled
//! `Vec<NodeId>` internally, and the replay engine did not exist. A
//! scenario unifies them: build one with [`FaultScenario::at`], aim it at
//! a node, a whole L1 cluster, or a PSU group ([`FaultTarget`]), attach
//! mid-recovery injections ([`Injection`]), and hand the same value to
//! [`crate::drill::LockstepDrill::inject`], the
//! [`crate::replay::ReplayEngine`], or campaign-style analysis.
//!
//! Targets are *symbolic* until [`FaultScenario::failed_nodes`] resolves
//! them against a concrete placement + clustering (+ machine, for PSU
//! correlation), so one scenario is reusable across schemes and scales.

use hcft_cluster::ClusteringScheme;
use hcft_telemetry::HcftError;
use hcft_topology::{MachineSpec, NodeId, Placement, Rank};

/// What fails. Symbolic — resolved against a placement/scheme at use time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// A single compute node.
    Node(NodeId),
    /// Every node hosting a member of L1 cluster `index` — the paper's
    /// "kill a whole cluster" experiment.
    L1Cluster(usize),
    /// Every node hosting a member of the L1 cluster containing `rank`.
    L1ClusterOf(Rank),
    /// All nodes sharing a power supply with `node` — the correlated
    /// failure mode of §II (requires a [`MachineSpec`] at resolve time).
    PsuGroupOf(NodeId),
}

/// A secondary fault injected on top of the primary loss.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Injection {
    /// `node` also fails after the recovery has replayed `after_steps`
    /// iterations — a cascading failure mid-recovery. Recovery must
    /// enlarge the failed set and start over.
    CascadeAfter {
        /// The additional node that fails.
        node: NodeId,
        /// Replayed iterations before the cascade strikes.
        after_steps: u64,
    },
    /// `node`'s local checkpoint shards are silently corrupted (valid
    /// frame, wrong payload length) before recovery reads them. Detected
    /// only when `restore_state` rejects the payload with
    /// [`HcftError::Recovery`]; recovery quarantines the shard and
    /// rebuilds it from group redundancy.
    CorruptCheckpoint {
        /// The surviving node whose shards are corrupted.
        node: NodeId,
    },
    /// The primary failure strikes *during* L2 encoding of the checkpoint
    /// taken at the failure phase: locals are written, but the failed
    /// node's groups never finish their parity, so that epoch is
    /// incomplete and recovery must fall back to the previous one (with
    /// correspondingly longer log replay).
    FailDuringEncoding,
}

/// A complete fault scenario: primary targets, timing, and injections.
///
/// Build with [`FaultScenario::at`]:
///
/// ```
/// use hcft_core::scenario::FaultScenario;
/// use hcft_topology::{NodeId, Rank};
///
/// let scenario = FaultScenario::at(9)
///     .l1_cluster_of(Rank(12))
///     .cascade(NodeId(0), 2)
///     .build();
/// assert_eq!(scenario.at_phase(), 9);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FaultScenario {
    at_phase: u64,
    targets: Vec<FaultTarget>,
    injections: Vec<Injection>,
}

impl FaultScenario {
    /// Start building a scenario whose primary failure strikes when the
    /// application reaches iteration `phase`.
    pub fn at(phase: u64) -> FaultScenarioBuilder {
        FaultScenarioBuilder {
            s: FaultScenario {
                at_phase: phase,
                targets: Vec::new(),
                injections: Vec::new(),
            },
        }
    }

    /// Shorthand: a single node lost at `phase`, no injections.
    pub fn node_loss(node: NodeId, phase: u64) -> Self {
        Self::at(phase).node(node).build()
    }

    /// Shorthand: several nodes lost simultaneously at `phase`.
    pub fn nodes_loss(nodes: &[NodeId], phase: u64) -> Self {
        let mut b = Self::at(phase);
        for &n in nodes {
            b = b.node(n);
        }
        b.build()
    }

    /// Iteration at which the primary failure strikes.
    pub fn at_phase(&self) -> u64 {
        self.at_phase
    }

    /// The symbolic targets.
    pub fn targets(&self) -> &[FaultTarget] {
        &self.targets
    }

    /// The attached injections.
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// Is a [`Injection::FailDuringEncoding`] attached?
    pub fn fails_during_encoding(&self) -> bool {
        self.injections
            .iter()
            .any(|i| matches!(i, Injection::FailDuringEncoding))
    }

    /// Resolve the primary targets to concrete failed nodes, in
    /// first-appearance order without duplicates.
    ///
    /// `machine` is only consulted for [`FaultTarget::PsuGroupOf`];
    /// resolving a PSU target without one is a configuration error.
    pub fn failed_nodes(
        &self,
        placement: &Placement,
        scheme: &ClusteringScheme,
        machine: Option<&MachineSpec>,
    ) -> Result<Vec<NodeId>, HcftError> {
        if self.targets.is_empty() {
            return Err(HcftError::Config(
                "fault scenario has no targets".to_string(),
            ));
        }
        let mut nodes: Vec<NodeId> = Vec::new();
        let push = |n: NodeId, nodes: &mut Vec<NodeId>| -> Result<(), HcftError> {
            if n.idx() >= placement.nodes() {
                return Err(HcftError::Config(format!(
                    "fault target node {} outside placement ({} nodes)",
                    n.idx(),
                    placement.nodes()
                )));
            }
            if !nodes.contains(&n) {
                nodes.push(n);
            }
            Ok(())
        };
        for t in &self.targets {
            match t {
                FaultTarget::Node(n) => push(*n, &mut nodes)?,
                FaultTarget::L1Cluster(c) => {
                    if *c >= scheme.l1.len() {
                        return Err(HcftError::Config(format!(
                            "fault target L1 cluster {c} out of range ({} clusters)",
                            scheme.l1.len()
                        )));
                    }
                    for n in scheme.nodes_of_l1(placement, *c) {
                        push(n, &mut nodes)?;
                    }
                }
                FaultTarget::L1ClusterOf(r) => {
                    if r.idx() >= placement.nprocs() {
                        return Err(HcftError::Config(format!(
                            "fault target rank {} outside world ({} ranks)",
                            r.idx(),
                            placement.nprocs()
                        )));
                    }
                    let c = scheme.l1.cluster_of(*r);
                    for n in scheme.nodes_of_l1(placement, c) {
                        push(n, &mut nodes)?;
                    }
                }
                FaultTarget::PsuGroupOf(n) => {
                    let machine = machine.ok_or_else(|| {
                        HcftError::Config(
                            "PSU-correlated fault target needs a MachineSpec".to_string(),
                        )
                    })?;
                    for peer in machine.psu_peers(*n) {
                        // A PSU group can extend past the placed nodes
                        // (the machine is bigger than the job).
                        if peer.idx() < placement.nodes() {
                            push(peer, &mut nodes)?;
                        }
                    }
                }
            }
        }
        Ok(nodes)
    }

    /// Resolve to the ranks lost with the failed nodes (sorted).
    pub fn failed_ranks(
        &self,
        placement: &Placement,
        scheme: &ClusteringScheme,
        machine: Option<&MachineSpec>,
    ) -> Result<Vec<Rank>, HcftError> {
        let mut ranks: Vec<Rank> = self
            .failed_nodes(placement, scheme, machine)?
            .into_iter()
            .flat_map(|n| placement.ranks_on(n).to_vec())
            .collect();
        ranks.sort_unstable_by_key(|r| r.idx());
        Ok(ranks)
    }

    /// Would the primary loss defeat the scheme's L2 redundancy (same
    /// judgement as the Monte-Carlo campaign)? Cascades are not included:
    /// they strike later, possibly after partial recovery.
    pub fn is_catastrophic(
        &self,
        placement: &Placement,
        scheme: &ClusteringScheme,
        machine: Option<&MachineSpec>,
    ) -> Result<bool, HcftError> {
        let nodes = self.failed_nodes(placement, scheme, machine)?;
        Ok(scheme.defeated_by(placement, &nodes))
    }
}

/// Builder for [`FaultScenario`]; see [`FaultScenario::at`].
#[derive(Clone, Debug)]
pub struct FaultScenarioBuilder {
    s: FaultScenario,
}

impl FaultScenarioBuilder {
    /// Fail a single node.
    pub fn node(mut self, n: NodeId) -> Self {
        self.s.targets.push(FaultTarget::Node(n));
        self
    }

    /// Fail several nodes simultaneously.
    pub fn nodes(mut self, ns: &[NodeId]) -> Self {
        for &n in ns {
            self.s.targets.push(FaultTarget::Node(n));
        }
        self
    }

    /// Fail every node hosting L1 cluster `index`.
    pub fn l1_cluster(mut self, index: usize) -> Self {
        self.s.targets.push(FaultTarget::L1Cluster(index));
        self
    }

    /// Fail every node hosting the L1 cluster containing `rank`.
    pub fn l1_cluster_of(mut self, rank: Rank) -> Self {
        self.s.targets.push(FaultTarget::L1ClusterOf(rank));
        self
    }

    /// Fail the whole PSU group of `node` (correlated loss).
    pub fn psu_group_of(mut self, node: NodeId) -> Self {
        self.s.targets.push(FaultTarget::PsuGroupOf(node));
        self
    }

    /// Add a cascading failure: `node` dies after recovery has replayed
    /// `after_steps` iterations.
    pub fn cascade(mut self, node: NodeId, after_steps: u64) -> Self {
        self.s
            .injections
            .push(Injection::CascadeAfter { node, after_steps });
        self
    }

    /// Silently corrupt `node`'s local checkpoint shards before recovery.
    pub fn corrupt_checkpoint(mut self, node: NodeId) -> Self {
        self.s
            .injections
            .push(Injection::CorruptCheckpoint { node });
        self
    }

    /// Make the primary failure strike during L2 encoding of the
    /// checkpoint at the failure phase.
    pub fn fail_during_encoding(mut self) -> Self {
        self.s.injections.push(Injection::FailDuringEncoding);
        self
    }

    /// Finish the scenario.
    pub fn build(self) -> FaultScenario {
        self.s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcft_cluster::naive;

    fn setup() -> (Placement, ClusteringScheme) {
        // 8 nodes × 4 ranks; naive clusters of 8 ranks = 2 nodes each.
        (Placement::block(8, 4), naive(32, 8))
    }

    #[test]
    fn node_target_resolves_to_its_ranks() {
        let (p, s) = setup();
        let sc = FaultScenario::node_loss(NodeId(3), 5);
        assert_eq!(sc.failed_nodes(&p, &s, None).unwrap(), vec![NodeId(3)]);
        let ranks = sc.failed_ranks(&p, &s, None).unwrap();
        assert_eq!(ranks, (12..16u32).map(Rank).collect::<Vec<_>>());
    }

    #[test]
    fn l1_cluster_target_covers_all_hosting_nodes() {
        let (p, s) = setup();
        let sc = FaultScenario::at(5).l1_cluster(1).build();
        assert_eq!(
            sc.failed_nodes(&p, &s, None).unwrap(),
            vec![NodeId(2), NodeId(3)]
        );
        // Same thing via a member rank.
        let sc2 = FaultScenario::at(5).l1_cluster_of(Rank(10)).build();
        assert_eq!(
            sc.failed_nodes(&p, &s, None).unwrap(),
            sc2.failed_nodes(&p, &s, None).unwrap()
        );
    }

    #[test]
    fn psu_target_needs_machine_and_expands_peers() {
        let (p, s) = setup();
        let sc = FaultScenario::at(5).psu_group_of(NodeId(4)).build();
        assert!(sc.failed_nodes(&p, &s, None).is_err());
        let mut machine = MachineSpec::tsubame2();
        machine.nodes_per_psu = 2;
        let nodes = sc.failed_nodes(&p, &s, Some(&machine)).unwrap();
        assert_eq!(nodes, vec![NodeId(4), NodeId(5)]);
    }

    #[test]
    fn duplicate_targets_collapse() {
        let (p, s) = setup();
        let sc = FaultScenario::at(5).node(NodeId(2)).l1_cluster(1).build();
        assert_eq!(
            sc.failed_nodes(&p, &s, None).unwrap(),
            vec![NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn out_of_range_targets_are_config_errors() {
        let (p, s) = setup();
        for sc in [
            FaultScenario::node_loss(NodeId(8), 0),
            FaultScenario::at(0).l1_cluster(99).build(),
            FaultScenario::at(0).l1_cluster_of(Rank(32)).build(),
            FaultScenario::at(0).build(),
        ] {
            assert!(matches!(
                sc.failed_nodes(&p, &s, None),
                Err(HcftError::Config(_))
            ));
        }
    }

    #[test]
    fn catastrophe_judgement_matches_l2_tolerance() {
        let (p, s) = setup();
        // L2 clusters of 8 members tolerate fti_tolerance(8) = 4 lost
        // members = 1 node here; 2 nodes of one cluster (8 members) is
        // catastrophic.
        let one = FaultScenario::node_loss(NodeId(0), 0);
        assert!(!one.is_catastrophic(&p, &s, None).unwrap());
        let two = FaultScenario::at(0).l1_cluster(0).build();
        assert!(two.is_catastrophic(&p, &s, None).unwrap());
    }
}
