//! Complex-network measures.
//!
//! §IV-A of the paper grounds the hierarchical design in brain-network
//! research: functional segregation is revealed by partitions that maximise
//! intra-cluster links (quantified by *modularity*), and *degree
//! distribution* is "an important marker of network evolution and
//! resilience" (Rubinov & Sporns 2010). These measures let us verify that
//! HPC communication graphs indeed show the low connectivity degree and
//! strong community structure the paper relies on.

use crate::clustering::Clustering;
use crate::graph::WeightedGraph;
use hcft_topology::Rank;

/// Histogram of unweighted vertex degrees: `hist[d]` = number of vertices
/// with exactly `d` neighbours.
pub fn degree_distribution(g: &WeightedGraph) -> Vec<usize> {
    let maxd = (0..g.n()).map(|u| g.degree_count(u)).max().unwrap_or(0);
    let mut hist = vec![0usize; maxd + 1];
    for u in 0..g.n() {
        hist[g.degree_count(u)] += 1;
    }
    hist
}

/// Mean unweighted degree — the "low degree of connectivity" observation
/// of Kamil et al. \[15\] that makes cluster-based partial logging viable.
pub fn mean_degree(g: &WeightedGraph) -> f64 {
    if g.n() == 0 {
        return 0.0;
    }
    (0..g.n()).map(|u| g.degree_count(u)).sum::<usize>() as f64 / g.n() as f64
}

/// Weighted Newman modularity Q of a clustering over the graph:
///
/// Q = Σ_c [ w_in(c)/W − (deg(c)/2W)² ]
///
/// where `w_in(c)` is the total weight of intra-cluster edges (self-loops
/// included), `deg(c)` the total weighted degree of the cluster's vertices
/// and `W` the total edge weight (self-loops included). Q near 1 means a
/// strong community structure; Q ≤ 0 means no better than random.
pub fn modularity(g: &WeightedGraph, c: &Clustering) -> f64 {
    assert_eq!(g.n(), c.nprocs(), "clustering must cover the graph");
    // Total weight including self-loops, counted as in Newman: each
    // undirected edge contributes its weight once; self-loops once.
    let w_edges = g.total_edge_weight();
    let w_self: u64 = (0..g.n()).map(|u| g.self_weight(u)).sum();
    let big_w = (w_edges + w_self) as f64;
    if big_w == 0.0 {
        return 0.0;
    }
    let mut q = 0.0;
    for (cid, members) in c.iter() {
        let mut w_in = 0u64;
        let mut deg = 0u64;
        for &u in members {
            let u = u.idx();
            w_in += g.self_weight(u);
            deg += g.degree(u) + 2 * g.self_weight(u);
            for &(v, w) in g.neighbors(u) {
                let v = Rank(v);
                if c.cluster_of(v) == cid && v.idx() > u {
                    w_in += w;
                }
            }
        }
        let frac_in = w_in as f64 / big_w;
        let frac_deg = deg as f64 / (2.0 * big_w);
        q += frac_in - frac_deg * frac_deg;
    }
    q
}

/// Global (unweighted) clustering coefficient: 3 × triangles / open triads.
/// One of the standard segregation measures in network neuroscience.
pub fn clustering_coefficient(g: &WeightedGraph) -> f64 {
    let mut triangles = 0u64;
    let mut triads = 0u64;
    for u in 0..g.n() {
        let d = g.degree_count(u) as u64;
        triads += d * d.saturating_sub(1) / 2;
        let nbrs: Vec<usize> = g.neighbors(u).iter().map(|&(v, _)| v as usize).collect();
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                if g.edge_weight(nbrs[i], nbrs[j]) > 0 {
                    triangles += 1;
                }
            }
        }
    }
    if triads == 0 {
        0.0
    } else {
        // Each triangle is counted once per corner (3 times total), and the
        // formula numerator is 3 × triangles with triangles counted once,
        // so the per-corner count already equals the numerator.
        triangles as f64 / triads as f64
    }
}

/// Fraction of total edge weight that is intra-cluster under `c` — the
/// complement of the message-logging fraction for flat clusterings.
pub fn intra_cluster_fraction(g: &WeightedGraph, c: &Clustering) -> f64 {
    let total = g.total_edge_weight();
    if total == 0 {
        return 1.0;
    }
    let cut = g.cut_weight(&c.assignment());
    1.0 - cut as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles joined by a single light edge — textbook community
    /// structure.
    fn two_communities() -> WeightedGraph {
        let mut g = WeightedGraph::new(6);
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(a, b, 10);
        }
        g.add_edge(2, 3, 1);
        g
    }

    #[test]
    fn degree_distribution_counts() {
        let g = two_communities();
        let hist = degree_distribution(&g);
        // Vertices 2 and 3 have degree 3, the rest degree 2.
        assert_eq!(hist[2], 4);
        assert_eq!(hist[3], 2);
        assert!((mean_degree(&g) - (4.0 * 2.0 + 2.0 * 3.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn modularity_prefers_true_communities() {
        let g = two_communities();
        let good = Clustering::from_assignment(&[0, 0, 0, 1, 1, 1]);
        let bad = Clustering::from_assignment(&[0, 1, 0, 1, 0, 1]);
        let all = Clustering::single(6);
        let q_good = modularity(&g, &good);
        let q_bad = modularity(&g, &bad);
        let q_all = modularity(&g, &all);
        assert!(q_good > 0.3, "q_good = {q_good}");
        assert!(q_good > q_bad);
        assert!(q_all.abs() < 1e-12, "single cluster has Q = 0, got {q_all}");
    }

    #[test]
    fn modularity_of_singletons_is_negative_or_zero() {
        let g = two_communities();
        let q = modularity(&g, &Clustering::singletons(6));
        assert!(q <= 0.0);
    }

    #[test]
    fn clustering_coefficient_of_triangle_is_one() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(0, 2, 1);
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_coefficient_of_star_is_zero() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 1);
        g.add_edge(0, 3, 1);
        assert_eq!(clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn intra_fraction_matches_cut() {
        let g = two_communities();
        let good = Clustering::from_assignment(&[0, 0, 0, 1, 1, 1]);
        // Total weight 61, cut 1.
        assert!((intra_cluster_fraction(&g, &good) - 60.0 / 61.0).abs() < 1e-12);
    }
}
