//! A validated partition of ranks into clusters.
//!
//! `Clustering` is the common currency of the whole system: the clustering
//! strategies produce one, the hybrid protocol logs across its boundaries,
//! the erasure coder encodes within its clusters and the evaluator scores
//! it. The invariant — every rank belongs to exactly one cluster — is
//! checked at construction so downstream code can index freely.

use hcft_topology::Rank;

/// A partition of ranks `0..n` into disjoint, covering clusters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    /// cluster_of[r] = cluster id of rank r.
    cluster_of: Vec<u32>,
    /// members[c] = sorted ranks of cluster c (non-empty).
    members: Vec<Vec<Rank>>,
}

impl Clustering {
    /// Build from per-rank cluster assignments. Cluster ids are compacted
    /// to `0..k` preserving first-appearance order.
    ///
    /// # Panics
    /// Panics on an empty assignment.
    pub fn from_assignment(assignment: &[usize]) -> Self {
        assert!(!assignment.is_empty(), "empty clustering");
        let mut remap: Vec<Option<u32>> = Vec::new();
        let mut cluster_of = Vec::with_capacity(assignment.len());
        let mut members: Vec<Vec<Rank>> = Vec::new();
        for (r, &c) in assignment.iter().enumerate() {
            if c >= remap.len() {
                remap.resize(c + 1, None);
            }
            let id = match remap[c] {
                Some(id) => id,
                None => {
                    let id = members.len() as u32;
                    remap[c] = Some(id);
                    members.push(Vec::new());
                    id
                }
            };
            cluster_of.push(id);
            members[id as usize].push(Rank::from(r));
        }
        Clustering {
            cluster_of,
            members,
        }
    }

    /// Build from explicit member lists covering `0..n` exactly once.
    ///
    /// # Panics
    /// Panics if the lists do not form a partition of `0..n`.
    pub fn from_members(n: usize, clusters: Vec<Vec<Rank>>) -> Self {
        let mut assignment = vec![usize::MAX; n];
        for (c, list) in clusters.iter().enumerate() {
            assert!(!list.is_empty(), "cluster {c} is empty");
            for &r in list {
                assert!(r.idx() < n, "rank {r} out of range");
                assert!(
                    assignment[r.idx()] == usize::MAX,
                    "rank {r} in two clusters"
                );
                assignment[r.idx()] = c;
            }
        }
        assert!(
            assignment.iter().all(|&c| c != usize::MAX),
            "some rank is in no cluster"
        );
        let mut c = Self::from_assignment(&assignment);
        for m in &mut c.members {
            m.sort_unstable();
        }
        c
    }

    /// Every rank in its own cluster.
    pub fn singletons(n: usize) -> Self {
        Self::from_assignment(&(0..n).collect::<Vec<_>>())
    }

    /// One cluster holding everything.
    pub fn single(n: usize) -> Self {
        Self::from_assignment(&vec![0; n])
    }

    /// Group consecutive ranks into clusters of `size` (last cluster may be
    /// smaller) — the paper's naïve / size-guided mechanics.
    pub fn consecutive(n: usize, size: usize) -> Self {
        assert!(size > 0);
        Self::from_assignment(&(0..n).map(|r| r / size).collect::<Vec<_>>())
    }

    /// Number of ranks.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.cluster_of.len()
    }

    /// Number of clusters.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True iff there is exactly one cluster... never true for a valid
    /// clustering of zero ranks (which cannot be constructed).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Cluster id of a rank.
    #[inline]
    pub fn cluster_of(&self, r: Rank) -> usize {
        self.cluster_of[r.idx()] as usize
    }

    /// Members of cluster `c`, ascending.
    #[inline]
    pub fn members(&self, c: usize) -> &[Rank] {
        &self.members[c]
    }

    /// Iterate over clusters as `(id, members)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[Rank])> {
        self.members.iter().enumerate().map(|(i, m)| (i, &m[..]))
    }

    /// Sizes of all clusters.
    pub fn sizes(&self) -> Vec<usize> {
        self.members.iter().map(Vec::len).collect()
    }

    /// Largest cluster size.
    pub fn max_size(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Smallest cluster size.
    pub fn min_size(&self) -> usize {
        self.members.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// True if ranks `a` and `b` share a cluster.
    #[inline]
    pub fn same_cluster(&self, a: Rank, b: Rank) -> bool {
        self.cluster_of[a.idx()] == self.cluster_of[b.idx()]
    }

    /// Per-rank assignment slice.
    pub fn assignment(&self) -> Vec<usize> {
        self.cluster_of.iter().map(|&c| c as usize).collect()
    }
}

impl Clustering {
    /// Render as CSV (`rank,cluster` per line) — the interchange format
    /// for external partitioning tools.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("rank,cluster\n");
        for r in 0..self.nprocs() {
            s.push_str(&format!("{r},{}\n", self.cluster_of(Rank::from(r))));
        }
        s
    }

    /// Parse the CSV format produced by [`Clustering::to_csv`]. Ranks may
    /// appear in any order but must cover `0..n` exactly once.
    pub fn from_csv(csv: &str) -> Result<Clustering, String> {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (lineno, line) in csv.lines().enumerate() {
            if lineno == 0 && line.starts_with("rank") {
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let mut it = line.split(',');
            let parse = |tok: Option<&str>| -> Result<usize, String> {
                tok.ok_or_else(|| format!("line {lineno}: missing field"))?
                    .trim()
                    .parse::<usize>()
                    .map_err(|e| format!("line {lineno}: {e}"))
            };
            pairs.push((parse(it.next())?, parse(it.next())?));
        }
        if pairs.is_empty() {
            return Err("empty clustering".to_string());
        }
        let n = pairs.len();
        let mut assignment = vec![usize::MAX; n];
        for (rank, cluster) in pairs {
            if rank >= n {
                return Err(format!("rank {rank} out of range (0..{n})"));
            }
            if assignment[rank] != usize::MAX {
                return Err(format!("rank {rank} assigned twice"));
            }
            assignment[rank] = cluster;
        }
        Ok(Clustering::from_assignment(&assignment))
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let c = Clustering::consecutive(10, 3);
        let back = Clustering::from_csv(&c.to_csv()).expect("parse");
        assert_eq!(c, back);
    }

    #[test]
    fn csv_accepts_shuffled_rows() {
        let c = Clustering::from_csv("rank,cluster\n2,0\n0,1\n1,0\n").expect("parse");
        assert_eq!(c.cluster_of(Rank(0)), 0); // first-appearance renumbering
        assert!(c.same_cluster(Rank(1), Rank(2)));
        assert!(!c.same_cluster(Rank(0), Rank(1)));
    }

    #[test]
    fn csv_rejects_gaps_and_duplicates() {
        assert!(Clustering::from_csv("rank,cluster\n0,0\n0,1\n").is_err());
        assert!(Clustering::from_csv("rank,cluster\n5,0\n").is_err());
        assert!(Clustering::from_csv("rank,cluster\n").is_err());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_assignment_compacts_ids() {
        let c = Clustering::from_assignment(&[5, 5, 9, 5, 9]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.cluster_of(Rank(0)), 0);
        assert_eq!(c.cluster_of(Rank(2)), 1);
        assert_eq!(c.members(0), &[Rank(0), Rank(1), Rank(3)]);
    }

    #[test]
    fn consecutive_chunks() {
        let c = Clustering::consecutive(10, 4);
        assert_eq!(c.len(), 3);
        assert_eq!(c.sizes(), vec![4, 4, 2]);
        assert!(c.same_cluster(Rank(0), Rank(3)));
        assert!(!c.same_cluster(Rank(3), Rank(4)));
    }

    #[test]
    fn from_members_roundtrip() {
        let c = Clustering::from_members(4, vec![vec![Rank(3), Rank(0)], vec![Rank(1), Rank(2)]]);
        assert_eq!(c.members(0), &[Rank(0), Rank(3)]);
        assert_eq!(c.cluster_of(Rank(2)), 1);
    }

    #[test]
    #[should_panic(expected = "in two clusters")]
    fn from_members_rejects_overlap() {
        Clustering::from_members(2, vec![vec![Rank(0), Rank(1)], vec![Rank(1)]]);
    }

    #[test]
    #[should_panic(expected = "in no cluster")]
    fn from_members_rejects_gap() {
        Clustering::from_members(3, vec![vec![Rank(0)], vec![Rank(1)]]);
    }

    #[test]
    fn singletons_and_single() {
        assert_eq!(Clustering::singletons(3).len(), 3);
        assert_eq!(Clustering::single(3).len(), 1);
        assert_eq!(Clustering::single(3).max_size(), 3);
        assert_eq!(Clustering::singletons(3).min_size(), 1);
    }

    #[test]
    fn assignment_roundtrip() {
        let c = Clustering::consecutive(6, 2);
        let c2 = Clustering::from_assignment(&c.assignment());
        assert_eq!(c, c2);
    }
}
