//! Dense communication matrix.
//!
//! `mat[s][d]` holds the number of bytes sent from rank `s` to rank `d`
//! over the traced execution — exactly what the paper extracts from its
//! modified MPICH2. Dense storage is deliberate: at the paper's scale
//! (1088 ranks) the matrix is ~9 MiB of `u64`, far cheaper to address
//! directly than through a hash map, and the heat-map figures need the
//! dense view anyway.

use hcft_topology::{Placement, Rank};

/// A dense bytes-communicated matrix over `n` ranks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommMatrix {
    n: usize,
    data: Vec<u64>,
}

impl CommMatrix {
    /// An all-zero matrix over `n` ranks.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "empty communication matrix");
        CommMatrix {
            n,
            data: vec![0; n * n],
        }
    }

    /// Number of ranks.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes sent `src → dst`.
    #[inline]
    pub fn get(&self, src: usize, dst: usize) -> u64 {
        self.data[src * self.n + dst]
    }

    /// Add `bytes` to the `src → dst` cell.
    #[inline]
    pub fn add(&mut self, src: usize, dst: usize, bytes: u64) {
        self.data[src * self.n + dst] += bytes;
    }

    /// Raw row access (receiver-indexed slice for sender `src`).
    #[inline]
    pub fn row(&self, src: usize) -> &[u64] {
        &self.data[src * self.n..(src + 1) * self.n]
    }

    /// Total bytes communicated (sum of all cells).
    pub fn total_bytes(&self) -> u64 {
        self.data.iter().sum()
    }

    /// Number of non-zero (directed) edges.
    pub fn edge_count(&self) -> usize {
        self.data.iter().filter(|&&b| b > 0).count()
    }

    /// Iterate over non-zero `(src, dst, bytes)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        self.data
            .iter()
            .enumerate()
            .filter(|&(_i, &b)| b > 0)
            .map(|(i, &b)| (i / self.n, i % self.n, b))
    }

    /// Symmetric volume between `a` and `b` (both directions).
    #[inline]
    pub fn between(&self, a: usize, b: usize) -> u64 {
        self.get(a, b) + self.get(b, a)
    }

    /// Merge another matrix of the same size into this one.
    pub fn merge(&mut self, other: &CommMatrix) {
        assert_eq!(self.n, other.n, "matrix size mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Aggregate to a node-level matrix using a placement: cell `(u, v)` of
    /// the result is the sum of bytes from ranks on node `u` to ranks on
    /// node `v`. This is the "node-based communication graph" of §IV-B.
    pub fn aggregate_by_node(&self, placement: &Placement) -> CommMatrix {
        assert_eq!(placement.nprocs(), self.n, "placement covers all ranks");
        let nn = placement.nodes();
        let mut out = CommMatrix::new(nn);
        for (s, d, b) in self.entries() {
            let sn = placement.node_of(Rank::from(s)).idx();
            let dn = placement.node_of(Rank::from(d)).idx();
            out.add(sn, dn, b);
        }
        out
    }

    /// Project onto a subset of ranks, renumbered densely in the order
    /// given. Traffic to/from ranks outside the subset is dropped. Used to
    /// extract the application-only matrix from a full job trace.
    pub fn project(&self, subset: &[Rank]) -> CommMatrix {
        let mut index = vec![usize::MAX; self.n];
        for (new, r) in subset.iter().enumerate() {
            index[r.idx()] = new;
        }
        let mut out = CommMatrix::new(subset.len());
        for (s, d, b) in self.entries() {
            let (ns, nd) = (index[s], index[d]);
            if ns != usize::MAX && nd != usize::MAX {
                out.add(ns, nd, b);
            }
        }
        out
    }

    /// The top-left `k × k` corner — the paper's Fig. 5b "zoom on the first
    /// 68 processes".
    pub fn zoom(&self, k: usize) -> CommMatrix {
        assert!(k <= self.n);
        let mut out = CommMatrix::new(k);
        for s in 0..k {
            for d in 0..k {
                let b = self.get(s, d);
                if b > 0 {
                    out.add(s, d, b);
                }
            }
        }
        out
    }

    /// Bytes crossing between `set` and its complement (both directions) —
    /// the quantity message logging must capture for one cluster.
    pub fn cut_bytes(&self, set: &[Rank]) -> u64 {
        let mut inside = vec![false; self.n];
        for r in set {
            inside[r.idx()] = true;
        }
        self.entries()
            .filter(|&(s, d, _)| inside[s] != inside[d])
            .map(|(_, _, b)| b)
            .sum()
    }

    /// Render as CSV (`src,dst,bytes` for non-zero entries).
    pub fn to_csv(&self) -> String {
        let mut s = String::from("src,dst,bytes\n");
        for (src, dst, b) in self.entries() {
            s.push_str(&format!("{src},{dst},{b}\n"));
        }
        s
    }

    /// Parse the CSV format produced by [`CommMatrix::to_csv`].
    pub fn from_csv(n: usize, csv: &str) -> Result<CommMatrix, String> {
        let mut m = CommMatrix::new(n);
        for (lineno, line) in csv.lines().enumerate() {
            if lineno == 0 && line.starts_with("src") {
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let mut it = line.split(',');
            let parse = |tok: Option<&str>| -> Result<u64, String> {
                tok.ok_or_else(|| format!("line {lineno}: missing field"))?
                    .trim()
                    .parse::<u64>()
                    .map_err(|e| format!("line {lineno}: {e}"))
            };
            let src = parse(it.next())? as usize;
            let dst = parse(it.next())? as usize;
            let bytes = parse(it.next())?;
            if src >= n || dst >= n {
                return Err(format!("line {lineno}: rank out of range"));
            }
            m.add(src, dst, bytes);
        }
        Ok(m)
    }

    /// ASCII heat map with log-scale density characters, coarsened to at
    /// most `max_cells` cells per side. Good enough to eyeball the Fig. 5
    /// diagonals in a terminal.
    pub fn render_ascii(&self, max_cells: usize) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let cells = self.n.min(max_cells.max(1));
        let bucket = self.n.div_ceil(cells);
        let mut grid = vec![0u64; cells * cells];
        for (s, d, b) in self.entries() {
            grid[(s / bucket).min(cells - 1) * cells + (d / bucket).min(cells - 1)] += b;
        }
        let max = grid.iter().copied().max().unwrap_or(0).max(1);
        let lmax = (max as f64).ln().max(1.0);
        let mut out = String::with_capacity(cells * (cells + 1));
        for row in 0..cells {
            for col in 0..cells {
                let v = grid[row * cells + col];
                let c = if v == 0 {
                    b' '
                } else {
                    let t = (v as f64).ln().max(0.0) / lmax;
                    SHADES[((t * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1)]
                };
                out.push(c as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcft_topology::Placement;

    fn sample() -> CommMatrix {
        let mut m = CommMatrix::new(4);
        m.add(0, 1, 100);
        m.add(1, 0, 50);
        m.add(2, 3, 10);
        m.add(0, 3, 1);
        m
    }

    #[test]
    fn totals_and_edges() {
        let m = sample();
        assert_eq!(m.total_bytes(), 161);
        assert_eq!(m.edge_count(), 4);
        assert_eq!(m.between(0, 1), 150);
    }

    #[test]
    fn aggregate_by_node_sums_rank_traffic() {
        let m = sample();
        let p = Placement::block(2, 2); // ranks 0,1 on node 0; 2,3 on node 1
        let nm = m.aggregate_by_node(&p);
        assert_eq!(nm.n(), 2);
        assert_eq!(nm.get(0, 0), 150); // 0<->1 intra-node
        assert_eq!(nm.get(1, 1), 10); // 2->3 intra-node
        assert_eq!(nm.get(0, 1), 1); // 0->3
    }

    #[test]
    fn project_renumbers_subset() {
        let m = sample();
        let sub = m.project(&[Rank(1), Rank(3)]);
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.total_bytes(), 0); // 1 and 3 never talk directly
        let sub2 = m.project(&[Rank(0), Rank(1)]);
        assert_eq!(sub2.get(0, 1), 100);
        assert_eq!(sub2.get(1, 0), 50);
    }

    #[test]
    fn cut_bytes_counts_both_directions() {
        let m = sample();
        // set {0,1}: cut edges are 2->3? no (both outside), 0->3 yes.
        assert_eq!(m.cut_bytes(&[Rank(0), Rank(1)]), 1);
        // set {0}: 0->1 (100), 1->0 (50), 0->3 (1).
        assert_eq!(m.cut_bytes(&[Rank(0)]), 151);
    }

    #[test]
    fn csv_roundtrip() {
        let m = sample();
        let csv = m.to_csv();
        let back = CommMatrix::from_csv(4, &csv).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn csv_rejects_out_of_range() {
        assert!(CommMatrix::from_csv(2, "src,dst,bytes\n5,0,1\n").is_err());
    }

    #[test]
    fn zoom_takes_corner() {
        let m = sample();
        let z = m.zoom(2);
        assert_eq!(z.n(), 2);
        assert_eq!(z.get(0, 1), 100);
        assert_eq!(z.total_bytes(), 150);
    }

    #[test]
    fn merge_adds_cellwise() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total_bytes(), 322);
    }

    #[test]
    fn ascii_render_has_expected_shape() {
        let m = sample();
        let art = m.render_ascii(4);
        assert_eq!(art.lines().count(), 4);
        assert!(art.lines().all(|l| l.len() == 4));
        // Heaviest cell (0,1) must be the darkest shade.
        assert_eq!(art.lines().next().unwrap().as_bytes()[1], b'@');
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_matrix() -> impl Strategy<Value = CommMatrix> {
        (2usize..12).prop_flat_map(|n| {
            proptest::collection::vec((0usize..n, 0usize..n, 1u64..1_000_000), 0..40).prop_map(
                move |edges| {
                    let mut m = CommMatrix::new(n);
                    for (s, d, b) in edges {
                        m.add(s, d, b);
                    }
                    m
                },
            )
        })
    }

    proptest! {
        #[test]
        fn csv_roundtrip_is_identity(m in arb_matrix()) {
            let back = CommMatrix::from_csv(m.n(), &m.to_csv()).expect("parse");
            prop_assert_eq!(&m, &back);
        }

        #[test]
        fn aggregate_preserves_total_bytes(m in arb_matrix(), per_node in 1usize..4) {
            let nodes = m.n().div_ceil(per_node);
            let placement = hcft_topology::Placement::new(
                hcft_topology::PlacementStrategy::Block,
                m.n(),
                nodes,
                per_node,
            );
            let nm = m.aggregate_by_node(&placement);
            prop_assert_eq!(nm.total_bytes(), m.total_bytes());
        }

        #[test]
        fn project_of_everything_is_identity(m in arb_matrix()) {
            let all: Vec<Rank> = (0..m.n()).map(Rank::from).collect();
            prop_assert_eq!(&m.project(&all), &m);
        }

        #[test]
        fn cut_of_complement_is_equal(m in arb_matrix()) {
            let half: Vec<Rank> = (0..m.n() / 2).map(Rank::from).collect();
            let other: Vec<Rank> = (m.n() / 2..m.n()).map(Rank::from).collect();
            prop_assert_eq!(m.cut_bytes(&half), m.cut_bytes(&other));
        }
    }
}
